# Sanitizer and warning hardening for the whole tree.
#
# NNCELL_SANITIZE is a semicolon- or comma-separated list drawn from
#   address | undefined | thread | leak
# applied to every target (compile and link). address/undefined compose;
# thread excludes address/leak (the toolchains reject the combination).
#
# NNCELL_WERROR promotes the always-on -Wall -Wextra to errors. CI builds
# with it ON; it defaults OFF so exotic local compilers do not break the
# build over a new warning.
#
# NNCELL_THREAD_SAFETY turns on Clang's static thread-safety analysis
# (-Wthread-safety, promoted to an error) against the annotations in
# common/thread_annotations.h. Clang-only: requesting it under another
# compiler is a hard configure error rather than a silently weaker build,
# because the `tsa` preset is a correctness gate (docs/STATIC_ANALYSIS.md).

set(NNCELL_SANITIZE "" CACHE STRING
    "Sanitizers to enable: any of address;undefined;thread;leak")
option(NNCELL_WERROR "Treat warnings as errors (-Werror)" OFF)
option(NNCELL_THREAD_SAFETY
       "Enable Clang -Wthread-safety static analysis (requires Clang)" OFF)

function(nncell_apply_sanitizers)
  if(NNCELL_SANITIZE STREQUAL "")
    return()
  endif()
  string(REPLACE "," ";" _san_list "${NNCELL_SANITIZE}")

  set(_flags "")
  set(_has_thread FALSE)
  set(_has_addr FALSE)
  foreach(_san IN LISTS _san_list)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _flags -fsanitize=address)
      set(_has_addr TRUE)
    elseif(_san STREQUAL "undefined")
      # float-divide-by-zero is not UB per the standard but is a bug in
      # this codebase's numeric kernels, so opt in to the extra check.
      list(APPEND _flags -fsanitize=undefined -fsanitize=float-divide-by-zero)
    elseif(_san STREQUAL "thread")
      list(APPEND _flags -fsanitize=thread)
      set(_has_thread TRUE)
    elseif(_san STREQUAL "leak")
      list(APPEND _flags -fsanitize=leak)
    else()
      message(FATAL_ERROR "Unknown sanitizer '${_san}' in NNCELL_SANITIZE")
    endif()
  endforeach()

  if(_has_thread AND _has_addr)
    message(FATAL_ERROR "thread and address sanitizers cannot be combined")
  endif()

  # Sane stacks in reports; abort on the first UB diagnostic instead of
  # printing and continuing, so CI cannot go green past a finding.
  list(APPEND _flags -fno-omit-frame-pointer -fno-sanitize-recover=all)

  add_compile_options(${_flags})
  add_link_options(${_flags})
  message(STATUS "nncell: sanitizers enabled: ${NNCELL_SANITIZE}")
endfunction()

function(nncell_apply_warnings)
  add_compile_options(-Wall -Wextra)
  if(NNCELL_WERROR)
    add_compile_options(-Werror)
    message(STATUS "nncell: -Werror enabled")
  endif()
endfunction()

function(nncell_apply_thread_safety)
  if(NOT NNCELL_THREAD_SAFETY)
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "NNCELL_THREAD_SAFETY requires Clang (-Wthread-safety is a Clang "
        "analysis); configure with -DCMAKE_CXX_COMPILER=clang++ or use the "
        "`tsa` preset. Current compiler: ${CMAKE_CXX_COMPILER_ID}")
  endif()
  # -Wthread-safety covers the core analysis; the error promotion makes the
  # preset a gate even when NNCELL_WERROR is off.
  add_compile_options(-Wthread-safety -Werror=thread-safety)
  message(STATUS "nncell: Clang thread-safety analysis enabled")
endfunction()
