#include "rstar/validate.h"

namespace nncell::rstar {

Status ValidateTree(const RTreeCore& tree) {
  std::string err = tree.Validate();
  if (!err.empty()) return Status::Internal("tree invariant violated: " + err);
  return Status::OK();
}

}  // namespace nncell::rstar
