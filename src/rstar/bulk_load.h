#ifndef NNCELL_RSTAR_BULK_LOAD_H_
#define NNCELL_RSTAR_BULK_LOAD_H_

#include <cstddef>
#include <vector>

#include "rstar/node.h"

namespace nncell {

// Sort-Tile-Recursive packing [Leutenegger, Lopez, Edgington 1997]:
// partitions a static entry set into groups of at most `capacity` entries
// with locality-preserving tiling on the rectangle centers. Group sizes
// are balanced (never below capacity/2 when more than one group exists),
// so packed nodes respect R*-style minimum fill. Used to bulk-load the
// precomputed NN-cell index: candidate cells of a query point end up on
// few, spatially coherent pages.
std::vector<std::vector<Entry>> StrPartition(std::vector<Entry> entries,
                                             size_t capacity, size_t dim);

}  // namespace nncell

#endif  // NNCELL_RSTAR_BULK_LOAD_H_
