#include "rstar/node.h"

#include <cstring>

#include "storage/byte_io.h"

namespace nncell {

namespace {
// Fixed header: is_leaf(u8), pad(u8), num_entries(u16), num_extra(u32).
constexpr size_t kHeaderBytes = 8;

size_t AlignedHeaderBytes(size_t num_extra) {
  return (kHeaderBytes + num_extra * sizeof(uint32_t) + 7) & ~size_t{7};
}
}  // namespace

NodeStore::NodeStore(BufferPool* pool, size_t dim, size_t aux_per_entry)
    : pool_(pool), dim_(dim), aux_(aux_per_entry),
      page_size_(pool->page_size()) {
  NNCELL_CHECK(dim_ > 0);
  // A single page must hold at least 2 entries of either kind plus header.
  NNCELL_CHECK_MSG(Capacity(true, 1) >= 2 && Capacity(false, 1) >= 2,
                   "page size too small for dimensionality");
}

size_t NodeStore::LeafEntryBytes() const {
  return 2 * dim_ * sizeof(double) + sizeof(uint64_t) + aux_ * sizeof(double);
}

size_t NodeStore::InternalEntryBytes() const {
  return 2 * dim_ * sizeof(double) + sizeof(uint64_t);
}

size_t NodeStore::Capacity(bool is_leaf, size_t pages) const {
  size_t entry_bytes = is_leaf ? LeafEntryBytes() : InternalEntryBytes();
  size_t overhead = AlignedHeaderBytes(pages - 1);
  size_t total = pages * page_size_;
  if (total <= overhead) return 0;
  return (total - overhead) / entry_bytes;
}

size_t NodeStore::PagesNeeded(bool is_leaf, size_t n) const {
  size_t pages = 1;
  while (Capacity(is_leaf, pages) < n) ++pages;
  return pages;
}

PageId NodeStore::AllocateNode() { return pool_->AllocatePage(); }

const uint8_t* NodeStore::AssembleNode(PageId id) const {
  // The caller holds a pin on `id` (see VisitNode / Read), so the first
  // frame cannot move under us and, for the single-page common case, stays
  // valid after we return.
  // nncell-lint: allow(unpinned-fetch) pin held by caller (VisitNode/Read)
  const uint8_t* first = pool_->Fetch(id);
  uint32_t num_extra;
  std::memcpy(&num_extra, first + 4, sizeof(num_extra));
  if (num_extra == 0) return first;  // common case: frame used in place

  // Supernodes are assembled into a thread-local buffer so concurrent
  // readers never share scratch space. Each overflow page is pinned for
  // the duration of its copy: a sibling reader's cache miss may evict any
  // unpinned frame of this shard at any time.
  static thread_local std::vector<uint8_t> scratch;
  scratch.resize((1 + num_extra) * page_size_);
  std::memcpy(scratch.data(), first, page_size_);
  // The overflow id list lives in the first page header.
  for (uint32_t i = 0; i < num_extra; ++i) {
    uint32_t extra_id;
    std::memcpy(&extra_id, scratch.data() + kHeaderBytes + i * 4, 4);
    PageGuard guard(pool_, extra_id);
    const uint8_t* p = pool_->Fetch(extra_id);
    std::memcpy(scratch.data() + (1 + i) * page_size_, p, page_size_);
  }
  return scratch.data();
}

Node NodeStore::Read(PageId id) const {
  Node node;
  PageGuard guard(pool_, id);
  const uint8_t* stream = AssembleNode(id);
  node.is_leaf = stream[0] != 0;
  uint16_t num_entries;
  std::memcpy(&num_entries, stream + 2, sizeof(num_entries));
  uint32_t num_extra;
  std::memcpy(&num_extra, stream + 4, sizeof(num_extra));
  node.extra_pages.resize(num_extra);
  for (uint32_t i = 0; i < num_extra; ++i) {
    std::memcpy(&node.extra_pages[i], stream + kHeaderBytes + i * 4, 4);
  }

  size_t offset = AlignedHeaderBytes(num_extra);
  node.entries.resize(num_entries);
  std::vector<double> coords(2 * dim_);
  for (Entry& e : node.entries) {
    std::memcpy(coords.data(), stream + offset, 2 * dim_ * sizeof(double));
    offset += 2 * dim_ * sizeof(double);
    e.rect = HyperRect(
        std::vector<double>(coords.begin(), coords.begin() + dim_),
        std::vector<double>(coords.begin() + dim_, coords.end()));
    std::memcpy(&e.id, stream + offset, sizeof(e.id));
    offset += sizeof(e.id);
    if (node.is_leaf && aux_ > 0) {
      e.aux.resize(aux_);
      std::memcpy(e.aux.data(), stream + offset, aux_ * sizeof(double));
      offset += aux_ * sizeof(double);
    }
  }
  return node;
}

void NodeStore::Write(PageId id, Node* node) {
  NNCELL_CHECK(node->entries.size() <= 0xffff);
  size_t pages = PagesNeeded(node->is_leaf, node->entries.size());
  // Grow or shrink the overflow chain.
  while (node->page_span() < pages) {
    node->extra_pages.push_back(pool_->AllocatePage());
  }
  while (node->page_span() > pages) {
    pool_->FreePage(node->extra_pages.back());
    node->extra_pages.pop_back();
  }

  std::vector<uint8_t> buffer(pages * page_size_, 0);
  ByteWriter writer(buffer.data(), buffer.size());
  writer.Put<uint8_t>(node->is_leaf ? 1 : 0);
  writer.Put<uint8_t>(0);
  writer.Put<uint16_t>(static_cast<uint16_t>(node->entries.size()));
  writer.Put<uint32_t>(static_cast<uint32_t>(node->extra_pages.size()));
  for (PageId extra : node->extra_pages) writer.Put<uint32_t>(extra);
  while (writer.position() % 8 != 0) writer.Put<uint8_t>(0);
  for (const Entry& e : node->entries) {
    writer.PutDoubles(e.rect.lo().data(), dim_);
    writer.PutDoubles(e.rect.hi().data(), dim_);
    writer.Put<uint64_t>(e.id);
    if (node->is_leaf && aux_ > 0) {
      NNCELL_CHECK(e.aux.size() == aux_);
      writer.PutDoubles(e.aux.data(), aux_);
    }
  }

  // Scatter the buffer across the spanned pages.
  for (size_t p = 0; p < pages; ++p) {
    PageId pid = (p == 0) ? id : node->extra_pages[p - 1];
    uint8_t* frame = pool_->FetchMutable(pid);
    std::memcpy(frame, buffer.data() + p * page_size_, page_size_);
  }
}

void NodeStore::Free(PageId id, const Node& node) {
  for (PageId extra : node.extra_pages) pool_->FreePage(extra);
  pool_->FreePage(id);
}

}  // namespace nncell
