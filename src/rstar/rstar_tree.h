#ifndef NNCELL_RSTAR_RSTAR_TREE_H_
#define NNCELL_RSTAR_RSTAR_TREE_H_

#include "rstar/rtree_core.h"

namespace nncell {

// The R*-tree of Beckmann, Kriegel, Schneider and Seeger [BKSS 90]: the
// baseline index of the paper's evaluation. All behaviour (ChooseSubtree
// with overlap minimization, forced reinsert, topological split) lives in
// RTreeCore; this class pins the classic configuration.
class RStarTree : public RTreeCore {
 public:
  RStarTree(BufferPool* pool, TreeOptions options)
      : RTreeCore(pool, FixOptions(options)) {}

 private:
  static TreeOptions FixOptions(TreeOptions o) {
    o.max_supernode_pages = 1;  // R*-trees have no supernodes
    return o;
  }
};

}  // namespace nncell

#endif  // NNCELL_RSTAR_RSTAR_TREE_H_
