#ifndef NNCELL_RSTAR_VALIDATE_H_
#define NNCELL_RSTAR_VALIDATE_H_

#include "common/status.h"
#include "rstar/rtree_core.h"

namespace nncell::rstar {

// Canonical entry point for deep structural tree validation; see
// RTreeCore::Validate for the full list of invariants (MBR containment and
// tightness, entry counts, level consistency, well-formed rectangles, page
// reachability / no orphan pages, and the structure-specific node rules
// such as X-tree supernode budgets). Intended for tests and for
// NNCELL_DCHECK_OK at structural mutation boundaries:
//
//   NNCELL_DCHECK_OK(rstar::ValidateTree(tree));
Status ValidateTree(const RTreeCore& tree);

}  // namespace nncell::rstar

#endif  // NNCELL_RSTAR_VALIDATE_H_
