#ifndef NNCELL_RSTAR_RTREE_CORE_H_
#define NNCELL_RSTAR_RTREE_CORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hyper_rect.h"
#include "rstar/node.h"
#include "rstar/tree_options.h"
#include "storage/buffer_pool.h"

namespace nncell {

// Shared engine of the page-based spatial trees. Implements the full
// R*-tree insert path (ChooseSubtree, forced reinsert, topological split),
// deletion with tree condensation, and the query algorithms (point, range,
// best-first kNN of [HS 95] with MINDIST pruning). The X-tree derives from
// this engine and overrides the split decision and node capacity to add
// overlap-minimal splits and supernodes.
class RTreeCore {
 public:
  struct Match {
    HyperRect rect;
    uint64_t id = 0;
    std::vector<double> aux;
  };

  struct KnnResult {
    uint64_t id = 0;
    double dist = 0.0;  // Euclidean distance to the entry rectangle
    HyperRect rect;
    std::vector<double> aux;
  };

  struct TreeInfo {
    size_t height = 0;
    size_t size = 0;          // leaf entries
    size_t num_nodes = 0;     // logical nodes
    size_t num_leaves = 0;
    size_t num_supernodes = 0;
    size_t total_pages = 0;   // pages spanned by all nodes
  };

  RTreeCore(BufferPool* pool, TreeOptions options);
  virtual ~RTreeCore() = default;

  RTreeCore(const RTreeCore&) = delete;
  RTreeCore& operator=(const RTreeCore&) = delete;

  const TreeOptions& options() const { return options_; }
  size_t dim() const { return options_.dim; }
  size_t size() const { return size_; }
  size_t height() const { return height_; }
  BufferPool* pool() const { return pool_; }

  // Inserts a leaf entry. `aux` must supply options().aux_per_entry doubles
  // (nullptr allowed when that is 0).
  void Insert(const HyperRect& rect, uint64_t id, const double* aux = nullptr);

  // Builds the tree from a static entry set with Sort-Tile-Recursive
  // packing [LLE 97]: near-full, locality-preserving leaves and a
  // bottom-up directory. Requires an empty tree; afterwards the tree
  // supports all dynamic operations. Used for the one-shot precomputation
  // of the NN-cell index.
  void BulkLoad(std::vector<Entry> entries);

  // Removes the leaf entry matching (rect, id) exactly. Returns false when
  // no such entry exists.
  bool Delete(const HyperRect& rect, uint64_t id);

  // All leaf entries whose rectangle contains q (the paper's point query).
  std::vector<Match> PointQuery(const double* q) const;

  // All leaf entries whose rectangle intersects `range`.
  std::vector<Match> RangeQuery(const HyperRect& range) const;

  // Page-granular queries used by the paper's Point/Sphere candidate
  // selection: return ALL entries of every leaf node whose page region
  // contains q (LeafPageQuery) or lies within `radius` of q
  // (LeafPageSphereQuery).
  std::vector<Match> LeafPageQuery(const double* q) const;
  std::vector<Match> LeafPageSphereQuery(const double* q,
                                         double radius) const;

  // k nearest entry rectangles to q by MINDIST (exact NN for point data).
  // Best-first search [HS 95]: optimal in page accesses.
  std::vector<KnnResult> KnnQuery(const double* q, size_t k) const;

  // Certified / bounded-effort best-first k-NN (the approximate query
  // tier, docs/APPROXIMATE.md). Same [HS 95] traversal as KnnQuery plus:
  //   - epsilon rule: stop once the k-th best squared distance is within
  //     (1+epsilon)^2 of the tightest remaining subtree MINDIST;
  //   - effort budget: stop after max_leaf_visits leaf pages (0 = none);
  //   - a per-query certificate (bound on unvisited entries, leaf pages
  //     scanned, how the search ended).
  // Ties at equal distance resolve to the smaller id, matching the exact
  // scan's ordering. With epsilon == 0 and no budget the hits equal the
  // true k nearest (callers still dispatch to the exact path for
  // bit-identity of metrics and candidate accounting).
  struct ApproxNnResult {
    struct Hit {
      uint64_t id = 0;
      double dist_sq = 0.0;
    };
    std::vector<Hit> hits;         // ascending (dist_sq, id), up to k
    uint64_t leaf_visits = 0;      // leaf pages scanned
    uint64_t entries_scanned = 0;  // leaf entries scored
    double bound_sq = 0.0;         // squared lower bound on unvisited entries
    bool terminated_early = false; // epsilon rule fired before exactness
    bool truncated = false;        // budget ran out with subtrees pending
  };
  ApproxNnResult ApproxNnQuery(const double* q, size_t k, double epsilon,
                               uint64_t max_leaf_visits) const;

  // Nearest neighbor by the depth-first branch-and-bound of [RKV 95]:
  // children sorted by MINDIST, pruned with MINMAXDIST. This is the
  // "classic NN search" of the paper's evaluation -- it sorts and scores
  // every visited directory node, which is exactly the CPU cost the
  // NN-cell approach eliminates. Returns nullopt on an empty tree.
  std::optional<KnnResult> NnBranchAndBound(const double* q) const;

  // Structural statistics (walks the tree; costs page accesses).
  TreeInfo Info() const;

  // Persistence support: the logical state that lives outside the pages.
  struct PersistentState {
    PageId root = kInvalidPageId;
    uint64_t height = 1;
    uint64_t size = 0;
  };
  PersistentState SaveState() const {
    return PersistentState{root_, height_, size_};
  }
  // Re-attaches the tree to a page image restored into the pool's
  // PageFile (see PageFile::LoadFrom); discards the empty root the
  // constructor created.
  void RestoreState(const PersistentState& state) {
    root_ = state.root;
    height_ = static_cast<size_t>(state.height);
    size_ = static_cast<size_t>(state.size);
  }

  // Deep structural validation: MBR consistency (parent rectangles are the
  // tight union of their children -- Lemma 1 would silently absorb an
  // enlarged one, so equality is enforced), uniform leaf depth, minimum
  // fill, entry count, well-formed rectangles (no NaN / inverted bounds),
  // page-span bookkeeping, double-reference and double-free detection, and
  // page reachability: every allocated page of the underlying file is
  // either part of exactly one node or on the free list (no orphans).
  // Subclasses add their own node invariants via ValidateNode. Returns an
  // error description or "". Prefer the rstar::ValidateTree wrapper in
  // validate.h for new call sites.
  std::string Validate() const;

 protected:
  // Capacity of this node before it overflows. The base returns the
  // single-page capacity; the X-tree returns the supernode capacity.
  virtual size_t MaxEntries(const Node& node) const;

  // Splits an overflowing node's entries into two groups, or returns
  // nullopt to keep the node whole (X-tree supernode growth).
  virtual std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>>
  SplitNode(const Node& node);

  size_t MinFill(bool is_leaf) const {
    return is_leaf ? min_fill_leaf_ : min_fill_internal_;
  }
  const NodeStore& store() const { return store_; }

  // Structure-specific node invariants checked by Validate (e.g. the
  // X-tree's supernode rules). The base engine only ever produces
  // single-page nodes. Returns "" or an error description.
  virtual std::string ValidateNode(const Node& node, PageId pid,
                                   bool is_root) const;

 private:
  struct PathStep {
    PageId pid = kInvalidPageId;
    Node node;
    size_t child_idx = 0;
  };

  // Inserts an entry at the given level (0 = leaf). Drives overflow
  // treatment (reinsert / split / supernode) and root growth.
  void InsertEntry(Entry entry, size_t target_level);

  // ChooseSubtree of the R*-tree.
  size_t ChooseSubtree(const Node& node, const HyperRect& rect,
                       bool children_are_leaves) const;

  // Writes updated child MBRs up the path.
  void PropagateMbrs(std::vector<PathStep>& path, const HyperRect& child_mbr);

  void CollectMatches(PageId pid, const HyperRect& range, bool containment,
                      const double* q, std::vector<Match>* out) const;

  void CollectLeafPages(PageId pid, const double* q, double radius_sq,
                        std::vector<Match>* out) const;

  void BranchAndBoundRec(PageId pid, const double* q, double* best_dist_sq,
                         KnnResult* best) const;

  // Condensation helper for Delete.
  struct Orphan {
    Entry entry;
    size_t level;
  };
  bool DeleteRec(PageId pid, size_t level, const HyperRect& rect, uint64_t id,
                 std::vector<PathStep>& path);

  void InfoRec(PageId pid, size_t level, TreeInfo* info) const;
  std::string ValidateRec(PageId pid, size_t level, const HyperRect* expected,
                          size_t* entry_count,
                          std::unordered_set<PageId>* reachable) const;

  BufferPool* pool_;
  TreeOptions options_;
  NodeStore store_;
  PageId root_;
  size_t height_ = 1;  // 1 == root is a leaf
  size_t size_ = 0;
  size_t min_fill_leaf_;
  size_t min_fill_internal_;
  std::vector<bool> reinserted_;  // per level, during one Insert
};

}  // namespace nncell

#endif  // NNCELL_RSTAR_RTREE_CORE_H_
