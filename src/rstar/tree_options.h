#ifndef NNCELL_RSTAR_TREE_OPTIONS_H_
#define NNCELL_RSTAR_TREE_OPTIONS_H_

#include <cstddef>

namespace nncell {

// Shared configuration of the page-based spatial trees (R*-tree, X-tree).
struct TreeOptions {
  // Dimensionality of indexed rectangles.
  size_t dim = 2;

  // Number of payload doubles stored with every leaf entry (e.g. the owner
  // point of an NN-cell approximation). Internal entries carry none.
  size_t aux_per_entry = 0;

  // R*-tree minimum fill as a fraction of single-page capacity.
  double min_fill = 0.4;

  // R* forced-reinsert fraction (the paper's p = 30%).
  double reinsert_fraction = 0.3;
  // Forced reinsert can be disabled (plain R-tree-ish behaviour).
  bool enable_reinsert = true;

  // ----- X-tree specific -----
  // Maximum tolerated directory split overlap before the overlap-minimal
  // split / supernode machinery kicks in (X-tree paper: MAX_OVERLAP = 20%).
  double max_overlap = 0.2;
  // Upper bound on supernode size, in pages.
  size_t max_supernode_pages = 32;
};

}  // namespace nncell

#endif  // NNCELL_RSTAR_TREE_OPTIONS_H_
