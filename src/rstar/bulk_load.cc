#include "rstar/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nncell {

namespace {

// Splits [begin, end) of `entries` into `parts` nearly equal consecutive
// ranges and invokes fn(range_begin, range_end) on each.
template <typename Fn>
void ForEqualRanges(size_t begin, size_t end, size_t parts, Fn&& fn) {
  size_t n = end - begin;
  size_t base = n / parts;
  size_t extra = n % parts;
  size_t pos = begin;
  for (size_t i = 0; i < parts; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    if (len == 0) continue;
    fn(pos, pos + len);
    pos += len;
  }
  NNCELL_DCHECK(pos == end);
}

void StrRec(std::vector<Entry>& entries, size_t begin, size_t end,
            size_t dim_index, size_t dim, size_t capacity,
            std::vector<std::vector<Entry>>* groups) {
  size_t n = end - begin;
  if (n <= capacity) {
    std::vector<Entry> group;
    group.reserve(n);
    for (size_t i = begin; i < end; ++i) group.push_back(std::move(entries[i]));
    groups->push_back(std::move(group));
    return;
  }
  size_t num_groups = (n + capacity - 1) / capacity;
  std::sort(entries.begin() + begin, entries.begin() + end,
            [dim_index](const Entry& a, const Entry& b) {
              return a.rect.lo(dim_index) + a.rect.hi(dim_index) <
                     b.rect.lo(dim_index) + b.rect.hi(dim_index);
            });
  if (dim_index + 1 >= dim) {
    // Last dimension: chunk into balanced runs of <= capacity.
    ForEqualRanges(begin, end, num_groups, [&](size_t lo, size_t hi) {
      std::vector<Entry> group;
      group.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) group.push_back(std::move(entries[i]));
      groups->push_back(std::move(group));
    });
    return;
  }
  // Number of slabs along this dimension: P^(1/dims_remaining).
  size_t dims_remaining = dim - dim_index;
  size_t slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(num_groups),
               1.0 / static_cast<double>(dims_remaining))));
  slabs = std::max<size_t>(1, std::min(slabs, num_groups));
  ForEqualRanges(begin, end, slabs, [&](size_t lo, size_t hi) {
    StrRec(entries, lo, hi, dim_index + 1, dim, capacity, groups);
  });
}

}  // namespace

std::vector<std::vector<Entry>> StrPartition(std::vector<Entry> entries,
                                             size_t capacity, size_t dim) {
  NNCELL_CHECK(capacity >= 1);
  std::vector<std::vector<Entry>> groups;
  if (entries.empty()) return groups;
  groups.reserve(entries.size() / capacity + 1);
  StrRec(entries, 0, entries.size(), 0, dim, capacity, &groups);
  return groups;
}

}  // namespace nncell
