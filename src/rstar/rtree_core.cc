#include "rstar/rtree_core.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

#include "common/distance.h"
#include "common/kernels/kernels.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "rstar/bulk_load.h"
#include "rstar/split.h"

namespace nncell {

namespace {

// Registry handles for the directory-traversal counters (aggregated over
// every tree in the process: cell index, point index, baselines).
struct TreeMetrics {
  metrics::Counter* node_visits;
  metrics::Counter* leaf_visits;
  metrics::Counter* node_splits;
};

[[maybe_unused]] const TreeMetrics& Metrics() {
  static const TreeMetrics m = {
      metrics::Registry::Global().counter(metrics::kIndexNodeVisits),
      metrics::Registry::Global().counter(metrics::kIndexLeafVisits),
      metrics::Registry::Global().counter(metrics::kIndexNodeSplits),
  };
  return m;
}

}  // namespace

RTreeCore::RTreeCore(BufferPool* pool, TreeOptions options)
    : pool_(pool), options_(options),
      store_(pool, options.dim, options.aux_per_entry) {
  NNCELL_CHECK(options_.min_fill > 0.0 && options_.min_fill <= 0.5);
  min_fill_leaf_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_fill *
                             static_cast<double>(store_.Capacity(true, 1))));
  min_fill_internal_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_fill *
                             static_cast<double>(store_.Capacity(false, 1))));
  root_ = store_.AllocateNode();
  Node root;
  root.is_leaf = true;
  store_.Write(root_, &root);
}

size_t RTreeCore::MaxEntries(const Node& node) const {
  return store_.Capacity(node.is_leaf, 1);
}

std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>>
RTreeCore::SplitNode(const Node& node) {
  return RStarSplit(node.entries, options_.dim, MinFill(node.is_leaf));
}

void RTreeCore::Insert(const HyperRect& rect, uint64_t id, const double* aux) {
  NNCELL_CHECK(rect.dim() == options_.dim);
  Entry e;
  e.rect = rect;
  e.id = id;
  if (options_.aux_per_entry > 0) {
    NNCELL_CHECK_MSG(aux != nullptr, "entry payload required");
    e.aux.assign(aux, aux + options_.aux_per_entry);
  }
  reinserted_.assign(height_ + 1, false);
  InsertEntry(std::move(e), 0);
  ++size_;
}

void RTreeCore::BulkLoad(std::vector<Entry> entries) {
  NNCELL_CHECK_MSG(size_ == 0 && height_ == 1, "BulkLoad needs an empty tree");
  if (entries.empty()) return;
  size_ = entries.size();

  bool is_leaf = true;
  size_t levels = 1;
  std::vector<Entry> level = std::move(entries);
  while (true) {
    size_t capacity = store_.Capacity(is_leaf, 1);
    if (level.size() <= capacity) {
      // This level fits into the (pre-allocated) root page.
      Node root;
      root.is_leaf = is_leaf;
      root.entries = std::move(level);
      store_.Write(root_, &root);
      height_ = levels;
      return;
    }
    std::vector<std::vector<Entry>> groups =
        StrPartition(std::move(level), capacity, options_.dim);
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (auto& group : groups) {
      PageId pid = store_.AllocateNode();
      Node node;
      node.is_leaf = is_leaf;
      node.entries = std::move(group);
      store_.Write(pid, &node);
      Entry parent;
      parent.rect = node.ComputeMbr(options_.dim);
      parent.id = pid;
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
    is_leaf = false;
    ++levels;
  }
}

size_t RTreeCore::ChooseSubtree(const Node& node, const HyperRect& rect,
                                bool children_are_leaves) const {
  const size_t n = node.entries.size();
  NNCELL_CHECK(n > 0);
  size_t best = 0;
  if (children_are_leaves) {
    // Minimal overlap enlargement (ties: area enlargement, then area).
    // The full scan is O(n^2) overlap computations; on X-tree supernodes
    // (n in the hundreds) that dominates bulk builds, so for large nodes
    // only the kOverlapCandidates entries of least area enlargement enter
    // the overlap test -- the optimization proposed with the original
    // R*-tree -- each still scored against every sibling.
    constexpr size_t kOverlapCandidates = 32;
    std::vector<size_t> order;
    order.reserve(n);
    for (size_t i = 0; i < n; ++i) order.push_back(i);
    size_t considered = n;
    if (n > kOverlapCandidates) {
      considered = kOverlapCandidates;
      std::partial_sort(order.begin(), order.begin() + considered,
                        order.end(), [&](size_t a, size_t b) {
                          double ea = node.entries[a].rect.Enlargement(rect);
                          double eb = node.entries[b].rect.Enlargement(rect);
                          if (ea != eb) return ea < eb;
                          double va = node.entries[a].rect.Volume();
                          double vb = node.entries[b].rect.Volume();
                          if (va != vb) return va < vb;
                          return a < b;  // deterministic tie-break
                        });
    }
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = best_overlap, best_area = best_overlap;
    best = order[0];
    for (size_t oi = 0; oi < considered; ++oi) {
      const size_t i = order[oi];
      HyperRect enlarged = HyperRect::Union(node.entries[i].rect, rect);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        overlap_delta +=
            HyperRect::OverlapVolume(enlarged, node.entries[j].rect) -
            HyperRect::OverlapVolume(node.entries[i].rect,
                                     node.entries[j].rect);
      }
      double enlarge = node.entries[i].rect.Enlargement(rect);
      double area = node.entries[i].rect.Volume();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
        best = i;
      }
    }
  } else {
    // Minimal area enlargement (ties: area).
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = best_enlarge;
    for (size_t i = 0; i < n; ++i) {
      double enlarge = node.entries[i].rect.Enlargement(rect);
      double area = node.entries[i].rect.Volume();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best_enlarge = enlarge;
        best_area = area;
        best = i;
      }
    }
  }
  return best;
}

void RTreeCore::PropagateMbrs(std::vector<PathStep>& path,
                              const HyperRect& child_mbr) {
  HyperRect mbr = child_mbr;
  for (size_t i = path.size(); i-- > 0;) {
    PathStep& step = path[i];
    step.node.entries[step.child_idx].rect = mbr;
    store_.Write(step.pid, &step.node);
    mbr = step.node.ComputeMbr(options_.dim);
  }
}

void RTreeCore::InsertEntry(Entry entry, size_t target_level) {
  // Descend to the target level, remembering the path.
  std::vector<PathStep> path;
  PageId pid = root_;
  size_t level = height_ - 1;
  while (level > target_level) {
    Node node = store_.Read(pid);
    NNCELL_CHECK(!node.is_leaf);
    size_t child = ChooseSubtree(node, entry.rect,
                                 /*children_are_leaves=*/level == 1);
    PageId next = static_cast<PageId>(node.entries[child].id);
    path.push_back(PathStep{pid, std::move(node), child});
    pid = next;
    --level;
  }

  Node node = store_.Read(pid);
  node.entries.push_back(std::move(entry));

  while (true) {
    if (node.entries.size() <= MaxEntries(node)) {
      store_.Write(pid, &node);
      PropagateMbrs(path, node.ComputeMbr(options_.dim));
      return;
    }

    const bool is_root = path.empty();

    // R* forced reinsert: once per level per top-level insert.
    if (!is_root && options_.enable_reinsert && level < reinserted_.size() &&
        !reinserted_[level]) {
      reinserted_[level] = true;
      // Sort by distance of entry center to node center, farthest first.
      std::vector<double> center = node.ComputeMbr(options_.dim).Center();
      std::vector<std::pair<double, size_t>> order(node.entries.size());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        std::vector<double> ec = node.entries[i].rect.Center();
        order[i] = {L2DistSq(ec, center), i};
      }
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      size_t p = std::max<size_t>(
          1, static_cast<size_t>(options_.reinsert_fraction *
                                 static_cast<double>(node.entries.size())));
      p = std::min(p, node.entries.size() - MinFill(node.is_leaf));
      std::vector<Entry> removed;
      std::vector<bool> take(node.entries.size(), false);
      for (size_t i = 0; i < p; ++i) take[order[i].second] = true;
      std::vector<Entry> kept;
      kept.reserve(node.entries.size() - p);
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (take[i]) {
          removed.push_back(std::move(node.entries[i]));
        } else {
          kept.push_back(std::move(node.entries[i]));
        }
      }
      node.entries = std::move(kept);
      store_.Write(pid, &node);
      PropagateMbrs(path, node.ComputeMbr(options_.dim));
      // Close reinsert: nearest first.
      std::reverse(removed.begin(), removed.end());
      for (Entry& r : removed) InsertEntry(std::move(r), level);
      return;
    }

    auto split = SplitNode(node);
    if (!split.has_value()) {
      // Supernode decision (X-tree): keep the node whole; Write grows its
      // page chain as needed.
      store_.Write(pid, &node);
      PropagateMbrs(path, node.ComputeMbr(options_.dim));
      return;
    }
    NNCELL_METRIC_COUNT(Metrics().node_splits, 1);

    Node left;
    left.is_leaf = node.is_leaf;
    left.extra_pages = node.extra_pages;  // Write shrinks the chain
    left.entries = std::move(split->first);
    Node right;
    right.is_leaf = node.is_leaf;
    right.entries = std::move(split->second);

    PageId right_pid = store_.AllocateNode();
    store_.Write(pid, &left);
    store_.Write(right_pid, &right);
    HyperRect left_mbr = left.ComputeMbr(options_.dim);
    HyperRect right_mbr = right.ComputeMbr(options_.dim);

    if (is_root) {
      Node new_root;
      new_root.is_leaf = false;
      Entry le;
      le.rect = left_mbr;
      le.id = pid;
      Entry re;
      re.rect = right_mbr;
      re.id = right_pid;
      new_root.entries.push_back(std::move(le));
      new_root.entries.push_back(std::move(re));
      root_ = store_.AllocateNode();
      store_.Write(root_, &new_root);
      ++height_;
      return;
    }

    // Replace the child entry in the parent and add the new sibling; the
    // parent may now overflow, so loop continues one level up.
    PathStep parent = std::move(path.back());
    path.pop_back();
    parent.node.entries[parent.child_idx].rect = left_mbr;
    Entry sibling;
    sibling.rect = right_mbr;
    sibling.id = right_pid;
    parent.node.entries.push_back(std::move(sibling));
    node = std::move(parent.node);
    pid = parent.pid;
    ++level;
  }
}

std::vector<RTreeCore::Match> RTreeCore::PointQuery(const double* q) const {
  std::vector<Match> out;
  HyperRect dummy = HyperRect::Empty(options_.dim);
  CollectMatches(root_, dummy, /*containment=*/true, q, &out);
  return out;
}

std::vector<RTreeCore::Match> RTreeCore::RangeQuery(
    const HyperRect& range) const {
  NNCELL_CHECK(range.dim() == options_.dim);
  std::vector<Match> out;
  CollectMatches(root_, range, /*containment=*/false, nullptr, &out);
  return out;
}

void RTreeCore::CollectMatches(PageId pid, const HyperRect& range,
                               bool containment, const double* q,
                               std::vector<Match>* out) const {
  const size_t d = options_.dim;
  const size_t aux = options_.aux_per_entry;
  std::vector<PageId> stack = {pid};
  while (!stack.empty()) {
    PageId cur = stack.back();
    stack.pop_back();
    bool visited_leaf = store_.VisitNode(cur, [&](const EntryView& e,
                                                  bool is_leaf) {
      bool hit = containment
                     ? RawContainsPoint(e.lo, e.hi, q, d)
                     : RawIntersects(e.lo, e.hi, range.lo().data(),
                                     range.hi().data(), d);
      if (!hit) return;
      if (is_leaf) {
        Match m;
        m.rect = HyperRect(std::vector<double>(e.lo, e.lo + d),
                           std::vector<double>(e.hi, e.hi + d));
        m.id = e.id;
        if (e.aux != nullptr) m.aux.assign(e.aux, e.aux + aux);
        out->push_back(std::move(m));
      } else {
        stack.push_back(static_cast<PageId>(e.id));
      }
    });
    NNCELL_METRIC_COUNT(Metrics().node_visits, 1);
    if (visited_leaf) NNCELL_METRIC_COUNT(Metrics().leaf_visits, 1);
  }
}

std::vector<RTreeCore::Match> RTreeCore::LeafPageQuery(const double* q) const {
  std::vector<Match> out;
  CollectLeafPages(root_, q, 0.0, &out);
  return out;
}

std::vector<RTreeCore::Match> RTreeCore::LeafPageSphereQuery(
    const double* q, double radius) const {
  std::vector<Match> out;
  CollectLeafPages(root_, q, radius * radius, &out);
  return out;
}

void RTreeCore::CollectLeafPages(PageId pid, const double* q, double radius_sq,
                                 std::vector<Match>* out) const {
  const size_t d = options_.dim;
  const size_t aux = options_.aux_per_entry;
  std::vector<PageId> stack = {pid};
  while (!stack.empty()) {
    PageId cur = stack.back();
    stack.pop_back();
    HyperRect root_mbr = HyperRect::Empty(d);
    bool is_leaf = store_.VisitNode(cur, [&](const EntryView& e,
                                             bool leaf) {
      if (leaf) {
        if (cur == root_) {
          // Root leaf has no parent region; accumulate its MBR to test it.
          root_mbr.ExpandToPoint(e.lo);
          root_mbr.ExpandToPoint(e.hi);
        }
        // The parent region qualified: take everything on this page.
        Match m;
        m.rect = HyperRect(std::vector<double>(e.lo, e.lo + d),
                           std::vector<double>(e.hi, e.hi + d));
        m.id = e.id;
        if (e.aux != nullptr) m.aux.assign(e.aux, e.aux + aux);
        out->push_back(std::move(m));
      } else if (RawMinDistSq(e.lo, e.hi, q, d) <= radius_sq) {
        stack.push_back(static_cast<PageId>(e.id));
      }
    });
    NNCELL_METRIC_COUNT(Metrics().node_visits, 1);
    if (is_leaf) NNCELL_METRIC_COUNT(Metrics().leaf_visits, 1);
    if (is_leaf && cur == root_ && !root_mbr.IsEmpty() &&
        root_mbr.MinDistSq(q) > radius_sq) {
      out->clear();  // the sole (root) page does not qualify after all
    }
  }
}

std::vector<RTreeCore::KnnResult> RTreeCore::KnnQuery(const double* q,
                                                      size_t k) const {
  // Best-first search [HS 95]: a min-heap over MINDIST of nodes and entry
  // rectangles; popped leaf entries are final results.
  struct HeapItem {
    double dist_sq;
    bool is_node;
    PageId pid;          // when is_node
    size_t result_idx;   // when !is_node, index into pending results
  };
  struct Cmp {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.dist_sq > b.dist_sq;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, Cmp> heap;
  std::vector<KnnResult> pending;  // leaf entries seen so far
  std::vector<KnnResult> results;
  if (k == 0 || size_ == 0) return results;

  const size_t d = options_.dim;
  const size_t aux = options_.aux_per_entry;
  heap.push(HeapItem{0.0, true, root_, 0});
  while (!heap.empty() && results.size() < k) {
    HeapItem item = heap.top();
    heap.pop();
    if (item.is_node) {
      store_.VisitNode(item.pid, [&](const EntryView& e, bool is_leaf) {
        double dist_sq = RawMinDistSq(e.lo, e.hi, q, d);
        if (is_leaf) {
          KnnResult r;
          r.id = e.id;
          r.dist = std::sqrt(dist_sq);
          r.rect = HyperRect(std::vector<double>(e.lo, e.lo + d),
                             std::vector<double>(e.hi, e.hi + d));
          if (e.aux != nullptr) r.aux.assign(e.aux, e.aux + aux);
          pending.push_back(std::move(r));
          heap.push(HeapItem{dist_sq, false, 0, pending.size() - 1});
        } else {
          heap.push(HeapItem{dist_sq, true, static_cast<PageId>(e.id), 0});
        }
      });
    } else {
      results.push_back(pending[item.result_idx]);
    }
  }
  return results;
}

RTreeCore::ApproxNnResult RTreeCore::ApproxNnQuery(
    const double* q, size_t k, double epsilon,
    uint64_t max_leaf_visits) const {
  ApproxNnResult out;
  if (k == 0 || size_ == 0) return out;
  const size_t d = options_.dim;
  const double slack_sq = (1.0 + epsilon) * (1.0 + epsilon);

  // Frontier of unexplored subtrees, nearest MINDIST first.
  struct NodeItem {
    double dist_sq;
    PageId pid;
  };
  struct NodeCmp {
    bool operator()(const NodeItem& a, const NodeItem& b) const {
      return a.dist_sq > b.dist_sq;
    }
  };
  std::priority_queue<NodeItem, std::vector<NodeItem>, NodeCmp> nodes;

  // Current k best entries as a max-heap on (dist_sq, id): the root is the
  // entry an improvement evicts, so at equal distance the larger id goes
  // first and the surviving set matches the exact scan's smaller-id-wins
  // tie-break.
  using Hit = ApproxNnResult::Hit;
  std::vector<Hit> best;
  best.reserve(k);
  auto closer = [](const Hit& a, const Hit& b) {
    return a.dist_sq < b.dist_sq || (a.dist_sq == b.dist_sq && a.id < b.id);
  };

  nodes.push(NodeItem{0.0, root_});
  bool exhausted = false;
  while (true) {
    if (nodes.empty()) {
      exhausted = true;
      break;
    }
    const NodeItem top = nodes.top();
    if (best.size() == k) {
      const double kth = best.front().dist_sq;
      if (kth <= top.dist_sq) {
        // Proven exact: no unexplored subtree can improve or tie-break in.
        out.bound_sq = top.dist_sq;
        break;
      }
      if (kth <= slack_sq * top.dist_sq) {
        // Certified: the k-th best is within (1+epsilon) of everything the
        // search would still look at.
        out.bound_sq = top.dist_sq;
        out.terminated_early = true;
        break;
      }
    }
    nodes.pop();
    bool is_leaf =
        store_.VisitNode(top.pid, [&](const EntryView& e, bool leaf) {
          double dist_sq = RawMinDistSq(e.lo, e.hi, q, d);
          if (leaf) {
            ++out.entries_scanned;
            Hit h{e.id, dist_sq};
            if (best.size() < k) {
              best.push_back(h);
              std::push_heap(best.begin(), best.end(), closer);
            } else if (closer(h, best.front())) {
              std::pop_heap(best.begin(), best.end(), closer);
              best.back() = h;
              std::push_heap(best.begin(), best.end(), closer);
            }
          } else if (best.size() < k || dist_sq <= best.front().dist_sq) {
            // Keep subtrees at exactly the k-th distance: they may hold an
            // equal-distance entry with a smaller id.
            nodes.push(NodeItem{dist_sq, static_cast<PageId>(e.id)});
          }
        });
    NNCELL_METRIC_COUNT(Metrics().node_visits, 1);
    if (is_leaf) {
      NNCELL_METRIC_COUNT(Metrics().leaf_visits, 1);
      ++out.leaf_visits;
      if (max_leaf_visits != 0 && out.leaf_visits >= max_leaf_visits &&
          !nodes.empty()) {
        out.bound_sq = nodes.top().dist_sq;
        out.truncated = true;
        break;
      }
    }
  }
  if (exhausted && !best.empty()) {
    // Every entry was scored or pruned against a k-th best no larger than
    // the final one, so the k-th best distance bounds the pruned remainder.
    out.bound_sq = best.front().dist_sq;
  }
  std::sort(best.begin(), best.end(), closer);
  out.hits = std::move(best);
  return out;
}

std::optional<RTreeCore::KnnResult> RTreeCore::NnBranchAndBound(
    const double* q) const {
  if (size_ == 0) return std::nullopt;
  KnnResult best;
  double best_dist_sq = std::numeric_limits<double>::infinity();
  BranchAndBoundRec(root_, q, &best_dist_sq, &best);
  best.dist = std::sqrt(best_dist_sq);
  return best;
}

void RTreeCore::BranchAndBoundRec(PageId pid, const double* q,
                                  double* best_dist_sq,
                                  KnnResult* best) const {
  const size_t dim = options_.dim;
  const size_t aux = options_.aux_per_entry;
  // Generate the active branch list: MINDIST and MINMAXDIST per child.
  // Internal bounds are staged into a flat scratch copy (EntryView
  // pointers die with the visit) and scored four children per call
  // through the batched MBR kernels — bit-equal to the per-rect path.
  struct Branch {
    double min_dist;
    double min_max_dist;
    PageId child;
  };
  std::vector<Branch> branches;
  std::vector<double> bounds;  // lo|hi pairs, 2*dim doubles per child
  bool is_leaf = store_.VisitNode(pid, [&](const EntryView& e, bool leaf) {
    if (leaf) {
      double d = RawMinDistSq(e.lo, e.hi, q, dim);
      if (d < *best_dist_sq) {
        *best_dist_sq = d;
        best->id = e.id;
        best->rect = HyperRect(std::vector<double>(e.lo, e.lo + dim),
                               std::vector<double>(e.hi, e.hi + dim));
        if (e.aux != nullptr) best->aux.assign(e.aux, e.aux + aux);
      }
    } else {
      bounds.insert(bounds.end(), e.lo, e.lo + dim);
      bounds.insert(bounds.end(), e.hi, e.hi + dim);
      branches.push_back(Branch{0.0, 0.0, static_cast<PageId>(e.id)});
    }
  });
  if (is_leaf) return;
  double best_min_max = std::numeric_limits<double>::infinity();
  {
    const size_t n = branches.size();
    const double* lo4[4];
    const double* hi4[4];
    double dmin[4];
    double dmax[4];
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      for (size_t t = 0; t < 4; ++t) {
        lo4[t] = bounds.data() + (j + t) * 2 * dim;
        hi4[t] = lo4[t] + dim;
      }
      kernels::MinDistSqBatch4(lo4, hi4, q, dim, dmin);
      kernels::MinMaxDistSqBatch4(lo4, hi4, q, dim, dmax);
      for (size_t t = 0; t < 4; ++t) {
        branches[j + t].min_dist = dmin[t];
        branches[j + t].min_max_dist = dmax[t];
      }
    }
    for (; j < n; ++j) {
      const double* lo = bounds.data() + j * 2 * dim;
      branches[j].min_dist = RawMinDistSq(lo, lo + dim, q, dim);
      branches[j].min_max_dist = RawMinMaxDistSq(lo, lo + dim, q, dim);
    }
    for (const Branch& b : branches) {
      best_min_max = std::min(best_min_max, b.min_max_dist);
    }
  }
  std::sort(branches.begin(), branches.end(),
            [](const Branch& a, const Branch& b) {
              return a.min_dist < b.min_dist;
            });
  // Downward pruning [RKV 95]: an MBR whose MINDIST exceeds the smallest
  // sibling MINMAXDIST cannot contain the NN; also prune against the best
  // distance found so far (upward pruning) before each descent.
  for (const Branch& b : branches) {
    if (b.min_dist > best_min_max) continue;
    if (b.min_dist > *best_dist_sq) continue;
    BranchAndBoundRec(b.child, q, best_dist_sq, best);
  }
}

bool RTreeCore::Delete(const HyperRect& rect, uint64_t id) {
  std::vector<PathStep> path;
  if (!DeleteRec(root_, height_ - 1, rect, id, path)) return false;
  --size_;
  return true;
}

bool RTreeCore::DeleteRec(PageId pid, size_t level, const HyperRect& rect,
                          uint64_t id, std::vector<PathStep>& path) {
  Node node = store_.Read(pid);
  if (node.is_leaf) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id != id || !(node.entries[i].rect == rect)) continue;
      node.entries.erase(node.entries.begin() + i);

      // Condense: walk up, removing underfull nodes and collecting orphans.
      std::vector<Orphan> orphans;
      PageId cur_pid = pid;
      Node cur = std::move(node);
      size_t cur_level = 0;
      while (!path.empty()) {
        PathStep parent = std::move(path.back());
        path.pop_back();
        bool underfull = cur.page_span() == 1 &&
                         cur.entries.size() < MinFill(cur.is_leaf);
        if (underfull) {
          for (Entry& e : cur.entries) {
            orphans.push_back(Orphan{std::move(e), cur_level});
          }
          store_.Free(cur_pid, cur);
          parent.node.entries.erase(parent.node.entries.begin() +
                                    parent.child_idx);
        } else {
          store_.Write(cur_pid, &cur);
          parent.node.entries[parent.child_idx].rect =
              cur.ComputeMbr(options_.dim);
        }
        cur_pid = parent.pid;
        cur = std::move(parent.node);
        ++cur_level;
      }
      // cur is now the root.
      store_.Write(cur_pid, &cur);

      // Shrink the root while it is an internal node with a single child.
      while (height_ > 1) {
        Node root = store_.Read(root_);
        if (root.is_leaf || root.entries.size() != 1) break;
        PageId child = static_cast<PageId>(root.entries[0].id);
        store_.Free(root_, root);
        root_ = child;
        --height_;
      }

      // Reinsert orphans at their original levels.
      for (Orphan& o : orphans) {
        reinserted_.assign(height_ + 1, true);  // no forced reinsert here
        size_t lvl = std::min(o.level, height_ - 1);
        InsertEntry(std::move(o.entry), lvl);
      }
      return true;
    }
    return false;
  }

  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].rect.ContainsRect(rect)) continue;
    PageId child = static_cast<PageId>(node.entries[i].id);
    path.push_back(PathStep{pid, node, i});
    if (DeleteRec(child, level - 1, rect, id, path)) return true;
    path.pop_back();
  }
  return false;
}

void RTreeCore::InfoRec(PageId pid, size_t level, TreeInfo* info) const {
  Node node = store_.Read(pid);
  ++info->num_nodes;
  info->total_pages += node.page_span();
  if (node.page_span() > 1) ++info->num_supernodes;
  if (node.is_leaf) {
    ++info->num_leaves;
    info->size += node.entries.size();
    return;
  }
  for (const Entry& e : node.entries) {
    InfoRec(static_cast<PageId>(e.id), level - 1, info);
  }
}

RTreeCore::TreeInfo RTreeCore::Info() const {
  TreeInfo info;
  info.height = height_;
  InfoRec(root_, height_ - 1, &info);
  return info;
}

std::string RTreeCore::ValidateNode(const Node& node, PageId pid,
                                    bool /*is_root*/) const {
  // The base engine splits every overflow, so nodes span exactly one page.
  if (node.page_span() != 1) {
    std::ostringstream err;
    err << "node " << pid << ": unexpected supernode (spans "
        << node.page_span() << " pages) in a plain R*-tree";
    return err.str();
  }
  return "";
}

std::string RTreeCore::ValidateRec(PageId pid, size_t level,
                                   const HyperRect* expected,
                                   size_t* entry_count,
                                   std::unordered_set<PageId>* reachable) const {
  Node node = store_.Read(pid);
  std::ostringstream err;
  if (!reachable->insert(pid).second) {
    err << "page " << pid << ": referenced by more than one parent";
    return err.str();
  }
  for (PageId extra : node.extra_pages) {
    if (extra == kInvalidPageId) {
      err << "node " << pid << ": invalid overflow page id";
      return err.str();
    }
    if (!reachable->insert(extra).second) {
      err << "overflow page " << extra << " of node " << pid
          << ": referenced more than once";
      return err.str();
    }
  }
  if (node.is_leaf != (level == 0)) {
    err << "node " << pid << ": leaf flag inconsistent with level " << level;
    return err.str();
  }
  // The store grows/shrinks a node's page chain to exactly fit its entry
  // count on every Write; a mismatch means a stale or corrupt header.
  if (node.page_span() != store_.PagesNeeded(node.is_leaf,
                                             node.entries.size())) {
    err << "node " << pid << ": spans " << node.page_span()
        << " pages but its " << node.entries.size() << " entries need "
        << store_.PagesNeeded(node.is_leaf, node.entries.size());
    return err.str();
  }
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& e = node.entries[i];
    if (e.rect.dim() != options_.dim) {
      err << "node " << pid << " entry " << i << ": dimension "
          << e.rect.dim() << " != " << options_.dim;
      return err.str();
    }
    std::string rect_err = e.rect.CheckWellFormed();
    if (!rect_err.empty()) {
      err << "node " << pid << " entry " << i << ": " << rect_err;
      return err.str();
    }
    if (!node.is_leaf && e.aux.size() != 0) {
      err << "node " << pid << " entry " << i << ": internal entry with aux";
      return err.str();
    }
  }
  std::string node_err = ValidateNode(node, pid, expected == nullptr);
  if (!node_err.empty()) return node_err;
  if (expected != nullptr) {
    HyperRect mbr = node.ComputeMbr(options_.dim);
    for (size_t i = 0; i < options_.dim; ++i) {
      if (std::abs(mbr.lo(i) - expected->lo(i)) > 1e-9 ||
          std::abs(mbr.hi(i) - expected->hi(i)) > 1e-9) {
        err << "node " << pid << ": parent MBR mismatch";
        return err.str();
      }
    }
    // Non-root single-page nodes respect the minimum fill.
    if (node.page_span() == 1 && node.entries.size() < MinFill(node.is_leaf)) {
      err << "node " << pid << ": underfull (" << node.entries.size() << ")";
      return err.str();
    }
  }
  if (node.entries.size() > store_.Capacity(node.is_leaf, node.page_span())) {
    err << "node " << pid << ": overfull";
    return err.str();
  }
  if (node.is_leaf) {
    *entry_count += node.entries.size();
    return "";
  }
  for (const Entry& e : node.entries) {
    std::string child_err = ValidateRec(static_cast<PageId>(e.id), level - 1,
                                        &e.rect, entry_count, reachable);
    if (!child_err.empty()) return child_err;
  }
  return "";
}

std::string RTreeCore::Validate() const {
  size_t entry_count = 0;
  std::unordered_set<PageId> reachable;
  std::string err =
      ValidateRec(root_, height_ - 1, nullptr, &entry_count, &reachable);
  if (!err.empty()) return err;
  if (entry_count != size_) {
    std::ostringstream os;
    os << "entry count " << entry_count << " != size " << size_;
    return os.str();
  }

  // Page accounting: the tree owns its PageFile, so every allocated page
  // is either part of exactly one node or on the free list. Anything else
  // is an orphan (leak) or a double-free.
  const PageFile& file = *pool_->file();
  std::unordered_set<PageId> free_pages(file.free_pages().begin(),
                                        file.free_pages().end());
  if (free_pages.size() != file.num_free_pages()) {
    return "free list contains a page twice (double free)";
  }
  for (PageId pid : reachable) {
    if (static_cast<size_t>(pid) >= file.num_pages()) {
      std::ostringstream os;
      os << "node references page " << pid << " past the end of the file";
      return os.str();
    }
    if (free_pages.count(pid) != 0) {
      std::ostringstream os;
      os << "page " << pid << " is both reachable and on the free list";
      return os.str();
    }
  }
  if (reachable.size() + free_pages.size() != file.num_pages()) {
    std::ostringstream os;
    os << "orphan pages: " << file.num_pages() << " allocated, "
       << reachable.size() << " reachable + " << free_pages.size() << " free";
    return os.str();
  }
  return "";
}

}  // namespace nncell
