#ifndef NNCELL_RSTAR_NODE_H_
#define NNCELL_RSTAR_NODE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/hyper_rect.h"
#include "storage/buffer_pool.h"

namespace nncell {

// One tree entry. In leaf nodes `id` is the caller's record id and `aux`
// carries aux_per_entry payload doubles; in directory nodes `id` is the
// child's first PageId and `aux` is empty.
struct Entry {
  HyperRect rect;
  uint64_t id = 0;
  std::vector<double> aux;
};

// Decoded node. A node's identity is its first page id; supernodes (X-tree)
// chain additional overflow pages whose ids are recorded in the first
// page's header, so the identity is stable while the node grows or shrinks.
struct Node {
  bool is_leaf = true;
  std::vector<PageId> extra_pages;  // supernode overflow pages
  std::vector<Entry> entries;

  size_t page_span() const { return 1 + extra_pages.size(); }

  // Tight bounding rectangle over all entries.
  HyperRect ComputeMbr(size_t dim) const {
    HyperRect r = HyperRect::Empty(dim);
    for (const Entry& e : entries) r.ExpandToRect(e.rect);
    return r;
  }
};

// Zero-copy view of one serialized entry; pointers reference the node-scan
// scratch buffer and are valid only inside the VisitNode callback.
struct EntryView {
  const double* lo;
  const double* hi;
  uint64_t id;
  const double* aux;  // nullptr for internal entries or aux_per_entry == 0
};

// Serializes nodes into pages through the buffer pool and computes entry
// capacities. Layout of a node occupying pages {p0, o1, ..., ok}:
//   p0: [u8 is_leaf][u8 pad][u16 num_entries][u32 num_extra]
//       [u32 overflow ids x num_extra][pad to 8B] [entry bytes ...]
//   oi: [entry bytes continued ...]
// Entries are fixed-size and 8-byte aligned within the assembled stream:
// 2*dim doubles (rect), u64 id, aux doubles.
class NodeStore {
 public:
  NodeStore(BufferPool* pool, size_t dim, size_t aux_per_entry);

  size_t dim() const { return dim_; }
  size_t aux_per_entry() const { return aux_; }

  size_t LeafEntryBytes() const;
  size_t InternalEntryBytes() const;

  // Entry capacity of a node that owns `pages` pages.
  size_t Capacity(bool is_leaf, size_t pages) const;

  // Minimum number of pages needed for n entries.
  size_t PagesNeeded(bool is_leaf, size_t n) const;

  // Allocates the first page of a fresh node.
  PageId AllocateNode();

  // Reads and decodes the node rooted at `id` (fetches every spanned page).
  Node Read(PageId id) const;

  // Encodes and writes the node; grows/shrinks its overflow chain to fit
  // the entry count (updates node->extra_pages).
  void Write(PageId id, Node* node);

  // Releases every page of the node.
  void Free(PageId id, const Node& node);

  // Allocation-free scan for the hot query paths: invokes
  // visit(EntryView, is_leaf) for every entry and returns whether the node
  // is a leaf. Reuses a thread-local scratch buffer, so within one thread
  // the callback must finish before the next VisitNode call (queries
  // therefore collect child page ids first and descend afterwards); any
  // number of threads may scan concurrently. The node's first page is
  // pinned for the duration of the scan, so neither a callback that
  // touches the buffer pool nor a concurrent reader's cache miss can
  // evict the frame the EntryView pointers reference.
  template <typename Fn>
  bool VisitNode(PageId id, Fn&& visit) const {
    PageGuard guard(pool_, id);
    const uint8_t* stream = AssembleNode(id);
    const bool is_leaf = stream[0] != 0;
    uint16_t num_entries;
    std::memcpy(&num_entries, stream + 2, sizeof(num_entries));
    uint32_t num_extra;
    std::memcpy(&num_extra, stream + 4, sizeof(num_extra));
    size_t offset = EntriesOffset(num_extra);
    const size_t stride =
        (is_leaf ? LeafEntryBytes() : InternalEntryBytes());
    const size_t d = dim_;
    for (uint16_t i = 0; i < num_entries; ++i, offset += stride) {
      EntryView view;
      view.lo = reinterpret_cast<const double*>(stream + offset);
      view.hi = view.lo + d;
      std::memcpy(&view.id, stream + offset + 2 * d * sizeof(double),
                  sizeof(view.id));
      view.aux = (is_leaf && aux_ > 0)
                     ? reinterpret_cast<const double*>(
                           stream + offset + 2 * d * sizeof(double) +
                           sizeof(uint64_t))
                     : nullptr;
      visit(view, is_leaf);
    }
    return is_leaf;
  }

 private:
  static size_t EntriesOffset(size_t num_extra) {
    return (8 + num_extra * sizeof(uint32_t) + 7) & ~size_t{7};
  }

  // Concatenates the node's pages into a thread-local scratch buffer (or
  // returns the cached frame directly for single-page nodes) and returns
  // the byte stream. The caller must hold a pin on `id`.
  const uint8_t* AssembleNode(PageId id) const;

  BufferPool* pool_;
  size_t dim_;
  size_t aux_;
  size_t page_size_;
};

}  // namespace nncell

#endif  // NNCELL_RSTAR_NODE_H_
