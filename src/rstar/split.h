#ifndef NNCELL_RSTAR_SPLIT_H_
#define NNCELL_RSTAR_SPLIT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "rstar/node.h"

namespace nncell {

// The R*-tree topological split [BKSS 90]:
//  1. ChooseSplitAxis: the axis minimizing the summed margin over all
//     candidate distributions (entries sorted by lower and by upper value).
//  2. ChooseSplitIndex: along that axis, the distribution with minimal
//     overlap between the two groups (ties: minimal summed area).
// Each group ends up with at least `min_fill` entries.
std::pair<std::vector<Entry>, std::vector<Entry>> RStarSplit(
    std::vector<Entry> entries, size_t dim, size_t min_fill);

// Shared helper: bounding rect of a contiguous range of entries.
HyperRect MbrOfRange(const std::vector<Entry>& entries, size_t begin,
                     size_t end, size_t dim);

}  // namespace nncell

#endif  // NNCELL_RSTAR_SPLIT_H_
