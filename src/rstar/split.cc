#include "rstar/split.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace nncell {

HyperRect MbrOfRange(const std::vector<Entry>& entries, size_t begin,
                     size_t end, size_t dim) {
  HyperRect r = HyperRect::Empty(dim);
  for (size_t i = begin; i < end; ++i) r.ExpandToRect(entries[i].rect);
  return r;
}

namespace {

// Sorts by (lo, hi) or (hi, lo) along `axis`.
void SortEntries(std::vector<Entry>& entries, size_t axis, bool by_lower) {
  std::stable_sort(entries.begin(), entries.end(),
                   [axis, by_lower](const Entry& a, const Entry& b) {
                     double ka = by_lower ? a.rect.lo(axis) : a.rect.hi(axis);
                     double kb = by_lower ? b.rect.lo(axis) : b.rect.hi(axis);
                     if (ka != kb) return ka < kb;
                     double sa = by_lower ? a.rect.hi(axis) : a.rect.lo(axis);
                     double sb = by_lower ? b.rect.hi(axis) : b.rect.lo(axis);
                     return sa < sb;
                   });
}

}  // namespace

std::pair<std::vector<Entry>, std::vector<Entry>> RStarSplit(
    std::vector<Entry> entries, size_t dim, size_t min_fill) {
  const size_t n = entries.size();
  NNCELL_CHECK(n >= 2);
  size_t m = std::min(min_fill, n / 2);
  m = std::max<size_t>(m, 1);

  // --- ChooseSplitAxis: minimize total margin over all distributions. ---
  size_t best_axis = 0;
  bool best_axis_by_lower = true;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (size_t axis = 0; axis < dim; ++axis) {
    for (bool by_lower : {true, false}) {
      SortEntries(entries, axis, by_lower);
      // Prefix / suffix MBRs for O(n) margin evaluation.
      std::vector<HyperRect> prefix(n), suffix(n);
      prefix[0] = entries[0].rect;
      for (size_t i = 1; i < n; ++i) {
        prefix[i] = HyperRect::Union(prefix[i - 1], entries[i].rect);
      }
      suffix[n - 1] = entries[n - 1].rect;
      for (size_t i = n - 1; i-- > 0;) {
        suffix[i] = HyperRect::Union(suffix[i + 1], entries[i].rect);
      }
      double margin_sum = 0.0;
      for (size_t k = m; k + m <= n; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_lower = by_lower;
      }
    }
  }

  // --- ChooseSplitIndex along the best axis. ---
  // Consider both sort orders on the chosen axis (the R* paper fixes the
  // axis by margin but evaluates distributions of both sortings).
  size_t best_split = m;
  bool best_by_lower = best_axis_by_lower;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (bool by_lower : {true, false}) {
    SortEntries(entries, best_axis, by_lower);
    std::vector<HyperRect> prefix(n), suffix(n);
    prefix[0] = entries[0].rect;
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = HyperRect::Union(prefix[i - 1], entries[i].rect);
    }
    suffix[n - 1] = entries[n - 1].rect;
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = HyperRect::Union(suffix[i + 1], entries[i].rect);
    }
    for (size_t k = m; k + m <= n; ++k) {
      double overlap = HyperRect::OverlapVolume(prefix[k - 1], suffix[k]);
      double area = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_split = k;
        best_by_lower = by_lower;
      }
    }
  }

  SortEntries(entries, best_axis, best_by_lower);
  std::vector<Entry> left(std::make_move_iterator(entries.begin()),
                          std::make_move_iterator(entries.begin() + best_split));
  std::vector<Entry> right(std::make_move_iterator(entries.begin() + best_split),
                           std::make_move_iterator(entries.end()));
  return {std::move(left), std::move(right)};
}

}  // namespace nncell
