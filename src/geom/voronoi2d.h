#ifndef NNCELL_GEOM_VORONOI2D_H_
#define NNCELL_GEOM_VORONOI2D_H_

#include <array>
#include <vector>

#include "common/hyper_rect.h"

namespace nncell {

// Exact 2-D NN-cells via half-plane polygon clipping. This is the test
// oracle for the LP-based high-dimensional approximator: in 2-D the MBR of
// the clipped polygon must coincide (within tolerance) with the LP result,
// and the polygon supports exact area/membership checks.

struct Polygon2D {
  std::vector<std::array<double, 2>> vertices;  // CCW

  bool IsEmpty() const { return vertices.size() < 3; }
  double Area() const;
  HyperRect Mbr() const;
  bool Contains(double x, double y, double eps = 1e-9) const;
};

// Clips `poly` by the half-plane a . x <= b (Sutherland-Hodgman).
Polygon2D ClipByHalfPlane(const Polygon2D& poly, const std::array<double, 2>& a,
                          double b);

// The NN-cell of `owner` against `others` inside `space` (a 2-D rectangle):
// intersection of the space with all bisector half-planes.
Polygon2D ComputeNNCell2D(const double* owner,
                          const std::vector<const double*>& others,
                          const HyperRect& space);

// Order-m Voronoi cell (Definition 1 of the paper): the region whose m
// nearest sites are exactly the set `subset` (indices into `sites`).
// x lies in the cell iff d(x, a) <= d(x, b) for every a in the subset and
// b outside it -- an intersection of |A| * (N - |A|) half-planes, clipped
// to `space`. Empty for most subsets; the non-empty ones tile the space.
Polygon2D ComputeOrderMCell2D(const std::vector<const double*>& sites,
                              const std::vector<size_t>& subset,
                              const HyperRect& space);

}  // namespace nncell

#endif  // NNCELL_GEOM_VORONOI2D_H_
