#include "geom/cell_approximator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "geom/bisector.h"
#include "lp/audit.h"

namespace nncell {

const char* ApproxAlgorithmName(ApproxAlgorithm a) {
  switch (a) {
    case ApproxAlgorithm::kCorrect: return "Correct";
    case ApproxAlgorithm::kPoint: return "Point";
    case ApproxAlgorithm::kSphere: return "Sphere";
    case ApproxAlgorithm::kNNDirection: return "NN-Direction";
  }
  return "?";
}

namespace {

// Per-thread pipeline scratch: the face-solve session (packed problem,
// solver workspace, warm chain, phase-I system), the pruner, and the
// objective vector. One high-water allocation per worker thread; warm
// state is reset per cell, so results stay a pure function of the cell.
struct ApproxScratch {
  FaceSolveSession session;
  BisectorPruner pruner;
  std::vector<double> c;
};

ApproxScratch& LocalScratch() {
  thread_local ApproxScratch scratch;
  return scratch;
}

// Registry handles for the LP pipeline. Every handle is resolved once; the
// hot loop batches its tallies locally and pushes one add per metric per
// MBR, so instrumentation cost stays independent of dim.
struct LpMetrics {
  metrics::Counter* runs;
  metrics::Counter* iterations;
  metrics::Counter* failures;
  metrics::Counter* rows_entered;
  metrics::Counter* rows_pruned;
  metrics::Counter* faces_skipped;
  metrics::Counter* faces_warm;
  metrics::Counter* faces_cold;
};

[[maybe_unused]] const LpMetrics& Metrics() {
  static const LpMetrics m = {
      metrics::Registry::Global().counter(metrics::kLpRuns),
      metrics::Registry::Global().counter(metrics::kLpIterations),
      metrics::Registry::Global().counter(metrics::kLpFailures),
      metrics::Registry::Global().counter(metrics::kLpConstraintRows),
      metrics::Registry::Global().counter(metrics::kLpPrunedRows),
      metrics::Registry::Global().counter(metrics::kLpFacesSkipped),
      metrics::Registry::Global().counter(metrics::kLpFacesWarm),
      metrics::Registry::Global().counter(metrics::kLpFacesCold),
  };
  return m;
}

}  // namespace

CellApproximator::CellApproximator(size_t dim, HyperRect space,
                                   LpOptions lp_opts,
                                   CellApproxOptions approx_opts)
    : dim_(dim),
      space_(std::move(space)),
      lp_opts_(lp_opts),
      approx_opts_(approx_opts) {
  NNCELL_CHECK(space_.dim() == dim_);
}

HyperRect CellApproximator::SolveFaces(FaceSolveSession& session,
                                       const LpProblem& problem,
                                       const std::vector<double>& start,
                                       ApproxStats* stats) const {
  HyperRect mbr = HyperRect::Empty(dim_);
  std::vector<double>& c = LocalScratch().c;
  c.assign(dim_, 0.0);
  // Local tallies; flushed to `stats` and the metrics registry once per MBR.
  uint64_t skipped = 0, warm = 0, cold = 0;
  uint64_t runs = 0, iterations = 0, failures = 0;
  auto count_face = [&](FaceSolveSession::FaceKind kind) {
    switch (kind) {
      case FaceSolveSession::FaceKind::kSkipped: ++skipped; break;
      case FaceSolveSession::FaceKind::kWarm: ++warm; break;
      case FaceSolveSession::FaceKind::kCold: ++cold; break;
    }
  };
  for (size_t i = 0; i < dim_; ++i) {
    c[i] = 1.0;
    LpResult up = session.SolveFace(problem, c, i, /*maximize=*/true, start);
    count_face(session.last_face_kind());
    LpResult dn = session.SolveFace(problem, c, i, /*maximize=*/false, start);
    count_face(session.last_face_kind());
    // Debug builds re-verify every face value independently (feasibility +
    // KKT); a wrong face only enlarges the MBR, which nothing downstream
    // would ever notice (Lemma 1) until it causes a false dismissal.
    NNCELL_DCHECK_OK(lp::AuditSolution(problem, c, up, lp::LpSense::kMaximize));
    NNCELL_DCHECK_OK(lp::AuditSolution(problem, c, dn, lp::LpSense::kMinimize));
    c[i] = 0.0;
    runs += 2;
    iterations += up.iterations + dn.iterations;
    if (up.status == LpStatus::kOptimal) {
      mbr.hi(i) = up.objective;
    } else {
      mbr.hi(i) = space_.hi(i);  // conservative fallback
      ++failures;
    }
    if (dn.status == LpStatus::kOptimal) {
      mbr.lo(i) = dn.objective;
    } else {
      mbr.lo(i) = space_.lo(i);
      ++failures;
    }
    // Guard against numerical inversion on degenerate (flat) cells.
    if (mbr.lo(i) > mbr.hi(i)) std::swap(mbr.lo(i), mbr.hi(i));
  }
  if (stats) {
    stats->skipped_faces += skipped;
    stats->warm_faces += warm;
    stats->cold_faces += cold;
    stats->lp_runs += runs;
    stats->lp_iterations += iterations;
    stats->lp_failures += failures;
  }
  NNCELL_METRIC_COUNT(Metrics().faces_skipped, skipped);
  NNCELL_METRIC_COUNT(Metrics().faces_warm, warm);
  NNCELL_METRIC_COUNT(Metrics().faces_cold, cold);
  NNCELL_METRIC_COUNT(Metrics().runs, runs);
  NNCELL_METRIC_COUNT(Metrics().iterations, iterations);
  NNCELL_METRIC_COUNT(Metrics().failures, failures);
  return mbr;
}

HyperRect CellApproximator::SolveMbr(const LpProblem& problem,
                                     const std::vector<double>& start,
                                     ApproxStats* stats) const {
  FaceSolveSession& session = LocalScratch().session;
  session.set_options(lp_opts_);
  session.BeginCell(approx_opts_.warm_start);
  session.PrepareFaces(problem, start);  // no-op when warm starts are off
  return SolveFaces(session, problem, start, stats);
}

HyperRect CellApproximator::ApproximateMbr(
    const double* owner, const std::vector<const double*>& candidates,
    ApproxStats* stats) const {
  ApproxScratch& sc = LocalScratch();
  LpProblem& problem = sc.session.problem();
  problem.Reset(dim_);
  size_t pruned = 0;
  if (approx_opts_.prune_bisectors) {
    pruned = sc.pruner.BuildPruned(owner, candidates, dim_, space_, &problem);
  } else {
    BuildCellProblemInto(owner, candidates, dim_, space_, &problem);
  }
  if (stats) {
    stats->constraint_rows += candidates.size() - pruned;
    stats->pruned_rows += pruned;
  }
  NNCELL_METRIC_COUNT(Metrics().rows_entered, candidates.size() - pruned);
  NNCELL_METRIC_COUNT(Metrics().rows_pruned, pruned);
  std::vector<double>& start = sc.session.start_buffer();
  start.assign(owner, owner + dim_);
  return SolveMbr(problem, start, stats);
}

HyperRect CellApproximator::ApproximateClippedMbr(
    const double* owner, const std::vector<const double*>& candidates,
    const HyperRect& clip, ApproxStats* stats) const {
  ApproxScratch& sc = LocalScratch();
  LpProblem& problem = sc.session.problem();
  problem.Reset(dim_);
  size_t pruned = 0;
  if (approx_opts_.prune_bisectors) {
    pruned = sc.pruner.BuildPruned(owner, candidates, dim_, space_, &problem,
                                   &clip);
  } else {
    BuildCellProblemInto(owner, candidates, dim_, space_, &problem);
  }
  problem.AddBoxConstraints(clip);
  if (stats) {
    stats->constraint_rows += candidates.size() - pruned;
    stats->pruned_rows += pruned;
  }
  NNCELL_METRIC_COUNT(Metrics().rows_entered, candidates.size() - pruned);
  NNCELL_METRIC_COUNT(Metrics().rows_pruned, pruned);

  // The owner is feasible for its cell but maybe not for the clip box:
  // clamp it into the box as a phase-I hint.
  std::vector<double>& hint = sc.session.start_buffer();
  hint.assign(owner, owner + dim_);
  for (size_t i = 0; i < dim_; ++i) {
    hint[i] = std::clamp(hint[i], clip.lo(i), clip.hi(i));
  }
  StatusOr<std::vector<double>> start = FindFeasiblePoint(
      problem, hint, LpOptions(), &sc.session.phase_one_scratch());
  if (!start.ok()) return HyperRect::Empty(dim_);  // empty slice
  return SolveMbr(problem, start.value(), stats);
}

double DefaultSphereRadius(size_t n, size_t dim) {
  NNCELL_CHECK(n > 0 && dim > 0);
  // Expected NN distance of n uniform points in [0,1]^d scales as
  // (1/n)^(1/d) (volume argument); the paper's heuristic takes about twice
  // that so the sphere reliably covers the cell-defining neighbors.
  return 2.0 * std::pow(1.0 / static_cast<double>(n),
                        1.0 / static_cast<double>(dim));
}

std::vector<size_t> SelectSphereCandidates(const PointSet& pts,
                                           size_t owner_idx, double radius) {
  std::vector<size_t> out;
  const double* owner = pts[owner_idx];
  const double r2 = radius * radius;
  for (size_t j = 0; j < pts.size(); ++j) {
    if (j == owner_idx) continue;
    if (L2DistSq(pts[j], owner, pts.dim()) <= r2) out.push_back(j);
  }
  return out;
}

std::vector<size_t> SelectNNDirectionCandidates(const PointSet& pts,
                                                size_t owner_idx) {
  const size_t d = pts.dim();
  const double* owner = pts[owner_idx];
  constexpr size_t kNone = std::numeric_limits<size_t>::max();

  // For each of the 2d signed axis directions: the nearest point whose
  // displacement has a positive component along the direction, and the
  // point whose displacement is most parallel to the direction.
  std::vector<size_t> nn_idx(2 * d, kNone), ax_idx(2 * d, kNone);
  std::vector<double> nn_best(2 * d, std::numeric_limits<double>::infinity());
  std::vector<double> ax_best(2 * d, -1.0);  // cosine, larger is better

  for (size_t j = 0; j < pts.size(); ++j) {
    if (j == owner_idx) continue;
    const double* p = pts[j];
    double dist2 = L2DistSq(p, owner, d);
    if (dist2 == 0.0) continue;  // duplicate; contributes no half-space
    double inv_norm = 1.0 / std::sqrt(dist2);
    for (size_t i = 0; i < d; ++i) {
      double comp = p[i] - owner[i];
      for (int sign = 0; sign < 2; ++sign) {
        double along = sign ? -comp : comp;
        if (along <= 0.0) continue;
        size_t slot = 2 * i + sign;
        if (dist2 < nn_best[slot]) {
          nn_best[slot] = dist2;
          nn_idx[slot] = j;
        }
        double cosine = along * inv_norm;
        if (cosine > ax_best[slot]) {
          ax_best[slot] = cosine;
          ax_idx[slot] = j;
        }
      }
    }
  }

  std::vector<size_t> out;
  out.reserve(4 * d);
  for (size_t s = 0; s < 2 * d; ++s) {
    if (nn_idx[s] != kNone) out.push_back(nn_idx[s]);
    if (ax_idx[s] != kNone) out.push_back(ax_idx[s]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace nncell
