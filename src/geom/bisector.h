#ifndef NNCELL_GEOM_BISECTOR_H_
#define NNCELL_GEOM_BISECTOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/hyper_rect.h"
#include "lp/lp_problem.h"

namespace nncell {

// The NN-cell of P is the intersection of half-spaces "closer to P than to
// P_j". For the Euclidean metric, d(x,P) <= d(x,P_j) is the linear
// constraint
//     2 (P_j - P) . x  <=  |P_j|^2 - |P|^2 .
// This file turns points into those LP rows -- and, before any LP runs,
// discards the rows that provably cannot touch the cell.

// Appends the bisector half-space row of (owner, other) to `problem`.
void AddBisectorConstraint(const double* owner, const double* other,
                           size_t dim, LpProblem* problem);

// Builds the full LP system of the NN-cell of `owner`: one bisector row per
// candidate point plus the 2d data-space box rows (the paper bounds all
// cells by the data space DS).
LpProblem BuildCellProblem(const double* owner,
                           const std::vector<const double*>& candidates,
                           size_t dim, const HyperRect& space);

// Same, appending into an existing (Reset) problem instead of allocating.
void BuildCellProblemInto(const double* owner,
                          const std::vector<const double*>& candidates,
                          size_t dim, const HyperRect& space,
                          LpProblem* problem);

// Membership oracle: true when x is at least as close to `owner` as to
// every candidate (i.e. x lies in the cell induced by the candidate set).
bool IsInCell(const double* x, const double* owner,
              const std::vector<const double*>& candidates, size_t dim);

// Conservative bisector pre-pruning (the hyperbox-covering observation of
// Inkulu & Kapoor applied to Definition 3): under the kCorrect strategy
// every face solve iterates over all N-1 bisector rows, yet only the few
// bisectors of near neighbors can intersect the cell at all. The pruner
//
//   1. fixes a *seed set* S of the 4d candidates nearest to the owner --
//      seeds are never pruned;
//   2. tightens an outer bound R of the cell, starting from the data-space
//      box and clipping, per dimension, to the MBR of R intersected with
//      each seed half-space (a closed-form O(d) shave per seed row);
//   3. drops every non-seed row whose half-space contains all of R.
//
// Soundness (why Lemma 1 survives): R only ever shrinks through boxes
// that contain cell = box intersect all half-spaces, so cell subset R at
// every step. The pruned feasible region P' keeps the box rows and all of
// S, hence P' subset R as well (R was tightened using only kept rows).
// A dropped row j satisfied max_{x in R} a_j.x <= b_j - margin, so its
// half-space contains R, which contains P': adding row j back would change
// nothing. The pruned and unpruned systems therefore describe the *same*
// polytope, and every MBR face value is identical -- not merely an
// enlargement. The margin absorbs the floating-point error of the
// closed-form maxima, keeping "provably redundant" conservative.
//
// In high dimensions nearly every candidate is a true Voronoi neighbor and
// almost nothing is redundant, so the redundancy test itself self-disables:
// after probing a first batch of rows, a negligible observed prune rate
// stops further testing and the remaining rows are emitted untested.
// Pruning fewer rows is always sound, and the decision depends only on the
// fixed candidate order, so builds stay deterministic.
class BisectorPruner {
 public:
  // Appends the cell system of `owner` into `problem` (already Reset to
  // `dim`): the 2d box rows of `box` first, then the surviving bisector
  // rows in candidate order. Returns the number of pruned rows. A non-null
  // `clip` (the decomposition's slice box) additionally tightens the outer
  // bound to box intersect clip -- sound because the caller's system also
  // carries the clip rows; the clip rows themselves are NOT emitted here,
  // the caller appends them to preserve the unpruned row layout. When the
  // outer bound collapses to empty (possible under a tight clip box), the
  // pruner backs off and emits the full system -- behavior then matches
  // the unpruned pipeline exactly.
  size_t BuildPruned(const double* owner,
                     const std::vector<const double*>& candidates, size_t dim,
                     const HyperRect& box, LpProblem* problem,
                     const HyperRect* clip = nullptr);

  // The outer bound R computed by the last BuildPruned call (tests).
  const HyperRect& outer_bound() const { return bound_; }

 private:
  HyperRect bound_;
  std::vector<std::pair<double, size_t>> by_dist_;  // (dist^2, candidate)
  std::vector<char> is_seed_;
  std::vector<double> row_;
};

}  // namespace nncell

#endif  // NNCELL_GEOM_BISECTOR_H_
