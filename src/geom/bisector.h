#ifndef NNCELL_GEOM_BISECTOR_H_
#define NNCELL_GEOM_BISECTOR_H_

#include <cstddef>
#include <vector>

#include "common/hyper_rect.h"
#include "lp/lp_problem.h"

namespace nncell {

// The NN-cell of P is the intersection of half-spaces "closer to P than to
// P_j". For the Euclidean metric, d(x,P) <= d(x,P_j) is the linear
// constraint
//     2 (P_j - P) . x  <=  |P_j|^2 - |P|^2 .
// This file turns points into those LP rows.

// Appends the bisector half-space row of (owner, other) to `problem`.
void AddBisectorConstraint(const double* owner, const double* other,
                           size_t dim, LpProblem* problem);

// Builds the full LP system of the NN-cell of `owner`: one bisector row per
// candidate point plus the 2d data-space box rows (the paper bounds all
// cells by the data space DS).
LpProblem BuildCellProblem(const double* owner,
                           const std::vector<const double*>& candidates,
                           size_t dim, const HyperRect& space);

// Membership oracle: true when x is at least as close to `owner` as to
// every candidate (i.e. x lies in the cell induced by the candidate set).
bool IsInCell(const double* x, const double* owner,
              const std::vector<const double*>& candidates, size_t dim);

}  // namespace nncell

#endif  // NNCELL_GEOM_BISECTOR_H_
