#include "geom/bisector.h"

#include "common/distance.h"

namespace nncell {

void AddBisectorConstraint(const double* owner, const double* other,
                           size_t dim, LpProblem* problem) {
  std::vector<double> row(dim);
  for (size_t i = 0; i < dim; ++i) row[i] = 2.0 * (other[i] - owner[i]);
  double rhs = L2NormSq(other, dim) - L2NormSq(owner, dim);
  problem->AddConstraint(row, rhs);
}

LpProblem BuildCellProblem(const double* owner,
                           const std::vector<const double*>& candidates,
                           size_t dim, const HyperRect& space) {
  LpProblem problem(dim);
  problem.Reserve(candidates.size() + 2 * dim);
  problem.AddBoxConstraints(space);
  for (const double* other : candidates) {
    AddBisectorConstraint(owner, other, dim, &problem);
  }
  return problem;
}

bool IsInCell(const double* x, const double* owner,
              const std::vector<const double*>& candidates, size_t dim) {
  double d_own = L2DistSq(x, owner, dim);
  for (const double* other : candidates) {
    if (L2DistSq(x, other, dim) < d_own) return false;
  }
  return true;
}

}  // namespace nncell
