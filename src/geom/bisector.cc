#include "geom/bisector.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/kernels/kernels.h"

namespace nncell {

namespace {

// Fills the bisector row of (owner, other): a = 2 (other - owner),
// b = |other|^2 - |owner|^2.
inline double FillBisectorRow(const double* owner, const double* other,
                              size_t dim, double* a) {
  for (size_t i = 0; i < dim; ++i) a[i] = 2.0 * (other[i] - owner[i]);
  return L2NormSq(other, dim) - L2NormSq(owner, dim);
}

// Shrinks `rect` to (a superset of) the MBR of rect intersect {a.x <= b}.
// Per dimension i the extreme of x_i over the intersection is obtained by
// pushing every other coordinate to the corner that minimizes a_k x_k, in
// closed form; using the pre-update interval of the other dimensions only
// loosens the bound, so the shave stays an outer bound mid-pass. Returns
// false when the rectangle becomes empty.
bool TightenByHalfspace(const double* a, double b, size_t dim,
                        HyperRect* rect) {
  double total = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    total += std::min(a[k] * rect->lo(k), a[k] * rect->hi(k));
  }
  for (size_t i = 0; i < dim; ++i) {
    if (a[i] == 0.0) continue;
    double rest = total - std::min(a[i] * rect->lo(i), a[i] * rect->hi(i));
    double bound = (b - rest) / a[i];
    // Pad outward so floating-point error never shaves a sliver of the
    // true cell away (the bound must stay conservative).
    double pad = 1e-12 * (1.0 + std::abs(bound));
    if (a[i] > 0.0) {
      rect->hi(i) = std::min(rect->hi(i), bound + pad);
    } else {
      rect->lo(i) = std::max(rect->lo(i), bound - pad);
    }
    if (rect->lo(i) > rect->hi(i)) return false;
  }
  return true;
}

}  // namespace

void AddBisectorConstraint(const double* owner, const double* other,
                           size_t dim, LpProblem* problem) {
  double rhs = L2NormSq(other, dim) - L2NormSq(owner, dim);
  double* row = problem->AppendRow(rhs);
  for (size_t i = 0; i < dim; ++i) row[i] = 2.0 * (other[i] - owner[i]);
}

LpProblem BuildCellProblem(const double* owner,
                           const std::vector<const double*>& candidates,
                           size_t dim, const HyperRect& space) {
  LpProblem problem(dim);
  BuildCellProblemInto(owner, candidates, dim, space, &problem);
  return problem;
}

void BuildCellProblemInto(const double* owner,
                          const std::vector<const double*>& candidates,
                          size_t dim, const HyperRect& space,
                          LpProblem* problem) {
  problem->Reserve(candidates.size() + 2 * dim);
  problem->AddBoxConstraints(space);
  for (const double* other : candidates) {
    AddBisectorConstraint(owner, other, dim, problem);
  }
}

bool IsInCell(const double* x, const double* owner,
              const std::vector<const double*>& candidates, size_t dim) {
  double d_own = L2DistSq(x, owner, dim);
  for (const double* other : candidates) {
    if (L2DistSq(x, other, dim) < d_own) return false;
  }
  return true;
}

size_t BisectorPruner::BuildPruned(const double* owner,
                                   const std::vector<const double*>& candidates,
                                   size_t dim, const HyperRect& box,
                                   LpProblem* problem, const HyperRect* clip) {
  const size_t m = candidates.size();
  const size_t num_seeds = std::min(m, 4 * dim);
  row_.resize(dim);

  HyperRect start_bound =
      clip != nullptr ? HyperRect::Intersection(box, *clip) : box;

  // Too few rows to be worth a pruning pass: emit the plain system.
  if (m <= num_seeds || start_bound.IsEmpty()) {
    BuildCellProblemInto(owner, candidates, dim, box, problem);
    bound_ = box;
    return 0;
  }

  // Candidate distances through the batched gather kernel, four rows per
  // call; bit-equal to per-pair L2DistSq, so the seed selection (and with
  // it the emitted constraint system) is dispatch-invariant.
  by_dist_.resize(m);
  {
    size_t j = 0;
    double d4[4];
    for (; j + 4 <= m; j += 4) {
      kernels::L2DistSqBatch4(owner, &candidates[j], dim, d4);
      for (size_t t = 0; t < 4; ++t) by_dist_[j + t] = {d4[t], j + t};
    }
    for (; j < m; ++j) {
      by_dist_[j] = {L2DistSq(candidates[j], owner, dim), j};
    }
  }
  std::nth_element(by_dist_.begin(), by_dist_.begin() + num_seeds - 1,
                   by_dist_.end());
  is_seed_.assign(m, 0);
  for (size_t s = 0; s < num_seeds; ++s) is_seed_[by_dist_[s].second] = 1;

  // Tighten the outer bound by the seed half-spaces. Two passes: the
  // second pass re-shaves each seed against the already-shrunk rectangle.
  bound_ = start_bound;
  bool ok = true;
  for (int pass = 0; pass < 2 && ok; ++pass) {
    for (size_t s = 0; s < num_seeds && ok; ++s) {
      const double* other = candidates[by_dist_[s].second];
      double b = FillBisectorRow(owner, other, dim, row_.data());
      ok = TightenByHalfspace(row_.data(), b, dim, &bound_);
    }
  }
  if (!ok) {
    // The outer bound collapsed (only reachable under a tight clip box
    // whose slice misses the cell). Back off to the unpruned system so the
    // empty/non-empty decision stays with the phase-I LP, exactly as in
    // the cold pipeline.
    BuildCellProblemInto(owner, candidates, dim, box, problem);
    bound_ = box;
    return 0;
  }

  problem->Reserve(num_seeds + 2 * dim + 16);
  problem->AddBoxConstraints(box);
  size_t pruned = 0;
  size_t tested = 0;
  // Redundancy testing pays O(d) per row; in high dimensions cells have so
  // many true Voronoi neighbors that almost no row is redundant, and the
  // whole pass is wasted work. Since pruning *fewer* rows is always sound,
  // the pass self-disables when the observed prune rate over a first batch
  // of rows is negligible (deterministic: rows are visited in order).
  constexpr size_t kProbeRows = 128;
  bool testing = true;
  size_t j = 0;
  for (; j < m && testing; ++j) {
    double b = FillBisectorRow(owner, candidates[j], dim, row_.data());
    if (tested >= kProbeRows && pruned * 32 < tested) {
      testing = false;
    } else if (!is_seed_[j]) {
      ++tested;
      double reach = 0.0;   // max_{x in R} a . x
      double abs_sum = 0.0;  // magnitude scale of that maximum
      for (size_t k = 0; k < dim; ++k) {
        double t_lo = row_[k] * bound_.lo(k);
        double t_hi = row_[k] * bound_.hi(k);
        reach += std::max(t_lo, t_hi);
        abs_sum += std::max(std::abs(t_lo), std::abs(t_hi));
      }
      double margin = 1e-9 * (1.0 + std::abs(b) + abs_sum);
      if (reach <= b - margin) {
        ++pruned;
        continue;
      }
    }
    double* row = problem->AppendRow(b);
    std::copy(row_.begin(), row_.end(), row);
  }
  // Testing self-disabled: emit the remaining rows straight into the packed
  // matrix (no staging buffer).
  for (; j < m; ++j) {
    AddBisectorConstraint(owner, candidates[j], dim, problem);
  }
  return pruned;
}

}  // namespace nncell
