#ifndef NNCELL_GEOM_CELL_APPROXIMATOR_H_
#define NNCELL_GEOM_CELL_APPROXIMATOR_H_

#include <cstddef>
#include <vector>

#include "common/hyper_rect.h"
#include "common/point_set.h"
#include "lp/active_set_solver.h"
#include "lp/face_solve_session.h"
#include "lp/lp_problem.h"

namespace nncell {

// The four strategies of the paper for choosing the points whose bisector
// constraints enter the LP (Section 2):
//   kCorrect     -- all N-1 points (exact MBR, most expensive),
//   kPoint       -- points whose indexed cell rectangle contains the owner,
//   kSphere      -- points whose indexed rectangle intersects a sphere
//                   around the owner,
//   kNNDirection -- the 2d directional nearest neighbors plus the 2d points
//                   with smallest angular deviation from the axes.
enum class ApproxAlgorithm { kCorrect, kPoint, kSphere, kNNDirection };

const char* ApproxAlgorithmName(ApproxAlgorithm a);

// Build-pipeline knobs of the LP hot path. Both default on; both preserve
// the computed MBRs (pruning keeps the feasible region identical, warm
// starting only changes the path the solver walks to the same optimum) and
// exist as flags for A/B benchmarks and differential tests against the
// cold pipeline.
struct CellApproxOptions {
  // Drop bisector rows that provably cannot touch the cell before any LP
  // runs (BisectorPruner).
  bool prune_bisectors = true;
  // Run the per-cell axis ray-shoot (FaceSolveSession::PrepareFaces): one
  // matrix pass that certifies box-capped faces outright (no LP) and
  // warm-starts the remaining faces at their first blocking row.
  bool warm_start = true;
};

// Aggregate counters filled by the approximator (for Fig. 4a style
// reporting and debugging).
struct ApproxStats {
  size_t lp_runs = 0;
  size_t lp_iterations = 0;
  size_t lp_failures = 0;      // faces that fell back to the space bound
  size_t constraint_rows = 0;  // bisector rows that entered LP systems
  size_t pruned_rows = 0;      // bisector rows discarded before any LP ran
  size_t skipped_faces = 0;    // faces certified by the ray-shoot (no LP)
  size_t warm_faces = 0;       // face solves warm-started at the ray hit
  size_t cold_faces = 0;       // face solves started cold
};

// Computes MBR approximations of NN-cells by running 2d linear programs per
// cell (Definition 3 of the paper).
class CellApproximator {
 public:
  explicit CellApproximator(size_t dim, HyperRect space,
                            LpOptions lp_opts = LpOptions(),
                            CellApproxOptions approx_opts = CellApproxOptions());

  const HyperRect& space() const { return space_; }
  size_t dim() const { return dim_; }
  const CellApproxOptions& approx_options() const { return approx_opts_; }

  // MBR of the cell of `owner` induced by the candidate constraint points.
  // `owner` must be distinct from every candidate. Faces whose LP fails
  // fall back to the data-space bound (conservative, keeps Lemma 1).
  HyperRect ApproximateMbr(const double* owner,
                           const std::vector<const double*>& candidates,
                           ApproxStats* stats = nullptr) const;

  // Same, but for the cell clipped to `clip` (used by the decomposition:
  // MBR(cell ∩ slice)). Returns Empty(dim) when the clipped cell is empty.
  HyperRect ApproximateClippedMbr(const double* owner,
                                  const std::vector<const double*>& candidates,
                                  const HyperRect& clip,
                                  ApproxStats* stats = nullptr) const;

  // MBR faces for a prebuilt constraint system with a known feasible start.
  HyperRect SolveMbr(const LpProblem& problem, const std::vector<double>& start,
                     ApproxStats* stats) const;

 private:
  // Runs the 2d face solves over `problem` on a session that BeginCell()
  // was already called on, assembling the MBR.
  HyperRect SolveFaces(FaceSolveSession& session, const LpProblem& problem,
                       const std::vector<double>& start,
                       ApproxStats* stats) const;

  size_t dim_;
  HyperRect space_;
  LpOptions lp_opts_;
  CellApproxOptions approx_opts_;
};

// Candidate selectors that need no index structure (pure scans); the
// index-assisted Point/Sphere selection lives in the NN-cell index.

// The heuristic sphere radius of the paper: roughly twice the expected
// nearest-neighbor distance of n uniform points in [0,1]^d.
double DefaultSphereRadius(size_t n, size_t dim);

// All points (by index into pts, excluding `owner_idx`) within `radius`.
std::vector<size_t> SelectSphereCandidates(const PointSet& pts,
                                           size_t owner_idx, double radius);

// NN-Direction heuristic: for each of the 2d axis directions, the nearest
// point lying in that half-space, plus the point with the smallest angular
// deviation from that axis. At most 4d candidates (duplicates removed).
std::vector<size_t> SelectNNDirectionCandidates(const PointSet& pts,
                                                size_t owner_idx);

}  // namespace nncell

#endif  // NNCELL_GEOM_CELL_APPROXIMATOR_H_
