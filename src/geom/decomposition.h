#ifndef NNCELL_GEOM_DECOMPOSITION_H_
#define NNCELL_GEOM_DECOMPOSITION_H_

#include <cstddef>
#include <vector>

#include "common/hyper_rect.h"
#include "geom/cell_approximator.h"

namespace nncell {

// Section 3 of the paper: fight MBR overlap by linearly decomposing each
// NN-cell in its most "oblique" dimensions and indexing the MBR of every
// non-empty piece.

// How the oblique dimensions are ranked.
enum class ObliquenessMeasure {
  // Greedy volume reduction: for each dimension, how much does splitting
  // the cell MBR at its midpoint shrink the summed piece volume? This
  // directly optimizes Definition 4's objective (more LP work at build).
  kVolumeReduction,
  // Cheap proxy: largest MBR extent first.
  kExtent,
};

struct DecompositionOptions {
  // Total partition budget k = prod(n_i); the paper keeps k <= ~10 so the
  // index does not blow up. k <= 1 disables decomposition.
  size_t max_partitions = 1;
  // Maximum number of dimensions d' to decompose (paper: d' <= 7).
  size_t max_split_dims = 3;
  ObliquenessMeasure measure = ObliquenessMeasure::kVolumeReduction;
};

// Per-dimension slice counts n_1 >= n_2 >= ... for the chosen oblique
// dimensions under the budget k (paper: equal counts, decreasing with
// obliqueness). Exposed for testing.
std::vector<size_t> PlanSliceCounts(size_t num_dims, size_t budget);

// Decomposes the NN-cell of `owner` (induced by `candidates`, bounded by
// the approximator's data space) into disjoint sub-MBRs covering the cell.
// `full_mbr` is the cell's one-piece MBR approximation (Definition 3); if
// the decomposition cannot improve on it, {full_mbr} is returned.
std::vector<HyperRect> DecomposeCell(
    const CellApproximator& approximator, const double* owner,
    const std::vector<const double*>& candidates, const HyperRect& full_mbr,
    const DecompositionOptions& options, ApproxStats* stats = nullptr);

}  // namespace nncell

#endif  // NNCELL_GEOM_DECOMPOSITION_H_
