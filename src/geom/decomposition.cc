#include "geom/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace nncell {

namespace {

// Ranks dimensions by obliqueness, most oblique first.
std::vector<size_t> RankObliqueDims(
    const CellApproximator& approximator, const double* owner,
    const std::vector<const double*>& candidates, const HyperRect& full_mbr,
    ObliquenessMeasure measure, ApproxStats* stats) {
  const size_t d = full_mbr.dim();
  std::vector<double> score(d, 0.0);

  if (measure == ObliquenessMeasure::kExtent) {
    for (size_t i = 0; i < d; ++i) score[i] = full_mbr.Extent(i);
  } else {
    const double full_vol = full_mbr.Volume();
    for (size_t i = 0; i < d; ++i) {
      if (full_mbr.Extent(i) <= 1e-12) {
        score[i] = -1.0;  // nothing to split
        continue;
      }
      double mid = 0.5 * (full_mbr.lo(i) + full_mbr.hi(i));
      HyperRect left = full_mbr;
      left.hi(i) = mid;
      HyperRect right = full_mbr;
      right.lo(i) = mid;
      double vol = 0.0;
      for (const HyperRect& half : {left, right}) {
        HyperRect piece =
            approximator.ApproximateClippedMbr(owner, candidates, half, stats);
        vol += piece.Volume();
      }
      score[i] = full_vol - vol;  // volume saved by a midpoint split
    }
  }

  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return score[a] > score[b]; });
  // Drop dimensions with no useful extent.
  while (!order.empty() && full_mbr.Extent(order.back()) <= 1e-12) {
    order.pop_back();
  }
  return order;
}

}  // namespace

std::vector<size_t> PlanSliceCounts(size_t num_dims, size_t budget) {
  std::vector<size_t> counts(num_dims, 1);
  if (num_dims == 0 || budget <= 1) return counts;
  // Equal base count n with n^num_dims <= budget, then hand out extra
  // factors to the most oblique dimensions while the product stays within
  // budget (counts stay non-increasing).
  size_t product = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (size_t i = 0; i < num_dims; ++i) {
      // Keep non-increasing: may only grow counts[i] to counts[i-1].
      if (i > 0 && counts[i] >= counts[i - 1]) continue;
      size_t next_product = product / counts[i] * (counts[i] + 1);
      if (next_product <= budget) {
        product = next_product;
        ++counts[i];
        grew = true;
      }
    }
    if (!grew) {
      // Try growing the first dimension beyond the others.
      size_t next_product = product / counts[0] * (counts[0] + 1);
      if (next_product <= budget) {
        product = next_product;
        ++counts[0];
        grew = true;
      }
    }
  }
  return counts;
}

std::vector<HyperRect> DecomposeCell(
    const CellApproximator& approximator, const double* owner,
    const std::vector<const double*>& candidates, const HyperRect& full_mbr,
    const DecompositionOptions& options, ApproxStats* stats) {
  std::vector<HyperRect> result;
  if (options.max_partitions <= 1 || options.max_split_dims == 0 ||
      full_mbr.IsEmpty()) {
    result.push_back(full_mbr);
    return result;
  }

  std::vector<size_t> order = RankObliqueDims(
      approximator, owner, candidates, full_mbr, options.measure, stats);
  size_t num_split = std::min(options.max_split_dims, order.size());
  order.resize(num_split);
  if (order.empty()) {
    result.push_back(full_mbr);
    return result;
  }

  std::vector<size_t> counts = PlanSliceCounts(num_split, options.max_partitions);
  // Drop dimensions that ended up with a single slice.
  while (!counts.empty() && counts.back() == 1) {
    counts.pop_back();
    order.pop_back();
  }
  if (counts.empty()) {
    result.push_back(full_mbr);
    return result;
  }

  // Enumerate the grid of slices over the chosen dimensions.
  size_t total = 1;
  for (size_t c : counts) total *= c;
  std::vector<size_t> idx(counts.size(), 0);
  for (size_t cell = 0; cell < total; ++cell) {
    HyperRect slice = full_mbr;
    size_t rem = cell;
    for (size_t j = 0; j < counts.size(); ++j) {
      size_t i = rem % counts[j];
      rem /= counts[j];
      size_t dim_j = order[j];
      double step = full_mbr.Extent(dim_j) / static_cast<double>(counts[j]);
      slice.lo(dim_j) = full_mbr.lo(dim_j) + step * static_cast<double>(i);
      slice.hi(dim_j) = (i + 1 == counts[j])
                            ? full_mbr.hi(dim_j)
                            : full_mbr.lo(dim_j) + step * static_cast<double>(i + 1);
    }
    HyperRect piece =
        approximator.ApproximateClippedMbr(owner, candidates, slice, stats);
    if (!piece.IsEmpty()) result.push_back(piece);
  }

  if (result.empty()) {
    // Defensive: never lose the cell (correctness over quality).
    result.push_back(full_mbr);
  }
  return result;
}

}  // namespace nncell
