#include "geom/voronoi2d.h"

#include <cmath>

#include "common/distance.h"
#include "common/check.h"

namespace nncell {

double Polygon2D::Area() const {
  if (IsEmpty()) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const auto& p = vertices[i];
    const auto& q = vertices[(i + 1) % vertices.size()];
    // nncell-lint: allow(scalar-distance-loop) 2D shoelace cross product,
    twice += p[0] * q[1] - q[0] * p[1];  // not a dimension reduction
  }
  return 0.5 * std::abs(twice);
}

HyperRect Polygon2D::Mbr() const {
  HyperRect r = HyperRect::Empty(2);
  for (const auto& v : vertices) r.ExpandToPoint(v.data());
  return r;
}

bool Polygon2D::Contains(double x, double y, double eps) const {
  if (IsEmpty()) return false;
  // Convex polygon, CCW: the point must be left of (or on) every edge.
  for (size_t i = 0; i < vertices.size(); ++i) {
    const auto& p = vertices[i];
    const auto& q = vertices[(i + 1) % vertices.size()];
    double cross = (q[0] - p[0]) * (y - p[1]) - (q[1] - p[1]) * (x - p[0]);
    if (cross < -eps) return false;
  }
  return true;
}

Polygon2D ClipByHalfPlane(const Polygon2D& poly, const std::array<double, 2>& a,
                          double b) {
  Polygon2D out;
  const size_t n = poly.vertices.size();
  if (n == 0) return out;
  out.vertices.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    const auto& p = poly.vertices[i];
    const auto& q = poly.vertices[(i + 1) % n];
    double fp = a[0] * p[0] + a[1] * p[1] - b;
    double fq = a[0] * q[0] + a[1] * q[1] - b;
    bool p_in = fp <= 0.0;
    bool q_in = fq <= 0.0;
    if (p_in) out.vertices.push_back(p);
    if (p_in != q_in) {
      double t = fp / (fp - fq);  // fp != fq since signs differ
      out.vertices.push_back({p[0] + t * (q[0] - p[0]),
                              p[1] + t * (q[1] - p[1])});
    }
  }
  if (out.vertices.size() < 3) out.vertices.clear();
  return out;
}

Polygon2D ComputeOrderMCell2D(const std::vector<const double*>& sites,
                              const std::vector<size_t>& subset,
                              const HyperRect& space) {
  NNCELL_CHECK(space.dim() == 2);
  std::vector<bool> inside(sites.size(), false);
  for (size_t i : subset) {
    NNCELL_CHECK(i < sites.size());
    inside[i] = true;
  }
  Polygon2D cell;
  cell.vertices = {{space.lo(0), space.lo(1)},
                   {space.hi(0), space.lo(1)},
                   {space.hi(0), space.hi(1)},
                   {space.lo(0), space.hi(1)}};
  for (size_t a : subset) {
    for (size_t b = 0; b < sites.size(); ++b) {
      if (inside[b]) continue;
      std::array<double, 2> normal = {2.0 * (sites[b][0] - sites[a][0]),
                                      2.0 * (sites[b][1] - sites[a][1])};
      double rhs = L2NormSq(sites[b], 2) - L2NormSq(sites[a], 2);
      cell = ClipByHalfPlane(cell, normal, rhs);
      if (cell.IsEmpty()) return cell;
    }
  }
  return cell;
}

Polygon2D ComputeNNCell2D(const double* owner,
                          const std::vector<const double*>& others,
                          const HyperRect& space) {
  NNCELL_CHECK(space.dim() == 2);
  Polygon2D cell;
  cell.vertices = {{space.lo(0), space.lo(1)},
                   {space.hi(0), space.lo(1)},
                   {space.hi(0), space.hi(1)},
                   {space.lo(0), space.hi(1)}};
  for (const double* other : others) {
    std::array<double, 2> a = {2.0 * (other[0] - owner[0]),
                               2.0 * (other[1] - owner[1])};
    double b = L2NormSq(other, 2) - L2NormSq(owner, 2);
    cell = ClipByHalfPlane(cell, a, b);
    if (cell.IsEmpty()) break;
  }
  return cell;
}

}  // namespace nncell
