#include "scan/sequential_scan.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/distance.h"
#include "common/kernels/soa_store.h"
#include "storage/byte_io.h"

namespace nncell {

SequentialScan::SequentialScan(BufferPool* pool, size_t dim)
    : pool_(pool), dim_(dim) {
  NNCELL_CHECK(dim > 0);
  NNCELL_CHECK_MSG(RecordsPerPage() >= 1, "page too small for record");
}

size_t SequentialScan::RecordBytes() const {
  return dim_ * sizeof(double) + sizeof(uint64_t);
}

size_t SequentialScan::RecordsPerPage() const {
  return pool_->page_size() / RecordBytes();
}

void SequentialScan::Insert(const double* point, uint64_t id) {
  if (pages_.empty() || last_page_fill_ == RecordsPerPage()) {
    pages_.push_back(pool_->AllocatePage());
    last_page_fill_ = 0;
  }
  uint8_t* frame = pool_->FetchMutable(pages_.back());
  size_t offset = last_page_fill_ * RecordBytes();
  ByteWriter writer(frame + offset, pool_->page_size() - offset);
  writer.PutDoubles(point, dim_);
  writer.Put<uint64_t>(id);
  ++last_page_fill_;
  ++size_;
}

SequentialScan::Result SequentialScan::NearestNeighbor(const double* q) const {
  auto results = KnnQuery(q, 1);
  NNCELL_CHECK_MSG(!results.empty(), "NN query on empty scan");
  return results.front();
}

std::vector<SequentialScan::Result> SequentialScan::KnnQuery(const double* q,
                                                             size_t k) const {
  std::vector<Result> best;  // kept sorted ascending, at most k entries
  if (k == 0) return best;
  size_t remaining = size_;
  std::vector<double> point(dim_);
  // Per-page SoA tile: decode the page's records once into blocked lanes,
  // run one batched distance pass, then walk the results in record order —
  // identical visit order and bit-identical distances to the old per-record
  // loop (the batch kernel is bit-equal to the pair kernel), so ties
  // resolve exactly as before. Page I/O accounting is unchanged.
  kernels::SoaBlockStore tile(dim_);
  std::vector<uint64_t> ids;
  std::vector<double> dist_sq;
  for (PageId page : pages_) {
    // Pinned while decoding: concurrent readers sharing the pool may
    // otherwise evict the frame mid-scan.
    PageGuard guard(pool_, page);
    const uint8_t* frame = pool_->Fetch(page);
    size_t records = std::min(remaining, RecordsPerPage());
    ByteReader reader(frame, pool_->page_size());
    tile.Clear();
    ids.clear();
    for (size_t r = 0; r < records; ++r) {
      reader.GetDoubles(point.data(), dim_);
      tile.Append(point.data());
      ids.push_back(reader.Get<uint64_t>());
    }
    dist_sq.resize(records);
    tile.BatchL2DistSq(q, dist_sq.data());
    for (size_t r = 0; r < records; ++r) {
      double dist = std::sqrt(dist_sq[r]);
      if (best.size() < k || dist < best.back().dist) {
        Result res;
        res.id = ids[r];
        res.dist = dist;
        res.point.resize(dim_);
        tile.Get(r, res.point.data());
        auto it = std::lower_bound(
            best.begin(), best.end(), dist,
            [](const Result& a, double d) { return a.dist < d; });
        best.insert(it, std::move(res));
        if (best.size() > k) best.pop_back();
      }
    }
    remaining -= records;
  }
  return best;
}

}  // namespace nncell
