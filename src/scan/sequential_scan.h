#ifndef NNCELL_SCAN_SEQUENTIAL_SCAN_H_
#define NNCELL_SCAN_SEQUENTIAL_SCAN_H_

#include <cstdint>
#include <vector>

#include "common/point_set.h"
#include "storage/buffer_pool.h"

namespace nncell {

// Sequential-scan baseline: points packed densely into pages, NN search
// reads every page. In high dimensions this is the bound index structures
// must beat [BBKK 97]; it also serves as the correctness oracle in tests.
class SequentialScan {
 public:
  SequentialScan(BufferPool* pool, size_t dim);

  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  size_t num_pages() const { return pages_.size(); }

  // Appends a point with the given record id.
  void Insert(const double* point, uint64_t id);

  struct Result {
    uint64_t id = 0;
    double dist = 0.0;
    std::vector<double> point;
  };

  // Exact nearest neighbor by full scan (charges every data page).
  Result NearestNeighbor(const double* q) const;

  // Exact k nearest neighbors, ascending by distance.
  std::vector<Result> KnnQuery(const double* q, size_t k) const;

 private:
  size_t RecordBytes() const;
  size_t RecordsPerPage() const;

  BufferPool* pool_;
  size_t dim_;
  size_t size_ = 0;
  std::vector<PageId> pages_;
  size_t last_page_fill_ = 0;
};

}  // namespace nncell

#endif  // NNCELL_SCAN_SEQUENTIAL_SCAN_H_
