#ifndef NNCELL_SHARD_SHARD_MANIFEST_H_
#define NNCELL_SHARD_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// The sharded index's routing metadata and its file I/O. This is the one
// translation unit of src/shard/ allowed to touch files directly
// (tools/nncell_lint.py, check `shard-direct-io`): everything else in the
// shard layer reaches disk only through these helpers, the per-shard
// NNCellIndex, or the router WriteAheadLog, so no query or rebalance code
// path can ever open a sibling shard's files behind the router's back.

namespace nncell {
namespace shard {

// The spatial routing table: shard i owns the half-open slab
//   [cuts[i-1], cuts[i])  (first slab open below, last open above)
// of the *metric-space* coordinate `route_dim` (original coordinate times
// sqrt(weight), so routing agrees with the weighted metric the shards
// search in). Serialized layout in docs/SHARDING.md.
struct ShardManifest {
  uint32_t shard_count = 0;
  uint64_t epoch = 0;      // bumped by every installed rebalance
  uint32_t route_dim = 0;  // dimension the cuts partition
  uint32_t dim = 0;        // full dimensionality of the index
  std::vector<double> cuts;  // shard_count - 1 non-decreasing boundaries

  // Owning shard of a point with metric route coordinate `c`: the number
  // of cuts <= c (upper_bound, so a point exactly on a cut belongs to the
  // slab above it).
  size_t Route(double c) const;

  // Squared metric distance from route coordinate `c` to shard i's slab
  // (0 when inside). A lower bound on the squared metric distance from
  // the query to every point the shard can hold.
  double SlabMinDistSq(size_t i, double c) const;

  Status Validate() const;
};

std::string EncodeManifest(const ShardManifest& m);
// `origin` names the source (a path) for error messages. Distinguishes an
// unsupported manifest version (checked before the CRC, so a future
// layout is reported as version skew, not corruption) from corruption.
StatusOr<ShardManifest> DecodeManifest(const std::string& bytes,
                                       const std::string& origin);
Status WriteManifest(const std::string& path, const ShardManifest& m);
StatusOr<ShardManifest> LoadManifest(const std::string& path);

// One global id's routing entry. `shard` is kRouterShardNone for a
// tombstone compacted away by a rebalance.
struct RouterEntry {
  uint32_t shard = 0;
  uint64_t local = 0;  // id inside the owning shard
  bool alive = false;
};

// The router snapshot: entries[g] maps global id g; covered_lsn is the
// router-log position the snapshot folds in (records <= it are skipped on
// replay).
struct RouterSnapshot {
  uint64_t covered_lsn = 0;
  std::vector<RouterEntry> entries;
};

Status WriteRouterSnapshot(const std::string& path, const RouterSnapshot& s);
// NotFound when no snapshot file exists (fresh directory).
StatusOr<RouterSnapshot> LoadRouterSnapshot(const std::string& path);

// Router log record payloads (framed by storage/wal.h).
std::string EncodeRouterInsert(uint64_t global_id, uint32_t shard);
std::string EncodeRouterDelete(uint64_t global_id);
struct RouterLogOp {
  uint8_t op = 0;
  uint64_t global_id = 0;
  uint32_t shard = 0;  // insert only
};
StatusOr<RouterLogOp> DecodeRouterOp(const std::vector<uint8_t>& payload);

// Path helpers.
std::string ShardDirName(size_t i);                      // "shard-<i>"
std::string JoinPath(const std::string& a, const std::string& b);

// --- rebalance install protocol ------------------------------------------
// A rebalance stages the complete next epoch (new shard dirs, manifest,
// router snapshot) under dir/rebalance.tmp, then commits it with a single
// atomic rename to dir/epoch-install and finalizes by moving the staged
// entries into their steady-state names. Every step after the rename is
// idempotent; ShardedIndex::Open re-runs FinalizeInstall when the marker
// directory exists and discards a stale staging directory otherwise.

// Removes dir/rebalance.tmp recursively if present (a rebalance that
// crashed before its commit rename). Sets *removed when it did.
Status DiscardStagingIfPresent(const std::string& dir, bool* removed);

// Commit: rename dir/rebalance.tmp -> dir/epoch-install + parent fsync.
// Failpoint "shard.rebalance.commit" fires before the rename.
Status CommitStagedInstall(const std::string& dir);

// Finishes a committed install if dir/epoch-install exists: deletes
// replaced shard dirs, moves staged shards / router snapshot into place,
// deletes the (fully covered) router log, moves the manifest last, and
// removes the marker dir. Idempotent; sets *finalized when an install was
// (re)finished. Failpoint "shard.rebalance.finalize" fires first.
Status FinalizeInstallIfPresent(const std::string& dir, bool* finalized);

// Recursive delete of a file or directory tree (used for replaced shard
// dirs; missing path is OK).
Status RemovePathRecursive(const std::string& path);

}  // namespace shard
}  // namespace nncell

#endif  // NNCELL_SHARD_SHARD_MANIFEST_H_
