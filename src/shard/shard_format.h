#ifndef NNCELL_SHARD_SHARD_FORMAT_H_
#define NNCELL_SHARD_SHARD_FORMAT_H_

#include <cstddef>
#include <cstdint>

// Single source of truth for every constant of the sharded-index on-disk
// format: the shard manifest (spatial routing table), the router snapshot
// (global-id |-> (shard, local-id) map) and the router log records that
// journal that map between snapshots. docs/SHARDING.md documents the
// byte-level layouts, and tools/check_docs_links.sh cross-checks every
// constant name and value in this header against that document in both
// directions, so the format documentation cannot drift from the code.
//
// Magic values spell an ASCII tag when the u64 is read big-endian
// (on-disk, little-endian, the bytes appear reversed).

namespace nncell {
namespace shard {

// --- shard manifest (ShardedIndex::Open) ---------------------------------
inline constexpr uint64_t kShardManifestMagic = 0x4e4e43454c534831ULL;  // "NNCELSH1"
inline constexpr uint32_t kShardManifestVersion = 1;
// Fixed prefix before the cut array: magic u64, version u32, shard_count
// u32, epoch u64, route_dim u32, dim u32.
inline constexpr size_t kShardManifestHeaderBytes = 32;
// Hard cap on shard_count; a parsed count above this is corruption.
inline constexpr uint32_t kMaxShards = 1024;

// --- router snapshot ------------------------------------------------------
inline constexpr uint64_t kRouterSnapshotMagic = 0x4e4e43454c525331ULL;  // "NNCELRS1"
inline constexpr uint32_t kRouterSnapshotVersion = 1;
// Fixed prefix before the entry array: magic u64, version u32, covered_lsn
// u64, entry_count u64.
inline constexpr size_t kRouterSnapshotHeaderBytes = 28;
// One entry per ever-assigned global id: shard u32, local_id u64, alive u8.
inline constexpr size_t kRouterSnapshotEntryBytes = 13;
// Shard value of a tombstoned entry whose owning shard no longer stores
// the point (compacted away by a rebalance).
inline constexpr uint32_t kRouterShardNone = 0xffffffff;

// --- router log record payloads (framed by the common WAL format) ---------
inline constexpr uint8_t kRouterOpInsert = 1;
inline constexpr uint8_t kRouterOpDelete = 2;
// Insert: op u8, global_id u64, shard u32. Delete: op u8, global_id u64.
inline constexpr size_t kRouterInsertPayloadBytes = 13;
inline constexpr size_t kRouterDeletePayloadBytes = 9;

// File and directory names inside a sharded index directory.
inline constexpr char kShardManifestFileName[] = "shard.manifest";
inline constexpr char kRouterSnapshotFileName[] = "router.snap";
inline constexpr char kRouterLogFileName[] = "router.log";
// Per-shard durable directories: "shard-<i>", i in [0, shard_count).
inline constexpr char kShardDirPrefix[] = "shard-";
// Rebalance staging area (discarded on recovery if present).
inline constexpr char kRebalanceStagingDirName[] = "rebalance.tmp";
// Committed-install marker: the staging dir renamed here atomically. Its
// presence means the new epoch is durable; recovery finishes the install.
inline constexpr char kRebalanceInstallDirName[] = "epoch-install";

}  // namespace shard
}  // namespace nncell

#endif  // NNCELL_SHARD_SHARD_FORMAT_H_
