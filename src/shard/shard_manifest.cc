#include "shard/shard_manifest.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "shard/shard_format.h"
#include "storage/byte_io.h"
#include "storage/fs_util.h"

namespace nncell {
namespace shard {

namespace {

// Evaluates a non-write failpoint site: kCrash exits the process, any
// other armed action fails the operation before it starts.
Status CheckSite(const char* name) {
  switch (failpoint::Check(name)) {
    case failpoint::Action::kOff:
      return Status::OK();
    case failpoint::Action::kCrash:
      failpoint::Crash();
    default:
      return Status::Internal(std::string("failpoint ") + name);
  }
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(fs::ErrnoMessage("open dir " + dir));
  Status st = fs::FsyncFd(fd, "shard.dir_sync");
  ::close(fd);
  return st;
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Internal(fs::ErrnoMessage("opendir " + dir));
  }
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RenamePath(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal(
        fs::ErrnoMessage("rename " + from + " -> " + to));
  }
  return Status::OK();
}

}  // namespace

size_t ShardManifest::Route(double c) const {
  return static_cast<size_t>(
      std::upper_bound(cuts.begin(), cuts.end(), c) - cuts.begin());
}

double ShardManifest::SlabMinDistSq(size_t i, double c) const {
  double gap = 0.0;
  if (i > 0 && c < cuts[i - 1]) {
    gap = cuts[i - 1] - c;
  } else if (i + 1 < shard_count && c > cuts[i]) {
    gap = c - cuts[i];
  }
  return gap * gap;
}

Status ShardManifest::Validate() const {
  if (shard_count == 0 || shard_count > kMaxShards) {
    return Status::InvalidArgument("shard manifest: shard_count " +
                                   std::to_string(shard_count) +
                                   " outside [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  if (dim == 0) return Status::InvalidArgument("shard manifest: dim is 0");
  if (route_dim >= dim) {
    return Status::InvalidArgument("shard manifest: route_dim " +
                                   std::to_string(route_dim) +
                                   " >= dim " + std::to_string(dim));
  }
  if (cuts.size() != static_cast<size_t>(shard_count) - 1) {
    return Status::InvalidArgument("shard manifest: cut count mismatch");
  }
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (!(cuts[i] <= cuts[i + 1])) {
      return Status::InvalidArgument("shard manifest: cuts not sorted");
    }
  }
  for (double c : cuts) {
    if (!std::isfinite(c)) {
      return Status::InvalidArgument("shard manifest: non-finite cut");
    }
  }
  return Status::OK();
}

std::string EncodeManifest(const ShardManifest& m) {
  const size_t size =
      kShardManifestHeaderBytes + m.cuts.size() * sizeof(double) + 4;
  std::string out(size, '\0');
  ByteWriter w(reinterpret_cast<uint8_t*>(out.data()), size);
  w.Put<uint64_t>(kShardManifestMagic);
  w.Put<uint32_t>(kShardManifestVersion);
  w.Put<uint32_t>(m.shard_count);
  w.Put<uint64_t>(m.epoch);
  w.Put<uint32_t>(m.route_dim);
  w.Put<uint32_t>(m.dim);
  w.PutDoubles(m.cuts.data(), m.cuts.size());
  const uint32_t crc = Crc32c(out.data(), w.position());
  w.Put<uint32_t>(crc);
  return out;
}

StatusOr<ShardManifest> DecodeManifest(const std::string& bytes,
                                       const std::string& origin) {
  const std::string what = "shard manifest " + origin;
  if (bytes.size() < kShardManifestHeaderBytes + 4) {
    return Status::InvalidArgument(what + ": truncated (" +
                                   std::to_string(bytes.size()) + " bytes)");
  }
  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  if (r.Get<uint64_t>() != kShardManifestMagic) {
    return Status::InvalidArgument(what + ": bad magic");
  }
  // Version skew is detected before the checksum: a future layout would
  // not CRC under this decoder, and the operator needs "wrong version",
  // not "corrupt file".
  const uint32_t version = r.Get<uint32_t>();
  if (version != kShardManifestVersion) {
    return Status::InvalidArgument(
        what + ": unsupported shard manifest version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kShardManifestVersion) + ")");
  }
  ShardManifest m;
  m.shard_count = r.Get<uint32_t>();
  m.epoch = r.Get<uint64_t>();
  m.route_dim = r.Get<uint32_t>();
  m.dim = r.Get<uint32_t>();
  if (m.shard_count == 0 || m.shard_count > kMaxShards) {
    return Status::InvalidArgument(what + ": corrupt shard_count " +
                                   std::to_string(m.shard_count));
  }
  const size_t expect = kShardManifestHeaderBytes +
                        (static_cast<size_t>(m.shard_count) - 1) *
                            sizeof(double) +
                        4;
  if (bytes.size() != expect) {
    return Status::InvalidArgument(
        what + ": size " + std::to_string(bytes.size()) + ", expected " +
        std::to_string(expect));
  }
  m.cuts.resize(m.shard_count - 1);
  r.GetDoubles(m.cuts.data(), m.cuts.size());
  const uint32_t stored = r.Get<uint32_t>();
  const uint32_t actual = Crc32c(bytes.data(), bytes.size() - 4);
  if (stored != actual) {
    return Status::InvalidArgument(what + ": checksum mismatch");
  }
  Status st = m.Validate();
  if (!st.ok()) return Status::InvalidArgument(origin + ": " + st.message());
  return m;
}

Status WriteManifest(const std::string& path, const ShardManifest& m) {
  NNCELL_CHECK(m.Validate().ok());
  return fs::WriteFileAtomic(path, EncodeManifest(m));
}

StatusOr<ShardManifest> LoadManifest(const std::string& path) {
  if (!fs::PathExists(path)) {
    return Status::NotFound("no shard manifest at " + path);
  }
  StatusOr<std::string> bytes = fs::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeManifest(*bytes, path);
}

Status WriteRouterSnapshot(const std::string& path, const RouterSnapshot& s) {
  const size_t size = kRouterSnapshotHeaderBytes +
                      s.entries.size() * kRouterSnapshotEntryBytes + 4;
  std::string out(size, '\0');
  ByteWriter w(reinterpret_cast<uint8_t*>(out.data()), size);
  w.Put<uint64_t>(kRouterSnapshotMagic);
  w.Put<uint32_t>(kRouterSnapshotVersion);
  w.Put<uint64_t>(s.covered_lsn);
  w.Put<uint64_t>(static_cast<uint64_t>(s.entries.size()));
  for (const RouterEntry& e : s.entries) {
    w.Put<uint32_t>(e.shard);
    w.Put<uint64_t>(e.local);
    w.Put<uint8_t>(e.alive ? 1 : 0);
  }
  const uint32_t crc = Crc32c(out.data(), w.position());
  w.Put<uint32_t>(crc);
  return fs::WriteFileAtomic(path, out);
}

StatusOr<RouterSnapshot> LoadRouterSnapshot(const std::string& path) {
  if (!fs::PathExists(path)) {
    return Status::NotFound("no router snapshot at " + path);
  }
  StatusOr<std::string> read = fs::ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string& bytes = *read;
  const std::string what = "router snapshot " + path;
  if (bytes.size() < kRouterSnapshotHeaderBytes + 4) {
    return Status::InvalidArgument(what + ": truncated");
  }
  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  if (r.Get<uint64_t>() != kRouterSnapshotMagic) {
    return Status::InvalidArgument(what + ": bad magic");
  }
  const uint32_t version = r.Get<uint32_t>();
  if (version != kRouterSnapshotVersion) {
    return Status::InvalidArgument(what + ": unsupported version " +
                                   std::to_string(version));
  }
  RouterSnapshot s;
  s.covered_lsn = r.Get<uint64_t>();
  const uint64_t count = r.Get<uint64_t>();
  const size_t expect =
      kRouterSnapshotHeaderBytes + count * kRouterSnapshotEntryBytes + 4;
  if (count > (bytes.size() / kRouterSnapshotEntryBytes) ||
      bytes.size() != expect) {
    return Status::InvalidArgument(what + ": size mismatch");
  }
  const uint32_t actual = Crc32c(bytes.data(), bytes.size() - 4);
  s.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RouterEntry e;
    e.shard = r.Get<uint32_t>();
    e.local = r.Get<uint64_t>();
    const uint8_t alive = r.Get<uint8_t>();
    if (alive > 1) {
      return Status::InvalidArgument(what + ": corrupt alive flag");
    }
    e.alive = alive == 1;
    s.entries.push_back(e);
  }
  if (r.Get<uint32_t>() != actual) {
    return Status::InvalidArgument(what + ": checksum mismatch");
  }
  return s;
}

std::string EncodeRouterInsert(uint64_t global_id, uint32_t shard) {
  std::string out(kRouterInsertPayloadBytes, '\0');
  ByteWriter w(reinterpret_cast<uint8_t*>(out.data()), out.size());
  w.Put<uint8_t>(kRouterOpInsert);
  w.Put<uint64_t>(global_id);
  w.Put<uint32_t>(shard);
  return out;
}

std::string EncodeRouterDelete(uint64_t global_id) {
  std::string out(kRouterDeletePayloadBytes, '\0');
  ByteWriter w(reinterpret_cast<uint8_t*>(out.data()), out.size());
  w.Put<uint8_t>(kRouterOpDelete);
  w.Put<uint64_t>(global_id);
  return out;
}

StatusOr<RouterLogOp> DecodeRouterOp(const std::vector<uint8_t>& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("router log: empty record");
  }
  RouterLogOp op;
  op.op = payload[0];
  ByteReader r(payload.data(), payload.size());
  r.Get<uint8_t>();
  if (op.op == kRouterOpInsert) {
    if (payload.size() != kRouterInsertPayloadBytes) {
      return Status::InvalidArgument("router log: bad insert record size");
    }
    op.global_id = r.Get<uint64_t>();
    op.shard = r.Get<uint32_t>();
    return op;
  }
  if (op.op == kRouterOpDelete) {
    if (payload.size() != kRouterDeletePayloadBytes) {
      return Status::InvalidArgument("router log: bad delete record size");
    }
    op.global_id = r.Get<uint64_t>();
    return op;
  }
  return Status::InvalidArgument("router log: unknown op " +
                                 std::to_string(op.op));
}

std::string ShardDirName(size_t i) {
  return std::string(kShardDirPrefix) + std::to_string(i);
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

Status RemovePathRecursive(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::Internal(fs::ErrnoMessage("lstat " + path));
  }
  if (S_ISDIR(st.st_mode)) {
    StatusOr<std::vector<std::string>> names = ListDir(path);
    if (!names.ok()) return names.status();
    for (const std::string& n : *names) {
      Status rm = RemovePathRecursive(JoinPath(path, n));
      if (!rm.ok()) return rm;
    }
    if (::rmdir(path.c_str()) != 0) {
      return Status::Internal(fs::ErrnoMessage("rmdir " + path));
    }
    return Status::OK();
  }
  if (::unlink(path.c_str()) != 0) {
    return Status::Internal(fs::ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

Status DiscardStagingIfPresent(const std::string& dir, bool* removed) {
  if (removed != nullptr) *removed = false;
  const std::string staging = JoinPath(dir, kRebalanceStagingDirName);
  if (!fs::PathExists(staging)) return Status::OK();
  NNCELL_RETURN_IF_ERROR(RemovePathRecursive(staging));
  NNCELL_RETURN_IF_ERROR(SyncDir(dir));
  if (removed != nullptr) *removed = true;
  return Status::OK();
}

Status CommitStagedInstall(const std::string& dir) {
  NNCELL_RETURN_IF_ERROR(CheckSite("shard.rebalance.commit"));
  NNCELL_RETURN_IF_ERROR(
      RenamePath(JoinPath(dir, kRebalanceStagingDirName),
                 JoinPath(dir, kRebalanceInstallDirName)));
  return SyncDir(dir);
}

Status FinalizeInstallIfPresent(const std::string& dir, bool* finalized) {
  if (finalized != nullptr) *finalized = false;
  const std::string install = JoinPath(dir, kRebalanceInstallDirName);
  if (!fs::PathExists(install)) return Status::OK();
  NNCELL_RETURN_IF_ERROR(CheckSite("shard.rebalance.finalize"));

  const std::string staged_manifest =
      JoinPath(install, kShardManifestFileName);
  if (!fs::PathExists(staged_manifest)) {
    // The manifest moves last, so its absence means every other staged
    // entry is already in place; only the marker dir is left to drop.
    NNCELL_RETURN_IF_ERROR(RemovePathRecursive(install));
    NNCELL_RETURN_IF_ERROR(SyncDir(dir));
    if (finalized != nullptr) *finalized = true;
    return Status::OK();
  }
  StatusOr<ShardManifest> m = LoadManifest(staged_manifest);
  if (!m.ok()) return m.status();

  // Replace the shard directories. A staged shard-i displaces the old one;
  // an old shard-i with no staged replacement and i >= the new count was
  // merged away. Entries already moved by an interrupted earlier attempt
  // have no staged copy left and are kept as they are.
  size_t max_old = 0;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  const std::string prefix = kShardDirPrefix;
  for (const std::string& n : *names) {
    if (n.compare(0, prefix.size(), prefix) == 0) {
      max_old = std::max(max_old, static_cast<size_t>(
                                      std::atoll(n.c_str() + prefix.size())) +
                                      1);
    }
  }
  const size_t upper = std::max<size_t>(max_old, m->shard_count);
  for (size_t i = 0; i < upper; ++i) {
    const std::string staged = JoinPath(install, ShardDirName(i));
    const std::string dst = JoinPath(dir, ShardDirName(i));
    if (fs::PathExists(staged)) {
      NNCELL_RETURN_IF_ERROR(RemovePathRecursive(dst));
      NNCELL_RETURN_IF_ERROR(RenamePath(staged, dst));
    } else if (i >= m->shard_count) {
      NNCELL_RETURN_IF_ERROR(RemovePathRecursive(dst));
    }
  }

  // Router state: staged snapshot replaces the old one, and the log it
  // fully covers is deleted (Open recreates an empty log based at the
  // snapshot's covered LSN).
  const std::string staged_snap = JoinPath(install, kRouterSnapshotFileName);
  if (fs::PathExists(staged_snap)) {
    NNCELL_RETURN_IF_ERROR(
        RenamePath(staged_snap, JoinPath(dir, kRouterSnapshotFileName)));
  }
  NNCELL_RETURN_IF_ERROR(
      RemovePathRecursive(JoinPath(dir, kRouterLogFileName)));
  NNCELL_RETURN_IF_ERROR(
      RenamePath(staged_manifest, JoinPath(dir, kShardManifestFileName)));
  NNCELL_RETURN_IF_ERROR(RemovePathRecursive(install));
  NNCELL_RETURN_IF_ERROR(SyncDir(dir));
  if (finalized != nullptr) *finalized = true;
  return Status::OK();
}

}  // namespace shard
}  // namespace nncell
