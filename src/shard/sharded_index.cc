#include "shard/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/distance.h"
#include "common/failpoint.h"
#include "shard/shard_format.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace nncell {

namespace {

// Scatter-gather pruning slack: a shard is probed unless its slab's
// squared metric distance exceeds best_d2 * kPruneSlack + kPruneSlackAbs.
// The margin absorbs the (sub-ulp) rounding daylight between a point's
// kernel-computed squared distance and the exact slab bound, so pruning
// can only ever skip shards that provably cannot improve or tie the best
// -- extra probes are allowed, missed winners are not (docs/SHARDING.md,
// "Scatter-gather pruning invariant").
constexpr double kPruneSlack = 1.0 + 1e-9;
constexpr double kPruneSlackAbs = 1e-300;

// In-memory shards: private page file + pool per shard (the durable path
// sizes storage via DurableOptions instead).
constexpr size_t kMemoryShardPageSize = 4096;
constexpr size_t kMemoryShardPoolPages = 1024;

// Non-write failpoint: kCrash exits, any other armed action fails the
// operation before it starts.
Status CheckSite(const char* name) {
  switch (failpoint::Check(name)) {
    case failpoint::Action::kOff:
      return Status::OK();
    case failpoint::Action::kCrash:
      failpoint::Crash();
    default:
      return Status::Internal(std::string("failpoint ") + name);
  }
}

// Deterministic splitmix64 for the sampled cross-shard differential.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ShardedIndex::ShardedIndex(NNCellOptions options, ShardedOptions sopts,
                           std::string dir)
    : options_(std::move(options)), sopts_(sopts), dir_(std::move(dir)) {
  // Shards run serial internally; this layer owns the cross-shard /
  // cross-query parallelism.
  options_.parallel.num_threads = 1;
  auto& reg = metrics::Registry::Global();
  m_count_ = reg.gauge(metrics::kShardCount);
  m_epoch_ = reg.gauge(metrics::kShardEpoch);
  m_fanout_ = reg.histogram(metrics::kShardQueryFanout);
  m_probes_ = reg.counter(metrics::kShardQueryProbes);
  m_pruned_ = reg.counter(metrics::kShardQueryPruned);
  m_rebalances_ = reg.counter(metrics::kShardRebalanceEvents);
  m_moved_ = reg.counter(metrics::kShardRebalanceMovedPoints);
  m_degraded_ = reg.counter(metrics::kShardRecoveryDegraded);
}

ShardedIndex::~ShardedIndex() = default;

double ShardedIndex::RouteCoord(const double* original) const {
  double c = original[manifest_.route_dim];
  if (!options_.weights.empty()) {
    c *= std::sqrt(options_.weights[manifest_.route_dim]);
  }
  return c;
}

Status ShardedIndex::MakeMemoryShard(Shard* s) const {
  s->file = std::make_unique<PageFile>(kMemoryShardPageSize);
  s->pool = std::make_unique<BufferPool>(s->file.get(), kMemoryShardPoolPages);
  s->index =
      std::make_unique<NNCellIndex>(s->pool.get(), manifest_.dim, options_);
  s->status = Status::OK();
  return Status::OK();
}

Status ShardedIndex::OpenDurableShard(size_t i, Shard* s,
                                      NNCellIndex::RecoveryInfo* info) const {
  StatusOr<std::unique_ptr<NNCellIndex>> idx = NNCellIndex::Open(
      shard::JoinPath(dir_, shard::ShardDirName(i)), manifest_.dim, options_,
      dopts_, info);
  if (!idx.ok()) {
    s->status = idx.status();
    s->index.reset();
    return idx.status();
  }
  s->index = std::move(*idx);
  s->status = Status::OK();
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedIndex>> ShardedIndex::Create(
    size_t dim, NNCellOptions options, ShardedOptions sopts) {
  if (dim == 0) return Status::InvalidArgument("dimension must be positive");
  if (sopts.route_dim >= dim) {
    return Status::InvalidArgument("route_dim out of range");
  }
  sopts.num_shards = std::max<size_t>(
      1, std::min<size_t>(sopts.num_shards, shard::kMaxShards));
  std::unique_ptr<ShardedIndex> idx(
      // nncell-lint: allow(naked-new) private constructor; the unique_ptr on this statement owns it
      new ShardedIndex(std::move(options), sopts, ""));
  idx->manifest_.shard_count = static_cast<uint32_t>(sopts.num_shards);
  idx->manifest_.epoch = 0;
  idx->manifest_.route_dim = sopts.route_dim;
  idx->manifest_.dim = static_cast<uint32_t>(dim);
  const double hi = idx->options_.weights.empty()
                        ? 1.0
                        : std::sqrt(idx->options_.weights[sopts.route_dim]);
  for (size_t j = 1; j < sopts.num_shards; ++j) {
    idx->manifest_.cuts.push_back(hi * static_cast<double>(j) /
                                  static_cast<double>(sopts.num_shards));
  }
  idx->shards_.resize(sopts.num_shards);
  for (Shard& s : idx->shards_) {
    NNCELL_RETURN_IF_ERROR(idx->MakeMemoryShard(&s));
  }
  idx->probe_counts_.resize(sopts.num_shards);
  for (auto& p : idx->probe_counts_) {
    p = std::make_unique<std::atomic<uint64_t>>(0);
  }
  idx->SetNumThreads(ThreadPool::DefaultThreads());
  if (metrics::Registry::Enabled()) {
    idx->m_count_->Set(static_cast<int64_t>(sopts.num_shards));
  }
  return idx;
}

StatusOr<std::unique_ptr<ShardedIndex>> ShardedIndex::Open(
    const std::string& dir, size_t dim, NNCellOptions options,
    NNCellIndex::DurableOptions dopts, ShardedOptions sopts,
    RecoveryInfo* info) {
  NNCELL_RETURN_IF_ERROR(fs::EnsureDirectory(dir));
  RecoveryInfo local;
  RecoveryInfo* ri = info != nullptr ? info : &local;
  *ri = RecoveryInfo();

  // Finish a committed rebalance / discard an uncommitted one first: the
  // steady-state files are only authoritative afterwards.
  NNCELL_RETURN_IF_ERROR(
      shard::FinalizeInstallIfPresent(dir, &ri->finalized_install));
  NNCELL_RETURN_IF_ERROR(
      shard::DiscardStagingIfPresent(dir, &ri->discarded_staging));

  sopts.num_shards = std::max<size_t>(
      1, std::min<size_t>(sopts.num_shards, shard::kMaxShards));
  std::unique_ptr<ShardedIndex> idx(
      // nncell-lint: allow(naked-new) private constructor; the unique_ptr on this statement owns it
      new ShardedIndex(std::move(options), sopts, dir));
  // The shard-then-router write order recovery relies on needs every
  // acknowledged shard operation durable before its router record.
  dopts.wal_group_sync = 1;
  idx->dopts_ = dopts;

  const std::string manifest_path =
      shard::JoinPath(dir, shard::kShardManifestFileName);
  StatusOr<shard::ShardManifest> m = shard::LoadManifest(manifest_path);
  if (m.ok()) {
    if (dim != 0 && dim != m->dim) {
      return Status::InvalidArgument(
          "dimension mismatch: manifest has dim " + std::to_string(m->dim) +
          ", caller asked for " + std::to_string(dim));
    }
    idx->manifest_ = std::move(*m);
  } else if (m.status().code() == StatusCode::kNotFound) {
    if (fs::PathExists(shard::JoinPath(dir, shard::ShardDirName(0)))) {
      return Status::Internal(dir +
                              ": shard directories without a shard manifest");
    }
    if (dim == 0) {
      return Status::InvalidArgument(
          "cannot create a sharded index without a dimension");
    }
    if (idx->sopts_.route_dim >= dim) {
      return Status::InvalidArgument("route_dim out of range");
    }
    idx->manifest_.shard_count =
        static_cast<uint32_t>(idx->sopts_.num_shards);
    idx->manifest_.epoch = 0;
    idx->manifest_.route_dim = idx->sopts_.route_dim;
    idx->manifest_.dim = static_cast<uint32_t>(dim);
    const double hi =
        idx->options_.weights.empty()
            ? 1.0
            : std::sqrt(idx->options_.weights[idx->sopts_.route_dim]);
    for (size_t j = 1; j < idx->sopts_.num_shards; ++j) {
      idx->manifest_.cuts.push_back(
          hi * static_cast<double>(j) /
          static_cast<double>(idx->sopts_.num_shards));
    }
    NNCELL_RETURN_IF_ERROR(
        shard::WriteManifest(manifest_path, idx->manifest_));
    ri->created = true;
  } else {
    return m.status();
  }

  // Open every shard; a failure degrades that shard, not the index.
  idx->shards_.resize(idx->manifest_.shard_count);
  ri->shards.resize(idx->manifest_.shard_count);
  for (size_t i = 0; i < idx->shards_.size(); ++i) {
    Status st =
        idx->OpenDurableShard(i, &idx->shards_[i], &ri->shards[i].info);
    ri->shards[i].status = st;
    if (!st.ok()) {
      ++idx->degraded_count_;
      NNCELL_METRIC_COUNT(idx->m_degraded_, 1);
    }
  }

  NNCELL_RETURN_IF_ERROR(idx->RecoverRouter(dopts, ri));

  idx->probe_counts_.resize(idx->manifest_.shard_count);
  for (auto& p : idx->probe_counts_) {
    p = std::make_unique<std::atomic<uint64_t>>(0);
  }
  idx->SetNumThreads(ThreadPool::DefaultThreads());
  if (metrics::Registry::Enabled()) {
    idx->m_count_->Set(static_cast<int64_t>(idx->manifest_.shard_count));
    idx->m_epoch_->Set(static_cast<int64_t>(idx->manifest_.epoch));
  }
  return idx;
}

Status ShardedIndex::RecoverRouter(NNCellIndex::DurableOptions dopts,
                                   RecoveryInfo* info) {
  const std::string snap_path =
      shard::JoinPath(dir_, shard::kRouterSnapshotFileName);
  shard::RouterSnapshot snap;
  StatusOr<shard::RouterSnapshot> loaded =
      shard::LoadRouterSnapshot(snap_path);
  if (loaded.ok()) {
    snap = std::move(*loaded);
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }
  router_ = std::move(snap.entries);

  WriteAheadLog::RecoverResult rr;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(
      shard::JoinPath(dir_, shard::kRouterLogFileName), snap.covered_lsn,
      /*group_sync=*/1, /*strict_header=*/false, &rr);
  if (!wal.ok()) return wal.status();
  router_wal_ = std::move(*wal);

  // Per-shard registration counts (locals are dense in registration
  // order), seeded from the snapshot entries.
  std::vector<uint64_t> shard_total(manifest_.shard_count, 0);
  for (const shard::RouterEntry& e : router_) {
    if (e.shard == shard::kRouterShardNone) continue;
    if (e.shard >= manifest_.shard_count) {
      return Status::Internal("router snapshot maps a global id to shard " +
                              std::to_string(e.shard) + " of " +
                              std::to_string(manifest_.shard_count));
    }
    ++shard_total[e.shard];
  }

  for (const WriteAheadLog::Record& rec : rr.records) {
    if (rec.lsn <= snap.covered_lsn) {
      ++info->router_records_skipped;
      continue;
    }
    StatusOr<shard::RouterLogOp> op = shard::DecodeRouterOp(rec.payload);
    if (!op.ok()) return op.status();
    if (op->op == shard::kRouterOpInsert) {
      if (op->global_id != router_.size() ||
          op->shard >= manifest_.shard_count) {
        return Status::Internal(
            "router log: inconsistent insert record (global " +
            std::to_string(op->global_id) + ", shard " +
            std::to_string(op->shard) + ")");
      }
      router_.push_back(
          {op->shard, shard_total[op->shard]++, /*alive=*/true});
    } else {
      if (op->global_id >= router_.size() ||
          !router_[op->global_id].alive) {
        return Status::Internal("router log: delete of a dead global id " +
                                std::to_string(op->global_id));
      }
      router_[op->global_id].alive = false;
    }
    ++info->router_records_replayed;
  }

  // Reconcile against the shards: with the shard-then-router write order
  // (and group_sync forced to 1) a healthy shard can only ever be *ahead*
  // of the router -- by unregistered trailing points (insert crash
  // window) or by tombstones the router still thinks alive (delete crash
  // window). A shard behind the router is corruption and degrades it.
  auto degrade = [&](size_t s, const std::string& why) {
    shards_[s].status = Status::Internal(why);
    shards_[s].index.reset();
    if (info->shards.size() > s) info->shards[s].status = shards_[s].status;
    ++degraded_count_;
    NNCELL_METRIC_COUNT(m_degraded_, 1);
  };
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].index == nullptr) continue;
    const size_t actual = shards_[s].index->points().size();
    const size_t expected = shard_total[s];
    if (actual < expected) {
      degrade(s, "shard " + std::to_string(s) + " holds " +
                     std::to_string(actual) + " points but the router maps " +
                     std::to_string(expected));
      continue;
    }
    for (size_t l = expected; l < actual; ++l) {
      router_.push_back({static_cast<uint32_t>(s), l,
                         shards_[s].index->IsAlive(l)});
      ++info->reconciled_inserts;
    }
  }

  // Rebuild the local -> global maps and reconcile aliveness.
  std::vector<uint64_t> next_local(manifest_.shard_count, 0);
  for (uint64_t g = 0; g < router_.size(); ++g) {
    shard::RouterEntry& e = router_[g];
    if (e.shard == shard::kRouterShardNone) continue;
    Shard& sh = shards_[e.shard];
    if (sh.index == nullptr) continue;  // degraded: map kept as recorded
    if (e.local != next_local[e.shard]++) {
      degrade(e.shard, "shard " + std::to_string(e.shard) +
                           ": router locals are not dense in global order");
      continue;
    }
    if (e.alive && !sh.index->IsAlive(e.local)) {
      e.alive = false;  // delete applied to the shard, router record lost
      ++info->reconciled_deletes;
    } else if (!e.alive && sh.index->IsAlive(e.local)) {
      degrade(e.shard, "shard " + std::to_string(e.shard) + ": local id " +
                           std::to_string(e.local) +
                           " alive but tombstoned in the router");
      continue;
    }
    sh.local_to_global.push_back(g);
  }
  (void)dopts;
  return Status::OK();
}

size_t ShardedIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  size_t n = 0;
  for (const Shard& s : shards_) {
    if (s.index != nullptr) n += s.index->size();
  }
  return n;
}

Status ShardedIndex::ShardStatus(size_t i) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(i));
  }
  return shards_[i].status;
}

bool ShardedIndex::IsAlive(uint64_t global_id) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return global_id < router_.size() && router_[global_id].alive;
}

StatusOr<NNCellIndex::QueryResult> ShardedIndex::Query(
    const double* q) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return QueryLocked(q, ApproxOptions{});
}

StatusOr<NNCellIndex::QueryResult> ShardedIndex::Query(
    const std::vector<double>& q) const {
  NNCELL_CHECK(q.size() == manifest_.dim);
  return Query(q.data());
}

StatusOr<NNCellIndex::QueryResult> ShardedIndex::Query(
    const double* q, const ApproxOptions& approx) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return QueryLocked(q, approx);
}

StatusOr<NNCellIndex::QueryResult> ShardedIndex::Query(
    const std::vector<double>& q, const ApproxOptions& approx) const {
  NNCELL_CHECK(q.size() == manifest_.dim);
  return Query(q.data(), approx);
}

StatusOr<NNCellIndex::QueryResult> ShardedIndex::QueryLocked(
    const double* q, const ApproxOptions& approx) const {
  size_t live = 0;
  for (const Shard& s : shards_) {
    if (s.index != nullptr) live += s.index->size();
  }
  if (live == 0) return Status::FailedPrecondition("index is empty");

  const size_t dim = manifest_.dim;
  std::vector<double> qm(q, q + dim);
  if (!options_.weights.empty()) {
    for (size_t i = 0; i < dim; ++i) qm[i] *= std::sqrt(options_.weights[i]);
  }
  const double qc = qm[manifest_.route_dim];

  // Probe order: nearest slab first (the owner's slab distance is 0), so
  // once a slab cannot beat or tie the best, neither can any later one.
  struct Probe {
    size_t idx;
    double slab_d2;
  };
  std::vector<Probe> order;
  order.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].index == nullptr || shards_[i].index->size() == 0) continue;
    order.push_back({i, manifest_.SlabMinDistSq(i, qc)});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Probe& a, const Probe& b) {
                     return a.slab_d2 < b.slab_d2;
                   });

  NNCellIndex::QueryResult best;
  double best_d2 = std::numeric_limits<double>::infinity();
  uint64_t best_gid = 0;
  bool have_best = false;
  size_t probed = 0;
  size_t candidates = 0;
  bool fallback = false;
  ApproxCertificate cert;
  double cert_bound = std::numeric_limits<double>::infinity();
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const Probe& pr = order[oi];
    if (have_best && pr.slab_d2 > best_d2 * kPruneSlack + kPruneSlackAbs) {
      NNCELL_METRIC_COUNT(m_pruned_, order.size() - oi);
      // Every unprobed shard's points are at least its slab distance away,
      // and later slabs are no closer than this one.
      cert_bound = std::min(cert_bound, std::sqrt(pr.slab_d2));
      break;
    }
    const Shard& sh = shards_[pr.idx];
    StatusOr<NNCellIndex::QueryResult> r = sh.index->Query(q, approx);
    if (!r.ok()) return r.status();
    ++probed;
    // nncell-lint: allow(relaxed-atomics) monotonic stats counter; readers only ever see a point-in-time sum, no ordering with shard state
    probe_counts_[pr.idx]->fetch_add(1, std::memory_order_relaxed);
    candidates += r->candidates;
    fallback = fallback || r->used_fallback;
    cert.approximate = cert.approximate || r->approx.approximate;
    cert.terminated_early = cert.terminated_early || r->approx.terminated_early;
    cert.truncated = cert.truncated || r->approx.truncated;
    cert.leaf_visits += r->approx.leaf_visits;
    cert_bound = std::min(cert_bound, r->approx.bound);
    // Exact merge key: the pair-kernel squared distance (bit-equal to the
    // shard's internal winner) plus the global id, exactly the unsharded
    // scan's comparison.
    const double d2 =
        L2DistSq(sh.index->points()[r->id], qm.data(), dim);
    const uint64_t gid = sh.local_to_global[r->id];
    if (!have_best || d2 < best_d2 || (d2 == best_d2 && gid < best_gid)) {
      have_best = true;
      best = std::move(*r);
      best.id = gid;
      best_d2 = d2;
      best_gid = gid;
    }
  }
  NNCELL_CHECK(have_best);
  best.candidates = candidates;
  best.used_fallback = fallback;
  if (approx.enabled()) {
    cert.bound = cert_bound;
    best.approx = cert;
  }
  NNCELL_METRIC_RECORD(m_fanout_, probed);
  NNCELL_METRIC_COUNT(m_probes_, probed);
  return best;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::QueryBatch(
    const PointSet& queries) const {
  return QueryBatch(queries, ApproxOptions{});
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::QueryBatch(
    const PointSet& queries, const ApproxOptions& approx) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  if (queries.dim() != manifest_.dim) {
    return Status::InvalidArgument("dimension mismatch");
  }
  const size_t n = queries.size();
  std::vector<NNCellIndex::QueryResult> results(n);
  if (thread_pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      StatusOr<NNCellIndex::QueryResult> r = QueryLocked(queries[i], approx);
      if (!r.ok()) return r.status();
      results[i] = std::move(*r);
    }
    return results;
  }
  std::vector<Status> errors(n, Status::OK());
  thread_pool_->ParallelFor(0, n, [&](size_t i) {
    StatusOr<NNCellIndex::QueryResult> r = QueryLocked(queries[i], approx);
    if (r.ok()) {
      results[i] = std::move(*r);
    } else {
      errors[i] = r.status();
    }
  });
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  return results;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::MergeListQuery(
    const double* q, size_t k, double radius, bool is_range,
    const ApproxOptions& approx) const {
  size_t live = 0;
  for (const Shard& s : shards_) {
    if (s.index != nullptr) live += s.index->size();
  }
  if (live == 0) return Status::FailedPrecondition("index is empty");
  if (is_range && radius < 0.0) {
    return Status::InvalidArgument("negative radius");
  }
  std::vector<NNCellIndex::QueryResult> out;
  if (!is_range) {
    if (k == 0) return out;
    k = std::min(k, live);
  }

  const size_t dim = manifest_.dim;
  std::vector<double> qm(q, q + dim);
  if (!options_.weights.empty()) {
    for (size_t i = 0; i < dim; ++i) qm[i] *= std::sqrt(options_.weights[i]);
  }
  const double qc = qm[manifest_.route_dim];

  struct Probe {
    size_t idx;
    double slab_d2;
  };
  std::vector<Probe> order;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].index == nullptr || shards_[i].index->size() == 0) continue;
    order.push_back({i, manifest_.SlabMinDistSq(i, qc)});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Probe& a, const Probe& b) {
                     return a.slab_d2 < b.slab_d2;
                   });

  // Merged candidates keyed exactly like the unsharded sort: (squared
  // distance, global id) ascending.
  struct Merged {
    double d2;
    uint64_t gid;
    NNCellIndex::QueryResult res;
  };
  std::vector<Merged> merged;
  const double radius_bound =
      is_range ? radius * radius * kPruneSlack + kPruneSlackAbs : 0.0;
  size_t probed = 0;
  ApproxCertificate cert;
  double cert_bound = std::numeric_limits<double>::infinity();
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const Probe& pr = order[oi];
    bool skip;
    if (is_range) {
      skip = pr.slab_d2 > radius_bound;
    } else {
      skip = merged.size() >= k &&
             pr.slab_d2 >
                 merged[k - 1].d2 * kPruneSlack + kPruneSlackAbs;
    }
    if (skip) {
      NNCELL_METRIC_COUNT(m_pruned_, order.size() - oi);
      // Every unprobed shard's points are at least its slab distance away,
      // and later slabs are no closer than this one.
      cert_bound = std::min(cert_bound, std::sqrt(pr.slab_d2));
      break;
    }
    const Shard& sh = shards_[pr.idx];
    StatusOr<std::vector<NNCellIndex::QueryResult>> r =
        is_range ? sh.index->RangeSearch(q, radius)
                 : sh.index->KnnQuery(q, k, approx);
    if (!r.ok()) return r.status();
    ++probed;
    if (!r->empty()) {
      const ApproxCertificate& sc = r->front().approx;
      cert.approximate = cert.approximate || sc.approximate;
      cert.terminated_early = cert.terminated_early || sc.terminated_early;
      cert.truncated = cert.truncated || sc.truncated;
      cert.leaf_visits += sc.leaf_visits;
      cert_bound = std::min(cert_bound, sc.bound);
    }
    // nncell-lint: allow(relaxed-atomics) monotonic stats counter; readers only ever see a point-in-time sum, no ordering with shard state
    probe_counts_[pr.idx]->fetch_add(1, std::memory_order_relaxed);
    for (NNCellIndex::QueryResult& res : *r) {
      Merged m;
      m.d2 = L2DistSq(sh.index->points()[res.id], qm.data(), dim);
      m.gid = sh.local_to_global[res.id];
      res.id = m.gid;
      m.res = std::move(res);
      merged.push_back(std::move(m));
    }
    std::sort(merged.begin(), merged.end(),
              [](const Merged& a, const Merged& b) {
                return a.d2 < b.d2 || (a.d2 == b.d2 && a.gid < b.gid);
              });
    if (!is_range && merged.size() > k) merged.resize(k);
  }
  NNCELL_METRIC_RECORD(m_fanout_, probed);
  NNCELL_METRIC_COUNT(m_probes_, probed);
  out.reserve(merged.size());
  for (Merged& m : merged) out.push_back(std::move(m.res));
  if (approx.enabled()) {
    cert.bound = cert_bound;
    for (NNCellIndex::QueryResult& res : out) res.approx = cert;
  }
  return out;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::KnnQuery(
    const double* q, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return MergeListQuery(q, k, 0.0, /*is_range=*/false, ApproxOptions{});
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::KnnQuery(
    const std::vector<double>& q, size_t k) const {
  NNCELL_CHECK(q.size() == manifest_.dim);
  return KnnQuery(q.data(), k);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::KnnQuery(
    const double* q, size_t k, const ApproxOptions& approx) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return MergeListQuery(q, k, 0.0, /*is_range=*/false, approx);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::KnnQuery(
    const std::vector<double>& q, size_t k,
    const ApproxOptions& approx) const {
  NNCELL_CHECK(q.size() == manifest_.dim);
  return KnnQuery(q.data(), k, approx);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::RangeSearch(
    const double* q, double radius) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return MergeListQuery(q, 0, radius, /*is_range=*/true, ApproxOptions{});
}

StatusOr<std::vector<NNCellIndex::QueryResult>> ShardedIndex::RangeSearch(
    const std::vector<double>& q, double radius) const {
  NNCELL_CHECK(q.size() == manifest_.dim);
  return RangeSearch(q.data(), radius);
}

StatusOr<uint64_t> ShardedIndex::Insert(const std::vector<double>& point) {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  if (point.size() != manifest_.dim) {
    return Status::InvalidArgument("dimension mismatch");
  }
  const size_t s = manifest_.Route(RouteCoord(point.data()));
  Shard& sh = shards_[s];
  if (sh.index == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(s) +
        " is unavailable: " + sh.status.message());
  }
  StatusOr<uint64_t> local = sh.index->Insert(point);
  if (!local.ok()) return local.status();
  NNCELL_CHECK(*local == sh.local_to_global.size());
  const uint64_t gid = router_.size();
  Status log_st = Status::OK();
  if (router_wal_ != nullptr) {
    // Shard-then-router order: the shard op is durable (its WAL synced)
    // before the router record exists, so recovery's reconciliation only
    // ever sees the shard ahead.
    log_st = router_wal_->Append(
        shard::EncodeRouterInsert(gid, static_cast<uint32_t>(s)));
  }
  router_.push_back({static_cast<uint32_t>(s), *local, /*alive=*/true});
  sh.local_to_global.push_back(gid);
  if (!log_st.ok()) {
    // The shard applied the point but the router record is not durable:
    // the insert is in doubt (recovery re-derives this exact global id
    // from the shard), so surface the log failure to the caller.
    return log_st;
  }
  if (ShouldAutoRebalance()) {
    // Best effort: a failed rebalance leaves the current epoch intact
    // and the acknowledged insert is unaffected.
    (void)RebalanceLocked(/*force=*/false);
  }
  return gid;
}

Status ShardedIndex::Delete(uint64_t global_id) {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  if (global_id >= router_.size() || !router_[global_id].alive) {
    return Status::NotFound("no live point with this id");
  }
  const shard::RouterEntry e = router_[global_id];
  Shard& sh = shards_[e.shard];
  if (sh.index == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(e.shard) +
        " is unavailable: " + sh.status.message());
  }
  NNCELL_RETURN_IF_ERROR(sh.index->Delete(e.local));
  router_[global_id].alive = false;
  if (router_wal_ != nullptr) {
    NNCELL_RETURN_IF_ERROR(
        router_wal_->Append(shard::EncodeRouterDelete(global_id)));
  }
  return Status::OK();
}

Status ShardedIndex::BulkBuild(const PointSet& pts) {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  if (pts.dim() != manifest_.dim) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (!router_.empty()) {
    return Status::FailedPrecondition(
        "sharded BulkBuild requires an empty index");
  }
  if (degraded_count_ > 0) {
    return Status::FailedPrecondition("index has degraded shards");
  }

  // Deduplicate exactly like the unsharded build (duplicates are skipped,
  // first occurrence wins), so global ids match the oracle's.
  std::map<std::vector<double>, bool> seen;
  std::vector<size_t> unique;
  unique.reserve(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    auto ins = seen.emplace(pts.Get(i), true);
    if (ins.second) unique.push_back(i);
  }

  const size_t k = manifest_.shard_count;
  if (!unique.empty()) {
    // Quantile-balanced cuts over the metric route coordinates.
    std::vector<double> coords;
    coords.reserve(unique.size());
    for (size_t i : unique) coords.push_back(RouteCoord(pts[i]));
    std::sort(coords.begin(), coords.end());
    manifest_.cuts.clear();
    for (size_t j = 1; j < k; ++j) {
      manifest_.cuts.push_back(coords[j * coords.size() / k]);
    }
    // The manifest must describe the data before any shard holds it: a
    // crash after shard builds but before a manifest write would leave
    // points routed by cuts the manifest does not record.
    if (durable()) {
      NNCELL_RETURN_IF_ERROR(shard::WriteManifest(
          shard::JoinPath(dir_, shard::kShardManifestFileName), manifest_));
    }
  }

  std::vector<PointSet> parts(k, PointSet(manifest_.dim));
  std::vector<std::vector<uint64_t>> gids(k);
  uint64_t gid = 0;
  for (size_t i : unique) {
    const size_t s = manifest_.Route(RouteCoord(pts[i]));
    parts[s].Add(pts[i]);
    gids[s].push_back(gid++);
  }

  std::vector<Status> errors(k, Status::OK());
  auto build_one = [&](size_t s) {
    if (parts[s].size() == 0) return;
    errors[s] = shards_[s].index->BulkBuild(parts[s]);
  };
  if (thread_pool_ != nullptr && k > 1) {
    thread_pool_->ParallelFor(0, k, build_one);
  } else {
    for (size_t s = 0; s < k; ++s) build_one(s);
  }
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }

  router_.assign(gid, shard::RouterEntry());
  for (size_t s = 0; s < k; ++s) {
    shards_[s].local_to_global = gids[s];
    for (size_t l = 0; l < gids[s].size(); ++l) {
      router_[gids[s][l]] = {static_cast<uint32_t>(s), l, /*alive=*/true};
    }
  }
  if (durable()) {
    const uint64_t lsn = router_wal_->last_lsn();
    NNCELL_RETURN_IF_ERROR(WriteRouterStateLocked(
        shard::JoinPath(dir_, shard::kRouterSnapshotFileName), lsn));
    NNCELL_RETURN_IF_ERROR(router_wal_->Truncate(lsn));
  }
  return Status::OK();
}

Status ShardedIndex::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  return CheckpointLocked();
}

Status ShardedIndex::CheckpointLocked() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "Checkpoint() requires a durable index (use ShardedIndex::Open)");
  }
  const size_t k = shards_.size();
  std::vector<Status> errors(k, Status::OK());
  auto ckpt_one = [&](size_t s) {
    if (shards_[s].index == nullptr || !shards_[s].index->durable()) return;
    errors[s] = shards_[s].index->Checkpoint();
  };
  if (thread_pool_ != nullptr && k > 1) {
    thread_pool_->ParallelFor(0, k, ckpt_one);
  } else {
    for (size_t s = 0; s < k; ++s) ckpt_one(s);
  }
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  const uint64_t lsn = router_wal_->last_lsn();
  NNCELL_RETURN_IF_ERROR(WriteRouterStateLocked(
      shard::JoinPath(dir_, shard::kRouterSnapshotFileName), lsn));
  return router_wal_->Truncate(lsn);
}

Status ShardedIndex::WriteRouterStateLocked(const std::string& path,
                                            uint64_t covered_lsn) const {
  shard::RouterSnapshot snap;
  snap.covered_lsn = covered_lsn;
  snap.entries = router_;
  return shard::WriteRouterSnapshot(path, snap);
}

bool ShardedIndex::ShouldAutoRebalance() const {
  if (!sopts_.auto_rebalance || degraded_count_ > 0) return false;
  size_t live = 0;
  size_t max_live = 0;
  for (const Shard& s : shards_) {
    const size_t l = s.index->size();
    live += l;
    max_live = std::max(max_live, l);
  }
  if (live < sopts_.min_rebalance_points) return false;
  if (sopts_.target_points_per_shard > 0) {
    const size_t want = std::max<size_t>(
        1, std::min<size_t>((live + sopts_.target_points_per_shard - 1) /
                                sopts_.target_points_per_shard,
                            shard::kMaxShards));
    if (want != shards_.size()) return true;
  }
  const double mean =
      static_cast<double>(live) / static_cast<double>(shards_.size());
  return static_cast<double>(max_live) > sopts_.max_skew * mean;
}

Status ShardedIndex::Rebalance(bool force) {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  return RebalanceLocked(force);
}

Status ShardedIndex::RebalanceLocked(bool force) {
  if (degraded_count_ > 0) {
    return Status::FailedPrecondition(
        "cannot rebalance: " + std::to_string(degraded_count_) +
        " shard(s) degraded (repair or restore them first)");
  }
  if (!force && !ShouldAutoRebalance()) return Status::OK();

  // Gather the live points (ascending global id, so every new shard's
  // locals stay ascending in global id) in original coordinates.
  std::vector<uint64_t> live_gids;
  PointSet live_pts(manifest_.dim);
  for (uint64_t g = 0; g < router_.size(); ++g) {
    const shard::RouterEntry& e = router_[g];
    if (!e.alive || e.shard == shard::kRouterShardNone) continue;
    live_gids.push_back(g);
    live_pts.Add(shards_[e.shard].index->OriginalPoint(e.local));
  }
  if (live_gids.empty()) return Status::OK();

  size_t new_k = manifest_.shard_count;
  if (sopts_.target_points_per_shard > 0) {
    new_k = std::max<size_t>(
        1, std::min<size_t>((live_gids.size() +
                             sopts_.target_points_per_shard - 1) /
                                sopts_.target_points_per_shard,
                            shard::kMaxShards));
  }
  std::vector<double> coords;
  coords.reserve(live_gids.size());
  for (size_t i = 0; i < live_pts.size(); ++i) {
    coords.push_back(RouteCoord(live_pts[i]));
  }
  std::sort(coords.begin(), coords.end());
  shard::ShardManifest next = manifest_;
  next.shard_count = static_cast<uint32_t>(new_k);
  next.epoch = manifest_.epoch + 1;
  next.cuts.clear();
  for (size_t j = 1; j < new_k; ++j) {
    next.cuts.push_back(coords[j * coords.size() / new_k]);
  }

  // Partition by the new cuts.
  std::vector<PointSet> parts(new_k, PointSet(manifest_.dim));
  std::vector<std::vector<uint64_t>> gids(new_k);
  for (size_t i = 0; i < live_pts.size(); ++i) {
    const size_t s = next.Route(RouteCoord(live_pts[i]));
    parts[s].Add(live_pts[i]);
    gids[s].push_back(live_gids[i]);
  }

  NNCELL_RETURN_IF_ERROR(CheckSite("shard.rebalance.stage"));

  std::vector<Shard> next_shards(new_k);
  std::vector<Status> errors(new_k, Status::OK());
  uint64_t covered_lsn = 0;
  if (durable()) {
    NNCELL_RETURN_IF_ERROR(shard::DiscardStagingIfPresent(dir_, nullptr));
    const std::string staging =
        shard::JoinPath(dir_, shard::kRebalanceStagingDirName);
    NNCELL_RETURN_IF_ERROR(fs::EnsureDirectory(staging));
    auto build_one = [&](size_t s) {
      NNCellIndex::RecoveryInfo ri;
      StatusOr<std::unique_ptr<NNCellIndex>> idx = NNCellIndex::Open(
          shard::JoinPath(staging, shard::ShardDirName(s)), manifest_.dim,
          options_, dopts_, &ri);
      if (!idx.ok()) {
        errors[s] = idx.status();
        return;
      }
      if (parts[s].size() > 0) {
        errors[s] = (*idx)->BulkBuild(parts[s]);
      }
      // Close the staged shard before the directory is renamed under it.
      idx->reset();
    };
    if (thread_pool_ != nullptr && new_k > 1) {
      thread_pool_->ParallelFor(0, new_k, build_one);
    } else {
      for (size_t s = 0; s < new_k; ++s) build_one(s);
    }
    for (const Status& st : errors) {
      if (!st.ok()) return st;
    }
    NNCELL_RETURN_IF_ERROR(router_wal_->Sync());
    covered_lsn = router_wal_->last_lsn();
    // Staged router snapshot with the *new* mapping.
    shard::RouterSnapshot snap;
    snap.covered_lsn = covered_lsn;
    snap.entries.assign(router_.size(), shard::RouterEntry());
    for (uint64_t g = 0; g < router_.size(); ++g) {
      snap.entries[g] = {shard::kRouterShardNone, 0, false};
    }
    for (size_t s = 0; s < new_k; ++s) {
      for (size_t l = 0; l < gids[s].size(); ++l) {
        snap.entries[gids[s][l]] = {static_cast<uint32_t>(s), l, true};
      }
    }
    NNCELL_RETURN_IF_ERROR(shard::WriteRouterSnapshot(
        shard::JoinPath(staging, shard::kRouterSnapshotFileName), snap));
    NNCELL_RETURN_IF_ERROR(shard::WriteManifest(
        shard::JoinPath(staging, shard::kShardManifestFileName), next));

    // Commit + finalize: one atomic rename makes the new epoch durable.
    NNCELL_RETURN_IF_ERROR(shard::CommitStagedInstall(dir_));
    NNCELL_RETURN_IF_ERROR(shard::FinalizeInstallIfPresent(dir_, nullptr));

    // Reopen the installed shards and the recreated router log.
    manifest_ = next;
    for (size_t s = 0; s < new_k; ++s) {
      NNCellIndex::RecoveryInfo ri;
      Status st = OpenDurableShard(s, &next_shards[s], &ri);
      if (!st.ok()) {
        return Status::Internal("rebalance: reopening installed shard " +
                                std::to_string(s) + ": " + st.message());
      }
    }
    router_wal_.reset();
    WriteAheadLog::RecoverResult rr;
    StatusOr<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(
        shard::JoinPath(dir_, shard::kRouterLogFileName), covered_lsn,
        /*group_sync=*/1, /*strict_header=*/false, &rr);
    if (!wal.ok()) return wal.status();
    router_wal_ = std::move(*wal);
  } else {
    auto build_one = [&](size_t s) {
      Status st = MakeMemoryShard(&next_shards[s]);
      if (!st.ok()) {
        errors[s] = st;
        return;
      }
      if (parts[s].size() > 0) {
        errors[s] = next_shards[s].index->BulkBuild(parts[s]);
      }
    };
    if (thread_pool_ != nullptr && new_k > 1) {
      thread_pool_->ParallelFor(0, new_k, build_one);
    } else {
      for (size_t s = 0; s < new_k; ++s) build_one(s);
    }
    for (const Status& st : errors) {
      if (!st.ok()) return st;
    }
    manifest_ = next;
  }

  // Install the new epoch in memory.
  for (uint64_t g = 0; g < router_.size(); ++g) {
    router_[g] = {shard::kRouterShardNone, 0, false};
  }
  for (size_t s = 0; s < new_k; ++s) {
    next_shards[s].local_to_global = gids[s];
    for (size_t l = 0; l < gids[s].size(); ++l) {
      router_[gids[s][l]] = {static_cast<uint32_t>(s), l, true};
    }
  }
  shards_ = std::move(next_shards);
  probe_counts_.resize(new_k);
  for (auto& p : probe_counts_) {
    p = std::make_unique<std::atomic<uint64_t>>(0);
  }
  NNCELL_METRIC_COUNT(m_rebalances_, 1);
  NNCELL_METRIC_COUNT(m_moved_, live_gids.size());
  if (metrics::Registry::Enabled()) {
    m_count_->Set(static_cast<int64_t>(new_k));
    m_epoch_->Set(static_cast<int64_t>(manifest_.epoch));
  }
  return Status::OK();
}

ShardedIndex::ShardStats ShardedIndex::Stats() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  ShardStats st;
  st.epoch = manifest_.epoch;
  st.route_dim = manifest_.route_dim;
  st.cuts = manifest_.cuts;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    st.healthy.push_back(s.index != nullptr);
    st.live.push_back(s.index != nullptr ? s.index->size() : 0);
    st.total.push_back(s.index != nullptr ? s.index->points().size() : 0);
    st.probes.push_back(
        // nncell-lint: allow(relaxed-atomics) stats snapshot of a monotonic counter; staleness is acceptable, no ordering needed
        probe_counts_[i]->load(std::memory_order_relaxed));
  }
  return st;
}

std::string ShardedIndex::StatsJson() const {
  ShardStats s = Stats();
  char buf[64];
  std::string out = "{\"count\":" + std::to_string(s.live.size());
  out += ",\"cuts\":[";
  for (size_t i = 0; i < s.cuts.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.17g", i ? "," : "", s.cuts[i]);
    out += buf;
  }
  out += "],\"degraded\":" + std::to_string(degraded_shards());
  out += ",\"epoch\":" + std::to_string(s.epoch);
  out += ",\"route_dim\":" + std::to_string(s.route_dim);
  out += ",\"shards\":[";
  for (size_t i = 0; i < s.live.size(); ++i) {
    if (i) out += ",";
    out += "{\"healthy\":";
    out += s.healthy[i] ? "true" : "false";
    out += ",\"live\":" + std::to_string(s.live[i]);
    out += ",\"probes\":" + std::to_string(s.probes[i]);
    out += ",\"total\":" + std::to_string(s.total[i]);
    out += "}";
  }
  out += "]}";
  return out;
}

RTreeCore::TreeInfo ShardedIndex::TreeInfo() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  RTreeCore::TreeInfo agg;
  for (const Shard& s : shards_) {
    if (s.index == nullptr) continue;
    RTreeCore::TreeInfo t = s.index->TreeInfo();
    agg.height = std::max(agg.height, t.height);
    agg.size += t.size;
    agg.num_nodes += t.num_nodes;
    agg.num_leaves += t.num_leaves;
    agg.num_supernodes += t.num_supernodes;
    agg.total_pages += t.total_pages;
  }
  return agg;
}

std::string ShardedIndex::ValidateTree() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  std::string out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].index == nullptr) continue;
    std::string err = shards_[i].index->ValidateTree();
    if (!err.empty()) {
      out += "shard " + std::to_string(i) + ": " + err + "\n";
    }
  }
  return out;
}

double ShardedIndex::ExpectedCandidates() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  double sum = 0.0;
  for (const Shard& s : shards_) {
    if (s.index != nullptr && s.index->size() > 0) {
      sum += s.index->ExpectedCandidates();
    }
  }
  return sum;
}

Status ShardedIndex::CheckInvariants(size_t sample_queries,
                                     uint64_t seed) const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  const size_t per_shard =
      shards_.empty() ? 0 : sample_queries / shards_.size() + 1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].index == nullptr) continue;
    Status st = shards_[i].index->CheckInvariants(per_shard, seed + i);
    if (!st.ok()) {
      return Status::Internal("shard " + std::to_string(i) + ": " +
                              st.message());
    }
  }

  // Router map checks: dense ascending locals, aliveness agreement, and
  // the routing invariant (each live point's metric route coordinate lies
  // in its shard's slab).
  std::vector<uint64_t> next_local(shards_.size(), 0);
  size_t router_live = 0;
  for (uint64_t g = 0; g < router_.size(); ++g) {
    const shard::RouterEntry& e = router_[g];
    if (e.shard == shard::kRouterShardNone) {
      if (e.alive) return Status::Internal("live entry without a shard");
      continue;
    }
    if (e.shard >= shards_.size()) {
      return Status::Internal("router entry maps to a missing shard");
    }
    const Shard& sh = shards_[e.shard];
    if (sh.index == nullptr) continue;
    if (e.local != next_local[e.shard]++) {
      return Status::Internal("router locals not dense in global order");
    }
    if (sh.local_to_global.size() <= e.local ||
        sh.local_to_global[e.local] != g) {
      return Status::Internal("local_to_global disagrees with the router");
    }
    if (e.alive != sh.index->IsAlive(e.local)) {
      return Status::Internal("router aliveness disagrees with shard " +
                              std::to_string(e.shard));
    }
    if (e.alive) {
      ++router_live;
      const double c = sh.index->points()[e.local][manifest_.route_dim];
      if (e.shard > 0 && c < manifest_.cuts[e.shard - 1]) {
        return Status::Internal("live point below its shard's slab");
      }
      if (e.shard + 1 < shards_.size() && !(c < manifest_.cuts[e.shard])) {
        return Status::Internal("live point above its shard's slab");
      }
    }
  }
  size_t shard_live = 0;
  for (const Shard& s : shards_) {
    if (s.index != nullptr) shard_live += s.index->size();
  }
  if (degraded_count_ == 0 && router_live != shard_live) {
    return Status::Internal("router live count disagrees with the shards");
  }

  // Sampled cross-shard differential: scatter-gather vs. a brute-force
  // scan over every healthy shard with the same (d2, global id) key.
  if (shard_live > 0) {
    uint64_t rng = seed ^ 0x5eedf00dULL;
    const size_t n = std::min<size_t>(sample_queries, 25);
    for (size_t t = 0; t < n; ++t) {
      std::vector<double> q(manifest_.dim);
      for (double& v : q) v = UnitUniform(&rng);
      std::vector<double> qm = q;
      if (!options_.weights.empty()) {
        for (size_t i = 0; i < qm.size(); ++i) {
          qm[i] *= std::sqrt(options_.weights[i]);
        }
      }
      double best_d2 = std::numeric_limits<double>::infinity();
      uint64_t best_gid = 0;
      bool have = false;
      for (size_t s = 0; s < shards_.size(); ++s) {
        const Shard& sh = shards_[s];
        if (sh.index == nullptr) continue;
        for (size_t l = 0; l < sh.index->points().size(); ++l) {
          if (!sh.index->IsAlive(l)) continue;
          const double d2 =
              L2DistSq(sh.index->points()[l], qm.data(), manifest_.dim);
          const uint64_t gid = sh.local_to_global[l];
          if (!have || d2 < best_d2 || (d2 == best_d2 && gid < best_gid)) {
            have = true;
            best_d2 = d2;
            best_gid = gid;
          }
        }
      }
      StatusOr<NNCellIndex::QueryResult> r =
          QueryLocked(q.data(), ApproxOptions{});
      if (!r.ok()) return r.status();
      if (r->id != best_gid) {
        return Status::Internal("sampled scatter-gather query returned a "
                                "non-NN global id");
      }
    }
  }
  return Status::OK();
}

void ShardedIndex::SetNumThreads(size_t num_threads) {
  const size_t resolved =
      num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  if (resolved <= 1) {
    thread_pool_.reset();
  } else {
    thread_pool_ = std::make_unique<ThreadPool>(resolved);
  }
}

}  // namespace nncell
