#ifndef NNCELL_SHARD_SHARDED_INDEX_H_
#define NNCELL_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/point_set.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "nncell/nncell_index.h"
#include "shard/shard_manifest.h"

namespace nncell {

// Policy knobs of the sharded index that are not part of the persisted
// manifest (the manifest records what the data *is*; these say how the
// index behaves around it).
struct ShardedOptions {
  // Shard count when creating a fresh index (ignored when a manifest
  // exists). Clamped to [1, shard::kMaxShards].
  size_t num_shards = 1;
  // Dimension whose metric coordinate the cuts partition.
  uint32_t route_dim = 0;

  // Online rebalance policy: after an insert, when the index holds at
  // least `min_rebalance_points` live points and the fullest shard
  // exceeds `max_skew` times the mean shard size, the insert triggers a
  // rebalance before returning. Rebalance() can always be called
  // explicitly regardless of these thresholds.
  bool auto_rebalance = true;
  double max_skew = 4.0;
  size_t min_rebalance_points = 256;
  // When non-zero, a rebalance also re-chooses the shard count as
  // ceil(live / target_points_per_shard) (splits and merges under growth
  // and shrinkage); zero keeps the shard count fixed.
  size_t target_points_per_shard = 0;
};

// A horizontal partition of the NN-cell index: K independent NNCellIndex
// shards, each owning the half-open slab of metric space recorded in the
// shard manifest, plus a router that maps global ids to (shard, local id)
// pairs. Queries scatter to the owning shard and every shard whose slab
// can still cross the best-distance boundary (the paper's pruning
// argument survives partitioning: a cut only adds boundary shards to the
// probe set), and results merge bit-identically to a single unsharded
// index. See docs/SHARDING.md for the format, the pruning invariant and
// the rebalance state machine.
//
// Thread safety mirrors NNCellIndex: any number of concurrent readers
// (Query / QueryBatch / KnnQuery / RangeSearch / accessors), mutations
// externally exclusive. Internally an epoch lock (shared for queries,
// exclusive for mutations and rebalance) makes the rebalance install
// atomic with respect to in-flight queries: queries drain, the new epoch
// installs, queries resume on the new shard set.
class ShardedIndex {
 public:
  struct ShardRecovery {
    Status status;  // per-shard open result; !ok() => shard is degraded
    NNCellIndex::RecoveryInfo info;
  };

  // What Open() found and did, for operators and the recovery tests.
  struct RecoveryInfo {
    bool created = false;             // fresh directory, nothing recovered
    bool finalized_install = false;   // finished a committed rebalance
    bool discarded_staging = false;   // dropped an uncommitted rebalance
    uint64_t router_records_replayed = 0;
    uint64_t router_records_skipped = 0;
    // Shard-ahead-of-router reconciliation (the crash window between a
    // shard's WAL append and the router-log append): points found in a
    // shard with no router entry get the next global ids; router entries
    // still alive for points a shard replayed as deleted are tombstoned.
    uint64_t reconciled_inserts = 0;
    uint64_t reconciled_deletes = 0;
    std::vector<ShardRecovery> shards;
  };

  // In-memory sharded index (no durability, like the NNCellIndex
  // constructor). Shards share no storage; each gets its own page file
  // and buffer pool.
  static StatusOr<std::unique_ptr<ShardedIndex>> Create(size_t dim,
                                                        NNCellOptions options,
                                                        ShardedOptions sopts);

  // Opens (or creates) a durable sharded index rooted at `dir`: finishes
  // or discards an interrupted rebalance, loads and validates the
  // manifest (an unrecognized manifest version is an InvalidArgument
  // error, never a guess), opens every shard's NNCellIndex, replays the
  // router log over the router snapshot and reconciles it against the
  // shards. A shard that fails to open degrades the index (its status is
  // reported per shard and Insert/Delete touching it fail) instead of
  // destroying it; queries answer from the healthy shards.
  // The per-shard WAL group_sync is forced to 1: the shard-then-router
  // write order that recovery reconciliation relies on needs every
  // acknowledged shard op durable.
  static StatusOr<std::unique_ptr<ShardedIndex>> Open(
      const std::string& dir, size_t dim, NNCellOptions options,
      NNCellIndex::DurableOptions dopts, ShardedOptions sopts,
      RecoveryInfo* info = nullptr);

  ~ShardedIndex();
  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  size_t dim() const { return manifest_.dim; }
  size_t num_shards() const { return manifest_.shard_count; }
  uint64_t epoch() const { return manifest_.epoch; }
  const NNCellOptions& options() const { return options_; }
  const ShardedOptions& sharded_options() const { return sopts_; }
  bool durable() const { return !dir_.empty(); }
  size_t size() const;  // live points across healthy shards

  bool degraded() const { return degraded_count_ > 0; }
  size_t degraded_shards() const { return degraded_count_; }
  // OK for a healthy shard, the open failure for a degraded one.
  Status ShardStatus(size_t i) const;

  bool IsAlive(uint64_t global_id) const;

  // Scatter-gather nearest neighbor: probes the owning shard first, then
  // every shard whose slab can still hold a point at (or tied with) the
  // best distance, nearest slab first. The returned id/dist/point are
  // bit-identical to an unsharded index over the same inserts;
  // `candidates` sums the probed shards' candidate sets.
  StatusOr<NNCellIndex::QueryResult> Query(const double* q) const;
  StatusOr<NNCellIndex::QueryResult> Query(const std::vector<double>& q) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> KnnQuery(const double* q,
                                                           size_t k) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> KnnQuery(
      const std::vector<double>& q, size_t k) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> RangeSearch(
      const double* q, double radius) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> RangeSearch(
      const std::vector<double>& q, double radius) const;

  // Approximate query tier (docs/APPROXIMATE.md): every probed shard runs
  // its certified / bounded-effort traversal with the same knobs, and the
  // merged answer carries an aggregate certificate (leaf visits summed,
  // flags OR'd, bound = min over probed shards' bounds and pruned shards'
  // slab distances). The (1+epsilon) guarantee survives the merge: a
  // pruned slab provably cannot beat the returned best, and the winning
  // shard's own certificate covers its slab. When !approx.enabled() these
  // dispatch to the exact overloads above, bit-identically. The leaf-visit
  // budget applies per probed shard, not globally.
  StatusOr<NNCellIndex::QueryResult> Query(const double* q,
                                           const ApproxOptions& approx) const;
  StatusOr<NNCellIndex::QueryResult> Query(const std::vector<double>& q,
                                           const ApproxOptions& approx) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> KnnQuery(
      const double* q, size_t k, const ApproxOptions& approx) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> KnnQuery(
      const std::vector<double>& q, size_t k,
      const ApproxOptions& approx) const;

  // Routes to the owning shard, inserts there (WAL first), then journals
  // the (global id, shard) assignment in the router log. Returns the
  // global id. May trigger an online rebalance per ShardedOptions; the
  // insert itself is acknowledged either way.
  StatusOr<uint64_t> Insert(const std::vector<double>& point);
  Status Delete(uint64_t global_id);

  // Static build: partitions the (deduplicated) input along
  // quantile-balanced cuts, builds every shard in parallel over the
  // thread pool, then installs the router map. Requires an empty index.
  Status BulkBuild(const PointSet& pts);

  // Checkpoints every healthy shard (in parallel), then folds the router
  // log into a fresh router snapshot.
  Status Checkpoint();

  // Recomputes quantile-balanced cuts (and, with target_points_per_shard,
  // the shard count) from the live points and rebuilds the shards under
  // the new routing; durable indexes stage the new epoch and install it
  // atomically (docs/SHARDING.md, "Rebalance epoch state machine").
  // No-op (OK) when the index is balanced and `force` is false. Fails
  // FailedPrecondition while any shard is degraded.
  Status Rebalance(bool force = true);

  // Per-shard observability for `nncell_cli stats --json` and the
  // server's STATS_JSON (the metrics registry carries the aggregates;
  // these are the per-shard breakdowns).
  struct ShardStats {
    uint64_t epoch = 0;
    std::vector<uint64_t> live;        // live points per shard
    std::vector<uint64_t> total;       // registered incl. tombstones
    std::vector<uint64_t> probes;      // queries that probed the shard
    std::vector<bool> healthy;
    std::vector<double> cuts;
    uint32_t route_dim = 0;
  };
  ShardStats Stats() const;

  // Stats() rendered as one stable JSON object (sorted keys):
  // {"count":K,"cuts":[...],"degraded":D,"epoch":E,"route_dim":R,
  //  "shards":[{"healthy":b,"live":n,"probes":n,"total":n},...]}.
  // The "shard" member of `nncell_cli stats --json` and the server's
  // STATS_JSON response.
  std::string StatsJson() const;

  // Aggregates over the healthy shards (test / CLI support).
  RTreeCore::TreeInfo TreeInfo() const;
  std::string ValidateTree() const;
  double ExpectedCandidates() const;

  // Deep self-check: every shard's own invariants, the router map
  // (bijective onto shard points, aliveness agrees, locals dense and
  // ascending in global id), and the routing invariant (every live
  // point's metric route coordinate lies in its shard's slab).
  Status CheckInvariants(size_t sample_queries = 100,
                         uint64_t seed = 0x5eed) const;

  void SetNumThreads(size_t num_threads);

 private:
  struct Shard {
    // In-memory mode storage (durable shards own theirs internally).
    std::unique_ptr<PageFile> file;
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<NNCellIndex> index;
    Status status = Status::OK();  // !ok() => degraded, index == nullptr
    std::vector<uint64_t> local_to_global;
  };

  ShardedIndex(NNCellOptions options, ShardedOptions sopts, std::string dir);

  // The metric-space routing coordinate of an original-space point.
  double RouteCoord(const double* original) const;

  Status MakeMemoryShard(Shard* s) const;
  Status OpenDurableShard(size_t i, Shard* s,
                          NNCellIndex::RecoveryInfo* info) const;
  // Router recovery: snapshot + log replay + shard reconciliation.
  Status RecoverRouter(NNCellIndex::DurableOptions dopts, RecoveryInfo* info);

  StatusOr<NNCellIndex::QueryResult> QueryLocked(
      const double* q, const ApproxOptions& approx) const;
  StatusOr<std::vector<NNCellIndex::QueryResult>> MergeListQuery(
      const double* q, size_t k, double radius, bool is_range,
      const ApproxOptions& approx) const;

  bool ShouldAutoRebalance() const;
  Status RebalanceLocked(bool force);
  Status CheckpointLocked();
  // Writes the current router state as a snapshot at `path` covering
  // `covered_lsn`.
  Status WriteRouterStateLocked(const std::string& path,
                                uint64_t covered_lsn) const;

  NNCellOptions options_;       // shards run with parallel.num_threads = 1
  ShardedOptions sopts_;
  const std::string dir_;       // empty: in-memory
  NNCellIndex::DurableOptions dopts_;
  shard::ShardManifest manifest_;
  std::vector<Shard> shards_;
  size_t degraded_count_ = 0;
  std::vector<shard::RouterEntry> router_;  // indexed by global id
  std::unique_ptr<WriteAheadLog> router_wal_;

  // Cross-query/ mutation epoch lock (see class comment). std::shared_mutex
  // directly: the annotated Mutex wrapper is exclusive-only.
  mutable std::shared_mutex epoch_mu_;

  // Fan-out across queries of a batch; shards themselves run serial.
  std::unique_ptr<ThreadPool> thread_pool_;

  // Per-shard probe counts for Stats(); incremented under the shared
  // epoch lock, swapped under the exclusive lock on rebalance.
  mutable std::vector<std::unique_ptr<std::atomic<uint64_t>>> probe_counts_;

  // Cached registry handles (metrics_names.h shard.* section).
  metrics::Gauge* m_count_;
  metrics::Gauge* m_epoch_;
  metrics::Histogram* m_fanout_;
  metrics::Counter* m_probes_;
  metrics::Counter* m_pruned_;
  metrics::Counter* m_rebalances_;
  metrics::Counter* m_moved_;
  metrics::Counter* m_degraded_;
};

}  // namespace nncell

#endif  // NNCELL_SHARD_SHARDED_INDEX_H_
