#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/distance.h"
#include "common/check.h"
#include "common/rng.h"

namespace nncell {

PointSet GenerateUniform(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts(dim);
  pts.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  return pts;
}

PointSet GenerateGrid(size_t per_side, size_t dim, double jitter,
                      uint64_t seed) {
  NNCELL_CHECK(per_side >= 1);
  Rng rng(seed);
  PointSet pts(dim);
  size_t total = 1;
  for (size_t k = 0; k < dim; ++k) {
    NNCELL_CHECK_MSG(total <= 10'000'000 / per_side, "grid too large");
    total *= per_side;
  }
  pts.Reserve(total);
  std::vector<double> p(dim);
  double cell = 1.0 / static_cast<double>(per_side);
  for (size_t idx = 0; idx < total; ++idx) {
    size_t rem = idx;
    for (size_t k = 0; k < dim; ++k) {
      size_t i = rem % per_side;
      rem /= per_side;
      double center = (static_cast<double>(i) + 0.5) * cell;
      double offset = jitter > 0.0
                          ? rng.NextDouble(-0.5 * jitter, 0.5 * jitter) * cell
                          : 0.0;
      p[k] = center + offset;
    }
    pts.Add(p);
  }
  return pts;
}

PointSet GenerateSparse(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts(dim);
  pts.Reserve(n);
  std::vector<double> best(dim), cand(dim);
  for (size_t i = 0; i < n; ++i) {
    // Best-candidate (Mitchell) sampling: among several uniform candidates,
    // keep the one farthest from the existing set -> blue-noise spread.
    double best_dist = -1.0;
    const int kCandidates = 12;
    for (int c = 0; c < kCandidates; ++c) {
      for (auto& v : cand) v = rng.NextDouble();
      double nearest = 1e300;
      for (size_t j = 0; j < pts.size(); ++j) {
        nearest = std::min(nearest, L2DistSq(pts[j], cand.data(), dim));
      }
      if (pts.empty()) nearest = 1.0;
      if (nearest > best_dist) {
        best_dist = nearest;
        best = cand;
      }
    }
    pts.Add(best);
  }
  return pts;
}

PointSet GenerateClusters(size_t n, size_t dim, size_t clusters, double stddev,
                          uint64_t seed) {
  NNCELL_CHECK(clusters >= 1);
  Rng rng(seed);
  PointSet centers(dim);
  std::vector<double> c(dim);
  for (size_t k = 0; k < clusters; ++k) {
    for (auto& v : c) v = rng.NextDouble(0.15, 0.85);
    centers.Add(c);
  }
  PointSet pts(dim);
  pts.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    const double* center = centers[rng.NextIndex(clusters)];
    for (size_t k = 0; k < dim; ++k) {
      p[k] = std::clamp(center[k] + stddev * rng.NextGaussian(), 0.0, 1.0);
    }
    pts.Add(p);
  }
  return pts;
}

PointSet GenerateFourier(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  // A handful of "shape families": prototype contours whose Fourier
  // spectra the objects perturb. Coefficient magnitudes decay ~1/h like
  // the spectra of smooth contours, producing the strongly non-uniform,
  // correlated feature distribution of the paper's real data.
  const size_t families = 8;
  std::vector<std::vector<double>> prototypes(families,
                                              std::vector<double>(dim));
  for (auto& proto : prototypes) {
    for (size_t k = 0; k < dim; ++k) {
      double decay = 1.0 / static_cast<double>(k / 2 + 1);
      proto[k] = decay * rng.NextGaussian();
    }
  }
  // Non-uniform family popularity (real datasets are imbalanced).
  std::vector<double> cdf(families);
  double acc = 0.0;
  for (size_t f = 0; f < families; ++f) {
    acc += 1.0 / static_cast<double>(f + 1);
    cdf[f] = acc;
  }
  for (auto& v : cdf) v /= acc;

  PointSet pts(dim);
  pts.Reserve(n);
  std::vector<double> sample_pts(dim);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    size_t f = 0;
    while (f + 1 < families && u > cdf[f]) ++f;
    for (size_t k = 0; k < dim; ++k) {
      double decay = 1.0 / static_cast<double>(k / 2 + 1);
      double coeff = prototypes[f][k] + 0.25 * decay * rng.NextGaussian();
      // Squash coefficients into the unit data space; tanh keeps the
      // cluster structure while bounding the range.
      sample_pts[k] = 0.5 + 0.5 * std::tanh(coeff);
    }
    pts.Add(sample_pts);
  }
  return pts;
}

PointSet GenerateQueries(size_t n, size_t dim, uint64_t seed) {
  return GenerateUniform(n, dim, seed ^ 0x5deece66dULL);
}

bool HasDuplicates(const PointSet& pts) {
  std::map<std::vector<double>, size_t> seen;
  for (size_t i = 0; i < pts.size(); ++i) {
    auto [it, inserted] = seen.emplace(pts.Get(i), i);
    if (!inserted) return true;
  }
  return false;
}

}  // namespace nncell
