#ifndef NNCELL_DATA_GENERATORS_H_
#define NNCELL_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "common/point_set.h"

namespace nncell {

// Workload generators reproducing the paper's data distributions. All data
// lives in the unit data space [0,1]^d and all generators are fully
// deterministic given the seed.

// Independently uniform per dimension (the paper's "uniform" synthetic
// data; Fig. 2a). Note this is *not* multidimensionally uniform.
PointSet GenerateUniform(size_t n, size_t dim, uint64_t seed);

// Regular multidimensional uniform distribution (Fig. 2c): a per_side^dim
// grid of cell centers, optionally jittered inside each cell. This is the
// best case for the NN-cell approach (cells == MBRs, zero overlap).
PointSet GenerateGrid(size_t per_side, size_t dim, double jitter,
                      uint64_t seed);

// Sparse distribution (Fig. 2e): few widely separated points, the worst
// case (cell MBRs degenerate towards the whole data space). Enforces a
// minimum pairwise separation via best-candidate sampling.
PointSet GenerateSparse(size_t n, size_t dim, uint64_t seed);

// Gaussian cluster mixture: `clusters` centers, isotropic `stddev`,
// clipped to the data space. Models the clustering of real data.
PointSet GenerateClusters(size_t n, size_t dim, size_t clusters,
                          double stddev, uint64_t seed);

// Synthetic "Fourier points" (substitute for the paper's real CAD data,
// d = 8 there): each object is a random smooth closed contour from one of
// a few shape families; its feature vector is the leading Fourier
// coefficients, which decay ~1/h and are strongly clustered/correlated --
// exactly the properties the paper's "real data" experiments exercise.
PointSet GenerateFourier(size_t n, size_t dim, uint64_t seed);

// Query points: uniform in the data space (the paper queries the space,
// not the data distribution).
PointSet GenerateQueries(size_t n, size_t dim, uint64_t seed);

// True when some pair of points coincides exactly (NN-cells require
// distinct sites).
bool HasDuplicates(const PointSet& pts);

}  // namespace nncell

#endif  // NNCELL_DATA_GENERATORS_H_
