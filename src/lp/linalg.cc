#include "lp/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/kernels/kernels.h"

namespace nncell {

bool SolveLinearSystem(std::vector<double>& m, std::vector<double>& r,
                       size_t k, double pivot_tol) {
  for (size_t col = 0; col < k; ++col) {
    // Partial pivoting.
    size_t piv = col;
    double best = std::abs(m[col * k + col]);
    for (size_t row = col + 1; row < k; ++row) {
      double v = std::abs(m[row * k + col]);
      if (v > best) {
        best = v;
        piv = row;
      }
    }
    if (best < pivot_tol) return false;
    if (piv != col) {
      for (size_t j = 0; j < k; ++j) std::swap(m[col * k + j], m[piv * k + j]);
      std::swap(r[col], r[piv]);
    }
    double inv = 1.0 / m[col * k + col];
    for (size_t row = col + 1; row < k; ++row) {
      double f = m[row * k + col] * inv;
      if (f == 0.0) continue;
      for (size_t j = col; j < k; ++j) m[row * k + j] -= f * m[col * k + j];
      r[row] -= f * r[col];
    }
  }
  // Back substitution.
  for (size_t i = k; i-- > 0;) {
    double s = r[i];
    for (size_t j = i + 1; j < k; ++j) s -= m[i * k + j] * r[j];
    r[i] = s / m[i * k + i];
  }
  return true;
}

void MatVec(const double* a, size_t m, size_t d, size_t stride,
            const double* x, double* y) {
  kernels::MatVec(a, m, d, stride, x, y);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  kernels::Axpy(alpha, x, y, n);
}

size_t OrthonormalBasis(const std::vector<const double*>& rows, size_t d,
                        std::vector<double>& basis, double tol) {
  basis.clear();
  basis.reserve(rows.size() * d);
  std::vector<double> v(d);
  size_t rank = 0;
  for (const double* row : rows) {
    v.assign(row, row + d);
    // Two passes of MGS for stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t q = 0; q < rank; ++q) {
        const double* bq = basis.data() + q * d;
        double proj = Dot(v.data(), bq, d);
        for (size_t i = 0; i < d; ++i) v[i] -= proj * bq[i];
      }
    }
    double norm = std::sqrt(L2NormSq(v.data(), d));
    if (norm < tol) continue;
    double inv = 1.0 / norm;
    for (size_t i = 0; i < d; ++i) v[i] *= inv;
    basis.insert(basis.end(), v.begin(), v.end());
    ++rank;
  }
  return rank;
}

}  // namespace nncell
