#ifndef NNCELL_LP_LP_PROBLEM_H_
#define NNCELL_LP_LP_PROBLEM_H_

#include <cstddef>
#include <vector>

#include "common/hyper_rect.h"
#include "common/check.h"
#include "common/kernels/kernels.h"

namespace nncell {

// A linear program over x in R^d with inequality constraints a_i . x <= b_i.
// Rows are stored dense and row-major, padded to the SIMD lane width: each
// row occupies stride() = PaddedDim(dim()) doubles, the first dim() of
// which are the coefficients and the rest zero. Streaming kernels
// (kernels::MatVec) then read whole lane blocks per row with no tail
// handling, and the zero padding never contributes to a product. Box
// (data-space) constraints are plain rows so that the solver sees a single
// homogeneous constraint system.
class LpProblem {
 public:
  explicit LpProblem(size_t dim)
      : dim_(dim), stride_(kernels::PaddedDim(dim)) {
    NNCELL_CHECK(dim > 0);
  }

  size_t dim() const { return dim_; }
  // Padded row length of the packed matrix (multiple of kLaneWidth).
  size_t stride() const { return stride_; }
  size_t num_constraints() const { return b_.size(); }

  // Adds the constraint a . x <= b.
  void AddConstraint(const double* a, double b) {
    double* row = AppendRow(b);
    for (size_t i = 0; i < dim_; ++i) row[i] = a[i];
  }
  void AddConstraint(const std::vector<double>& a, double b) {
    NNCELL_CHECK(a.size() == dim_);
    AddConstraint(a.data(), b);
  }

  // Appends a zeroed row with right-hand side b and returns the pointer to
  // its dim() coefficients, to be filled by the caller. Lets row builders
  // (bisectors) write straight into the packed matrix instead of staging
  // each row in a temporary vector. The padding tail stays zero.
  double* AppendRow(double b) {
    b_.push_back(b);
    a_.resize(a_.size() + stride_);
    return a_.data() + (b_.size() - 1) * stride_;
  }

  // Adds 2d rows bounding x to the rectangle: x_i <= hi_i and -x_i <= -lo_i.
  void AddBoxConstraints(const HyperRect& box);

  // Row accessors.
  const double* row(size_t i) const {
    NNCELL_DCHECK(i < num_constraints());
    return a_.data() + i * stride_;
  }
  double rhs(size_t i) const {
    NNCELL_DCHECK(i < num_constraints());
    return b_[i];
  }

  // Max violation of x over all constraints (<= 0 means feasible).
  double MaxViolation(const double* x) const;

  // The packed num_constraints x stride() row-major constraint matrix, for
  // streaming kernels (kernels::MatVec with stride()) over all rows at
  // once. Walk rows with stride(), not dim().
  const double* matrix() const { return a_.data(); }

  void Reserve(size_t rows) {
    a_.reserve(rows * stride_);
    b_.reserve(rows);
  }
  void Clear() {
    a_.clear();
    b_.clear();
  }
  // Re-targets the problem to a new dimension, dropping all rows but
  // keeping the allocated capacity (session scratch reuse across cells).
  void Reset(size_t dim) {
    NNCELL_CHECK(dim > 0);
    dim_ = dim;
    stride_ = kernels::PaddedDim(dim);
    Clear();
  }

 private:
  size_t dim_;
  size_t stride_;  // dim_ rounded up to kernels::kLaneWidth
  std::vector<double> a_;  // num_constraints x stride_, row-major
  std::vector<double> b_;
};

}  // namespace nncell

#endif  // NNCELL_LP_LP_PROBLEM_H_
