#include "lp/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/distance.h"
#include "lp/linalg.h"

namespace nncell::lp {

namespace {

// Least-squares solve over the passive set via normal equations. Returns
// false when the Gram matrix is singular (dependent columns).
bool SolvePassive(const std::vector<const double*>& columns, size_t d,
                  const std::vector<double>& g,
                  const std::vector<size_t>& passive, std::vector<double>* z) {
  const size_t k = passive.size();
  std::vector<double> gram(k * k), rhs(k);
  for (size_t i = 0; i < k; ++i) {
    rhs[i] = Dot(columns[passive[i]], g.data(), d);
    for (size_t j = 0; j < k; ++j) {
      gram[i * k + j] = Dot(columns[passive[i]], columns[passive[j]], d);
    }
  }
  if (!SolveLinearSystem(gram, rhs, k)) return false;
  *z = std::move(rhs);
  return true;
}

}  // namespace

double NonNegativeLeastSquares(const std::vector<const double*>& columns,
                               size_t d, const std::vector<double>& g,
                               std::vector<double>* lambda) {
  const size_t k = columns.size();
  lambda->assign(k, 0.0);

  std::vector<bool> in_passive(k, false), banned(k, false);
  std::vector<size_t> passive;
  std::vector<double> residual = g;  // g - A lambda
  const double eps = 1e-12 * std::max(1.0, std::sqrt(L2NormSq(g.data(), d)));

  // Lawson-Hanson outer loop: grow the passive (strictly positive) set one
  // most-improving column at a time.
  const size_t max_outer = 3 * k + 16;
  for (size_t outer = 0; outer < max_outer; ++outer) {
    // Gradient of 0.5||A lambda - g||^2 is -A^T residual; pick the most
    // negative component, i.e. the largest A^T residual among free columns.
    size_t best = k;
    double best_w = eps;
    for (size_t j = 0; j < k; ++j) {
      if (in_passive[j] || banned[j]) continue;
      double w = Dot(columns[j], residual.data(), d);
      if (w > best_w) {
        best_w = w;
        best = j;
      }
    }
    if (best == k) break;  // KKT of the NNLS problem satisfied

    in_passive[best] = true;
    passive.push_back(best);

    // Inner loop: least squares on the passive set; walk back towards the
    // previous iterate while any passive coefficient would go negative.
    std::vector<double> z;
    while (true) {
      if (!SolvePassive(columns, d, g, passive, &z)) {
        // Dependent column: drop it for good and re-solve with the rest so
        // z stays aligned with the passive set.
        in_passive[best] = false;
        banned[best] = true;
        passive.pop_back();
        if (passive.empty()) {
          z.clear();
          break;
        }
        continue;
      }
      bool all_positive = true;
      for (double v : z) {
        if (v <= 0.0) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) break;

      double alpha = 1.0;
      for (size_t i = 0; i < passive.size(); ++i) {
        if (z[i] > 0.0) continue;
        double cur = (*lambda)[passive[i]];
        double denom = cur - z[i];
        if (denom > 0.0) alpha = std::min(alpha, cur / denom);
      }
      for (size_t i = 0; i < passive.size(); ++i) {
        size_t j = passive[i];
        (*lambda)[j] += alpha * (z[i] - (*lambda)[j]);
      }
      // Retire every coefficient driven (numerically) to zero.
      std::vector<size_t> kept;
      for (size_t j : passive) {
        if ((*lambda)[j] > eps) {
          kept.push_back(j);
        } else {
          (*lambda)[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(kept);
      if (passive.empty()) break;
    }
    NNCELL_DCHECK(passive.empty() || z.size() == passive.size());
    for (size_t i = 0; i < passive.size(); ++i) (*lambda)[passive[i]] = z[i];

    // Refresh the residual.
    residual = g;
    for (size_t j : passive) {
      for (size_t i = 0; i < d; ++i) {
        residual[i] -= (*lambda)[j] * columns[j][i];
      }
    }
  }
  return std::sqrt(L2NormSq(residual.data(), d));
}

Status AuditSolution(const LpProblem& problem, const std::vector<double>& c,
                     const LpResult& result, LpSense sense,
                     const AuditOptions& opts) {
  const size_t d = problem.dim();
  const size_t m = problem.num_constraints();
  if (c.size() != d) {
    return Status::InvalidArgument("objective dimension mismatch");
  }

  if (result.status == LpStatus::kIterationLimit) {
    return Status::OK();  // no optimality claim to audit
  }

  if (result.x.size() != d) {
    return Status::Internal("solution has wrong dimension");
  }
  for (double v : result.x) {
    if (!std::isfinite(v)) {
      return Status::Internal("solution contains a non-finite coordinate");
    }
  }

  if (result.status == LpStatus::kInfeasibleStart) {
    // The solver returned x0 unchanged; it must really violate something.
    if (problem.MaxViolation(result.x.data()) <= 0.0) {
      return Status::Internal(
          "solver reported an infeasible start, but the point is feasible");
    }
    return Status::OK();
  }

  // Both remaining verdicts (optimal / unbounded) require a feasible point.
  const double* x = result.x.data();
  for (size_t i = 0; i < m; ++i) {
    const double* ai = problem.row(i);
    double scale = std::max(
        {1.0, std::sqrt(L2NormSq(ai, d)), std::abs(problem.rhs(i))});
    double violation = Dot(ai, x, d) - problem.rhs(i);
    if (violation > opts.feasibility_tol * scale) {
      std::ostringstream os;
      os << "primal infeasible: constraint " << i << " violated by "
         << violation;
      return Status::Internal(os.str());
    }
  }

  // The gradient the solver actually climbed.
  std::vector<double> g(d);
  for (size_t i = 0; i < d; ++i) {
    g[i] = (sense == LpSense::kMaximize) ? c[i] : -c[i];
  }
  const double g_scale = std::max(1.0, std::sqrt(L2NormSq(g.data(), d)));

  if (result.status == LpStatus::kUnbounded) {
    // Certify with a recession direction: maximize g . p over the cone
    // {a_i . p <= 0} intersected with the unit box. A positive optimum
    // scales to an arbitrarily improving feasible ray.
    LpProblem cone(d);
    cone.Reserve(m + 2 * d);
    std::vector<double> row(d, 0.0);
    for (size_t i = 0; i < m; ++i) cone.AddConstraint(problem.row(i), 0.0);
    for (size_t i = 0; i < d; ++i) {
      row[i] = 1.0;
      cone.AddConstraint(row, 1.0);
      row[i] = -1.0;
      cone.AddConstraint(row, 1.0);
      row[i] = 0.0;
    }
    ActiveSetSolver solver;
    LpResult ray = solver.Maximize(cone, g, std::vector<double>(d, 0.0));
    if (ray.status != LpStatus::kOptimal ||
        ray.objective <= opts.stationarity_tol * g_scale) {
      return Status::Internal(
          "solver reported unbounded, but no improving recession direction "
          "exists");
    }
    return Status::OK();
  }

  // kOptimal from here on.
  double cx = Dot(c.data(), x, d);
  if (std::abs(cx - result.objective) >
      opts.objective_tol * std::max(1.0, std::abs(cx))) {
    std::ostringstream os;
    os << "reported objective " << result.objective << " != c.x " << cx;
    return Status::Internal(os.str());
  }

  // Active-set optimality: g must lie in the cone of the active rows'
  // normals (KKT: g = sum lambda_i a_i with every lambda_i >= 0). The cone
  // is invariant under positive scaling of its generators, so normalize
  // each row to unit length -- bisectors of near-duplicate points have
  // norms around machine epsilon and would otherwise make the NNLS Gram
  // matrix vanish below its pivot tolerance.
  std::vector<std::vector<double>> active_rows;
  for (size_t i = 0; i < m; ++i) {
    const double* ai = problem.row(i);
    double norm = std::sqrt(L2NormSq(ai, d));
    double scale = std::max({1.0, norm, std::abs(problem.rhs(i))});
    double slack = problem.rhs(i) - Dot(ai, x, d);
    if (slack <= opts.activity_tol * scale && norm > 0.0) {
      std::vector<double> unit(d);
      for (size_t j = 0; j < d; ++j) unit[j] = ai[j] / norm;
      active_rows.push_back(std::move(unit));
    }
  }
  std::vector<const double*> active;
  active.reserve(active_rows.size());
  for (const auto& r : active_rows) active.push_back(r.data());
  std::vector<double> lambda;
  double res_norm = NonNegativeLeastSquares(active, d, g, &lambda);
  if (res_norm > opts.stationarity_tol * g_scale) {
    std::ostringstream os;
    os << "KKT stationarity violated: gradient is " << res_norm
       << " away from the cone of " << active.size()
       << " active constraint normals (an improving feasible direction "
          "exists)";
    return Status::Internal(os.str());
  }
  return Status::OK();
}

}  // namespace nncell::lp
