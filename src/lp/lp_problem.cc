#include "lp/lp_problem.h"

#include <algorithm>

#include "common/distance.h"

namespace nncell {

void LpProblem::AddBoxConstraints(const HyperRect& box) {
  NNCELL_CHECK(box.dim() == dim_);
  std::vector<double> row(dim_, 0.0);
  for (size_t i = 0; i < dim_; ++i) {
    row[i] = 1.0;
    AddConstraint(row, box.hi(i));
    row[i] = -1.0;
    AddConstraint(row, -box.lo(i));
    row[i] = 0.0;
  }
}

double LpProblem::MaxViolation(const double* x) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < num_constraints(); ++i) {
    worst = std::max(worst, Dot(row(i), x, dim_) - b_[i]);
  }
  return num_constraints() ? worst : 0.0;
}

}  // namespace nncell
