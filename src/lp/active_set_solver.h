#ifndef NNCELL_LP_ACTIVE_SET_SOLVER_H_
#define NNCELL_LP_ACTIVE_SET_SOLVER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "lp/lp_problem.h"

namespace nncell {

// Configuration for the active-set LP solver.
struct LpOptions {
  // Numerical tolerance for directions, multipliers and feasibility.
  double tol = 1e-9;
  // Iteration limit; 0 means "auto" (scales with constraint count).
  size_t max_iterations = 0;
};

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasibleStart,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;     // best point found
  double objective = 0.0;    // c . x at that point
  size_t iterations = 0;
};

// Active-set method for linear programs with few variables and many
// inequality constraints -- the Best & Ritter style algorithm the paper
// uses for computing NN-cell MBR faces. The solver walks from a supplied
// feasible point along projected-gradient directions, adding blocking
// constraints to the working set and dropping constraints with negative
// Lagrange multipliers (Bland's smallest-index rule on ties/degeneracy).
//
// Cost per iteration is O(m * d) for the ratio test plus O(d^3) algebra,
// which is exactly the right shape for the paper's workload (d <= ~32,
// m up to N-1 bisector constraints).
class ActiveSetSolver {
 public:
  explicit ActiveSetSolver(LpOptions opts = LpOptions());

  // Maximizes c . x subject to the problem's constraints, starting from the
  // feasible point x0. x0 may lie on the boundary. Returns kInfeasibleStart
  // when x0 violates a constraint by more than the tolerance.
  LpResult Maximize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0) const;

  // Minimizes c . x (maximizes -c . x); result.objective is c . x.
  LpResult Minimize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0) const;

 private:
  LpOptions opts_;
};

// Phase-I helper: finds a feasible point of `problem`, or returns NotFound
// when the feasible region is (numerically) empty. `hint` seeds the search
// (any point; does not need to be feasible). Internally solves the LP
//   minimize t  s.t.  a_i . x - t <= b_i,  t >= -1
// in d+1 dimensions with the same active-set solver.
StatusOr<std::vector<double>> FindFeasiblePoint(
    const LpProblem& problem, const std::vector<double>& hint,
    const LpOptions& opts = LpOptions());

}  // namespace nncell

#endif  // NNCELL_LP_ACTIVE_SET_SOLVER_H_
