#ifndef NNCELL_LP_ACTIVE_SET_SOLVER_H_
#define NNCELL_LP_ACTIVE_SET_SOLVER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "lp/lp_problem.h"

namespace nncell {

// Configuration for the active-set LP solver.
struct LpOptions {
  // Numerical tolerance for directions, multipliers and feasibility.
  double tol = 1e-9;
  // Iteration limit; 0 means "auto" (scales with constraint count).
  size_t max_iterations = 0;
};

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasibleStart,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;     // best point found
  double objective = 0.0;    // c . x at that point
  size_t iterations = 0;
  // Final working set (sorted row indices) when the solve ended kOptimal;
  // the warm-start hint for the next face solve of the same system.
  std::vector<size_t> active;
};

// Reusable solver workspace. One solve allocates about ten vectors (the
// working set, basis, direction, multiplier system, and the A.x / A.p row
// caches); a cell-approximation build runs 2d solves per cell over up to
// N-1 rows, so handing the solver a per-thread scratch removes every
// per-face heap allocation from the hot path. A default-constructed
// scratch is valid; buffers grow to the high-water mark and stay.
struct LpScratch {
  std::vector<size_t> active;
  std::vector<double> basis, p, gram, rhs, neg_c, warm_v;
  std::vector<const double*> rows;
  std::vector<double> sx, sp;  // per-row a_i . x and a_i . p caches
};

// Active-set method for linear programs with few variables and many
// inequality constraints -- the Best & Ritter style algorithm the paper
// uses for computing NN-cell MBR faces. The solver walks from a supplied
// feasible point along projected-gradient directions, adding blocking
// constraints to the working set and dropping constraints with negative
// Lagrange multipliers (Bland's smallest-index rule on ties/degeneracy).
//
// Cost per iteration is O(m * d) for the ratio test plus O(d^3) algebra,
// which is exactly the right shape for the paper's workload (d <= ~32,
// m up to N-1 bisector constraints). The ratio test maintains the per-row
// products a_i . x incrementally and computes a_i . p with one streaming
// pass over the packed constraint matrix, so each iteration reads the
// matrix once instead of twice.
class ActiveSetSolver {
 public:
  explicit ActiveSetSolver(LpOptions opts = LpOptions());

  // Maximizes c . x subject to the problem's constraints, starting from the
  // feasible point x0. x0 may lie on the boundary. Returns kInfeasibleStart
  // when x0 violates a constraint by more than the tolerance.
  LpResult Maximize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0) const;

  // Minimizes c . x (maximizes -c . x); result.objective is c . x.
  LpResult Minimize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0) const;

  // Warm-startable variants. `warm_active` (may be null) proposes an
  // initial working set -- e.g. the first constraint row blocking the ray
  // from a cell's interior start (FaceSolveSession). Rows that are not
  // tight at x0 or not linearly independent are silently dropped, so any
  // hint is safe. `scratch` (may be null) supplies the reusable workspace.
  // `sx0` (may be null) supplies the m precomputed row products a_i . x0,
  // saving the solver's initial pass over the matrix -- callers that solve
  // many objectives from related starts over one system maintain these
  // incrementally. Values must match a_i . x0 to well below the
  // feasibility tolerance; they are drift-refreshed like any other sx
  // state.
  LpResult Maximize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0,
                    const std::vector<size_t>* warm_active,
                    LpScratch* scratch, const double* sx0 = nullptr) const;
  LpResult Minimize(const LpProblem& problem, const std::vector<double>& c,
                    const std::vector<double>& x0,
                    const std::vector<size_t>* warm_active,
                    LpScratch* scratch, const double* sx0 = nullptr) const;

 private:
  LpResult Run(const LpProblem& problem, const std::vector<double>& c,
               const std::vector<double>& x0,
               const std::vector<size_t>* warm_active, LpScratch& scratch,
               const double* sx0) const;

  LpOptions opts_;
};

// Reusable workspace of FindFeasiblePoint: the extended (d+1)-dimensional
// phase-I system and its solver scratch.
struct PhaseOneScratch {
  LpProblem ext{1};
  std::vector<double> start, c;
  LpScratch lp;
};

// Phase-I helper: finds a feasible point of `problem`, or returns NotFound
// when the feasible region is (numerically) empty. `hint` seeds the search
// (any point; does not need to be feasible). Internally solves the LP
//   minimize t  s.t.  a_i . x - t <= b_i,  t >= -1
// in d+1 dimensions with the same active-set solver.
StatusOr<std::vector<double>> FindFeasiblePoint(
    const LpProblem& problem, const std::vector<double>& hint,
    const LpOptions& opts = LpOptions(), PhaseOneScratch* scratch = nullptr);

}  // namespace nncell

#endif  // NNCELL_LP_ACTIVE_SET_SOLVER_H_
