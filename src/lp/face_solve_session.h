#ifndef NNCELL_LP_FACE_SOLVE_SESSION_H_
#define NNCELL_LP_FACE_SOLVE_SESSION_H_

#include <cstddef>
#include <vector>

#include "lp/active_set_solver.h"
#include "lp/lp_problem.h"

namespace nncell {

// Shared state for the 2d face solves of one NN-cell MBR (Definition 3 of
// the paper). All faces optimize +-x_i over the *same* packed constraint
// system from the *same* feasible start point, which the session exploits
// with one axis ray-shoot pass per cell (PrepareFaces): a single O(m*d)
// sweep over the matrix finds, for every signed axis direction, the first
// constraint row blocking the ray x0 + t e_i. That pass replaces work in
// every face solve twice over:
//
//   * If the blocking row of direction +e_i is axis-aligned (a positive
//     multiple of e_i -- always true for the data-space box rows, the
//     common case in high dimensions where cells span the box), the face
//     value is already proven: the row caps x_i at b/alpha and the hit
//     point attains the cap, so the face solve is skipped outright
//     (0 LP iterations).
//   * Otherwise the face solve warm-starts at the hit point with the
//     blocking row as its working set -- exactly the state a cold solve
//     reaches after its first iteration.
//
// The session also owns every scratch buffer of the pipeline (the packed
// LpProblem, the solver workspace, the phase-I system), so a bulk build
// reuses one allocation high-water mark per thread instead of
// reallocating per face.
//
// No state crosses cells: BeginCell() resets the prepared ray data, which
// keeps the per-cell results a pure function of the cell (parallel builds
// stay byte-identical to serial ones regardless of which cells a worker
// thread solved before).
class FaceSolveSession {
 public:
  // How the last SolveFace was answered.
  enum class FaceKind {
    kSkipped,  // certified by the ray-shoot, no LP run
    kWarm,     // LP run warm-started at the ray hit point
    kCold,     // plain solve from the cold start
  };

  explicit FaceSolveSession(LpOptions opts = LpOptions());

  void set_options(const LpOptions& opts);

  // Starts a new cell: clears the prepared ray-shoot state. `warm_start`
  // false degrades every face to a cold solve (the seed behavior; used for
  // A/B benchmarks and differential tests).
  void BeginCell(bool warm_start = true);

  // The per-cell ray-shoot pass from the shared feasible start `x0`. Call
  // after the constraint system is fully assembled and before the face
  // solves; a no-op when warm starts are disabled. If `x0` turns out to
  // violate a row beyond tolerance (a phase-I start on a degenerate system
  // can), the pass declines and every face solves cold -- certificates and
  // warm starts are only sound from a feasible start.
  void PrepareFaces(const LpProblem& problem, const std::vector<double>& x0);

  // Optimizes c . x over `problem` for face `axis` (c must be the signed
  // unit objective e_axis of that face) in the given sense, using the
  // prepared ray data when available. `cold_start` must be feasible; it
  // serves any face the ray data cannot, and any face whose warm attempt
  // fails (the retry keeps its iteration count in the total so the stats
  // never hide it). result.objective is always c . x.
  LpResult SolveFace(const LpProblem& problem, const std::vector<double>& c,
                     size_t axis, bool maximize,
                     const std::vector<double>& cold_start);

  // How the last SolveFace was answered.
  FaceKind last_face_kind() const { return last_face_kind_; }

  // Scratch accessors for callers that assemble the constraint system in
  // place (geometry layer) or need phase-I reuse.
  LpProblem& problem() { return problem_; }
  LpScratch& lp_scratch() { return lp_scratch_; }
  PhaseOneScratch& phase_one_scratch() { return phase_one_; }
  std::vector<double>& start_buffer() { return start_; }

 private:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  ActiveSetSolver solver_;
  LpProblem problem_{1};
  LpScratch lp_scratch_;
  PhaseOneScratch phase_one_;
  std::vector<double> start_;

  bool warm_enabled_ = true;
  bool prepared_ = false;
  FaceKind last_face_kind_ = FaceKind::kCold;

  // Ray-shoot state of the current cell. Slot 2i is direction +e_i, slot
  // 2i+1 is -e_i: the step length to the first blocking row, its index,
  // and whether that row is axis-aligned (face value certified).
  std::vector<double> x0_;
  std::vector<double> sx0_;  // per-row a_r . x0
  std::vector<double> hit_t_;
  std::vector<size_t> hit_row_;
  std::vector<char> axis_row_;

  // Hint buffers for the warm attempt.
  std::vector<double> warm_x_;
  std::vector<double> warm_sx_;  // row products at the hit point
  std::vector<size_t> warm_active_;
};

}  // namespace nncell

#endif  // NNCELL_LP_FACE_SOLVE_SESSION_H_
