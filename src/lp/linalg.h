#ifndef NNCELL_LP_LINALG_H_
#define NNCELL_LP_LINALG_H_

#include <cstddef>
#include <vector>

namespace nncell {

// Small dense linear algebra used by the active-set LP solver. Problem
// dimensions are tiny (<= ~33), so simple Gaussian elimination with partial
// pivoting is both fast and adequate.

// Solves the k x k system M y = r in place. M is row-major and is
// destroyed. Returns false when M is (numerically) singular.
bool SolveLinearSystem(std::vector<double>& m, std::vector<double>& r,
                       size_t k, double pivot_tol = 1e-12);

// Computes an orthonormal basis (modified Gram-Schmidt) of the span of the
// given k row vectors of length d. Output is packed row-major; returns the
// rank. Vectors whose residual norm falls below `tol` are dropped.
size_t OrthonormalBasis(const std::vector<const double*>& rows, size_t d,
                        std::vector<double>& basis, double tol = 1e-10);

}  // namespace nncell

#endif  // NNCELL_LP_LINALG_H_
