#ifndef NNCELL_LP_LINALG_H_
#define NNCELL_LP_LINALG_H_

#include <cstddef>
#include <vector>

namespace nncell {

// Small dense linear algebra used by the active-set LP solver. Problem
// dimensions are tiny (<= ~33), so simple Gaussian elimination with partial
// pivoting is both fast and adequate. The hot path, however, streams a
// packed m x d constraint matrix with m up to N-1 bisector rows; the
// matrix-vector kernels delegate to the runtime-dispatched SIMD layer
// (common/kernels/), which assumes the lane-padded row stride that
// LpProblem::stride() provides.

// Solves the k x k system M y = r in place. M is row-major and is
// destroyed. Returns false when M is (numerically) singular.
bool SolveLinearSystem(std::vector<double>& m, std::vector<double>& r,
                       size_t k, double pivot_tol = 1e-12);

// y[i] = a[i] . x for every row i of the packed row-major m x d matrix
// `a` whose rows are `stride` doubles apart (stride >= d; pass
// LpProblem::stride() for padded constraint matrices). This is the
// active-set solver's per-iteration ratio-test kernel: one streaming pass
// over the constraint matrix instead of m separate Dot() calls.
void MatVec(const double* a, size_t m, size_t d, size_t stride,
            const double* x, double* y);

// y[i] += alpha * x[i] for i in [0, n).
void Axpy(double alpha, const double* x, double* y, size_t n);

// Computes an orthonormal basis (modified Gram-Schmidt) of the span of the
// given k row vectors of length d. Output is packed row-major; returns the
// rank. Vectors whose residual norm falls below `tol` are dropped.
size_t OrthonormalBasis(const std::vector<const double*>& rows, size_t d,
                        std::vector<double>& basis, double tol = 1e-10);

}  // namespace nncell

#endif  // NNCELL_LP_LINALG_H_
