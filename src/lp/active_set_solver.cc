#include "lp/active_set_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "lp/linalg.h"

namespace nncell {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Removes `value` from a sorted vector.
void EraseSorted(std::vector<size_t>& v, size_t value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  NNCELL_DCHECK(it != v.end() && *it == value);
  v.erase(it);
}

void InsertSorted(std::vector<size_t>& v, size_t value) {
  v.insert(std::upper_bound(v.begin(), v.end(), value), value);
}

}  // namespace

ActiveSetSolver::ActiveSetSolver(LpOptions opts) : opts_(opts) {}

LpResult ActiveSetSolver::Run(const LpProblem& problem,
                              const std::vector<double>& c,
                              const std::vector<double>& x0,
                              const std::vector<size_t>* warm_active,
                              LpScratch& scratch, const double* sx0) const {
  const size_t d = problem.dim();
  const size_t m = problem.num_constraints();
  NNCELL_CHECK(c.size() == d);
  NNCELL_CHECK(x0.size() == d);

  const double tol = opts_.tol;
  const double c_scale = std::max(1.0, std::sqrt(L2NormSq(c.data(), d)));
  const double dir_tol = tol * c_scale;
  const size_t max_iter =
      opts_.max_iterations ? opts_.max_iterations : 100 * (m + d) + 1000;

  LpResult result;
  result.x = x0;
  std::vector<double>& x = result.x;

  // Row products a_i . x, maintained incrementally across iterations (one
  // axpy per step instead of a full pass) and refreshed from the matrix
  // periodically to cap drift.
  std::vector<double>& sx = scratch.sx;
  std::vector<double>& sp = scratch.sp;
  sx.resize(m);
  sp.resize(m);
  if (sx0 != nullptr) {
    std::copy(sx0, sx0 + m, sx.data());
  } else {
    MatVec(problem.matrix(), m, d, problem.stride(), x.data(), sx.data());
  }

  // Feasibility of the start (allow tolerance-level violation).
  const double feas_tol = 1e-7;
  double violation = -kInf;
  for (size_t i = 0; i < m; ++i) {
    violation = std::max(violation, sx[i] - problem.rhs(i));
  }
  if (m > 0 && violation > feas_tol) {
    result.status = LpStatus::kInfeasibleStart;
    result.objective = Dot(c.data(), x.data(), d);
    return result;
  }

  std::vector<size_t>& active = scratch.active;  // sorted working set
  std::vector<double>& basis = scratch.basis;  // orthonormal basis of rows
  std::vector<double>& p = scratch.p;          // search direction
  active.clear();
  p.resize(d);

  // Scratch for the multiplier system.
  std::vector<double>& gram = scratch.gram;
  std::vector<double>& rhs = scratch.rhs;
  std::vector<const double*>& rows = scratch.rows;

  // Seed the working set from the hint: keep rows that are tight at x0 and
  // linearly independent of the rows already kept (incremental MGS against
  // the basis built so far). A stale or foreign hint degrades to a cold
  // start row by row instead of corrupting the walk.
  if (warm_active != nullptr && !warm_active->empty()) {
    basis.clear();
    std::vector<double>& v = scratch.warm_v;  // MGS residual buffer
    v.resize(d);
    size_t rank = 0;
    for (size_t i : *warm_active) {
      if (i >= m) continue;
      const double* ai = problem.row(i);
      double row_scale = std::max(1.0, std::abs(problem.rhs(i)));
      if (std::abs(sx[i] - problem.rhs(i)) > 1e-8 * row_scale) continue;
      if (rank == d) break;
      std::copy(ai, ai + d, v.begin());
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t q = 0; q < rank; ++q) {
          const double* bq = basis.data() + q * d;
          double proj = Dot(v.data(), bq, d);
          for (size_t k = 0; k < d; ++k) v[k] -= proj * bq[k];
        }
      }
      // Stricter than the 1e-10 of OrthonormalBasis: rows admitted here
      // must stay independent under the per-iteration re-orthogonalization.
      double norm = std::sqrt(L2NormSq(v.data(), d));
      if (norm < 1e-8) continue;
      double inv = 1.0 / norm;
      for (size_t k = 0; k < d; ++k) v[k] *= inv;
      basis.insert(basis.end(), v.begin(), v.end());
      ++rank;
      InsertSorted(active, i);
    }
  }

  for (size_t iter = 0; iter < max_iter; ++iter) {
    result.iterations = iter + 1;

    // Project the gradient c onto the null space of the active rows.
    rows.clear();
    for (size_t i : active) rows.push_back(problem.row(i));
    size_t rank = OrthonormalBasis(rows, d, basis);
    NNCELL_DCHECK(rank == active.size());
    (void)rank;

    for (size_t i = 0; i < d; ++i) p[i] = c[i];
    for (size_t q = 0; q < active.size(); ++q) {
      const double* bq = basis.data() + q * d;
      double proj = Dot(p.data(), bq, d);
      for (size_t i = 0; i < d; ++i) p[i] -= proj * bq[i];
    }
    double p_norm = std::sqrt(L2NormSq(p.data(), d));

    if (p_norm <= dir_tol) {
      // c lies in the span of the active normals: check optimality via
      // Lagrange multipliers (c = sum lambda_i a_i, lambda >= 0 optimal).
      if (active.empty()) {
        result.status = LpStatus::kOptimal;  // c == 0
        break;
      }
      const size_t k = active.size();
      gram.assign(k * k, 0.0);
      rhs.assign(k, 0.0);
      for (size_t i = 0; i < k; ++i) {
        const double* ai = problem.row(active[i]);
        rhs[i] = Dot(ai, c.data(), d);
        for (size_t j = 0; j < k; ++j) {
          gram[i * k + j] = Dot(ai, problem.row(active[j]), d);
        }
      }
      if (!SolveLinearSystem(gram, rhs, k)) {
        // Should not happen (rows are kept independent); treat the most
        // recently added constraint as removable to make progress.
        EraseSorted(active, active.back());
        continue;
      }
      // Bland: drop the smallest-index constraint with negative multiplier.
      size_t drop = m;  // sentinel
      for (size_t i = 0; i < k; ++i) {
        if (rhs[i] < -tol * c_scale) {
          if (drop == m || active[i] < drop) drop = active[i];
        }
      }
      if (drop == m) {
        result.status = LpStatus::kOptimal;
        break;
      }
      EraseSorted(active, drop);
      continue;
    }

    // Ratio test: largest step alpha with x + alpha p feasible. One
    // streaming pass computes every a_i . p; slacks come from the
    // maintained sx cache.
    MatVec(problem.matrix(), m, d, problem.stride(), p.data(), sp.data());
    if ((iter & 31u) == 31u) {
      MatVec(problem.matrix(), m, d, problem.stride(), x.data(), sx.data());  // drift refresh
    }
    double alpha = kInf;
    size_t blocker = m;  // sentinel
    {
      size_t w = 0;  // cursor into sorted active set
      for (size_t i = 0; i < m; ++i) {
        if (w < active.size() && active[w] == i) {
          ++w;
          continue;
        }
        double s = sp[i];
        if (s <= dir_tol) continue;  // not blocking along p
        double slack = problem.rhs(i) - sx[i];
        double a = std::max(0.0, slack) / s;
        // Bland's rule: strict improvement, or equal step with smaller
        // index, keeps the method from cycling on degenerate vertices.
        if (a < alpha - 1e-15) {
          alpha = a;
          blocker = i;
        }
      }
    }

    if (blocker == m) {
      result.status = LpStatus::kUnbounded;
      result.objective = kInf;
      return result;
    }

    if (alpha > 0.0) {
      for (size_t i = 0; i < d; ++i) x[i] += alpha * p[i];
      Axpy(alpha, sp.data(), sx.data(), m);
    }
    InsertSorted(active, blocker);
  }

  if (result.status != LpStatus::kOptimal &&
      result.status != LpStatus::kUnbounded) {
    result.status = (result.iterations >= max_iter) ? LpStatus::kIterationLimit
                                                    : result.status;
  }

  // Refine: snap x onto the active face (one Newton correction in the span
  // of the active normals) to reduce drift accumulated by line searches.
  if (result.status == LpStatus::kOptimal && !active.empty()) {
    const size_t k = active.size();
    gram.assign(k * k, 0.0);
    rhs.assign(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      const double* ai = problem.row(active[i]);
      rhs[i] = problem.rhs(active[i]) - Dot(ai, x.data(), d);
      for (size_t j = 0; j < k; ++j) {
        gram[i * k + j] = Dot(ai, problem.row(active[j]), d);
      }
    }
    if (SolveLinearSystem(gram, rhs, k)) {
      for (size_t i = 0; i < k; ++i) {
        Axpy(rhs[i], problem.row(active[i]), x.data(), d);
      }
    }
  }

  if (result.status == LpStatus::kOptimal) result.active = active;
  result.objective = Dot(c.data(), x.data(), d);
  return result;
}

LpResult ActiveSetSolver::Maximize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0) const {
  LpScratch scratch;
  return Run(problem, c, x0, nullptr, scratch, nullptr);
}

LpResult ActiveSetSolver::Maximize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0,
                                   const std::vector<size_t>* warm_active,
                                   LpScratch* scratch,
                                   const double* sx0) const {
  if (scratch != nullptr) {
    return Run(problem, c, x0, warm_active, *scratch, sx0);
  }
  LpScratch local;
  return Run(problem, c, x0, warm_active, local, sx0);
}

LpResult ActiveSetSolver::Minimize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0) const {
  return Minimize(problem, c, x0, nullptr, nullptr);
}

LpResult ActiveSetSolver::Minimize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0,
                                   const std::vector<size_t>* warm_active,
                                   LpScratch* scratch,
                                   const double* sx0) const {
  LpScratch local;
  LpScratch& sc = scratch != nullptr ? *scratch : local;
  std::vector<double>& neg = sc.neg_c;
  neg.resize(c.size());
  for (size_t i = 0; i < c.size(); ++i) neg[i] = -c[i];
  LpResult r = Run(problem, neg, x0, warm_active, sc, sx0);
  r.objective = -r.objective;
  return r;
}

StatusOr<std::vector<double>> FindFeasiblePoint(const LpProblem& problem,
                                                const std::vector<double>& hint,
                                                const LpOptions& opts,
                                                PhaseOneScratch* scratch) {
  const size_t d = problem.dim();
  NNCELL_CHECK(hint.size() == d);

  // Fast path: the hint itself is feasible.
  if (problem.MaxViolation(hint.data()) <= 0.0) return hint;

  PhaseOneScratch local;
  PhaseOneScratch& sc = scratch != nullptr ? *scratch : local;

  // Extended LP over (x, t): minimize t s.t. a_i.x - t <= b_i, -t <= 1.
  LpProblem& ext = sc.ext;
  ext.Reset(d + 1);
  ext.Reserve(problem.num_constraints() + 1);
  for (size_t i = 0; i < problem.num_constraints(); ++i) {
    const double* ai = problem.row(i);
    double* row = ext.AppendRow(problem.rhs(i));
    std::copy(ai, ai + d, row);
    row[d] = -1.0;
  }
  double* last = ext.AppendRow(1.0);  // t >= -1 keeps the LP bounded
  std::fill(last, last + d, 0.0);
  last[d] = -1.0;

  std::vector<double>& start = sc.start;
  start.assign(d + 1, 0.0);
  std::copy(hint.begin(), hint.end(), start.begin());
  start[d] = std::max(0.0, problem.MaxViolation(hint.data())) + 1.0;

  std::vector<double>& c = sc.c;
  c.assign(d + 1, 0.0);
  c[d] = 1.0;

  ActiveSetSolver solver(opts);
  LpResult r = solver.Minimize(ext, c, start, nullptr, &sc.lp);
  if (r.status != LpStatus::kOptimal) {
    return Status::Internal("phase-I LP did not converge");
  }
  double t_star = r.x[d];
  if (t_star > 1e-9) {
    return Status::NotFound("constraint system is infeasible");
  }
  return std::vector<double>(r.x.begin(), r.x.begin() + d);
}

}  // namespace nncell
