#include "lp/active_set_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "lp/linalg.h"

namespace nncell {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Removes `value` from a sorted vector.
void EraseSorted(std::vector<size_t>& v, size_t value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  NNCELL_DCHECK(it != v.end() && *it == value);
  v.erase(it);
}

void InsertSorted(std::vector<size_t>& v, size_t value) {
  v.insert(std::upper_bound(v.begin(), v.end(), value), value);
}

}  // namespace

ActiveSetSolver::ActiveSetSolver(LpOptions opts) : opts_(opts) {}

LpResult ActiveSetSolver::Maximize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0) const {
  const size_t d = problem.dim();
  const size_t m = problem.num_constraints();
  NNCELL_CHECK(c.size() == d);
  NNCELL_CHECK(x0.size() == d);

  const double tol = opts_.tol;
  const double c_scale = std::max(1.0, std::sqrt(L2NormSq(c.data(), d)));
  const double dir_tol = tol * c_scale;
  const size_t max_iter =
      opts_.max_iterations ? opts_.max_iterations : 100 * (m + d) + 1000;

  LpResult result;
  result.x = x0;
  std::vector<double>& x = result.x;

  // Feasibility of the start (allow tolerance-level violation).
  const double feas_tol = 1e-7;
  if (problem.MaxViolation(x.data()) > feas_tol) {
    result.status = LpStatus::kInfeasibleStart;
    result.objective = Dot(c.data(), x.data(), d);
    return result;
  }

  std::vector<size_t> active;  // sorted working set (independent rows)
  std::vector<double> basis;   // orthonormal basis of active rows
  std::vector<double> p(d);    // search direction

  // Scratch for the multiplier system.
  std::vector<double> gram, rhs;
  std::vector<const double*> rows;

  for (size_t iter = 0; iter < max_iter; ++iter) {
    result.iterations = iter + 1;

    // Project the gradient c onto the null space of the active rows.
    rows.clear();
    for (size_t i : active) rows.push_back(problem.row(i));
    size_t rank = OrthonormalBasis(rows, d, basis);
    NNCELL_DCHECK(rank == active.size());
    (void)rank;

    for (size_t i = 0; i < d; ++i) p[i] = c[i];
    for (size_t q = 0; q < active.size(); ++q) {
      const double* bq = basis.data() + q * d;
      double proj = Dot(p.data(), bq, d);
      for (size_t i = 0; i < d; ++i) p[i] -= proj * bq[i];
    }
    double p_norm = std::sqrt(L2NormSq(p.data(), d));

    if (p_norm <= dir_tol) {
      // c lies in the span of the active normals: check optimality via
      // Lagrange multipliers (c = sum lambda_i a_i, lambda >= 0 optimal).
      if (active.empty()) {
        result.status = LpStatus::kOptimal;  // c == 0
        break;
      }
      const size_t k = active.size();
      gram.assign(k * k, 0.0);
      rhs.assign(k, 0.0);
      for (size_t i = 0; i < k; ++i) {
        const double* ai = problem.row(active[i]);
        rhs[i] = Dot(ai, c.data(), d);
        for (size_t j = 0; j < k; ++j) {
          gram[i * k + j] = Dot(ai, problem.row(active[j]), d);
        }
      }
      if (!SolveLinearSystem(gram, rhs, k)) {
        // Should not happen (rows are kept independent); treat the most
        // recently added constraint as removable to make progress.
        EraseSorted(active, active.back());
        continue;
      }
      // Bland: drop the smallest-index constraint with negative multiplier.
      size_t drop = m;  // sentinel
      for (size_t i = 0; i < k; ++i) {
        if (rhs[i] < -tol * c_scale) {
          if (drop == m || active[i] < drop) drop = active[i];
        }
      }
      if (drop == m) {
        result.status = LpStatus::kOptimal;
        break;
      }
      EraseSorted(active, drop);
      continue;
    }

    // Ratio test: largest step alpha with x + alpha p feasible.
    double alpha = kInf;
    size_t blocker = m;  // sentinel
    {
      size_t w = 0;  // cursor into sorted active set
      for (size_t i = 0; i < m; ++i) {
        if (w < active.size() && active[w] == i) {
          ++w;
          continue;
        }
        const double* ai = problem.row(i);
        double s = Dot(ai, p.data(), d);
        if (s <= dir_tol) continue;  // not blocking along p
        double slack = problem.rhs(i) - Dot(ai, x.data(), d);
        double a = std::max(0.0, slack) / s;
        // Bland's rule: strict improvement, or equal step with smaller
        // index, keeps the method from cycling on degenerate vertices.
        if (a < alpha - 1e-15) {
          alpha = a;
          blocker = i;
        }
      }
    }

    if (blocker == m) {
      result.status = LpStatus::kUnbounded;
      result.objective = kInf;
      return result;
    }

    if (alpha > 0.0) {
      for (size_t i = 0; i < d; ++i) x[i] += alpha * p[i];
    }
    InsertSorted(active, blocker);
  }

  if (result.status != LpStatus::kOptimal &&
      result.status != LpStatus::kUnbounded) {
    result.status = (result.iterations >= max_iter) ? LpStatus::kIterationLimit
                                                    : result.status;
  }

  // Refine: snap x onto the active face (one Newton correction in the span
  // of the active normals) to reduce drift accumulated by line searches.
  if (result.status == LpStatus::kOptimal && !active.empty()) {
    const size_t k = active.size();
    gram.assign(k * k, 0.0);
    rhs.assign(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      const double* ai = problem.row(active[i]);
      rhs[i] = problem.rhs(active[i]) - Dot(ai, x.data(), d);
      for (size_t j = 0; j < k; ++j) {
        gram[i * k + j] = Dot(ai, problem.row(active[j]), d);
      }
    }
    if (SolveLinearSystem(gram, rhs, k)) {
      for (size_t i = 0; i < k; ++i) {
        const double* ai = problem.row(active[i]);
        for (size_t j = 0; j < d; ++j) x[j] += rhs[i] * ai[j];
      }
    }
  }

  result.objective = Dot(c.data(), x.data(), d);
  return result;
}

LpResult ActiveSetSolver::Minimize(const LpProblem& problem,
                                   const std::vector<double>& c,
                                   const std::vector<double>& x0) const {
  std::vector<double> neg(c.size());
  for (size_t i = 0; i < c.size(); ++i) neg[i] = -c[i];
  LpResult r = Maximize(problem, neg, x0);
  r.objective = -r.objective;
  return r;
}

StatusOr<std::vector<double>> FindFeasiblePoint(const LpProblem& problem,
                                                const std::vector<double>& hint,
                                                const LpOptions& opts) {
  const size_t d = problem.dim();
  NNCELL_CHECK(hint.size() == d);

  // Fast path: the hint itself is feasible.
  if (problem.MaxViolation(hint.data()) <= 0.0) return hint;

  // Extended LP over (x, t): minimize t s.t. a_i.x - t <= b_i, -t <= 1.
  LpProblem ext(d + 1);
  ext.Reserve(problem.num_constraints() + 1);
  std::vector<double> row(d + 1);
  for (size_t i = 0; i < problem.num_constraints(); ++i) {
    const double* ai = problem.row(i);
    std::copy(ai, ai + d, row.begin());
    row[d] = -1.0;
    ext.AddConstraint(row, problem.rhs(i));
  }
  std::fill(row.begin(), row.end(), 0.0);
  row[d] = -1.0;
  ext.AddConstraint(row, 1.0);  // t >= -1 keeps the LP bounded

  std::vector<double> start(d + 1);
  std::copy(hint.begin(), hint.end(), start.begin());
  start[d] = std::max(0.0, problem.MaxViolation(hint.data())) + 1.0;

  std::vector<double> c(d + 1, 0.0);
  c[d] = 1.0;

  ActiveSetSolver solver(opts);
  LpResult r = solver.Minimize(ext, c, start);
  if (r.status != LpStatus::kOptimal) {
    return Status::Internal("phase-I LP did not converge");
  }
  double t_star = r.x[d];
  if (t_star > 1e-9) {
    return Status::NotFound("constraint system is infeasible");
  }
  return std::vector<double>(r.x.begin(), r.x.begin() + d);
}

}  // namespace nncell
