#include "lp/face_solve_session.h"

#include <cmath>
#include <limits>

#include "lp/linalg.h"

namespace nncell {

FaceSolveSession::FaceSolveSession(LpOptions opts) : solver_(opts) {}

void FaceSolveSession::set_options(const LpOptions& opts) {
  solver_ = ActiveSetSolver(opts);
}

void FaceSolveSession::BeginCell(bool warm_start) {
  warm_enabled_ = warm_start;
  prepared_ = false;
  last_face_kind_ = FaceKind::kCold;
}

void FaceSolveSession::PrepareFaces(const LpProblem& problem,
                                    const std::vector<double>& x0) {
  prepared_ = false;
  if (!warm_enabled_) return;
  const size_t d = problem.dim();
  const size_t m = problem.num_constraints();
  if (m == 0 || x0.size() != d) return;

  x0_.assign(x0.begin(), x0.end());
  sx0_.resize(m);
  MatVec(problem.matrix(), m, d, problem.stride(), x0_.data(), sx0_.data());

  // Every certificate below rests on x0 being feasible: a skipped face
  // reuses x0's coordinates verbatim, and a warm start assumes the hit
  // point is inside the polytope. A phase-I start can miss feasibility by
  // far more than its t* acceptance threshold on degenerate systems
  // (solver drift), which the cold solver silently repairs through its
  // pivots but a certificate would faithfully expose. Such cells fall
  // back to the cold pipeline wholesale.
  for (size_t r = 0; r < m; ++r) {
    double viol = sx0_[r] - problem.rhs(r);
    if (viol > 1e-9 * (1.0 + std::abs(problem.rhs(r)) + std::abs(sx0_[r]))) {
      return;
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  hit_t_.assign(2 * d, kInf);
  hit_row_.assign(2 * d, kNoRow);
  const double* a = problem.matrix();
  const size_t stride = problem.stride();
  for (size_t r = 0; r < m; ++r, a += stride) {
    // Slack of the start; feasibility dust (a phase-I point may sit a hair
    // outside a row) clamps to a zero-length step rather than a negative
    // one.
    double s = problem.rhs(r) - sx0_[r];
    if (s < 0.0) s = 0.0;
    for (size_t i = 0; i < d; ++i) {
      double coef = a[i];
      if (coef > 0.0) {
        double t = s / coef;
        // Strict '<': the earliest row wins ties, and the data-space box
        // rows come first -- so a tie between a box face and a coincident
        // bisector certifies via the (axis-aligned) box row.
        if (t < hit_t_[2 * i]) {
          hit_t_[2 * i] = t;
          hit_row_[2 * i] = r;
        }
      } else if (coef < 0.0) {
        double t = s / -coef;
        if (t < hit_t_[2 * i + 1]) {
          hit_t_[2 * i + 1] = t;
          hit_row_[2 * i + 1] = r;
        }
      }
    }
  }

  // A blocking row that is a (sign-correct) multiple of e_i certifies its
  // face: the row alone caps x_i, and the hit point attains the cap.
  axis_row_.assign(2 * d, 0);
  for (size_t slot = 0; slot < 2 * d; ++slot) {
    const size_t r = hit_row_[slot];
    if (r == kNoRow) continue;
    const double* row = problem.row(r);
    const size_t i = slot / 2;
    bool axis = true;
    for (size_t k = 0; k < d; ++k) {
      if (k != i && row[k] != 0.0) {
        axis = false;
        break;
      }
    }
    axis_row_[slot] = axis ? 1 : 0;
  }
  prepared_ = true;
}

LpResult FaceSolveSession::SolveFace(const LpProblem& problem,
                                     const std::vector<double>& c, size_t axis,
                                     bool maximize,
                                     const std::vector<double>& cold_start) {
  last_face_kind_ = FaceKind::kCold;
  if (prepared_ && axis < problem.dim()) {
    const size_t slot = 2 * axis + (maximize ? 0 : 1);
    const size_t r = hit_row_[slot];
    if (r != kNoRow) {
      if (axis_row_[slot]) {
        // Certified face: row r is alpha * (+-e_axis) with the sign that
        // blocks this direction, so every feasible x obeys
        // +-x_axis <= b_r / |alpha| and the ray hit point (feasible as the
        // first boundary crossing from a feasible start) attains it. This
        // is the exact optimum the LP would return -- emitted with its
        // KKT certificate ({r} active, multiplier 1/|alpha| >= 0) and zero
        // iterations.
        LpResult res;
        res.status = LpStatus::kOptimal;
        res.x = x0_;
        res.x[axis] = problem.rhs(r) / problem.row(r)[axis];
        res.objective = c[axis] * res.x[axis];
        res.iterations = 0;
        res.active.assign(1, r);
        last_face_kind_ = FaceKind::kSkipped;
        return res;
      }
      // Warm start at the hit point with the blocking row active -- the
      // state a cold solve reaches after its first iteration. The hit
      // point differs from x0 in one coordinate, so its row products come
      // from the cached a_r . x0 plus one column of the matrix instead of
      // a full matrix pass.
      warm_x_ = x0_;
      const double step = maximize ? hit_t_[slot] : -hit_t_[slot];
      warm_x_[axis] += step;
      const size_t m = problem.num_constraints();
      const size_t stride = problem.stride();
      warm_sx_ = sx0_;
      const double* col = problem.matrix() + axis;
      for (size_t i = 0; i < m; ++i) warm_sx_[i] += step * col[i * stride];
      warm_active_.assign(1, r);
      LpResult result =
          maximize
              ? solver_.Maximize(problem, c, warm_x_, &warm_active_,
                                 &lp_scratch_, warm_sx_.data())
              : solver_.Minimize(problem, c, warm_x_, &warm_active_,
                                 &lp_scratch_, warm_sx_.data());
      if (result.status == LpStatus::kOptimal ||
          result.status == LpStatus::kUnbounded) {
        last_face_kind_ = FaceKind::kWarm;
        return result;
      }
      // Numerically stale hit point: fall back to the cold path, keeping
      // the spent iterations in the total so the stats never hide the
      // retry.
      size_t spent = result.iterations;
      result = maximize ? solver_.Maximize(problem, c, cold_start, nullptr,
                                           &lp_scratch_)
                        : solver_.Minimize(problem, c, cold_start, nullptr,
                                           &lp_scratch_);
      result.iterations += spent;
      return result;
    }
  }
  return maximize ? solver_.Maximize(problem, c, cold_start, nullptr,
                                     &lp_scratch_)
                  : solver_.Minimize(problem, c, cold_start, nullptr,
                                     &lp_scratch_);
}

}  // namespace nncell
