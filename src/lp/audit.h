#ifndef NNCELL_LP_AUDIT_H_
#define NNCELL_LP_AUDIT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "lp/active_set_solver.h"
#include "lp/lp_problem.h"

namespace nncell::lp {

// Which direction the solver was asked to optimize. Both ActiveSetSolver
// entry points report result.objective as c . x, so the audit only needs
// the sense to orient the KKT conditions.
enum class LpSense { kMaximize, kMinimize };

struct AuditOptions {
  // Allowed constraint violation of the solution point, scaled per row by
  // max(1, ||a_i||, |b_i|).
  double feasibility_tol = 1e-6;
  // Slack threshold below which a constraint counts as active for the
  // optimality certificate.
  double activity_tol = 1e-6;
  // Allowed residual ||g - sum lambda_i a_i|| of the stationarity
  // condition, scaled by max(1, ||c||).
  double stationarity_tol = 1e-5;
  // Allowed |c . x - reported objective|, scaled by max(1, |c . x|).
  double objective_tol = 1e-7;
};

// Independent post-solve audit of an LP result -- the defense against the
// failure mode Lemma 1 cannot catch: a silently wrong face value only
// *enlarges* a cell MBR, so queries stay fast-looking while risking false
// dismissals. For kOptimal results this re-verifies, from scratch:
//
//   1. primal feasibility of x (every a_i . x <= b_i up to tolerance),
//   2. the reported objective equals c . x,
//   3. active-set optimality: the (sense-oriented) gradient lies in the
//      cone of active constraint normals, i.e. there exist KKT multipliers
//      lambda >= 0 with sum lambda_i a_i ~= g. The multipliers come from a
//      Lawson-Hanson non-negative least squares solve -- a different
//      algorithm from the active-set walk being audited, so the two do not
//      share failure modes.
//
// kUnbounded results are checked for a genuine recession direction
// (feasible improving ray); kInfeasibleStart results must actually start
// infeasible. kIterationLimit is the solver declaring failure -- there is
// no claim to audit, so it passes vacuously (callers already treat it as
// a conservative fallback).
Status AuditSolution(const LpProblem& problem, const std::vector<double>& c,
                     const LpResult& result,
                     LpSense sense = LpSense::kMaximize,
                     const AuditOptions& opts = AuditOptions());

// Non-negative least squares min ||A lambda - g||_2 s.t. lambda >= 0 by
// Lawson-Hanson active-set NNLS. `columns` holds k pointers to d-vectors
// (the columns of A). Returns the residual norm; fills `lambda` (size k,
// all >= 0). Exposed for tests.
double NonNegativeLeastSquares(const std::vector<const double*>& columns,
                               size_t d, const std::vector<double>& g,
                               std::vector<double>* lambda);

}  // namespace nncell::lp

#endif  // NNCELL_LP_AUDIT_H_
