#ifndef NNCELL_SERVER_SOCKET_IO_H_
#define NNCELL_SERVER_SOCKET_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace nncell {
namespace server {

// Socket helpers shared by the server and the client. Both transfer
// directions loop over EINTR and short reads/writes (a signal landing
// mid-transfer -- SIGTERM during drain in particular -- must never tear a
// frame), and writes use send(MSG_NOSIGNAL) so a peer that vanished
// surfaces as a Status instead of SIGPIPE. The same audit was applied to
// the fs helpers in storage/fs_util.cc: WriteAllFd and ReadFileToString
// already loop over EINTR and partial transfers.
//
// Failpoints (tested by ServerFailpointTest, listed in docs/SERVING.md):
//   server.socket.read   -- kError fails before reading; kShortWrite reads
//                           half the requested bytes, then fails (a peer
//                           that died mid-frame).
//   server.socket.write  -- kError fails before writing; kShortWrite
//                           writes half the bytes, then fails (connection
//                           reset mid-response).

// Reads exactly `n` bytes. Returns NotFound("connection closed") when the
// peer closed cleanly before the first byte, Internal on mid-buffer EOF
// ("truncated read") or socket errors.
Status ReadFull(int fd, void* buf, size_t n);

// Writes all of `bytes`, looping over partial sends. With
// `timeout_seconds > 0` the whole write must complete within that many
// seconds measured across the loop: a trickling peer that keeps each
// individual send() alive (defeating a per-call SO_SNDTIMEO) still hits
// the overall deadline and gets Internal("send deadline exceeded").
Status WriteFull(int fd, std::string_view bytes, int timeout_seconds = 0);

// --- connection setup -----------------------------------------------------

// Binds + listens on a unix-domain socket at `path` (unlinking a stale
// socket file first) / on 127.0.0.1:`port`. Returns the listening fd.
StatusOr<int> ListenUnix(const std::string& path, int backlog);
StatusOr<int> ListenTcp(int port, int backlog);

// Connects to a unix-domain socket / to 127.0.0.1:`port`.
StatusOr<int> ConnectUnix(const std::string& path);
StatusOr<int> ConnectTcp(int port);

}  // namespace server
}  // namespace nncell

#endif  // NNCELL_SERVER_SOCKET_IO_H_
