#ifndef NNCELL_SERVER_CLIENT_H_
#define NNCELL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "server/frame.h"

namespace nncell {
namespace server {

// Blocking single-connection client for the nncell_server wire protocol.
// One request in flight at a time: every call sends a frame and waits for
// the matching response (the server answers each connection's requests in
// arrival order, so request_id mismatches indicate a protocol bug and are
// reported as Internal).
//
// Wire status codes map onto Status as follows (callers that must react to
// backpressure distinguish by code):
//   RETRY_LATER   -> ResourceExhausted
//   SHUTTING_DOWN -> FailedPrecondition
//   MALFORMED     -> InvalidArgument
//   ERROR         -> Internal
class Client {
 public:
  static StatusOr<Client> ConnectUnix(const std::string& path);
  static StatusOr<Client> ConnectTcp(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  Status Ping();
  StatusOr<WireQueryResult> Query(const std::vector<double>& point);
  StatusOr<std::vector<WireQueryResult>> QueryBatch(
      const std::vector<std::vector<double>>& points);
  // Approximate-tier variants: append the approx request block and expect
  // a certificate per result (has_certificate set on every returned
  // WireQueryResult). Passing default-constructed options requests the
  // exact answer with an explicit (trivial) certificate attached.
  StatusOr<WireQueryResult> Query(const std::vector<double>& point,
                                  const ApproxOptions& approx);
  StatusOr<std::vector<WireQueryResult>> QueryBatch(
      const std::vector<std::vector<double>>& points,
      const ApproxOptions& approx);
  StatusOr<uint64_t> Insert(const std::vector<double>& point);
  Status Delete(uint64_t id);
  StatusOr<std::string> StatsJson();
  Status Checkpoint();

  // One raw round trip: sends `payload` framed as `type`, receives one
  // frame, returns its decoded header fields and payload. Exposed for the
  // protocol tests; the typed calls above are built on it.
  Status Call(uint8_t type, std::string_view payload, FrameHeader* resp_header,
              std::string* resp_payload);

  // Sends raw bytes with no framing (fuzz tests feed garbage through this).
  Status SendRaw(std::string_view bytes);
  // Receives one frame; validates header + CRC.
  Status RecvFrame(FrameHeader* header, std::string* payload);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  // Full round trip for a request expecting a status-prefixed response:
  // non-OK wire status comes back as the mapped Status, OK leaves the body
  // (payload after the status byte) in `*body` backed by `*resp_payload`.
  Status Roundtrip(uint8_t type, std::string_view payload,
                   std::string* resp_payload, std::string_view* body);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace server
}  // namespace nncell

#endif  // NNCELL_SERVER_CLIENT_H_
