#include "server/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/failpoint.h"
#include "storage/fs_util.h"

namespace nncell {
namespace server {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(fs::ErrnoMessage(what));
}

}  // namespace

Status ReadFull(int fd, void* buf, size_t n) {
  failpoint::Action fault = failpoint::Check("server.socket.read");
  if (fault == failpoint::Action::kError) {
    return Status::Internal("server.socket.read: injected read error");
  }
  if (fault == failpoint::Action::kCrash) failpoint::Crash();
  size_t limit = n;
  if (fault == failpoint::Action::kShortWrite) limit = n / 2;

  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < limit) {
    ssize_t r = ::read(fd, p + got, limit - got);
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::Internal("truncated read (" + std::to_string(got) +
                              " of " + std::to_string(n) + " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    got += static_cast<size_t>(r);
  }
  if (fault == failpoint::Action::kShortWrite) {
    return Status::Internal("server.socket.read: injected short read (" +
                            std::to_string(limit) + " of " +
                            std::to_string(n) + " bytes)");
  }
  return Status::OK();
}

Status WriteFull(int fd, std::string_view bytes, int timeout_seconds) {
  failpoint::Action fault = failpoint::Check("server.socket.write");
  if (fault == failpoint::Action::kError) {
    return Status::Internal("server.socket.write: injected write error");
  }
  if (fault == failpoint::Action::kCrash) failpoint::Crash();
  size_t limit = bytes.size();
  if (fault == failpoint::Action::kShortWrite) limit = bytes.size() / 2;

  // The deadline spans the whole loop, so a peer draining one byte per
  // send() cannot stretch one frame write forever; each blocking send is
  // itself bounded by the fd's SO_SNDTIMEO, so the worst case is
  // deadline + one send timeout.
  const auto deadline =
      timeout_seconds > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::seconds(timeout_seconds)
          : std::chrono::steady_clock::time_point::max();

  size_t written = 0;
  while (written < limit) {
    // MSG_NOSIGNAL: a vanished peer is a Status (EPIPE), never SIGPIPE.
    ssize_t w = ::send(fd, bytes.data() + written, limit - written,
                       MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(w);
    if (written < limit && std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal(
          "send deadline exceeded (" + std::to_string(written) + " of " +
          std::to_string(bytes.size()) + " bytes in " +
          std::to_string(timeout_seconds) + "s)");
    }
  }
  if (fault == failpoint::Action::kShortWrite) {
    return Status::Internal("server.socket.write: injected short write (" +
                            std::to_string(limit) + " of " +
                            std::to_string(bytes.size()) + " bytes)");
  }
  return Status::OK();
}

StatusOr<int> ListenUnix(const std::string& path, int backlog) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Errno("listen " + path);
  }
  return fd;
}

StatusOr<int> ListenTcp(int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Errno("listen :" + std::to_string(port));
  }
  return fd;
}

StatusOr<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Errno("connect " + path);
  }
}

StatusOr<int> ConnectTcp(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Errno("connect 127.0.0.1:" + std::to_string(port));
  }
}

}  // namespace server
}  // namespace nncell
