#ifndef NNCELL_SERVER_SERVER_H_
#define NNCELL_SERVER_SERVER_H_

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "nncell/nncell_index.h"
#include "server/frame.h"

namespace nncell {
namespace server {

struct ServerOptions {
  // Unix-domain socket path; empty disables the unix listener.
  std::string socket_path;
  // TCP port on 127.0.0.1; 0 disables the TCP listener. At least one
  // listener must be configured.
  int tcp_port = 0;
  // Admission-queue capacity: the max number of parsed requests waiting
  // for the dispatcher. A frame arriving at a full queue is answered with
  // RETRY_LATER immediately (explicit backpressure, never a silent stall).
  size_t max_queue = 256;
  // Micro-batch cap: the dispatcher coalesces up to this many consecutive
  // queued QUERY requests into one NNCellIndex::QueryBatch call.
  size_t max_batch = 32;
  int listen_backlog = 64;
};

// The index operations the server dispatcher needs, so one server can
// front either a plain NNCellIndex or a sharded one (the daemon in
// tools/nncell_server.cc provides the ShardedIndex adapter; the server
// library itself stays independent of the shard layer). Implementations
// forward to an index the caller keeps alive; thread-safety contract is
// the index's own (QueryBatch concurrent-safe, mutations called only from
// the single dispatcher thread).
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;
  virtual size_t dim() const = 0;
  virtual bool durable() const = 0;
  // `approx` carries the request's approximate-tier knobs; a
  // default-constructed value (the usual case) must take the exact path
  // bit-identically (docs/APPROXIMATE.md).
  virtual StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const = 0;
  virtual StatusOr<uint64_t> Insert(const std::vector<double>& point) = 0;
  virtual Status Delete(uint64_t id) = 0;
  virtual Status Checkpoint() = 0;
  // The "shard" object of STATS_JSON, or empty for a plain index (the
  // key is omitted entirely so the unsharded schema is unchanged).
  virtual std::string ShardStatsJson() const { return std::string(); }
};

// A long-running query service wrapping one NNCellIndex: concurrent
// connections (one reader thread each) feed a bounded admission queue,
// and a single dispatcher thread executes requests in global arrival
// order, coalescing runs of consecutive QUERY requests into
// NNCellIndex::QueryBatch calls (adaptive micro-batching: the batch is
// whatever is already queued, capped at max_batch -- it grows under load
// and degenerates to 1 when idle, adding no latency).
//
// The single dispatcher is the concurrency design, not a limitation:
// index mutations (INSERT/DELETE/CHECKPOINT) require exclusion from
// concurrent queries, admitted requests are answered in per-connection
// admission order, and intra-query parallelism is the index's own thread
// pool (NNCellIndex::SetNumThreads fans a QueryBatch across cores).
// Reader threads never touch the index; they parse frames and enqueue.
// One deliberate ordering exception: RETRY_LATER rejections are written
// by the reader the moment admission fails, so under backpressure they
// can overtake OK responses still queued for the dispatcher -- pipelining
// clients must match responses by request id, not arrival order.
//
// Shutdown (Stop, typically triggered by SIGINT/SIGTERM in the daemon) is
// a graceful drain: stop accepting connections, shut the read side of
// every connection, join the readers, let the dispatcher answer every
// queued request, then close write sides and -- for a durable index --
// fold the WAL into a fresh snapshot via Checkpoint().
class NNCellServer {
 public:
  // Borrows `index`; the caller keeps it alive and does not touch it
  // between Start() and Stop(). Wraps it in the built-in plain-index
  // backend.
  NNCellServer(NNCellIndex* index, ServerOptions options);
  // Borrows `backend` under the same contract (sharded daemons pass an
  // IndexBackend over a ShardedIndex).
  NNCellServer(IndexBackend* backend, ServerOptions options);
  ~NNCellServer();

  NNCellServer(const NNCellServer&) = delete;
  NNCellServer& operator=(const NNCellServer&) = delete;

  // Binds the configured listeners and starts the listener/dispatcher
  // threads. Returns immediately; the server runs until Stop().
  Status Start();

  // Graceful drain as described above. Idempotent; blocks until every
  // accepted request is answered and all threads joined. Returns the
  // checkpoint status (OK for non-durable indexes).
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Conservation counters (also exported as server.* registry metrics and
  // in the STATS_JSON "server" object). At any quiescent point
  // accepted == completed + rejected.
  uint64_t accepted() const { return accepted_.load(); }
  uint64_t completed() const { return completed_.load(); }
  uint64_t rejected() const { return rejected_.load(); }
  uint64_t malformed() const { return malformed_.load(); }

  // The STATS_JSON response body; schema-stable:
  // {"server":{...fixed keys...},"metrics":{...full registry snapshot...}},
  // with a "shard" object between the two when the backend is sharded
  // (docs/SERVING.md, docs/SHARDING.md).
  std::string StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    Mutex write_mu;  // serializes reader (rejects) and dispatcher writes
    bool write_open NNCELL_GUARDED_BY(write_mu) = true;

    Connection() = default;
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;
    // The last shared_ptr reference (map entry or queued WorkItem) closes
    // the fd; a deliberately dropped connection reaches the peer as EOF.
    ~Connection() {
      if (fd >= 0) ::close(fd);
    }
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    uint8_t type = 0;
    uint64_t request_id = 0;
    std::string payload;
    std::chrono::steady_clock::time_point enqueued;
  };

  void ListenerLoop(int listen_fd);
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void DispatcherLoop();

  // Parses and admits one frame; returns false when the connection must
  // close (clean EOF, unrecoverable framing fault, or I/O error).
  bool HandleOneFrame(const std::shared_ptr<Connection>& conn);

  // Executes one non-query item (INSERT/DELETE/PING/STATS/CHECKPOINT).
  void ExecuteItem(const WorkItem& item);
  // Executes a run of consecutive QUERY/QUERY_BATCH items as one batch.
  void ExecuteQueryRun(std::vector<WorkItem>& run);

  void Respond(const WorkItem& item, uint8_t resp_type,
               const std::string& payload);
  void RespondStatus(const std::shared_ptr<Connection>& conn, uint8_t type,
                     uint64_t request_id, uint8_t status,
                     const std::string& message);
  void WriteFrame(const std::shared_ptr<Connection>& conn, uint8_t type,
                  uint64_t request_id, const std::string& payload);

  void RecordLatency(const WorkItem& item);

  // Bumps one conservation counter and its registry twin.
  void Count(std::atomic<uint64_t>& counter, metrics::Counter* metric);

  // Set only by the NNCellIndex constructor (which owns the wrapper);
  // `backend_` is what the dispatcher talks to either way.
  std::unique_ptr<IndexBackend> owned_backend_;
  IndexBackend* backend_;
  const ServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::vector<int> listen_fds_;
  int wake_pipe_[2] = {-1, -1};  // unblocks the listener's poll on Stop

  std::vector<std::thread> listener_threads_;
  std::thread dispatcher_thread_;

  mutable Mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_
      NNCELL_GUARDED_BY(conns_mu_);
  // Live reader threads, keyed by connection id. An exiting reader moves
  // its own handle into finished_reader_threads_, which the listener
  // reaps (joins) on the next accept -- under connection churn the thread
  // table stays bounded by the number of *open* connections instead of
  // growing for the life of the server. Stop() joins both sets.
  std::map<uint64_t, std::thread> reader_threads_
      NNCELL_GUARDED_BY(conns_mu_);
  std::vector<std::thread> finished_reader_threads_
      NNCELL_GUARDED_BY(conns_mu_);
  uint64_t next_conn_id_ NNCELL_GUARDED_BY(conns_mu_) = 0;

  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<WorkItem> queue_ NNCELL_GUARDED_BY(queue_mu_);
  bool readers_done_ NNCELL_GUARDED_BY(queue_mu_) = false;

  // Conservation counters; atomics (not registry metrics) so the
  // accepted == completed + rejected contract holds even with metrics
  // collection disabled.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> malformed_{0};

  // Cached registry handles (see common/metrics_names.h).
  metrics::Counter* m_conn_opened_;
  metrics::Counter* m_conn_closed_;
  metrics::Counter* m_accepted_;
  metrics::Counter* m_completed_;
  metrics::Counter* m_rejected_;
  metrics::Counter* m_malformed_;
  metrics::Counter* m_batches_;
  metrics::Histogram* m_batch_size_;
  metrics::Gauge* m_queue_depth_;
  metrics::Histogram* m_latency_query_;
  metrics::Histogram* m_latency_write_;
};

}  // namespace server
}  // namespace nncell

#endif  // NNCELL_SERVER_SERVER_H_
