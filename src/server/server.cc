#include "server/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.h"
#include "common/kernels/kernels.h"
#include "common/metrics_names.h"
#include "server/socket_io.h"
#include "storage/fs_util.h"

namespace nncell {
namespace server {

namespace {

// Slow-consumer bound: a response frame that does not finish writing
// within this long marks the connection's write side dead instead of
// stalling the dispatcher forever behind one stuck client. Enforced two
// ways: SO_SNDTIMEO bounds each blocking send(), and WriteFull is given
// the same value as an overall per-frame deadline so a peer trickling a
// byte every few seconds (keeping individual sends alive) is still cut
// off.
constexpr int kSendTimeoutSeconds = 30;

bool IsQueryType(uint8_t type) {
  return type == kReqQuery || type == kReqQueryBatch;
}

// The built-in backend over a plain NNCellIndex (the sharded one lives
// with the daemon that links the shard layer).
class PlainIndexBackend : public IndexBackend {
 public:
  explicit PlainIndexBackend(NNCellIndex* index) : index_(index) {
    NNCELL_CHECK(index_ != nullptr);
  }
  size_t dim() const override { return index_->dim(); }
  bool durable() const override { return index_->durable(); }
  StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const override {
    return index_->QueryBatch(queries, approx);
  }
  StatusOr<uint64_t> Insert(const std::vector<double>& point) override {
    return index_->Insert(point);
  }
  Status Delete(uint64_t id) override { return index_->Delete(id); }
  Status Checkpoint() override { return index_->Checkpoint(); }

 private:
  NNCellIndex* const index_;
};

}  // namespace

NNCellServer::NNCellServer(NNCellIndex* index, ServerOptions options)
    // nncell-lint: allow(naked-new) delegation needs the raw pointer; the body takes ownership into owned_backend_ before anything can fail
    : NNCellServer(static_cast<IndexBackend*>(new PlainIndexBackend(index)),
                   std::move(options)) {
  owned_backend_.reset(backend_);
}

NNCellServer::NNCellServer(IndexBackend* backend, ServerOptions options)
    : backend_(backend), options_(std::move(options)) {
  NNCELL_CHECK(backend_ != nullptr);
  NNCELL_CHECK(options_.max_queue > 0);
  NNCELL_CHECK(options_.max_batch > 0);
  metrics::Registry& reg = metrics::Registry::Global();
  m_conn_opened_ = reg.counter(metrics::kServerConnectionsOpened);
  m_conn_closed_ = reg.counter(metrics::kServerConnectionsClosed);
  m_accepted_ = reg.counter(metrics::kServerRequestsAccepted);
  m_completed_ = reg.counter(metrics::kServerRequestsCompleted);
  m_rejected_ = reg.counter(metrics::kServerRequestsRejected);
  m_malformed_ = reg.counter(metrics::kServerFramesMalformed);
  m_batches_ = reg.counter(metrics::kServerBatchesDispatched);
  m_batch_size_ = reg.histogram(metrics::kServerBatchSize);
  m_queue_depth_ = reg.gauge(metrics::kServerQueueDepth);
  m_latency_query_ = reg.histogram(metrics::kServerLatencyQueryUs);
  m_latency_write_ = reg.histogram(metrics::kServerLatencyWriteUs);
}

NNCellServer::~NNCellServer() {
  if (running()) (void)Stop();  // best effort; Stop's status is its result
}

Status NNCellServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  if (options_.socket_path.empty() && options_.tcp_port == 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC) != 0) {
    return Status::Internal(fs::ErrnoMessage("pipe2"));
  }
  if (!options_.socket_path.empty()) {
    auto fd = ListenUnix(options_.socket_path, options_.listen_backlog);
    if (!fd.ok()) return fd.status();
    listen_fds_.push_back(*fd);
  }
  if (options_.tcp_port != 0) {
    auto fd = ListenTcp(options_.tcp_port, options_.listen_backlog);
    if (!fd.ok()) {
      for (int lfd : listen_fds_) ::close(lfd);
      listen_fds_.clear();
      return fd.status();
    }
    listen_fds_.push_back(*fd);
  }
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  dispatcher_thread_ = std::thread([this] { DispatcherLoop(); });
  for (int fd : listen_fds_) {
    listener_threads_.emplace_back([this, fd] { ListenerLoop(fd); });
  }
  return Status::OK();
}

Status NNCellServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting: wake the listener polls and join them.
  (void)!::write(wake_pipe_[1], "x", 1);
  for (std::thread& t : listener_threads_) t.join();
  listener_threads_.clear();
  for (int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // 2. Shut the read side of every connection: in-flight reads return,
  // readers enqueue nothing further and exit.
  std::vector<std::thread> readers;
  {
    MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) ::shutdown(conn->fd, SHUT_RD);
    for (auto& [id, t] : reader_threads_) readers.push_back(std::move(t));
    reader_threads_.clear();
    for (std::thread& t : finished_reader_threads_) {
      readers.push_back(std::move(t));
    }
    finished_reader_threads_.clear();
  }
  for (std::thread& t : readers) t.join();

  // 3. Drain: the dispatcher answers everything still queued, then exits.
  {
    MutexLock lock(queue_mu_);
    readers_done_ = true;
    queue_cv_.NotifyAll();
  }
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();

  // 4. Close the connections (the map holds the last references; the
  // Connection destructor closes each fd exactly once).
  {
    MutexLock lock(conns_mu_);
    conns_.clear();
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }

  // 5. Make the served state durable before the process goes away.
  if (backend_->durable()) return backend_->Checkpoint();
  return Status::OK();
}

void NNCellServer::ListenerLoop(int listen_fd) {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;  // transient accept failure or racing shutdown

    struct timeval tv = {kSendTimeoutSeconds, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::vector<std::thread> finished;
    {
      MutexLock lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
      reader_threads_[conn->id] =
          std::thread([this, conn] { ReaderLoop(conn); });
      finished.swap(finished_reader_threads_);
    }
    // Reap readers whose connections already closed. These threads have
    // (at most) a few instructions left past handing off their handle, so
    // the joins are effectively instant; doing them outside conns_mu_
    // keeps an exiting reader's own lock acquisition deadlock-free.
    for (std::thread& t : finished) t.join();
    NNCELL_METRIC_COUNT(m_conn_opened_, 1);
  }
}

void NNCellServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  while (HandleOneFrame(conn)) {
  }
  {
    MutexLock lock(conns_mu_);
    // Drop the map's reference; queued responses keep the connection alive
    // until the dispatcher has written them, then the fd closes.
    if (!draining_.load(std::memory_order_acquire)) {
      conns_.erase(conn->id);
    }
    // Hand our own thread handle to the listener for reaping. Absent means
    // Stop() already claimed it and is (or will be) joining us.
    auto it = reader_threads_.find(conn->id);
    if (it != reader_threads_.end()) {
      finished_reader_threads_.push_back(std::move(it->second));
      reader_threads_.erase(it);
    }
  }
  NNCELL_METRIC_COUNT(m_conn_closed_, 1);
}

bool NNCellServer::HandleOneFrame(const std::shared_ptr<Connection>& conn) {
  uint8_t header_buf[kFrameHeaderBytes];
  Status st = ReadFull(conn->fd, header_buf, sizeof(header_buf));
  if (!st.ok()) return false;  // clean close, truncation, or I/O fault

  FrameHeader header;
  st = DecodeFrameHeader(header_buf, sizeof(header_buf), &header);
  if (!st.ok()) {
    // The byte stream cannot be resynchronized: answer with a bare error
    // frame (type kRespBit: the request type byte is untrusted) and close
    // the connection deliberately.
    Count(malformed_, m_malformed_);
    RespondStatus(conn, kRespBit, header.request_id, kStatusMalformed,
                  st.message());
    return false;
  }

  std::string payload(header.payload_len, '\0');
  if (header.payload_len > 0) {
    st = ReadFull(conn->fd, payload.data(), payload.size());
    if (!st.ok()) {
      // Truncated payload: the frame can never complete; close.
      Count(malformed_, m_malformed_);
      RespondStatus(conn, kRespBit, header.request_id, kStatusMalformed,
                    "truncated payload: " + st.message());
      return false;
    }
  }

  st = VerifyPayloadCrc(header, payload);
  if (!st.ok()) {
    // Framing is intact (we consumed exactly the advertised bytes), so the
    // connection survives a corrupt payload.
    Count(malformed_, m_malformed_);
    RespondStatus(conn, static_cast<uint8_t>(header.type | kRespBit),
                  header.request_id, kStatusMalformed, st.message());
    return true;
  }
  if (header.type < kReqPing || header.type > kReqCheckpoint) {
    Count(malformed_, m_malformed_);
    RespondStatus(conn, static_cast<uint8_t>(header.type | kRespBit),
                  header.request_id, kStatusMalformed,
                  "unknown request type " + std::to_string(header.type));
    return true;
  }

  // A well-formed request: admit or reject, never stall.
  Count(accepted_, m_accepted_);
  const uint8_t resp_type = static_cast<uint8_t>(header.type | kRespBit);
  if (draining_.load(std::memory_order_acquire)) {
    Count(rejected_, m_rejected_);
    RespondStatus(conn, resp_type, header.request_id, kStatusShuttingDown,
                  "server is draining");
    return false;
  }
  bool admitted = false;
  {
    MutexLock lock(queue_mu_);
    if (queue_.size() < options_.max_queue) {
      WorkItem item;
      item.conn = conn;
      item.type = header.type;
      item.request_id = header.request_id;
      item.payload = std::move(payload);
      item.enqueued = std::chrono::steady_clock::now();
      queue_.push_back(std::move(item));
      queue_cv_.NotifyOne();
      admitted = true;
    }
  }
  // The rejection is written outside queue_mu_: RespondStatus can block on
  // a slow consumer for up to the send timeout, and holding the queue lock
  // across it would stall the dispatcher and every other reader.
  if (!admitted) {
    Count(rejected_, m_rejected_);
    RespondStatus(conn, resp_type, header.request_id, kStatusRetryLater,
                  "admission queue full");
    return true;
  }
  NNCELL_METRIC_GAUGE_ADD(m_queue_depth_, 1);
  return true;
}

void NNCellServer::DispatcherLoop() {
  for (;;) {
    std::vector<WorkItem> run;
    {
      MutexLock lock(queue_mu_);
      while (queue_.empty() && !readers_done_) queue_cv_.Wait(queue_mu_);
      if (queue_.empty() && readers_done_) return;
      // Adaptive micro-batching: take the head, then every consecutive
      // query already waiting, up to max_batch items. Arrival order is
      // preserved -- a write op ends the run.
      run.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (IsQueryType(run.front().type)) {
        while (run.size() < options_.max_batch && !queue_.empty() &&
               IsQueryType(queue_.front().type)) {
          run.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    NNCELL_METRIC_GAUGE_ADD(m_queue_depth_,
                            -static_cast<int64_t>(run.size()));
    if (IsQueryType(run.front().type)) {
      ExecuteQueryRun(run);
    } else {
      ExecuteItem(run.front());
    }
  }
}

namespace {

WireQueryResult ToWire(const NNCellIndex::QueryResult& r,
                       bool with_certificate) {
  WireQueryResult w;
  w.id = r.id;
  w.dist = r.dist;
  w.candidates = static_cast<uint32_t>(r.candidates);
  w.used_fallback = r.used_fallback ? 1 : 0;
  w.point = r.point;
  w.has_certificate = with_certificate;
  if (with_certificate) {
    w.certificate.approximate = r.approx.approximate ? 1 : 0;
    w.certificate.terminated_early = r.approx.terminated_early ? 1 : 0;
    w.certificate.truncated = r.approx.truncated ? 1 : 0;
    w.certificate.leaf_visits = r.approx.leaf_visits;
    w.certificate.bound = r.approx.bound;
  }
  return w;
}

}  // namespace

void NNCellServer::ExecuteQueryRun(std::vector<WorkItem>& run) {
  // Decode every item first; only valid queries enter a batch. Consecutive
  // items with identical approx knobs share one QueryBatch call, so
  // traffic without the approx block (the common case, and every pre-tier
  // client) coalesces into a single exact batch exactly as before.
  struct Decoded {
    size_t first = 0;  // offset of this item's queries in its group's batch
    size_t count = 0;  // 0 = decode failed, response already sent
    size_t group = 0;  // index into `groups`
    bool has_approx = false;  // request carried the block -> respond with
                              // certificates
  };
  struct Group {
    ApproxOptions approx;
    PointSet batch;
    std::vector<NNCellIndex::QueryResult> results;
    Status status;
    Group(size_t dim, const ApproxOptions& a) : approx(a), batch(dim) {}
  };
  std::vector<Decoded> decoded(run.size());
  std::vector<Group> groups;
  groups.reserve(run.size());
  for (size_t i = 0; i < run.size(); ++i) {
    const WorkItem& item = run[i];
    const uint8_t resp_type = static_cast<uint8_t>(item.type | kRespBit);
    std::vector<double> flat;
    size_t dim = 0;
    size_t count = 0;
    ApproxOptions approx;
    bool has_approx = false;
    Status st;
    if (item.type == kReqQuery) {
      std::vector<double> point;
      st = DecodePointPayloadWithApprox(item.payload, &point, &approx,
                                        &has_approx);
      dim = point.size();
      count = 1;
      flat = std::move(point);
    } else {
      st = DecodeBatchPayloadWithApprox(item.payload, &dim, &flat, &count,
                                        &approx, &has_approx);
    }
    if (!st.ok()) {
      Count(completed_, m_completed_);
      RespondStatus(item.conn, resp_type, item.request_id, kStatusMalformed,
                    st.message());
      continue;
    }
    if (dim != backend_->dim()) {
      Count(completed_, m_completed_);
      RespondStatus(item.conn, resp_type, item.request_id, kStatusError,
                    "dimension mismatch: got " + std::to_string(dim) +
                        ", index is " + std::to_string(backend_->dim()));
      continue;
    }
    if (groups.empty() ||
        groups.back().approx.epsilon != approx.epsilon ||
        groups.back().approx.max_leaf_visits != approx.max_leaf_visits) {
      groups.emplace_back(backend_->dim(), approx);
    }
    Group& g = groups.back();
    decoded[i].group = groups.size() - 1;
    decoded[i].has_approx = has_approx;
    decoded[i].first = g.batch.size();
    decoded[i].count = count;
    for (size_t q = 0; q < count; ++q) {
      g.batch.Add(flat.data() + q * dim);
    }
  }

  for (Group& g : groups) {
    NNCELL_METRIC_COUNT(m_batches_, 1);
    NNCELL_METRIC_RECORD(m_batch_size_, g.batch.size());
    auto r = backend_->QueryBatch(g.batch, g.approx);
    if (r.ok()) {
      g.results = std::move(*r);
    } else {
      g.status = r.status();
    }
  }

  for (size_t i = 0; i < run.size(); ++i) {
    if (decoded[i].count == 0) continue;  // already answered above
    const WorkItem& item = run[i];
    const uint8_t resp_type = static_cast<uint8_t>(item.type | kRespBit);
    const Group& g = groups[decoded[i].group];
    if (!g.status.ok()) {
      Count(completed_, m_completed_);
      RespondStatus(item.conn, resp_type, item.request_id, kStatusError,
                    g.status.message());
      continue;
    }
    std::string payload;
    if (item.type == kReqQuery) {
      EncodeQueryResultPayload(
          ToWire(g.results[decoded[i].first], decoded[i].has_approx),
          &payload);
    } else {
      std::vector<WireQueryResult> rs;
      rs.reserve(decoded[i].count);
      for (size_t q = 0; q < decoded[i].count; ++q) {
        rs.push_back(ToWire(g.results[decoded[i].first + q],
                            decoded[i].has_approx));
      }
      EncodeQueryBatchResultPayload(rs, &payload);
    }
    Respond(item, resp_type, payload);
  }
}

void NNCellServer::ExecuteItem(const WorkItem& item) {
  const uint8_t resp_type = static_cast<uint8_t>(item.type | kRespBit);
  std::string payload;
  switch (item.type) {
    case kReqPing:
      EncodeStatusPayload(kStatusOk, "", &payload);
      break;
    case kReqInsert: {
      std::vector<double> point;
      Status st = DecodePointPayload(item.payload, &point);
      if (!st.ok()) {
        EncodeStatusPayload(kStatusMalformed, st.message(), &payload);
        break;
      }
      auto id = backend_->Insert(point);
      if (id.ok()) {
        EncodeInsertResultPayload(*id, &payload);
      } else {
        EncodeStatusPayload(kStatusError, id.status().ToString(), &payload);
      }
      break;
    }
    case kReqDelete: {
      uint64_t id = 0;
      Status st = DecodeDeletePayload(item.payload, &id);
      if (!st.ok()) {
        EncodeStatusPayload(kStatusMalformed, st.message(), &payload);
        break;
      }
      st = backend_->Delete(id);
      if (st.ok()) {
        EncodeStatusPayload(kStatusOk, "", &payload);
      } else {
        EncodeStatusPayload(kStatusError, st.ToString(), &payload);
      }
      break;
    }
    case kReqStatsJson:
      // Count this request as completed before snapshotting: the response
      // it carries then satisfies accepted == completed + rejected for a
      // requester probing an otherwise-quiescent server (the probe must
      // not observe itself as in flight).
      Count(completed_, m_completed_);
      EncodeStatsPayload(StatsJson(), &payload);
      WriteFrame(item.conn, resp_type, item.request_id, payload);
      RecordLatency(item);
      return;
    case kReqCheckpoint: {
      if (!backend_->durable()) {
        EncodeStatusPayload(kStatusError, "index is not durable", &payload);
        break;
      }
      Status st = backend_->Checkpoint();
      if (st.ok()) {
        EncodeStatusPayload(kStatusOk, "", &payload);
      } else {
        EncodeStatusPayload(kStatusError, st.ToString(), &payload);
      }
      break;
    }
    default:
      EncodeStatusPayload(kStatusMalformed, "unhandled type", &payload);
      break;
  }
  Respond(item, resp_type, payload);
}

void NNCellServer::Respond(const WorkItem& item, uint8_t resp_type,
                           const std::string& payload) {
  // Count before writing: a client that has observed the response must
  // already see it reflected in the conservation counters.
  Count(completed_, m_completed_);
  WriteFrame(item.conn, resp_type, item.request_id, payload);
  RecordLatency(item);
}

void NNCellServer::RespondStatus(const std::shared_ptr<Connection>& conn,
                                 uint8_t type, uint64_t request_id,
                                 uint8_t status, const std::string& message) {
  std::string payload;
  EncodeStatusPayload(status, message, &payload);
  WriteFrame(conn, type, request_id, payload);
}

void NNCellServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                              uint8_t type, uint64_t request_id,
                              const std::string& payload) {
  std::string frame;
  EncodeFrame(type, request_id, payload, &frame);
  MutexLock lock(conn->write_mu);
  if (!conn->write_open) return;
  Status st = WriteFull(conn->fd, frame, kSendTimeoutSeconds);
  if (!st.ok()) {
    // The peer is gone or stuck past the send timeout; every later
    // response to this connection is skipped.
    conn->write_open = false;
  }
}

void NNCellServer::Count(std::atomic<uint64_t>& counter,
                         metrics::Counter* metric) {
  // The conservation counters are independent monotonic tallies: nothing
  // is published through them, and every quiescent read (test asserts,
  // the DRAINED line, STATS_JSON of an idle server) is already ordered by
  // a thread join or the queue mutex hand-off.
  // nncell-lint: allow(relaxed-atomics) pure tally, reads ordered by join/mutex
  counter.fetch_add(1, std::memory_order_relaxed);
  NNCELL_METRIC_COUNT(metric, 1);
}

void NNCellServer::RecordLatency(const WorkItem& item) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - item.enqueued)
                      .count();
  if (IsQueryType(item.type)) {
    NNCELL_METRIC_RECORD(m_latency_query_, us);
  } else if (item.type == kReqInsert || item.type == kReqDelete ||
             item.type == kReqCheckpoint) {
    NNCELL_METRIC_RECORD(m_latency_write_, us);
  }
}

std::string NNCellServer::StatsJson() const {
  size_t depth = 0;
  {
    MutexLock lock(queue_mu_);
    depth = queue_.size();
  }
  size_t open = 0;
  {
    MutexLock lock(conns_mu_);
    open = conns_.size();
  }
  std::string out = "{\"server\":{";
  out += "\"accepted\":" + std::to_string(accepted());
  out += ",\"completed\":" + std::to_string(completed());
  out += ",\"connections_open\":" + std::to_string(open);
  out += ",\"draining\":";
  out += draining_.load(std::memory_order_acquire) ? "1" : "0";
  out += ",\"kernel_dispatch\":\"";
  out += kernels::ActiveLevelName();
  out += "\"";
  out += ",\"malformed\":" + std::to_string(malformed());
  out += ",\"queue_depth\":" + std::to_string(depth);
  out += ",\"rejected\":" + std::to_string(rejected());
  out += "}";
  std::string shard = backend_->ShardStatsJson();
  if (!shard.empty()) {
    out += ",\"shard\":";
    out += shard;
  }
  out += ",\"metrics\":";
  out += metrics::Registry::Global().SnapshotJson();
  out += "}";
  return out;
}

}  // namespace server
}  // namespace nncell
