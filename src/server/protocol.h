#ifndef NNCELL_SERVER_PROTOCOL_H_
#define NNCELL_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

// Single source of truth for every constant of the query-service wire
// protocol: the frame header, the request/response type codes and the
// response status codes. docs/SERVING.md documents the byte-level layout,
// and tools/check_docs_links.sh cross-checks every constant name and value
// in this header against that document in both directions, so the wire
// documentation cannot drift from the code (same contract as
// storage/durable_format.h <-> docs/PERSISTENCE.md).
//
// The magic spells an ASCII tag when the u32 is read big-endian (on the
// wire, little-endian, the bytes appear reversed).

namespace nncell {
namespace server {

// --- frame header ---------------------------------------------------------
// Every message in either direction is one frame:
//
//   u32 magic  u8 version  u8 type  u16 reserved(=0)
//   u64 request_id  u32 payload_len  u32 payload_crc
//
// followed by payload_len payload bytes whose CRC32C is payload_crc. All
// integers little-endian. request_id is chosen by the client and echoed
// verbatim in the response frame.
inline constexpr uint32_t kFrameMagic = 0x4e4e4346;  // "NNCF"
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
// Sanity bound on one frame's payload; a parsed length above this is a
// malformed frame (and closes the connection), not a huge request.
inline constexpr uint32_t kFrameMaxPayload = 4194304;

// --- request types (frame `type` byte, client -> server) ------------------
inline constexpr uint8_t kReqPing = 1;
inline constexpr uint8_t kReqQuery = 2;
inline constexpr uint8_t kReqQueryBatch = 3;
inline constexpr uint8_t kReqInsert = 4;
inline constexpr uint8_t kReqDelete = 5;
inline constexpr uint8_t kReqStatsJson = 6;
inline constexpr uint8_t kReqCheckpoint = 7;

// A response frame's type is the request type with the response bit set;
// a malformed frame whose request type could not be read is answered with
// type kRespBit alone.
inline constexpr uint8_t kRespBit = 128;

// --- response status (first payload byte of every response) ---------------
inline constexpr uint8_t kStatusOk = 0;
// Admission queue full: the request was not executed; retry after backoff.
inline constexpr uint8_t kStatusRetryLater = 1;
// The request frame failed validation (bad CRC, bad payload, bad type).
inline constexpr uint8_t kStatusMalformed = 2;
// The server is draining and no longer admits new requests.
inline constexpr uint8_t kStatusShuttingDown = 3;
// The operation itself failed (duplicate insert, dead id, non-durable
// checkpoint, ...); an error message follows.
inline constexpr uint8_t kStatusError = 4;

// --- payload bounds -------------------------------------------------------
// Queries/points above this dimensionality are rejected as malformed.
inline constexpr uint32_t kMaxPointDim = 4096;
// Max queries in one QUERY_BATCH frame.
inline constexpr uint32_t kMaxBatchQueries = 1024;

// Approximate query tier (docs/APPROXIMATE.md). A QUERY / QUERY_BATCH
// request payload may carry one OPTIONAL trailing approx block after the
// coordinates: f64 epsilon, u64 max_leaf_visits. When (and only when) the
// request carried that block, every result in the response is followed by
// a certificate block: u8 approximate, u8 terminated_early, u8 truncated,
// u64 leaf_visits, f64 bound. Requests without the block produce
// byte-identical responses to protocol version 1 before the tier existed.
inline constexpr uint32_t kApproxRequestBytes = 16;
inline constexpr uint32_t kApproxCertificateBytes = 19;

}  // namespace server
}  // namespace nncell

#endif  // NNCELL_SERVER_PROTOCOL_H_
