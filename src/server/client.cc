#include "server/client.h"

#include <unistd.h>

#include <utility>

#include "server/protocol.h"
#include "server/socket_io.h"

namespace nncell {
namespace server {

namespace {

Status MapWireStatus(uint8_t status, const std::string& message) {
  switch (status) {
    case kStatusOk:
      return Status::OK();
    case kStatusRetryLater:
      return Status::ResourceExhausted("server: " + message);
    case kStatusShuttingDown:
      return Status::FailedPrecondition("server: " + message);
    case kStatusMalformed:
      return Status::InvalidArgument("server: " + message);
    default:
      return Status::Internal("server: " + message);
  }
}

}  // namespace

StatusOr<Client> Client::ConnectUnix(const std::string& path) {
  auto fd = server::ConnectUnix(path);
  if (!fd.ok()) return fd.status();
  return Client(*fd);
}

StatusOr<Client> Client::ConnectTcp(int port) {
  auto fd = server::ConnectTcp(port);
  if (!fd.ok()) return fd.status();
  return Client(*fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(std::string_view bytes) {
  return WriteFull(fd_, bytes);
}

Status Client::RecvFrame(FrameHeader* header, std::string* payload) {
  uint8_t header_buf[kFrameHeaderBytes];
  NNCELL_RETURN_IF_ERROR(ReadFull(fd_, header_buf, sizeof(header_buf)));
  NNCELL_RETURN_IF_ERROR(
      DecodeFrameHeader(header_buf, sizeof(header_buf), header));
  payload->assign(header->payload_len, '\0');
  if (header->payload_len > 0) {
    NNCELL_RETURN_IF_ERROR(ReadFull(fd_, payload->data(), payload->size()));
  }
  return VerifyPayloadCrc(*header, *payload);
}

Status Client::Call(uint8_t type, std::string_view payload,
                    FrameHeader* resp_header, std::string* resp_payload) {
  const uint64_t request_id = next_request_id_++;
  std::string frame;
  EncodeFrame(type, request_id, payload, &frame);
  NNCELL_RETURN_IF_ERROR(WriteFull(fd_, frame));
  NNCELL_RETURN_IF_ERROR(RecvFrame(resp_header, resp_payload));
  if (resp_header->request_id != request_id) {
    return Status::Internal(
        "response id mismatch: sent " + std::to_string(request_id) +
        ", got " + std::to_string(resp_header->request_id));
  }
  return Status::OK();
}

Status Client::Roundtrip(uint8_t type, std::string_view payload,
                         std::string* resp_payload, std::string_view* body) {
  FrameHeader resp_header;
  NNCELL_RETURN_IF_ERROR(Call(type, payload, &resp_header, resp_payload));
  uint8_t status = 0;
  std::string message;
  NNCELL_RETURN_IF_ERROR(
      DecodeStatusPayload(*resp_payload, &status, body, &message));
  return MapWireStatus(status, message);
}

Status Client::Ping() {
  std::string resp;
  std::string_view body;
  return Roundtrip(kReqPing, "", &resp, &body);
}

StatusOr<WireQueryResult> Client::Query(const std::vector<double>& point) {
  std::string payload;
  EncodePointPayload(point, &payload);
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqQuery, payload, &resp, &body));
  WireQueryResult result;
  NNCELL_RETURN_IF_ERROR(DecodeQueryResultBody(body, &result));
  return result;
}

StatusOr<std::vector<WireQueryResult>> Client::QueryBatch(
    const std::vector<std::vector<double>>& points) {
  std::string payload;
  EncodeBatchPayload(points, &payload);
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqQueryBatch, payload, &resp, &body));
  std::vector<WireQueryResult> results;
  NNCELL_RETURN_IF_ERROR(DecodeQueryBatchResultBody(body, &results));
  return results;
}

StatusOr<WireQueryResult> Client::Query(const std::vector<double>& point,
                                        const ApproxOptions& approx) {
  std::string payload;
  EncodePointPayloadWithApprox(point, approx, &payload);
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqQuery, payload, &resp, &body));
  WireQueryResult result;
  NNCELL_RETURN_IF_ERROR(
      DecodeQueryResultBody(body, &result, /*expect_certificate=*/true));
  return result;
}

StatusOr<std::vector<WireQueryResult>> Client::QueryBatch(
    const std::vector<std::vector<double>>& points,
    const ApproxOptions& approx) {
  std::string payload;
  EncodeBatchPayloadWithApprox(points, approx, &payload);
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqQueryBatch, payload, &resp, &body));
  std::vector<WireQueryResult> results;
  NNCELL_RETURN_IF_ERROR(
      DecodeQueryBatchResultBody(body, &results, /*expect_certificate=*/true));
  return results;
}

StatusOr<uint64_t> Client::Insert(const std::vector<double>& point) {
  std::string payload;
  EncodePointPayload(point, &payload);
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqInsert, payload, &resp, &body));
  uint64_t id = 0;
  NNCELL_RETURN_IF_ERROR(DecodeInsertResultBody(body, &id));
  return id;
}

Status Client::Delete(uint64_t id) {
  std::string payload;
  EncodeDeletePayload(id, &payload);
  std::string resp;
  std::string_view body;
  return Roundtrip(kReqDelete, payload, &resp, &body);
}

StatusOr<std::string> Client::StatsJson() {
  std::string resp;
  std::string_view body;
  NNCELL_RETURN_IF_ERROR(Roundtrip(kReqStatsJson, "", &resp, &body));
  std::string json;
  NNCELL_RETURN_IF_ERROR(DecodeStatsBody(body, &json));
  return json;
}

Status Client::Checkpoint() {
  std::string resp;
  std::string_view body;
  return Roundtrip(kReqCheckpoint, "", &resp, &body);
}

}  // namespace server
}  // namespace nncell
