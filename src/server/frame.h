#ifndef NNCELL_SERVER_FRAME_H_
#define NNCELL_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/approx.h"
#include "common/status.h"
#include "server/protocol.h"

namespace nncell {
namespace server {

// Frame encode/decode for the query-service wire protocol (protocol.h has
// the constants, docs/SERVING.md the byte layout). Encoding uses the
// storage/wire.h little-endian helpers; decoding treats its input as
// untrusted bytes from the network and reports every violation as a
// precise Status instead of CHECK-aborting.

struct FrameHeader {
  uint8_t type = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

// Serializes one complete frame (header + payload, CRC filled in).
void EncodeFrame(uint8_t type, uint64_t request_id, std::string_view payload,
                 std::string* out);

// Validates and parses the fixed kFrameHeaderBytes header. Rejects bad
// magic, unknown version, nonzero reserved bits and oversized payload
// lengths -- each a distinct message. A failure here means the byte stream
// cannot be resynchronized and the connection must be closed.
Status DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out);

// Checks the payload bytes against the header's CRC32C.
Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload);

// --- request payload bodies ----------------------------------------------

// QUERY / INSERT payload: u32 dim, dim * f64 coordinates.
void EncodePointPayload(const std::vector<double>& point, std::string* out);
Status DecodePointPayload(std::string_view payload, std::vector<double>* out);

// QUERY_BATCH payload: u32 count, u32 dim, count * dim * f64 coordinates.
void EncodeBatchPayload(const std::vector<std::vector<double>>& points,
                        std::string* out);
Status DecodeBatchPayload(std::string_view payload, size_t* dim,
                          std::vector<double>* flat, size_t* count);

// --- approximate query tier ------------------------------------------------
// A QUERY / QUERY_BATCH request may append one optional approx block
// (kApproxRequestBytes: f64 epsilon, u64 max_leaf_visits) after the
// coordinates. The Decode*WithApprox variants accept payloads with or
// without the block and report which form arrived; the With variants of
// the encoders always append it. INSERT payloads never carry the block
// (DecodePointPayload stays exact-size).

void EncodePointPayloadWithApprox(const std::vector<double>& point,
                                  const ApproxOptions& approx,
                                  std::string* out);
Status DecodePointPayloadWithApprox(std::string_view payload,
                                    std::vector<double>* out,
                                    ApproxOptions* approx, bool* has_approx);
void EncodeBatchPayloadWithApprox(
    const std::vector<std::vector<double>>& points,
    const ApproxOptions& approx, std::string* out);
Status DecodeBatchPayloadWithApprox(std::string_view payload, size_t* dim,
                                    std::vector<double>* flat, size_t* count,
                                    ApproxOptions* approx, bool* has_approx);

// DELETE payload: u64 id.
void EncodeDeletePayload(uint64_t id, std::string* out);
Status DecodeDeletePayload(std::string_view payload, uint64_t* id);

// --- response payload bodies ---------------------------------------------
// Every response payload begins with one status byte (protocol.h). A
// kStatusOk payload continues with the type-specific body below; any other
// status continues with u32 message_len + message bytes.

// Approx certificate on the wire (kApproxCertificateBytes): u8
// approximate, u8 terminated_early, u8 truncated, u64 leaf_visits, f64
// bound. Present after a result if and only if the request carried the
// approx block.
struct WireApproxCertificate {
  uint8_t approximate = 0;
  uint8_t terminated_early = 0;
  uint8_t truncated = 0;
  uint64_t leaf_visits = 0;
  double bound = 0.0;

  bool operator==(const WireApproxCertificate& o) const {
    return approximate == o.approximate &&
           terminated_early == o.terminated_early &&
           truncated == o.truncated && leaf_visits == o.leaf_visits &&
           bound == o.bound;
  }
};

// One NN answer: u64 id, f64 dist, u32 candidates, u8 used_fallback,
// u32 dim, dim * f64 point coordinates (+ optional certificate, above).
struct WireQueryResult {
  uint64_t id = 0;
  double dist = 0.0;
  uint32_t candidates = 0;
  uint8_t used_fallback = 0;
  std::vector<double> point;
  bool has_certificate = false;
  WireApproxCertificate certificate;

  bool operator==(const WireQueryResult& o) const {
    return id == o.id && dist == o.dist && candidates == o.candidates &&
           used_fallback == o.used_fallback && point == o.point &&
           has_certificate == o.has_certificate &&
           (!has_certificate || certificate == o.certificate);
  }
};

void EncodeStatusPayload(uint8_t status, std::string_view message,
                         std::string* out);
void EncodeQueryResultPayload(const WireQueryResult& r, std::string* out);
// QUERY_BATCH response body: u32 count, count * WireQueryResult.
void EncodeQueryBatchResultPayload(const std::vector<WireQueryResult>& rs,
                                   std::string* out);
// INSERT response body: u64 assigned id.
void EncodeInsertResultPayload(uint64_t id, std::string* out);
// STATS_JSON response body: u32 len + JSON bytes.
void EncodeStatsPayload(std::string_view json, std::string* out);

// Splits any response payload into (status, rest-of-payload view); for a
// non-OK status also extracts the error message.
Status DecodeStatusPayload(std::string_view payload, uint8_t* status,
                           std::string_view* body, std::string* message);
// `expect_certificate` mirrors whether the request carried the approx
// block: the encoders append a certificate per result iff
// r.has_certificate, and the decoders require one per result iff
// expect_certificate (the batch body concatenates results, so presence
// cannot be inferred from leftover bytes).
Status DecodeQueryResultBody(std::string_view body, WireQueryResult* out,
                             bool expect_certificate = false);
Status DecodeQueryBatchResultBody(std::string_view body,
                                  std::vector<WireQueryResult>* out,
                                  bool expect_certificate = false);
Status DecodeInsertResultBody(std::string_view body, uint64_t* id);
Status DecodeStatsBody(std::string_view body, std::string* json);

}  // namespace server
}  // namespace nncell

#endif  // NNCELL_SERVER_FRAME_H_
