#include "server/frame.h"

#include <limits>

#include "common/crc32c.h"
#include "storage/wire.h"

namespace nncell {
namespace server {

namespace {

const uint8_t* Bytes(std::string_view s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

}  // namespace

void EncodeFrame(uint8_t type, uint64_t request_id, std::string_view payload,
                 std::string* out) {
  wire::PutU32(out, kFrameMagic);
  wire::PutU8(out, static_cast<uint8_t>(kProtocolVersion));
  wire::PutU8(out, type);
  wire::PutRaw<uint16_t>(out, 0);  // reserved
  wire::PutU64(out, request_id);
  wire::PutU32(out, static_cast<uint32_t>(payload.size()));
  wire::PutU32(out, Crc32c(payload.data(), payload.size()));
  wire::PutBytes(out, payload.data(), payload.size());
}

Status DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header: short buffer");
  }
  wire::Reader r(data, size);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint16_t reserved = 0;
  if (!r.GetU32(&magic) || !r.GetU8(&version) || !r.GetU8(&out->type) ||
      !r.Get(&reserved) || !r.GetU64(&out->request_id) ||
      !r.GetU32(&out->payload_len) || !r.GetU32(&out->payload_crc)) {
    return Status::InvalidArgument("frame header: short buffer");
  }
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("frame header: bad magic");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("frame header: unsupported version " +
                                   std::to_string(version));
  }
  if (reserved != 0) {
    return Status::InvalidArgument("frame header: nonzero reserved bits");
  }
  if (out->payload_len > kFrameMaxPayload) {
    return Status::InvalidArgument("frame header: payload length " +
                                   std::to_string(out->payload_len) +
                                   " exceeds max " +
                                   std::to_string(kFrameMaxPayload));
  }
  return Status::OK();
}

Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload) {
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return Status::InvalidArgument("frame payload: crc mismatch");
  }
  return Status::OK();
}

// --- request payloads -----------------------------------------------------

void EncodePointPayload(const std::vector<double>& point, std::string* out) {
  wire::PutU32(out, static_cast<uint32_t>(point.size()));
  for (double v : point) wire::PutF64(out, v);
}

Status DecodePointPayload(std::string_view payload, std::vector<double>* out) {
  wire::Reader r(Bytes(payload), payload.size());
  uint32_t dim = 0;
  if (!r.GetU32(&dim)) return Status::InvalidArgument("point: truncated");
  if (dim == 0 || dim > kMaxPointDim) {
    return Status::InvalidArgument("point: bad dimension " +
                                   std::to_string(dim));
  }
  if (r.remaining() != dim * sizeof(double)) {
    return Status::InvalidArgument("point: payload size mismatch");
  }
  out->assign(dim, 0.0);
  for (double& v : *out) {
    if (!r.GetF64(&v)) return Status::InvalidArgument("point: truncated");
  }
  return Status::OK();
}

void EncodeBatchPayload(const std::vector<std::vector<double>>& points,
                        std::string* out) {
  wire::PutU32(out, static_cast<uint32_t>(points.size()));
  wire::PutU32(out,
               static_cast<uint32_t>(points.empty() ? 0 : points[0].size()));
  for (const auto& p : points) {
    for (double v : p) wire::PutF64(out, v);
  }
}

Status DecodeBatchPayload(std::string_view payload, size_t* dim,
                          std::vector<double>* flat, size_t* count) {
  wire::Reader r(Bytes(payload), payload.size());
  uint32_t n = 0;
  uint32_t d = 0;
  if (!r.GetU32(&n) || !r.GetU32(&d)) {
    return Status::InvalidArgument("batch: truncated");
  }
  if (n == 0 || n > kMaxBatchQueries) {
    return Status::InvalidArgument("batch: bad count " + std::to_string(n));
  }
  if (d == 0 || d > kMaxPointDim) {
    return Status::InvalidArgument("batch: bad dimension " +
                                   std::to_string(d));
  }
  if (r.remaining() != static_cast<size_t>(n) * d * sizeof(double)) {
    return Status::InvalidArgument("batch: payload size mismatch");
  }
  flat->assign(static_cast<size_t>(n) * d, 0.0);
  for (double& v : *flat) {
    if (!r.GetF64(&v)) return Status::InvalidArgument("batch: truncated");
  }
  *dim = d;
  *count = n;
  return Status::OK();
}

namespace {

void AppendApproxBlock(const ApproxOptions& approx, std::string* out) {
  wire::PutF64(out, approx.epsilon);
  wire::PutU64(out, approx.max_leaf_visits);
}

// Reads the kApproxRequestBytes trailing block. The bytes are untrusted:
// a NaN / infinite / negative epsilon would poison every distance
// comparison downstream, so they are malformed here.
Status ReadApproxBlock(wire::Reader* r, ApproxOptions* approx) {
  if (!r->GetF64(&approx->epsilon) || !r->GetU64(&approx->max_leaf_visits)) {
    return Status::InvalidArgument("approx block: truncated");
  }
  if (!(approx->epsilon >= 0.0) ||
      approx->epsilon > std::numeric_limits<double>::max()) {
    return Status::InvalidArgument("approx block: bad epsilon");
  }
  return Status::OK();
}

}  // namespace

void EncodePointPayloadWithApprox(const std::vector<double>& point,
                                  const ApproxOptions& approx,
                                  std::string* out) {
  EncodePointPayload(point, out);
  AppendApproxBlock(approx, out);
}

Status DecodePointPayloadWithApprox(std::string_view payload,
                                    std::vector<double>* out,
                                    ApproxOptions* approx, bool* has_approx) {
  wire::Reader r(Bytes(payload), payload.size());
  uint32_t dim = 0;
  if (!r.GetU32(&dim)) return Status::InvalidArgument("point: truncated");
  if (dim == 0 || dim > kMaxPointDim) {
    return Status::InvalidArgument("point: bad dimension " +
                                   std::to_string(dim));
  }
  const size_t coords = dim * sizeof(double);
  if (r.remaining() != coords && r.remaining() != coords + kApproxRequestBytes) {
    return Status::InvalidArgument("point: payload size mismatch");
  }
  *has_approx = r.remaining() == coords + kApproxRequestBytes;
  out->assign(dim, 0.0);
  for (double& v : *out) {
    if (!r.GetF64(&v)) return Status::InvalidArgument("point: truncated");
  }
  *approx = ApproxOptions{};
  if (*has_approx) NNCELL_RETURN_IF_ERROR(ReadApproxBlock(&r, approx));
  return Status::OK();
}

void EncodeBatchPayloadWithApprox(
    const std::vector<std::vector<double>>& points,
    const ApproxOptions& approx, std::string* out) {
  EncodeBatchPayload(points, out);
  AppendApproxBlock(approx, out);
}

Status DecodeBatchPayloadWithApprox(std::string_view payload, size_t* dim,
                                    std::vector<double>* flat, size_t* count,
                                    ApproxOptions* approx, bool* has_approx) {
  wire::Reader r(Bytes(payload), payload.size());
  uint32_t n = 0;
  uint32_t d = 0;
  if (!r.GetU32(&n) || !r.GetU32(&d)) {
    return Status::InvalidArgument("batch: truncated");
  }
  if (n == 0 || n > kMaxBatchQueries) {
    return Status::InvalidArgument("batch: bad count " + std::to_string(n));
  }
  if (d == 0 || d > kMaxPointDim) {
    return Status::InvalidArgument("batch: bad dimension " +
                                   std::to_string(d));
  }
  const size_t coords = static_cast<size_t>(n) * d * sizeof(double);
  if (r.remaining() != coords && r.remaining() != coords + kApproxRequestBytes) {
    return Status::InvalidArgument("batch: payload size mismatch");
  }
  *has_approx = r.remaining() == coords + kApproxRequestBytes;
  flat->assign(static_cast<size_t>(n) * d, 0.0);
  for (double& v : *flat) {
    if (!r.GetF64(&v)) return Status::InvalidArgument("batch: truncated");
  }
  *approx = ApproxOptions{};
  if (*has_approx) NNCELL_RETURN_IF_ERROR(ReadApproxBlock(&r, approx));
  *dim = d;
  *count = n;
  return Status::OK();
}

void EncodeDeletePayload(uint64_t id, std::string* out) {
  wire::PutU64(out, id);
}

Status DecodeDeletePayload(std::string_view payload, uint64_t* id) {
  wire::Reader r(Bytes(payload), payload.size());
  if (!r.GetU64(id) || r.remaining() != 0) {
    return Status::InvalidArgument("delete: payload size mismatch");
  }
  return Status::OK();
}

// --- response payloads ----------------------------------------------------

void EncodeStatusPayload(uint8_t status, std::string_view message,
                         std::string* out) {
  wire::PutU8(out, status);
  if (status != kStatusOk) {
    wire::PutU32(out, static_cast<uint32_t>(message.size()));
    wire::PutBytes(out, message.data(), message.size());
  }
}

namespace {

void AppendQueryResult(const WireQueryResult& r, std::string* out) {
  wire::PutU64(out, r.id);
  wire::PutF64(out, r.dist);
  wire::PutU32(out, r.candidates);
  wire::PutU8(out, r.used_fallback);
  wire::PutU32(out, static_cast<uint32_t>(r.point.size()));
  for (double v : r.point) wire::PutF64(out, v);
  if (r.has_certificate) {
    wire::PutU8(out, r.certificate.approximate);
    wire::PutU8(out, r.certificate.terminated_early);
    wire::PutU8(out, r.certificate.truncated);
    wire::PutU64(out, r.certificate.leaf_visits);
    wire::PutF64(out, r.certificate.bound);
  }
}

Status ReadQueryResult(wire::Reader* r, WireQueryResult* out,
                       bool expect_certificate) {
  uint32_t dim = 0;
  if (!r->GetU64(&out->id) || !r->GetF64(&out->dist) ||
      !r->GetU32(&out->candidates) || !r->GetU8(&out->used_fallback) ||
      !r->GetU32(&dim)) {
    return Status::InvalidArgument("query result: truncated");
  }
  if (dim > kMaxPointDim) {
    return Status::InvalidArgument("query result: bad dimension");
  }
  out->point.assign(dim, 0.0);
  for (double& v : out->point) {
    if (!r->GetF64(&v)) {
      return Status::InvalidArgument("query result: truncated");
    }
  }
  out->has_certificate = expect_certificate;
  out->certificate = WireApproxCertificate{};
  if (expect_certificate) {
    if (!r->GetU8(&out->certificate.approximate) ||
        !r->GetU8(&out->certificate.terminated_early) ||
        !r->GetU8(&out->certificate.truncated) ||
        !r->GetU64(&out->certificate.leaf_visits) ||
        !r->GetF64(&out->certificate.bound)) {
      return Status::InvalidArgument("query result: truncated certificate");
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeQueryResultPayload(const WireQueryResult& r, std::string* out) {
  EncodeStatusPayload(kStatusOk, "", out);
  AppendQueryResult(r, out);
}

void EncodeQueryBatchResultPayload(const std::vector<WireQueryResult>& rs,
                                   std::string* out) {
  EncodeStatusPayload(kStatusOk, "", out);
  wire::PutU32(out, static_cast<uint32_t>(rs.size()));
  for (const WireQueryResult& r : rs) AppendQueryResult(r, out);
}

void EncodeInsertResultPayload(uint64_t id, std::string* out) {
  EncodeStatusPayload(kStatusOk, "", out);
  wire::PutU64(out, id);
}

void EncodeStatsPayload(std::string_view json, std::string* out) {
  EncodeStatusPayload(kStatusOk, "", out);
  wire::PutU32(out, static_cast<uint32_t>(json.size()));
  wire::PutBytes(out, json.data(), json.size());
}

Status DecodeStatusPayload(std::string_view payload, uint8_t* status,
                           std::string_view* body, std::string* message) {
  wire::Reader r(Bytes(payload), payload.size());
  if (!r.GetU8(status)) {
    return Status::InvalidArgument("response: empty payload");
  }
  message->clear();
  if (*status != kStatusOk) {
    uint32_t len = 0;
    if (!r.GetU32(&len) || r.remaining() != len) {
      return Status::InvalidArgument("response: bad error message");
    }
    message->assign(reinterpret_cast<const char*>(r.cur()), len);
    *body = std::string_view();
    return Status::OK();
  }
  *body = payload.substr(r.pos());
  return Status::OK();
}

Status DecodeQueryResultBody(std::string_view body, WireQueryResult* out,
                             bool expect_certificate) {
  wire::Reader r(Bytes(body), body.size());
  NNCELL_RETURN_IF_ERROR(ReadQueryResult(&r, out, expect_certificate));
  if (r.remaining() != 0) {
    return Status::InvalidArgument("query result: trailing bytes");
  }
  return Status::OK();
}

Status DecodeQueryBatchResultBody(std::string_view body,
                                  std::vector<WireQueryResult>* out,
                                  bool expect_certificate) {
  wire::Reader r(Bytes(body), body.size());
  uint32_t n = 0;
  if (!r.GetU32(&n)) return Status::InvalidArgument("batch result: truncated");
  if (n > kMaxBatchQueries) {
    return Status::InvalidArgument("batch result: bad count");
  }
  out->assign(n, WireQueryResult());
  for (WireQueryResult& qr : *out) {
    NNCELL_RETURN_IF_ERROR(ReadQueryResult(&r, &qr, expect_certificate));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("batch result: trailing bytes");
  }
  return Status::OK();
}

Status DecodeInsertResultBody(std::string_view body, uint64_t* id) {
  wire::Reader r(Bytes(body), body.size());
  if (!r.GetU64(id) || r.remaining() != 0) {
    return Status::InvalidArgument("insert result: payload size mismatch");
  }
  return Status::OK();
}

Status DecodeStatsBody(std::string_view body, std::string* json) {
  wire::Reader r(Bytes(body), body.size());
  uint32_t len = 0;
  if (!r.GetU32(&len) || r.remaining() != len) {
    return Status::InvalidArgument("stats result: payload size mismatch");
  }
  json->assign(reinterpret_cast<const char*>(r.cur()), len);
  return Status::OK();
}

}  // namespace server
}  // namespace nncell
