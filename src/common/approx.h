#ifndef NNCELL_COMMON_APPROX_H_
#define NNCELL_COMMON_APPROX_H_

#include <cstdint>

// Approximate query tier: certified (1+epsilon) answers and bounded-effort
// search. The knobs and the per-query certificate travel together through
// NNCellIndex, ShardedIndex, the server protocol, the CLI, and loadgen.
// Semantics, the exactness contract, and the tuning runbook live in
// docs/APPROXIMATE.md; the constants below are drift-checked against that
// document by tools/check_docs_links.sh.

namespace nncell {

// Recommended serving epsilon: the recall-vs-latency sweep in
// BENCH_recall.json is gated on recall@10 >= 0.95 at this value.
inline constexpr double kDefaultApproxEpsilon = 0.1;

// Sentinel for ApproxOptions::max_leaf_visits: no effort budget.
inline constexpr uint64_t kUnlimitedLeafVisits = 0;

// Per-query knobs. Default-constructed options request the exact path:
// epsilon == 0 and an unlimited budget are bit-identical to a plain
// Query()/QueryBatch() call (ids, distances, candidates, metrics).
struct ApproxOptions {
  // Certified slack: the returned distance is at most (1+epsilon) times the
  // true nearest distance (proved by the traversal's MINDIST bound, not by
  // sampling). 0 means exact.
  double epsilon = 0.0;
  // Effort budget: maximum leaf pages the best-first traversal may scan
  // before returning best-seen. kUnlimitedLeafVisits means no cap; a capped
  // search carries no (1+epsilon) guarantee once it truncates.
  uint64_t max_leaf_visits = kUnlimitedLeafVisits;

  // True when any knob deviates from the exact defaults.
  bool enabled() const {
    return epsilon > 0.0 || max_leaf_visits != kUnlimitedLeafVisits;
  }
};

// Per-query certificate, returned alongside every approximate-tier answer.
// On the exact path it stays default-constructed (approximate == false,
// everything zero).
struct ApproxCertificate {
  // The answer is not proven exact (== terminated_early || truncated).
  bool approximate = false;
  // The epsilon rule fired: the search stopped with the best-seen distance
  // within (1+epsilon) of the tightest remaining MINDIST bound, before
  // exactness was proven. Never set when epsilon == 0.
  bool terminated_early = false;
  // The leaf-visit budget ran out with unexplored subtrees remaining.
  bool truncated = false;
  // Leaf pages scanned by the best-first traversal (summed across shards).
  uint64_t leaf_visits = 0;
  // Lower bound (a distance, not squared) on the distance of every point
  // the search did not examine. The uniform proof obligation is
  // min(dist, bound) <= true nearest distance; when a single-index search
  // stopped via the epsilon rule without truncating, additionally
  // bound <= true distance and dist <= (1+epsilon) * bound.
  double bound = 0.0;
};

}  // namespace nncell

#endif  // NNCELL_COMMON_APPROX_H_
