#ifndef NNCELL_COMMON_CRC32C_H_
#define NNCELL_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace nncell {

// CRC-32C (Castagnoli, reflected polynomial 0x82f63b78), the checksum used
// by every on-disk structure (snapshot sections, page images, WAL records;
// see docs/PERSISTENCE.md). Software table implementation -- throughput is
// measured by bench/micro_persistence.cc and is far above what the
// simulated page store needs.

// Extends a finished checksum with more bytes: Crc32cExtend(Crc32c(a), b)
// == Crc32c(a concat b). The empty-prefix seed is 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace nncell

#endif  // NNCELL_COMMON_CRC32C_H_
