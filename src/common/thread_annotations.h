#ifndef NNCELL_COMMON_THREAD_ANNOTATIONS_H_
#define NNCELL_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// Clang Thread Safety Analysis for the concurrent surface of the engine
// (docs/STATIC_ANALYSIS.md has the full conventions). Every mutex-protected
// member is declared NNCELL_GUARDED_BY(mu), every function with a locking
// precondition NNCELL_REQUIRES(mu), and the `tsa` CMake preset turns the
// analysis into a -Werror build gate. On compilers without the attribute
// (GCC, MSVC) every macro expands to nothing, so the annotations are
// zero-cost documentation there and compile-time proof under Clang.
//
// The analysis only understands capabilities it can see, so locking goes
// through the annotated wrappers below (nncell::Mutex / MutexLock /
// CondVar) rather than raw std::mutex. The wrappers are zero-overhead:
// each is exactly its std counterpart plus attributes.
//
// Annotation conventions for new code:
//   * A member touched under a mutex is NNCELL_GUARDED_BY(mu) -- no
//     exceptions inside annotated modules; lock-free atomics are the only
//     unguarded mutable shared state.
//   * A private helper called with the lock held takes
//     NNCELL_REQUIRES(mu) instead of re-locking.
//   * Public functions that must not be called with the lock held (they
//     acquire it) are NNCELL_EXCLUDES(mu) where deadlock is plausible.
//   * No NNCELL_NO_THREAD_SAFETY_ANALYSIS escapes in annotated modules;
//     restructure the code so the analysis can follow it.

#if defined(__clang__)
#define NNCELL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NNCELL_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// Declares a type to be a capability ("mutex") the analysis tracks.
#define NNCELL_CAPABILITY(x) NNCELL_THREAD_ANNOTATION(capability(x))

// RAII types whose lifetime is a critical section.
#define NNCELL_SCOPED_CAPABILITY NNCELL_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be read/written while holding `x`.
#define NNCELL_GUARDED_BY(x) NNCELL_THREAD_ANNOTATION(guarded_by(x))
#define NNCELL_PT_GUARDED_BY(x) NNCELL_THREAD_ANNOTATION(pt_guarded_by(x))

// Function preconditions: caller must hold / must not hold the capability.
#define NNCELL_REQUIRES(...) \
  NNCELL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NNCELL_REQUIRES_SHARED(...) \
  NNCELL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define NNCELL_EXCLUDES(...) \
  NNCELL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function effects: acquires / releases the capability.
#define NNCELL_ACQUIRE(...) \
  NNCELL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NNCELL_ACQUIRE_SHARED(...) \
  NNCELL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define NNCELL_RELEASE(...) \
  NNCELL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NNCELL_RELEASE_SHARED(...) \
  NNCELL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define NNCELL_TRY_ACQUIRE(...) \
  NNCELL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (teaches the analysis a
// fact it cannot derive, e.g. across an external-synchronization boundary).
#define NNCELL_ASSERT_CAPABILITY(x) \
  NNCELL_THREAD_ANNOTATION(assert_capability(x))

// Return-value aliasing: this function returns a reference to the mutex
// that guards something.
#define NNCELL_RETURN_CAPABILITY(x) NNCELL_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Policy: never used inside annotated modules (enforced by
// tools/nncell_lint.py, check `tsa-escape`); exists for interop shims only.
#define NNCELL_NO_THREAD_SAFETY_ANALYSIS \
  NNCELL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nncell {

// std::mutex with the capability attribute, so the analysis can track what
// it protects. Same size, same codegen; lock()/unlock() naming keeps it a
// drop-in BasicLockable for std::lock_guard-style use (but prefer
// MutexLock, which the analysis understands as a scoped capability).
class NNCELL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NNCELL_ACQUIRE() { mu_.lock(); }
  void unlock() NNCELL_RELEASE() { mu_.unlock(); }
  bool try_lock() NNCELL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // No-op that tells the analysis the lock is held here (used when the
  // holding is established by construction, e.g. single-owner phases).
  void AssertHeld() const NNCELL_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII critical section over a Mutex; the analysis treats the guard's
// lifetime as the region where the capability is held.
class NNCELL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NNCELL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NNCELL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to nncell::Mutex. Wait() atomically releases
// and re-acquires the mutex exactly like std::condition_variable::wait;
// the NNCELL_REQUIRES annotation makes the caller's lock obligation a
// compile-time fact (the analysis does not model the release/re-acquire
// inside, which is fine: the capability is held on entry and on return).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // No predicate overload on purpose: the analysis treats a predicate
  // lambda as a separate function that does not hold the capability, so
  // callers spell the classic `while (!cond) cv.Wait(mu);` loop instead --
  // which the analysis follows exactly.
  void Wait(Mutex& mu) NNCELL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nncell

#endif  // NNCELL_COMMON_THREAD_ANNOTATIONS_H_
