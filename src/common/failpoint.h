#ifndef NNCELL_COMMON_FAILPOINT_H_
#define NNCELL_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Fault-injection points for the durability layer. A failpoint is a named
// site inside the snapshot / WAL I/O paths (the full list is in
// docs/PERSISTENCE.md); tests arm a site with an Action and the next
// evaluation of that site injects the fault:
//
//   * kError      -- the operation fails with Status::Internal before
//                    touching the file,
//   * kShortWrite -- only the first half of the bytes is written, then the
//                    operation fails (models ENOSPC / torn buffered write),
//   * kCrash      -- for write sites: half the bytes are written and the
//                    process _exit()s (a torn write made durable by the
//                    kernel -- exactly what a crash mid-write leaves on
//                    disk); for non-write sites: immediate _exit().
//
// Disarmed sites cost one relaxed atomic load (a process-wide armed
// counter); with -DNNCELL_FAILPOINTS=0 (CMake option NNCELL_FAILPOINTS=OFF,
// the recommended release setting) the whole harness compiles out and
// Check() is a constant.
//
// Arming is one-shot: a site fires once and disarms itself, so a recovery
// path re-running the same site succeeds. Arm(..., skip = n) lets the site
// pass n times before firing, which is how the crash matrix reaches the
// n-th WAL append or the second checkpoint.

#ifndef NNCELL_FAILPOINTS
#define NNCELL_FAILPOINTS 1
#endif

namespace nncell {
namespace failpoint {

enum class Action { kOff = 0, kError, kShortWrite, kCrash };

// Exit status of an injected crash; the crash-matrix harness asserts the
// forked child died with exactly this code, proving the failpoint fired.
inline constexpr int kCrashExitCode = 86;

// Immediately terminates the process without flushing anything (_exit).
[[noreturn]] void Crash();

#if NNCELL_FAILPOINTS

namespace internal {
extern std::atomic<int> g_armed_count;
Action CheckSlow(const char* name);
}  // namespace internal

// Evaluates the failpoint `name`. Fast path (nothing armed anywhere):
// one relaxed load.
inline Action Check(const char* name) {
  // nncell-lint: allow(relaxed-atomics) pure hint; CheckSlow re-checks under mutex
  if (internal::g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Action::kOff;
  }
  return internal::CheckSlow(name);
}

// Arms `name` to fire `action` after letting `skip` evaluations pass.
// Re-arming an armed site replaces its configuration.
void Arm(const std::string& name, Action action, int skip = 0);

// Disarms one site / every site (tests call DisarmAll in teardown).
void Disarm(const std::string& name);
void DisarmAll();

// How many times `name` was evaluated since the last DisarmAll, counted
// only while at least one site was armed (the disarmed fast path records
// nothing). Lets tests assert a scenario actually reached the site.
uint64_t Evaluations(const std::string& name);

#else  // !NNCELL_FAILPOINTS

inline Action Check(const char*) { return Action::kOff; }
inline void Arm(const std::string&, Action, int = 0) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline uint64_t Evaluations(const std::string&) { return 0; }

#endif  // NNCELL_FAILPOINTS

}  // namespace failpoint
}  // namespace nncell

#endif  // NNCELL_COMMON_FAILPOINT_H_
