#ifndef NNCELL_COMMON_METRICS_NAMES_H_
#define NNCELL_COMMON_METRICS_NAMES_H_

#include <cstddef>

// Single source of truth for every metric the system exports. A metric
// that is not listed here cannot be obtained from the registry (the lookup
// CHECK-fails), and tools/check_docs_links.sh cross-checks this table
// against docs/METRICS.md in both directions, so the documentation can
// never drift from the code.
//
// Naming convention: <subsystem>.<object>.<quantity>, lower_snake within
// segments. Subsystems mirror the source tree: storage, index (rstar/
// xtree), lp (lp/geom build pipeline), query (nncell query path).

namespace nncell {
namespace metrics {

enum class Kind { kCounter, kGauge, kHistogram };

struct MetricDef {
  const char* name;
  Kind kind;
  const char* unit;
  const char* help;
};

// --- storage -------------------------------------------------------------
inline constexpr char kPoolLogicalReads[] = "storage.pool.logical_reads";
inline constexpr char kPoolMisses[] = "storage.pool.misses";
inline constexpr char kPoolEvictions[] = "storage.pool.evictions";
inline constexpr char kPoolWritebacks[] = "storage.pool.writebacks";
inline constexpr char kPoolPinnedFrames[] = "storage.pool.pinned_frames";
inline constexpr char kFileReadPages[] = "storage.file.read_pages";
inline constexpr char kFileWritePages[] = "storage.file.write_pages";
inline constexpr char kFileReadBytes[] = "storage.file.read_bytes";
inline constexpr char kFileWriteBytes[] = "storage.file.write_bytes";
inline constexpr char kSnapshotSaves[] = "storage.snapshot.saves";
inline constexpr char kSnapshotSaveBytes[] = "storage.snapshot.save_bytes";
inline constexpr char kSnapshotLoads[] = "storage.snapshot.loads";
inline constexpr char kSnapshotLoadFailures[] =
    "storage.snapshot.load_failures";

// --- wal (durable insert/delete log) --------------------------------------
inline constexpr char kWalRecordsAppended[] = "wal.records.appended";
inline constexpr char kWalRecordsReplayed[] = "wal.records.replayed";
inline constexpr char kWalRecordsSkipped[] = "wal.records.skipped";
inline constexpr char kWalBytesAppended[] = "wal.bytes.appended";
inline constexpr char kWalFsyncs[] = "wal.log.fsyncs";
inline constexpr char kWalTailTruncations[] = "wal.log.tail_truncations";
inline constexpr char kWalCheckpoints[] = "wal.log.checkpoints";

// --- index (R*/X-tree) ---------------------------------------------------
inline constexpr char kIndexNodeVisits[] = "index.tree.node_visits";
inline constexpr char kIndexLeafVisits[] = "index.tree.leaf_visits";
inline constexpr char kIndexNodeSplits[] = "index.tree.node_splits";
inline constexpr char kIndexSupernodeEvents[] = "index.tree.supernode_events";

// --- lp (cell-approximation build pipeline) ------------------------------
inline constexpr char kLpRuns[] = "lp.solver.runs";
inline constexpr char kLpIterations[] = "lp.solver.iterations";
inline constexpr char kLpFailures[] = "lp.solver.failures";
inline constexpr char kLpConstraintRows[] = "lp.rows.entered";
inline constexpr char kLpPrunedRows[] = "lp.rows.pruned";
inline constexpr char kLpFacesSkipped[] = "lp.faces.skipped";
inline constexpr char kLpFacesWarm[] = "lp.faces.warm";
inline constexpr char kLpFacesCold[] = "lp.faces.cold";

// --- query (NN-cell query path) -------------------------------------------
inline constexpr char kQueryCount[] = "query.nn.count";
inline constexpr char kQueryCandidates[] = "query.nn.candidates";
inline constexpr char kQueryDistanceComputations[] =
    "query.nn.distance_computations";
inline constexpr char kQueryFallbacks[] = "query.nn.fallbacks";
inline constexpr char kQueryCandidatesPerQuery[] =
    "query.nn.candidates_per_query";

// --- kernels (dispatched SIMD layer) ---------------------------------------
inline constexpr char kKernelsDispatch[] = "kernels.dispatch";

// --- server (always-on query service) -------------------------------------
inline constexpr char kServerConnectionsOpened[] = "server.connections.opened";
inline constexpr char kServerConnectionsClosed[] = "server.connections.closed";
inline constexpr char kServerRequestsAccepted[] = "server.requests.accepted";
inline constexpr char kServerRequestsCompleted[] = "server.requests.completed";
inline constexpr char kServerRequestsRejected[] = "server.requests.rejected";
inline constexpr char kServerFramesMalformed[] = "server.frames.malformed";
inline constexpr char kServerBatchesDispatched[] = "server.batches.dispatched";
inline constexpr char kServerBatchSize[] = "server.batch.size";
inline constexpr char kServerQueueDepth[] = "server.queue.depth";
inline constexpr char kServerLatencyQueryUs[] = "server.latency.query_us";
inline constexpr char kServerLatencyWriteUs[] = "server.latency.write_us";

// --- shard (sharded multi-index / scatter-gather layer) --------------------
inline constexpr char kShardCount[] = "shard.count";
inline constexpr char kShardEpoch[] = "shard.epoch";
inline constexpr char kShardQueryFanout[] = "shard.query.fanout";
inline constexpr char kShardQueryProbes[] = "shard.query.probes";
inline constexpr char kShardQueryPruned[] = "shard.query.pruned";
inline constexpr char kShardRebalanceEvents[] = "shard.rebalance.events";
inline constexpr char kShardRebalanceMovedPoints[] =
    "shard.rebalance.moved_points";
inline constexpr char kShardRecoveryDegraded[] =
    "shard.recovery.degraded_shards";

// Approximate query tier (docs/APPROXIMATE.md).
inline constexpr char kApproxQueryCount[] = "approx.query.count";
inline constexpr char kApproxTerminatedEarly[] =
    "approx.query.terminated_early";
inline constexpr char kApproxTruncated[] = "approx.query.truncated";
inline constexpr char kApproxLeafVisits[] = "approx.query.leaf_visits";
inline constexpr char kApproxLeafVisitsPerQuery[] =
    "approx.query.leaf_visits_per_query";

// The registry registers exactly this set at construction, so a snapshot
// always covers every metric (zeros included) and is deterministic.
inline constexpr MetricDef kMetricDefs[] = {
    {kPoolLogicalReads, Kind::kCounter, "pages",
     "BufferPool::Fetch/FetchMutable calls (cache hits = logical - misses)"},
    {kPoolMisses, Kind::kCounter, "pages",
     "buffer-pool cache misses that went to the PageFile"},
    {kPoolEvictions, Kind::kCounter, "frames",
     "LRU frames recycled to serve a miss"},
    {kPoolWritebacks, Kind::kCounter, "pages",
     "dirty frames written back on eviction or Flush"},
    {kPoolPinnedFrames, Kind::kGauge, "frames",
     "currently pinned buffer-pool frames (all pools)"},
    {kFileReadPages, Kind::kCounter, "pages",
     "PageFile::Read calls (simulated disk read syscalls)"},
    {kFileWritePages, Kind::kCounter, "pages",
     "PageFile::Write calls (simulated disk write syscalls)"},
    {kFileReadBytes, Kind::kCounter, "bytes", "bytes read from PageFiles"},
    {kFileWriteBytes, Kind::kCounter, "bytes", "bytes written to PageFiles"},
    {kSnapshotSaves, Kind::kCounter, "snapshots",
     "checksummed index snapshots written (atomic temp+rename)"},
    {kSnapshotSaveBytes, Kind::kCounter, "bytes",
     "bytes written into snapshot images"},
    {kSnapshotLoads, Kind::kCounter, "snapshots",
     "snapshot images loaded successfully"},
    {kSnapshotLoadFailures, Kind::kCounter, "snapshots",
     "snapshot loads rejected (truncation, checksum, version skew)"},
    {kWalRecordsAppended, Kind::kCounter, "records",
     "insert/delete records appended to the write-ahead log"},
    {kWalRecordsReplayed, Kind::kCounter, "records",
     "WAL records re-applied during recovery"},
    {kWalRecordsSkipped, Kind::kCounter, "records",
     "WAL records skipped at recovery (already covered by the snapshot)"},
    {kWalBytesAppended, Kind::kCounter, "bytes",
     "bytes appended to the write-ahead log (headers included)"},
    {kWalFsyncs, Kind::kCounter, "syncs",
     "fsync calls issued by the WAL group-commit policy"},
    {kWalTailTruncations, Kind::kCounter, "events",
     "torn WAL tails truncated during recovery"},
    {kWalCheckpoints, Kind::kCounter, "checkpoints",
     "Checkpoint() folds of the WAL into a fresh snapshot"},
    {kIndexNodeVisits, Kind::kCounter, "nodes",
     "tree nodes visited by point/range/leaf-page queries"},
    {kIndexLeafVisits, Kind::kCounter, "nodes",
     "leaf nodes among the visited nodes"},
    {kIndexNodeSplits, Kind::kCounter, "splits",
     "node splits executed on the insert path"},
    {kIndexSupernodeEvents, Kind::kCounter, "events",
     "X-tree supernode-growth decisions (split avoided)"},
    {kLpRuns, Kind::kCounter, "solves",
     "LP face solves attempted (2d per cell minus certified skips)"},
    {kLpIterations, Kind::kCounter, "iterations",
     "active-set solver iterations across all face solves"},
    {kLpFailures, Kind::kCounter, "faces",
     "faces that fell back to the data-space bound"},
    {kLpConstraintRows, Kind::kCounter, "rows",
     "bisector rows that entered LP systems"},
    {kLpPrunedRows, Kind::kCounter, "rows",
     "bisector rows discarded by the pruner before any LP ran"},
    {kLpFacesSkipped, Kind::kCounter, "faces",
     "faces certified by the axis ray-shoot (0 LP iterations)"},
    {kLpFacesWarm, Kind::kCounter, "faces",
     "face solves warm-started at the ray hit point"},
    {kLpFacesCold, Kind::kCounter, "faces",
     "face solves started from the cold start"},
    {kQueryCount, Kind::kCounter, "queries",
     "NN point queries answered by NNCellIndex::Query"},
    {kQueryCandidates, Kind::kCounter, "candidates",
     "candidate cells returned by the index point query (paper: candidate "
     "set size)"},
    {kQueryDistanceComputations, Kind::kCounter, "distances",
     "exact distance evaluations during NN queries (incl. fallback scans)"},
    {kQueryFallbacks, Kind::kCounter, "queries",
     "queries that fell back to a sequential scan (numeric edge)"},
    {kQueryCandidatesPerQuery, Kind::kHistogram, "candidates",
     "distribution of the candidate-set size per NN query"},
    {kKernelsDispatch, Kind::kGauge, "level",
     "active SIMD dispatch level (0 = scalar, 1 = avx2, 2 = neon); "
     "process-constant, restored across ResetAll"},
    {kServerConnectionsOpened, Kind::kCounter, "connections",
     "client connections accepted by the query server"},
    {kServerConnectionsClosed, Kind::kCounter, "connections",
     "client connections whose reader exited (EOF, fault, or drain)"},
    {kServerRequestsAccepted, Kind::kCounter, "requests",
     "well-formed request frames admitted or rejected with a status"},
    {kServerRequestsCompleted, Kind::kCounter, "requests",
     "requests executed and answered by the dispatcher"},
    {kServerRequestsRejected, Kind::kCounter, "requests",
     "requests refused with RETRY_LATER or SHUTTING_DOWN"},
    {kServerFramesMalformed, Kind::kCounter, "frames",
     "frames dropped for bad magic/version/CRC/length/type"},
    {kServerBatchesDispatched, Kind::kCounter, "batches",
     "QueryBatch calls issued by the dispatcher micro-batcher"},
    {kServerBatchSize, Kind::kHistogram, "queries",
     "distribution of queries coalesced per dispatched batch"},
    {kServerQueueDepth, Kind::kGauge, "requests",
     "requests currently waiting in the admission queue"},
    {kServerLatencyQueryUs, Kind::kHistogram, "microseconds",
     "enqueue-to-response latency of QUERY/QUERY_BATCH requests"},
    {kServerLatencyWriteUs, Kind::kHistogram, "microseconds",
     "enqueue-to-response latency of INSERT/DELETE/CHECKPOINT requests"},
    {kShardCount, Kind::kGauge, "shards",
     "shards of the most recently opened sharded index"},
    {kShardEpoch, Kind::kGauge, "epoch",
     "routing-manifest epoch of the most recently opened sharded index"},
    {kShardQueryFanout, Kind::kHistogram, "shards",
     "distribution of shards probed per scatter-gather query"},
    {kShardQueryProbes, Kind::kCounter, "probes",
     "per-shard queries issued by the scatter-gather layer"},
    {kShardQueryPruned, Kind::kCounter, "shards",
     "shards skipped by the slab-distance bound during scatter-gather"},
    {kShardRebalanceEvents, Kind::kCounter, "rebalances",
     "rebalance epochs installed (online or explicit)"},
    {kShardRebalanceMovedPoints, Kind::kCounter, "points",
     "live points re-partitioned by installed rebalances"},
    {kShardRecoveryDegraded, Kind::kCounter, "shards",
     "shards that failed to open or reconcile and were degraded"},
    {kApproxQueryCount, Kind::kCounter, "queries",
     "queries answered by the approximate-tier best-first traversal"},
    {kApproxTerminatedEarly, Kind::kCounter, "queries",
     "approximate queries stopped by the (1+epsilon) certificate rule"},
    {kApproxTruncated, Kind::kCounter, "queries",
     "approximate queries that exhausted the leaf-visit budget"},
    {kApproxLeafVisits, Kind::kCounter, "pages",
     "leaf pages scanned by approximate-tier traversals"},
    {kApproxLeafVisitsPerQuery, Kind::kHistogram, "pages",
     "leaf pages scanned per approximate query"},
};

inline constexpr size_t kNumMetricDefs =
    sizeof(kMetricDefs) / sizeof(kMetricDefs[0]);

}  // namespace metrics
}  // namespace nncell

#endif  // NNCELL_COMMON_METRICS_NAMES_H_
