#ifndef NNCELL_COMMON_HYPER_RECT_H_
#define NNCELL_COMMON_HYPER_RECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/kernels/kernels.h"

namespace nncell {

// An axis-parallel d-dimensional rectangle [lo_i, hi_i] per dimension.
// This is the "MBR" of the paper: minimum bounding hyper-rectangles of
// NN-cells, of tree entries and of raw points (degenerate rectangles).
class HyperRect {
 public:
  HyperRect() = default;

  // An "empty" rectangle of dimension d: lo = +inf, hi = -inf so that
  // ExpandToPoint / ExpandToRect grow it correctly.
  static HyperRect Empty(size_t dim);

  // The unit data space [0,1]^d used throughout the paper.
  static HyperRect UnitCube(size_t dim);

  // A degenerate rectangle covering exactly one point.
  static HyperRect FromPoint(const double* p, size_t dim);
  static HyperRect FromPoint(const std::vector<double>& p);

  HyperRect(std::vector<double> lo, std::vector<double> hi);

  size_t dim() const { return lo_.size(); }
  double lo(size_t i) const { return lo_[i]; }
  double hi(size_t i) const { return hi_[i]; }
  double& lo(size_t i) { return lo_[i]; }
  double& hi(size_t i) { return hi_[i]; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

  // True when lo > hi in some dimension (the Empty() state).
  bool IsEmpty() const;

  // Structural self-check used by the validators: lo/hi lengths match, no
  // coordinate is NaN, no bound is inverted (lo > hi) unless `allow_empty`
  // accepts the canonical Empty() state, and every bound is finite unless
  // empty. A silently NaN/inverted rectangle is the failure mode Lemma 1
  // cannot catch (it only tolerates *enlarged* MBRs), so the tree and cell
  // validators reject these outright. Returns "" when well formed, else a
  // description.
  std::string CheckWellFormed(bool allow_empty = false) const;

  double Extent(size_t i) const { return hi_[i] - lo_[i]; }
  double Volume() const;
  // Sum of side lengths (the R*-tree "margin" surrogate for perimeter).
  double Margin() const;
  std::vector<double> Center() const;

  bool ContainsPoint(const double* p) const;
  bool ContainsPoint(const std::vector<double>& p) const;
  bool ContainsRect(const HyperRect& r) const;
  bool Intersects(const HyperRect& r) const;

  // Geometric operations; all require matching dimensionality.
  void ExpandToPoint(const double* p);
  void ExpandToRect(const HyperRect& r);
  static HyperRect Union(const HyperRect& a, const HyperRect& b);
  // Intersection; returns Empty(dim) when disjoint.
  static HyperRect Intersection(const HyperRect& a, const HyperRect& b);
  // Volume of the intersection (0 when disjoint).
  static double OverlapVolume(const HyperRect& a, const HyperRect& b);
  // Volume increase of *this needed to also cover r.
  double Enlargement(const HyperRect& r) const;

  // Squared L2 distance from point p to the nearest point of the rectangle
  // (0 if inside) -- MINDIST of [RKV 95].
  double MinDistSq(const double* p) const;
  // Squared L2 distance from p to the farthest corner -- MAXDIST.
  double MaxDistSq(const double* p) const;
  // MINMAXDIST of [RKV 95]: the smallest upper bound over faces such that
  // the rectangle is guaranteed to contain an object within that distance.
  double MinMaxDistSq(const double* p) const;

  std::string ToString() const;

  friend bool operator==(const HyperRect& a, const HyperRect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

// Raw-buffer variants of the hot-path predicates, used by the zero-copy
// node scans of the trees (lo/hi point into serialized page bytes).

inline bool RawContainsPoint(const double* lo, const double* hi,
                             const double* p, size_t dim) {
  for (size_t i = 0; i < dim; ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

inline bool RawIntersects(const double* lo, const double* hi,
                          const double* rlo, const double* rhi, size_t dim) {
  for (size_t i = 0; i < dim; ++i) {
    if (rhi[i] < lo[i] || rlo[i] > hi[i]) return false;
  }
  return true;
}

// MINDIST over raw bounds: the scalar reference kernel (branchless form,
// bit-equal to the classic branchy loop; see kernels_scalar.cc). Batched
// traversal loops should prefer kernels::MinDistSqBatch4.
inline double RawMinDistSq(const double* lo, const double* hi,
                           const double* p, size_t dim) {
  return kernels::MinDistSqRef(lo, hi, p, dim);
}

// MINMAXDIST of [RKV 95] over raw bounds; see HyperRect::MinMaxDistSq.
inline double RawMinMaxDistSq(const double* lo, const double* hi,
                              const double* p, size_t dim) {
  return kernels::MinMaxDistSqRef(lo, hi, p, dim);
}

}  // namespace nncell

#endif  // NNCELL_COMMON_HYPER_RECT_H_
