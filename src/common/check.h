#ifndef NNCELL_COMMON_CHECK_H_
#define NNCELL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-check macros. The library does not use exceptions; invariant
// violations are programming errors and abort with a source location.
//
//   NNCELL_CHECK(cond)          always on, aborts when cond is false
//   NNCELL_CHECK_MSG(cond, m)   same, with an extra message
//   NNCELL_CHECK_OK(expr)       expr yields a Status-like object (has .ok()
//                               and .ToString()); aborts when !ok()
//   NNCELL_DCHECK*              debug-only twins, compiled out under NDEBUG
//                               (the argument expression is NOT evaluated
//                               in release builds -- keep it side-effect
//                               free)
//
// The DCHECK family is where the expensive structural validators hang off:
// release builds pay nothing, sanitizer/debug builds verify everything.

#define NNCELL_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define NNCELL_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, (msg));                                 \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Works for nncell::Status and anything else exposing ok() / ToString().
#define NNCELL_CHECK_OK(expr)                                               \
  do {                                                                      \
    const auto& nncell_check_ok_status = (expr);                            \
    if (!nncell_check_ok_status.ok()) {                                     \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, nncell_check_ok_status.ToString().c_str());    \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define NNCELL_DCHECK(cond) NNCELL_CHECK(cond)
#define NNCELL_DCHECK_MSG(cond, msg) NNCELL_CHECK_MSG(cond, msg)
#define NNCELL_DCHECK_OK(expr) NNCELL_CHECK_OK(expr)
#else
#define NNCELL_DCHECK(cond) \
  do {                      \
  } while (0)
#define NNCELL_DCHECK_MSG(cond, msg) \
  do {                               \
  } while (0)
#define NNCELL_DCHECK_OK(expr) \
  do {                         \
  } while (0)
#endif

#endif  // NNCELL_COMMON_CHECK_H_
