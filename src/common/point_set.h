#ifndef NNCELL_COMMON_POINT_SET_H_
#define NNCELL_COMMON_POINT_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hyper_rect.h"
#include "common/check.h"

namespace nncell {

// A dense, row-major set of d-dimensional points. This is the in-memory
// "database of feature vectors" handed to index structures; it owns the
// coordinates, indexes refer to points by index.
class PointSet {
 public:
  explicit PointSet(size_t dim) : dim_(dim) { NNCELL_CHECK(dim > 0); }

  size_t dim() const { return dim_; }
  size_t size() const { return data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  // Appends a point; returns its index.
  size_t Add(const double* p) {
    data_.insert(data_.end(), p, p + dim_);
    return size() - 1;
  }
  size_t Add(const std::vector<double>& p) {
    NNCELL_CHECK(p.size() == dim_);
    return Add(p.data());
  }

  const double* operator[](size_t i) const {
    NNCELL_DCHECK(i < size());
    return data_.data() + i * dim_;
  }

  std::vector<double> Get(size_t i) const {
    const double* p = (*this)[i];
    return std::vector<double>(p, p + dim_);
  }

  void Reserve(size_t n) { data_.reserve(n * dim_); }
  void Clear() { data_.clear(); }

  // Bounding box over all points; Empty(dim) when the set is empty.
  HyperRect BoundingBox() const {
    HyperRect r = HyperRect::Empty(dim_);
    for (size_t i = 0; i < size(); ++i) r.ExpandToPoint((*this)[i]);
    return r;
  }

  const std::vector<double>& raw() const { return data_; }

 private:
  size_t dim_;
  std::vector<double> data_;
};

}  // namespace nncell

#endif  // NNCELL_COMMON_POINT_SET_H_
