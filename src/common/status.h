#ifndef NNCELL_COMMON_STATUS_H_
#define NNCELL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace nncell {

// Error codes used throughout the library. The library reports recoverable
// failures through Status / StatusOr rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
};

// A lightweight absl::Status-alike: an error code plus a human-readable
// message. Cheap to copy in the OK case.
//
// [[nodiscard]]: ignoring a returned Status is a compile error under
// -Werror (the werror/tsa presets and CI). A deliberate discard must be
// spelled `(void)expr;` with a comment saying why it is safe -- and
// tools/nncell_lint.py rejects naked discards the compiler cannot see.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either an OK status plus a value, or a non-OK status.
// T does not need to be default-constructible. [[nodiscard]] like Status:
// dropping a StatusOr drops both the error and the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    NNCELL_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NNCELL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    NNCELL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    NNCELL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define NNCELL_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::nncell::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace nncell

#endif  // NNCELL_COMMON_STATUS_H_
