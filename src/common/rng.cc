#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace nncell {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  NNCELL_CHECK(n > 0);
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64,
  // but use Lemire's multiply-shift to avoid it entirely.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  // Box-Muller; avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace nncell
