#ifndef NNCELL_COMMON_RNG_H_
#define NNCELL_COMMON_RNG_H_

#include <cstdint>

namespace nncell {

// Deterministic, seedable pseudo-random generator (xoshiro256**).
// Used everywhere instead of std::mt19937 so that experiments are exactly
// reproducible across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  // Standard normal variate (Box-Muller, no caching).
  double NextGaussian();

 private:
  static uint64_t SplitMix64(uint64_t* state);

  uint64_t s_[4];
};

}  // namespace nncell

#endif  // NNCELL_COMMON_RNG_H_
