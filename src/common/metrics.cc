#include "common/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/kernels/kernels.h"

namespace nncell {
namespace metrics {

namespace internal {

size_t ThisThreadStripe() {
  // Round-robin stripe assignment at first use: contention-free up to
  // kStripes concurrent threads, merely shared beyond that.
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace internal

std::atomic<bool> Registry::enabled_{false};

Registry::Registry() {
  for (const MetricDef& def : kMetricDefs) {
    Slot slot;
    slot.def = def;
    switch (def.kind) {
      case Kind::kCounter:
        slot.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        slot.histogram = std::make_unique<Histogram>();
        break;
    }
    auto [it, inserted] = slots_.emplace(def.name, std::move(slot));
    NNCELL_CHECK_MSG(inserted, "duplicate metric name in kMetricDefs");
  }
  // The dispatch level is fixed for the process lifetime; recording it at
  // construction makes every snapshot carry it (ResetAll re-sets it, since
  // a zeroed gauge would misread as a valid level: scalar).
  gauge(kKernelsDispatch)
      ->Set(static_cast<int64_t>(kernels::ActiveLevel()));
}

Registry& Registry::Global() {
  // Leaked singleton: instrumented code may run during static destruction.
  // nncell-lint: allow(naked-new) process-lifetime singleton, never freed
  static Registry* const g = new Registry();
  return *g;
}

const Registry::Slot& Registry::FindSlot(std::string_view name,
                                         Kind kind) const {
  auto it = slots_.find(name);
  NNCELL_CHECK_MSG(it != slots_.end(),
                   "metric not in common/metrics_names.h");
  NNCELL_CHECK_MSG(it->second.def.kind == kind, "metric kind mismatch");
  return it->second;
}

Counter* Registry::counter(std::string_view name) const {
  return FindSlot(name, Kind::kCounter).counter.get();
}

Gauge* Registry::gauge(std::string_view name) const {
  return FindSlot(name, Kind::kGauge).gauge.get();
}

Histogram* Registry::histogram(std::string_view name) const {
  return FindSlot(name, Kind::kHistogram).histogram.get();
}

void Registry::ResetAll() {
  for (auto& [name, slot] : slots_) {
    if (slot.counter) slot.counter->Reset();
    if (slot.gauge) slot.gauge->Reset();
    if (slot.histogram) slot.histogram->Reset();
  }
  // Process-constant gauges survive resets; a zeroed dispatch level would
  // misread as scalar.
  gauge(kKernelsDispatch)
      ->Set(static_cast<int64_t>(kernels::ActiveLevel()));
}

const SnapshotEntry* Snapshot::Find(std::string_view name) const {
  for (const SnapshotEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

uint64_t Snapshot::Value(std::string_view name) const {
  const SnapshotEntry* e = Find(name);
  if (e == nullptr) return 0;
  if (e->kind == Kind::kGauge) return static_cast<uint64_t>(e->gauge);
  return e->value;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  snap.entries.reserve(slots_.size());
  // slots_ is an ordered map, so the snapshot is sorted by name already.
  for (const auto& [name, slot] : slots_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = slot.def.kind;
    e.unit = slot.def.unit;
    switch (slot.def.kind) {
      case Kind::kCounter:
        e.value = slot.counter->Value();
        break;
      case Kind::kGauge:
        e.gauge = slot.gauge->Value();
        break;
      case Kind::kHistogram:
        e.buckets = slot.histogram->BucketCounts();
        e.sum = slot.histogram->Sum();
        for (uint64_t b : e.buckets) e.value += b;  // total count
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

namespace {

void AppendHistogramJson(std::ostringstream& out, const SnapshotEntry& e) {
  out << "{\"count\":" << e.value << ",\"sum\":" << e.sum << ",\"le\":[";
  constexpr size_t n = sizeof(kHistogramBounds) / sizeof(kHistogramBounds[0]);
  for (size_t i = 0; i < n; ++i) {
    if (i) out << ",";
    out << kHistogramBounds[i];
  }
  // counts has one more entry than le: the trailing overflow bucket.
  out << "],\"counts\":[";
  for (size_t i = 0; i < e.buckets.size(); ++i) {
    if (i) out << ",";
    out << e.buckets[i];
  }
  out << "]}";
}

}  // namespace

std::string Registry::SnapshotJson(int indent) const {
  Snapshot snap = TakeSnapshot();
  std::ostringstream out;
  const std::string pad =
      indent >= 0 ? "\n" + std::string(static_cast<size_t>(indent), ' ') : "";
  out << "{";
  bool first = true;
  for (const SnapshotEntry& e : snap.entries) {
    if (!first) out << ",";
    first = false;
    out << pad << "\"" << e.name << "\":";
    switch (e.kind) {
      case Kind::kCounter:
        out << e.value;
        break;
      case Kind::kGauge:
        out << e.gauge;
        break;
      case Kind::kHistogram:
        AppendHistogramJson(out, e);
        break;
    }
  }
  if (indent >= 0) out << "\n";
  out << "}";
  return out.str();
}

}  // namespace metrics
}  // namespace nncell
