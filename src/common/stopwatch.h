#ifndef NNCELL_COMMON_STOPWATCH_H_
#define NNCELL_COMMON_STOPWATCH_H_

#include <chrono>

namespace nncell {

// Wall-clock stopwatch used for CPU-time measurements in the benchmarks
// (single-threaded process, so wall time == CPU time for compute phases).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nncell

#endif  // NNCELL_COMMON_STOPWATCH_H_
