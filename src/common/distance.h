#ifndef NNCELL_COMMON_DISTANCE_H_
#define NNCELL_COMMON_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace nncell {

// Euclidean (L2) distance helpers. The paper's NN-cells are defined for a
// generic metric but all of its machinery (bisector half-spaces) requires
// L2, which is also what the evaluation uses.

inline double L2DistSq(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double L2Dist(const double* a, const double* b, size_t dim) {
  return std::sqrt(L2DistSq(a, b, dim));
}

inline double L2DistSq(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return L2DistSq(a.data(), b.data(), a.size());
}

inline double L2Dist(const std::vector<double>& a,
                     const std::vector<double>& b) {
  return std::sqrt(L2DistSq(a, b));
}

inline double L2NormSq(const double* a, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += a[i] * a[i];
  return s;
}

inline double Dot(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace nncell

#endif  // NNCELL_COMMON_DISTANCE_H_
