#ifndef NNCELL_COMMON_DISTANCE_H_
#define NNCELL_COMMON_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/kernels/kernels.h"

namespace nncell {

// Euclidean (L2) distance helpers. The paper's NN-cells are defined for a
// generic metric but all of its machinery (bisector half-spaces) requires
// L2, which is also what the evaluation uses.
//
// These are thin wrappers over the kernel layer (common/kernels/): the
// pair forms keep the strictly sequential accumulation order that every
// batched SIMD kernel is bit-equal to, and Dot routes through the
// dispatched table. Open-coded distance loops outside the kernel layer
// are rejected by tools/nncell_lint.py (scalar-distance-loop).

inline double L2DistSq(const double* a, const double* b, size_t dim) {
  return kernels::L2DistSqPair(a, b, dim);
}

inline double L2Dist(const double* a, const double* b, size_t dim) {
  return std::sqrt(L2DistSq(a, b, dim));
}

inline double L2DistSq(const std::vector<double>& a,
                       const std::vector<double>& b) {
  NNCELL_DCHECK(a.size() == b.size());
  return L2DistSq(a.data(), b.data(), a.size());
}

inline double L2Dist(const std::vector<double>& a,
                     const std::vector<double>& b) {
  NNCELL_DCHECK(a.size() == b.size());
  return std::sqrt(L2DistSq(a.data(), b.data(), a.size()));
}

inline double L2NormSq(const double* a, size_t dim) {
  return kernels::L2NormSqRef(a, dim);
}

inline double Dot(const double* a, const double* b, size_t dim) {
  return kernels::Dot(a, b, dim);
}

}  // namespace nncell

#endif  // NNCELL_COMMON_DISTANCE_H_
