#include "common/hyper_rect.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace nncell {

HyperRect HyperRect::Empty(size_t dim) {
  HyperRect r;
  r.lo_.assign(dim, std::numeric_limits<double>::infinity());
  r.hi_.assign(dim, -std::numeric_limits<double>::infinity());
  return r;
}

HyperRect HyperRect::UnitCube(size_t dim) {
  HyperRect r;
  r.lo_.assign(dim, 0.0);
  r.hi_.assign(dim, 1.0);
  return r;
}

HyperRect HyperRect::FromPoint(const double* p, size_t dim) {
  HyperRect r;
  r.lo_.assign(p, p + dim);
  r.hi_.assign(p, p + dim);
  return r;
}

HyperRect HyperRect::FromPoint(const std::vector<double>& p) {
  return FromPoint(p.data(), p.size());
}

HyperRect::HyperRect(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  NNCELL_CHECK(lo_.size() == hi_.size());
}

bool HyperRect::IsEmpty() const {
  for (size_t i = 0; i < dim(); ++i) {
    if (lo_[i] > hi_[i]) return true;
  }
  return lo_.empty();
}

std::string HyperRect::CheckWellFormed(bool allow_empty) const {
  if (lo_.size() != hi_.size()) {
    return "lo/hi dimension mismatch";
  }
  bool empty = false;
  for (size_t i = 0; i < dim(); ++i) {
    if (std::isnan(lo_[i]) || std::isnan(hi_[i])) {
      return "NaN bound in dimension " + std::to_string(i);
    }
    if (lo_[i] > hi_[i]) empty = true;
  }
  if (empty) {
    if (!allow_empty) return "inverted bounds (lo > hi)";
    return "";  // the Empty() state is legal here
  }
  for (size_t i = 0; i < dim(); ++i) {
    if (std::isinf(lo_[i]) || std::isinf(hi_[i])) {
      return "non-finite bound in dimension " + std::to_string(i);
    }
  }
  return "";
}

double HyperRect::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (size_t i = 0; i < dim(); ++i) v *= (hi_[i] - lo_[i]);
  return v;
}

double HyperRect::Margin() const {
  if (IsEmpty()) return 0.0;
  double m = 0.0;
  for (size_t i = 0; i < dim(); ++i) m += (hi_[i] - lo_[i]);
  return m;
}

std::vector<double> HyperRect::Center() const {
  std::vector<double> c(dim());
  for (size_t i = 0; i < dim(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

bool HyperRect::ContainsPoint(const double* p) const {
  for (size_t i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool HyperRect::ContainsPoint(const std::vector<double>& p) const {
  NNCELL_DCHECK(p.size() == dim());
  return ContainsPoint(p.data());
}

bool HyperRect::ContainsRect(const HyperRect& r) const {
  NNCELL_DCHECK(r.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (r.lo_[i] < lo_[i] || r.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool HyperRect::Intersects(const HyperRect& r) const {
  NNCELL_DCHECK(r.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (r.hi_[i] < lo_[i] || r.lo_[i] > hi_[i]) return false;
  }
  return true;
}

void HyperRect::ExpandToPoint(const double* p) {
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
}

void HyperRect::ExpandToRect(const HyperRect& r) {
  NNCELL_DCHECK(r.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], r.lo_[i]);
    hi_[i] = std::max(hi_[i], r.hi_[i]);
  }
}

HyperRect HyperRect::Union(const HyperRect& a, const HyperRect& b) {
  HyperRect r = a;
  r.ExpandToRect(b);
  return r;
}

HyperRect HyperRect::Intersection(const HyperRect& a, const HyperRect& b) {
  NNCELL_DCHECK(a.dim() == b.dim());
  HyperRect r = HyperRect::Empty(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    double lo = std::max(a.lo_[i], b.lo_[i]);
    double hi = std::min(a.hi_[i], b.hi_[i]);
    if (lo > hi) return HyperRect::Empty(a.dim());
    r.lo_[i] = lo;
    r.hi_[i] = hi;
  }
  return r;
}

double HyperRect::OverlapVolume(const HyperRect& a, const HyperRect& b) {
  NNCELL_DCHECK(a.dim() == b.dim());
  double v = 1.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double lo = std::max(a.lo_[i], b.lo_[i]);
    double hi = std::min(a.hi_[i], b.hi_[i]);
    if (lo >= hi) return 0.0;
    v *= (hi - lo);
  }
  return v;
}

double HyperRect::Enlargement(const HyperRect& r) const {
  return Union(*this, r).Volume() - Volume();
}

double HyperRect::MinDistSq(const double* p) const {
  return kernels::MinDistSqRef(lo_.data(), hi_.data(), p, dim());
}

double HyperRect::MaxDistSq(const double* p) const {
  double s = 0.0;
  for (size_t i = 0; i < dim(); ++i) {
    double d = std::max(std::abs(p[i] - lo_[i]), std::abs(p[i] - hi_[i]));
    s += d * d;
  }
  return s;
}

double HyperRect::MinMaxDistSq(const double* p) const {
  // [RKV 95]: min over dimensions k of
  //   |p_k - rm_k|^2 + sum_{i != k} |p_i - rM_i|^2
  // where rm_k is the nearer face in dim k and rM_i the farther face.
  // The reference kernel carries the two-pass allocation-free form.
  return kernels::MinMaxDistSqRef(lo_.data(), hi_.data(), p, dim());
}

std::string HyperRect::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dim(); ++i) {
    if (i) os << " x ";
    os << "(" << lo_[i] << "," << hi_[i] << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace nncell
