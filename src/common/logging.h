#ifndef NNCELL_COMMON_LOGGING_H_
#define NNCELL_COMMON_LOGGING_H_

// Historical name; the check macros moved to common/check.h. Include that
// directly in new code.
#include "common/check.h"

#endif  // NNCELL_COMMON_LOGGING_H_
