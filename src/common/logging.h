#ifndef NNCELL_COMMON_LOGGING_H_
#define NNCELL_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Fatal-check macros. The library does not use exceptions; invariant
// violations are programming errors and abort with a source location.

#define NNCELL_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define NNCELL_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, (msg));                                 \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define NNCELL_DCHECK(cond) NNCELL_CHECK(cond)
#else
#define NNCELL_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // NNCELL_COMMON_LOGGING_H_
