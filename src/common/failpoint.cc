#include "common/failpoint.h"

#include <unistd.h>

#include <map>

#include "common/thread_annotations.h"

namespace nncell {
namespace failpoint {

void Crash() { _exit(kCrashExitCode); }

#if NNCELL_FAILPOINTS

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct SiteState {
  Action action = Action::kOff;
  int skip = 0;
  bool armed = false;
  uint64_t evaluations = 0;
};

// The site registry: one mutex guarding the whole map, so the thread-safety
// analysis can see the lock discipline (a bare function-local static map
// would be invisible to it). Heap-allocated and never destroyed to dodge
// static-destruction-order races with late Check() calls from detached
// threads. nncell-lint: allow(naked-new) process-lifetime singleton.
struct SiteRegistry {
  Mutex mu;
  std::map<std::string, SiteState> sites NNCELL_GUARDED_BY(mu);
};

SiteRegistry& Reg() {
  // nncell-lint: allow(naked-new) process-lifetime singleton, never freed
  static SiteRegistry* const reg = new SiteRegistry();
  return *reg;
}

}  // namespace

namespace internal {

Action CheckSlow(const char* name) {
  SiteRegistry& reg = Reg();
  MutexLock lock(reg.mu);
  SiteState& site = reg.sites[name];
  ++site.evaluations;
  if (!site.armed) return Action::kOff;
  if (site.skip > 0) {
    --site.skip;
    return Action::kOff;
  }
  // One-shot: fire and disarm, so recovery re-running the site succeeds.
  site.armed = false;
  // nncell-lint: allow(relaxed-atomics) mutated under registry mutex; hint only
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return site.action;
}

}  // namespace internal

void Arm(const std::string& name, Action action, int skip) {
  SiteRegistry& reg = Reg();
  MutexLock lock(reg.mu);
  SiteState& site = reg.sites[name];
  if (!site.armed) {
    // nncell-lint: allow(relaxed-atomics) mutated under registry mutex; hint only
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  site.armed = true;
  site.action = action;
  site.skip = skip;
}

void Disarm(const std::string& name) {
  SiteRegistry& reg = Reg();
  MutexLock lock(reg.mu);
  auto it = reg.sites.find(name);
  if (it != reg.sites.end() && it->second.armed) {
    it->second.armed = false;
    // nncell-lint: allow(relaxed-atomics) mutated under the registry mutex
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  SiteRegistry& reg = Reg();
  MutexLock lock(reg.mu);
  for (auto& [name, site] : reg.sites) {
    if (site.armed) {
      // nncell-lint: allow(relaxed-atomics) mutated under the registry mutex
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    site = SiteState{};
  }
}

uint64_t Evaluations(const std::string& name) {
  SiteRegistry& reg = Reg();
  MutexLock lock(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.evaluations;
}

#endif  // NNCELL_FAILPOINTS

}  // namespace failpoint
}  // namespace nncell
