#include "common/failpoint.h"

#include <unistd.h>

#include <map>
#include <mutex>

namespace nncell {
namespace failpoint {

void Crash() { _exit(kCrashExitCode); }

#if NNCELL_FAILPOINTS

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct SiteState {
  Action action = Action::kOff;
  int skip = 0;
  bool armed = false;
  uint64_t evaluations = 0;
};

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& Sites() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

}  // namespace

namespace internal {

Action CheckSlow(const char* name) {
  std::lock_guard<std::mutex> lock(Mu());
  SiteState& site = Sites()[name];
  ++site.evaluations;
  if (!site.armed) return Action::kOff;
  if (site.skip > 0) {
    --site.skip;
    return Action::kOff;
  }
  // One-shot: fire and disarm, so recovery re-running the site succeeds.
  site.armed = false;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return site.action;
}

}  // namespace internal

void Arm(const std::string& name, Action action, int skip) {
  std::lock_guard<std::mutex> lock(Mu());
  SiteState& site = Sites()[name];
  if (!site.armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  site.armed = true;
  site.action = action;
  site.skip = skip;
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(name);
  if (it != Sites().end() && it->second.armed) {
    it->second.armed = false;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mu());
  for (auto& [name, site] : Sites()) {
    if (site.armed) {
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    site = SiteState{};
  }
}

uint64_t Evaluations(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(name);
  return it == Sites().end() ? 0 : it->second.evaluations;
}

#endif  // NNCELL_FAILPOINTS

}  // namespace failpoint
}  // namespace nncell
