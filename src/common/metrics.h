#ifndef NNCELL_COMMON_METRICS_H_
#define NNCELL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/metrics_names.h"

// Lock-cheap process-wide metrics: named counters, gauges and fixed-bucket
// histograms behind a single registry (common/metrics_names.h is the
// closed set of names). Writes go to per-thread-striped relaxed atomics --
// no mutex on any hot path -- and Snapshot() aggregates the stripes into a
// deterministic, sorted view (stable JSON for tooling).
//
// Cost model (see bench/micro_metrics.cc for the proof):
//  * compiled out entirely with -DNNCELL_METRICS=0 (CMake option
//    NNCELL_METRICS=OFF): the NNCELL_METRIC_* macros become no-ops;
//  * runtime-disabled (the default): one relaxed atomic<bool> load and a
//    predictable branch per instrumentation site;
//  * enabled: one relaxed fetch_add on a cache-line-padded stripe owned by
//    (almost always) only this thread.
//
// Instrumented code caches the metric handle once (handles live for the
// process lifetime) and guards every update with the macros below.

#ifndef NNCELL_METRICS
#define NNCELL_METRICS 1
#endif

namespace nncell {
namespace metrics {

// Striping: each thread is assigned one of kStripes slots round-robin at
// first use; a stripe is only ever contended when more than kStripes
// threads run, and sums over all stripes are exact regardless.
inline constexpr size_t kStripes = 16;

namespace internal {
size_t ThisThreadStripe();  // stable per thread, < kStripes
}  // namespace internal

class Counter {
 public:
  void Add(uint64_t delta) {
    stripes_[internal::ThisThreadStripe()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed power-of-two buckets shared by every histogram: upper bounds
// 1, 2, 4, ..., 4096 plus an overflow bucket. Good enough resolution for
// every per-query quantity the system tracks (candidate counts, distance
// computations) while keeping snapshots byte-stable.
inline constexpr uint64_t kHistogramBounds[] = {1,   2,   4,    8,   16,
                                                32,  64,  128,  256, 512,
                                                1024, 2048, 4096};
inline constexpr size_t kHistogramBuckets =
    sizeof(kHistogramBounds) / sizeof(kHistogramBounds[0]) + 1;  // + overflow

class Histogram {
 public:
  void Record(uint64_t value) {
    size_t b = 0;
    constexpr size_t n = kHistogramBuckets - 1;
    while (b < n && value > kHistogramBounds[b]) ++b;
    Stripe& s = stripes_[internal::ThisThreadStripe()];
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  // Aggregated bucket counts; the last entry is the overflow bucket
  // (> kHistogramBounds.back()).
  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> out(kHistogramBuckets, 0);
    for (const Stripe& s : stripes_) {
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        out[b] += s.counts[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  uint64_t Count() const {
    uint64_t c = 0;
    for (uint64_t b : BucketCounts()) c += b;
    return c;
  }

  uint64_t Sum() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.sum.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Reset() {
    for (Stripe& s : stripes_) {
      for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> counts[kHistogramBuckets]{};
    std::atomic<uint64_t> sum{0};
  };
  Stripe stripes_[kStripes];
};

// One aggregated metric value at snapshot time.
struct SnapshotEntry {
  std::string name;
  Kind kind = Kind::kCounter;
  const char* unit = "";
  uint64_t value = 0;  // counter value / histogram count
  int64_t gauge = 0;
  uint64_t sum = 0;                    // histogram only
  std::vector<uint64_t> buckets;       // histogram only
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;  // sorted by name

  const SnapshotEntry* Find(std::string_view name) const;
  // Convenience for tests/benches: counter value or histogram count; 0 for
  // unknown names.
  uint64_t Value(std::string_view name) const;
};

// The process-wide registry. Construction registers exactly the metrics of
// kMetricDefs; lookups of unknown names abort (the name table is the
// single source of truth, enforced at runtime and by the docs check).
class Registry {
 public:
  static Registry& Global();

  Counter* counter(std::string_view name) const;
  Gauge* gauge(std::string_view name) const;
  Histogram* histogram(std::string_view name) const;

  // Runtime switch read by the NNCELL_METRIC_* macros. Disabled by default
  // so un-instrumented workloads (benchmarks in particular) pay only the
  // one-branch guard.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Zeroes every metric (tests / tools measuring deltas from a clean
  // slate). Concurrent writers may race individual increments past the
  // reset, as with any stats reset; call at quiescent points.
  void ResetAll();

  // Deterministic aggregated view, sorted by metric name.
  Snapshot TakeSnapshot() const;

  // Stable JSON rendering of TakeSnapshot(): keys sorted, integers only,
  // no whitespace variance. `indent` >= 0 pretty-prints with that many
  // leading spaces per line.
  std::string SnapshotJson(int indent = -1) const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();

  struct Slot {
    MetricDef def;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  const Slot& FindSlot(std::string_view name, Kind kind) const;

  static std::atomic<bool> enabled_;
  std::map<std::string, Slot, std::less<>> slots_;  // immutable after ctor
};

}  // namespace metrics
}  // namespace nncell

// Instrumentation macros: compiled out under NNCELL_METRICS=0, a single
// relaxed load + branch when runtime-disabled. `handle` is a Counter* /
// Gauge* / Histogram* the call site cached from the registry.
#if NNCELL_METRICS
#define NNCELL_METRIC_COUNT(handle, delta)                       \
  do {                                                           \
    if (::nncell::metrics::Registry::Enabled()) {                \
      (handle)->Add(static_cast<uint64_t>(delta));               \
    }                                                            \
  } while (0)
#define NNCELL_METRIC_GAUGE_ADD(handle, delta)                   \
  do {                                                           \
    if (::nncell::metrics::Registry::Enabled()) {                \
      (handle)->Add(static_cast<int64_t>(delta));                \
    }                                                            \
  } while (0)
#define NNCELL_METRIC_RECORD(handle, value)                      \
  do {                                                           \
    if (::nncell::metrics::Registry::Enabled()) {                \
      (handle)->Record(static_cast<uint64_t>(value));            \
    }                                                            \
  } while (0)
#else
#define NNCELL_METRIC_COUNT(handle, delta) ((void)0)
#define NNCELL_METRIC_GAUGE_ADD(handle, delta) ((void)0)
#define NNCELL_METRIC_RECORD(handle, value) ((void)0)
#endif

#endif  // NNCELL_COMMON_METRICS_H_
