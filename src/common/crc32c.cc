#include "common/crc32c.h"

namespace nncell {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // Castagnoli, reflected

struct Table {
  uint32_t t[256];
};

constexpr Table MakeTable() {
  Table table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
    }
    table.t[i] = c;
  }
  return table;
}

constexpr Table kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace nncell
