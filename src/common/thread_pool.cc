#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace nncell {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  NNCELL_DCHECK(queued_.load() == 0);
}

size_t ThreadPool::DefaultThreads() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::Submit(std::function<void()> task) {
  NNCELL_DCHECK(task != nullptr);
  // nncell-lint: allow(relaxed-atomics) round-robin cursor, placement hint only
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    MutexLock lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Empty critical section: pairs with the predicate check in WorkerLoop so
  // a worker between "queues looked empty" and "blocked" cannot miss us.
  { MutexLock lock(wake_mu_); }
  wake_cv_.NotifyOne();
}

std::function<void()> ThreadPool::TryPop(size_t self) {
  {
    Queue& own = *queues_[self];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      // nncell-lint: allow(relaxed-atomics) queue mutex orders the pop; count is a wake hint
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    Queue& victim = *queues_[(self + i) % queues_.size()];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      // nncell-lint: allow(relaxed-atomics) queue mutex orders the steal; count is a wake hint
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (std::function<void()> task = TryPop(self)) {
      task();
      continue;
    }
    MutexLock lock(wake_mu_);
    while (!stop_ && queued_.load(std::memory_order_acquire) == 0) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (end <= begin) return;
  const size_t n = end - begin;
  // More chunks than workers so stealing can rebalance uneven iteration
  // costs (LP solves vary a lot per point).
  const size_t chunks = std::min(n, 4 * num_threads());

  // Per-call completion group: `remaining` is only touched under `mu`, and
  // the waiter observes 0 under the same mutex, after which no finisher
  // touches the group again -- so stack lifetime is safe.
  struct Group {
    Mutex mu;
    CondVar cv;
    size_t remaining NNCELL_GUARDED_BY(mu);
  } group{{}, {}, chunks};

  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + n * c / chunks;
    const size_t hi = begin + n * (c + 1) / chunks;
    Submit([&group, &body, lo, hi] {
      for (size_t i = lo; i < hi; ++i) body(i);
      MutexLock lock(group.mu);
      if (--group.remaining == 0) group.cv.NotifyAll();
    });
  }
  MutexLock lock(group.mu);
  while (group.remaining != 0) group.cv.Wait(group.mu);
}

}  // namespace nncell
