#ifndef NNCELL_COMMON_THREAD_POOL_H_
#define NNCELL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace nncell {

// Small work-stealing thread pool for the parallel phases of the engine
// (per-point LP fan-out during bulk builds, batched query execution).
// Each worker owns a deque: new tasks are distributed round-robin, a
// worker pops its own deque LIFO (cache-warm) and steals FIFO from its
// siblings when empty. The pool is task-agnostic; determinism is the
// caller's job (submit pure tasks that write to disjoint result slots and
// commit in a fixed order afterwards).
//
// Tasks must not throw. ParallelFor may be called concurrently from
// several external threads (each call tracks its own completion), but a
// task running *on* the pool must not call back into ParallelFor: with
// every worker blocked in a nested wait there may be nobody left to run
// the nested chunks.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return queues_.size(); }

  // Enqueues a fire-and-forget task. Every queued task is completed
  // before the destructor returns.
  void Submit(std::function<void()> task);

  // Runs body(i) for every i in [begin, end), chunked across the workers;
  // returns when every iteration has finished. `body` is invoked
  // concurrently and must be safe to call from several threads at once.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  // std::thread::hardware_concurrency with a fallback of 1.
  static size_t DefaultThreads();

 private:
  struct Queue {
    Mutex mu;
    std::deque<std::function<void()>> tasks NNCELL_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  // Own queue (back) first, then steals from siblings (front). Returns an
  // empty function when every queue is empty.
  std::function<void()> TryPop(size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> queued_{0};      // pushed, not yet popped
  std::atomic<size_t> next_queue_{0};  // round-robin submit cursor
  Mutex wake_mu_;
  CondVar wake_cv_;
  bool stop_ NNCELL_GUARDED_BY(wake_mu_) = false;
};

}  // namespace nncell

#endif  // NNCELL_COMMON_THREAD_POOL_H_
