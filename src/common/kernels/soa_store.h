#ifndef NNCELL_COMMON_KERNELS_SOA_STORE_H_
#define NNCELL_COMMON_KERNELS_SOA_STORE_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/kernels/kernels.h"

namespace nncell {
namespace kernels {

// Structure-of-arrays point store, blocked to the SIMD lane width: points
// are grouped into blocks of kLaneWidth, dimension-major inside a block —
//   data[block * kLaneWidth * dim + i * kLaneWidth + lane]
// is coordinate i of point (block * kLaneWidth + lane). The batched L2
// kernel then reads one contiguous vector per dimension instead of
// kLaneWidth strided rows. The tail block is zero-padded; padding lanes
// are computed and discarded (BatchL2DistSq only writes n outputs), so
// padding never leaks into results.
//
// The store itself only moves bytes — all arithmetic goes through the
// dispatched kernels, so results are bit-equal to per-pair L2DistSq under
// every NNCELL_SIMD setting.
class SoaBlockStore {
 public:
  explicit SoaBlockStore(size_t dim) : dim_(dim) {}

  size_t size() const { return n_; }
  size_t dim() const { return dim_; }

  void Reserve(size_t n) {
    data_.reserve(((n + kLaneWidth - 1) / kLaneWidth) * kLaneWidth * dim_);
  }

  void Clear() {
    n_ = 0;
    data_.clear();
  }

  // Appends one point (dim_ doubles); index = previous size().
  void Append(const double* p) {
    size_t block = n_ / kLaneWidth;
    size_t lane = n_ % kLaneWidth;
    if (lane == 0) data_.resize((block + 1) * kLaneWidth * dim_, 0.0);
    double* blk = data_.data() + block * kLaneWidth * dim_;
    for (size_t i = 0; i < dim_; ++i) blk[i * kLaneWidth + lane] = p[i];
    ++n_;
  }

  // Copies point j back out as a contiguous row (dim_ doubles).
  void Get(size_t j, double* out) const {
    NNCELL_DCHECK(j < n_);
    const double* blk = data_.data() + (j / kLaneWidth) * kLaneWidth * dim_;
    size_t lane = j % kLaneWidth;
    for (size_t i = 0; i < dim_; ++i) out[i] = blk[i * kLaneWidth + lane];
  }

  const double* blocks() const { return data_.data(); }

  // out[j] = L2DistSq(q, point_j) for j in [0, size()), through the
  // dispatched batch kernel. q must have dim() coordinates, out must have
  // room for size() doubles.
  void BatchL2DistSq(const double* q, double* out) const {
    if (n_ == 0) return;
    Ops().l2_batch_soa(q, data_.data(), n_, dim_, out);
  }

 private:
  size_t dim_;
  size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace kernels
}  // namespace nncell

#endif  // NNCELL_COMMON_KERNELS_SOA_STORE_H_
