#ifndef NNCELL_COMMON_KERNELS_KERNELS_ISA_H_
#define NNCELL_COMMON_KERNELS_KERNELS_ISA_H_

#include "common/kernels/kernels.h"

// Internal seam between the dispatcher and the per-ISA translation units.
// Each getter returns the TU's op table, or nullptr when that ISA is not
// compiled into this build (wrong architecture or missing compiler flag).
// Runtime CPU support is the dispatcher's job, not the TU's.

namespace nncell {
namespace kernels {

const KernelOps* GetScalarOps();
const KernelOps* GetAvx2Ops();
const KernelOps* GetNeonOps();

}  // namespace kernels
}  // namespace nncell

#endif  // NNCELL_COMMON_KERNELS_KERNELS_ISA_H_
