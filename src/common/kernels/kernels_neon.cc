// NEON kernels (aarch64). Compiled with -ffp-contract=off so the compiler
// cannot fuse the separate mul/add roundings into fmla. The dim-lane
// kernels run the canonical 4-wide blocked order as two float64x2 halves;
// the SoA batch kernel puts points in lanes (per-point order sequential).
// The pointer-gather kernels (l2_batch4, min_dist_batch4,
// min_max_dist_batch4) reuse the scalar reference: NEON has no gather, so
// lane-inserting from 4 scattered rows buys nothing over scalar code, and
// bit-equality is then free.

#include "common/kernels/kernels_isa.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace nncell {
namespace kernels {
namespace {

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);  // accumulators 0,1
  float64x2_t acc23 = vdupq_n_f64(0.0);  // accumulators 2,3
  size_t i = 0;
  size_t n4 = n & ~(kLaneWidth - 1);
  for (; i < n4; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(
        acc23, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  // (acc0 + acc2) + (acc1 + acc3), as in the canonical combine.
  float64x2_t pair = vaddq_f64(acc01, acc23);
  double s = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void MatVecNeon(const double* a, size_t rows, size_t n, size_t stride,
                const double* x, double* y) {
  for (size_t r = 0; r < rows; ++r) {
    y[r] = DotNeon(a + r * stride, x, n);
  }
}

void AxpyNeon(double alpha, const double* x, double* y, size_t n) {
  float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  size_t n2 = n & ~size_t{1};
  for (; i < n2; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void L2BatchSoaNeon(const double* q, const double* blocks, size_t n,
                    size_t dim, double* out) {
  size_t full = n / kLaneWidth;
  size_t blk_doubles = kLaneWidth * dim;
  double tmp[kLaneWidth];
  size_t nblocks = (n + kLaneWidth - 1) / kLaneWidth;
  for (size_t b = 0; b < nblocks; ++b) {
    const double* blk = blocks + b * blk_doubles;
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    for (size_t i = 0; i < dim; ++i) {
      float64x2_t qv = vdupq_n_f64(q[i]);
      float64x2_t d01 = vsubq_f64(vld1q_f64(blk + i * kLaneWidth), qv);
      float64x2_t d23 = vsubq_f64(vld1q_f64(blk + i * kLaneWidth + 2), qv);
      acc01 = vaddq_f64(acc01, vmulq_f64(d01, d01));
      acc23 = vaddq_f64(acc23, vmulq_f64(d23, d23));
    }
    if (b < full) {
      vst1q_f64(out + b * kLaneWidth, acc01);
      vst1q_f64(out + b * kLaneWidth + 2, acc23);
    } else {
      vst1q_f64(tmp, acc01);
      vst1q_f64(tmp + 2, acc23);
      for (size_t j = 0; j < n % kLaneWidth; ++j) {
        out[b * kLaneWidth + j] = tmp[j];
      }
    }
  }
}

void L2Batch4Neon(const double* q, const double* const p[4], size_t dim,
                  double* out) {
  GetScalarOps()->l2_batch4(q, p, dim, out);
}

void MinDistBatch4Neon(const double* const lo[4], const double* const hi[4],
                       const double* p, size_t dim, double* out) {
  GetScalarOps()->min_dist_batch4(lo, hi, p, dim, out);
}

void MinMaxDistBatch4Neon(const double* const lo[4],
                          const double* const hi[4], const double* p,
                          size_t dim, double* out) {
  GetScalarOps()->min_max_dist_batch4(lo, hi, p, dim, out);
}

const KernelOps kNeonOps = {
    "neon",          DotNeon,        MatVecNeon,
    AxpyNeon,        L2BatchSoaNeon, L2Batch4Neon,
    MinDistBatch4Neon, MinMaxDistBatch4Neon,
};

}  // namespace

const KernelOps* GetNeonOps() { return &kNeonOps; }

}  // namespace kernels
}  // namespace nncell

#else  // !__aarch64__

namespace nncell {
namespace kernels {

const KernelOps* GetNeonOps() { return nullptr; }

}  // namespace kernels
}  // namespace nncell

#endif
