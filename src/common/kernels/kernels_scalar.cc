// Scalar reference kernels. This TU defines the numeric ground truth: the
// SIMD TUs must be bit-equal to these functions (tests/kernel_test.cc
// enforces it). Compiled with -ffp-contract=off so no FMA contraction can
// sneak in on architectures where fused multiply-add is the default.

#include "common/kernels/kernels_isa.h"

#include <limits>

namespace nncell {
namespace kernels {

double L2DistSqPair(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double L2NormSqRef(const double* a, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += a[i] * a[i];
  return s;
}

namespace {

// The C ternary, spelled out: this is the exact select the SIMD kernels
// mirror with cmp+blend (second operand wins whenever the compare is
// false, including NaN).
inline double SelectMax(double a, double b) { return (a > b) ? a : b; }
inline double SelectMin(double a, double b) { return (a < b) ? a : b; }

}  // namespace

double MinDistSqRef(const double* lo, const double* hi, const double* p,
                    size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    // (m > 0) ? m : 0 — a NaN coordinate contributes 0, exactly like the
    // classic branchy MINDIST loop this replaces.
    double m = SelectMax(lo[i] - p[i], p[i] - hi[i]);
    double d = SelectMax(m, 0.0);
    s += d * d;
  }
  return s;
}

double MinMaxDistSqRef(const double* lo, const double* hi, const double* p,
                       size_t dim) {
  // [RKV 95], two passes: farther-face sum first, then swap one term per
  // dimension. Face selection via the same compare+select the SIMD lanes
  // use: far face is lo when p >= mid, near face is lo when p <= mid.
  double sum_max = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double mid = 0.5 * (lo[i] + hi[i]);
    double far_face = (p[i] >= mid) ? lo[i] : hi[i];
    double dmax = p[i] - far_face;
    sum_max += dmax * dmax;
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < dim; ++k) {
    double mid = 0.5 * (lo[k] + hi[k]);
    double far_face = (p[k] >= mid) ? lo[k] : hi[k];
    double near_face = (p[k] <= mid) ? lo[k] : hi[k];
    double dmax = p[k] - far_face;
    double dmin = p[k] - near_face;
    double v = sum_max - dmax * dmax + dmin * dmin;
    best = SelectMin(v, best);
  }
  return best;
}

namespace {

// Canonical blocked dot: kLaneWidth partial sums over the blocked prefix
// (accumulator j takes terms i with i % 4 == j), combined as
// (acc0 + acc2) + (acc1 + acc3) — the cheap 256->128->64 SIMD reduction —
// then the tail added sequentially. Every dim-lane kernel, on every ISA,
// reproduces exactly this order.
double DotBlocked(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  size_t n4 = n & ~(kLaneWidth - 1);
  for (; i < n4; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double s = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void MatVecBlocked(const double* a, size_t rows, size_t n, size_t stride,
                   const double* x, double* y) {
  for (size_t r = 0; r < rows; ++r) {
    y[r] = DotBlocked(a + r * stride, x, n);
  }
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void L2BatchSoaScalar(const double* q, const double* blocks, size_t n,
                      size_t dim, double* out) {
  for (size_t j = 0; j < n; ++j) {
    const double* blk = blocks + (j / kLaneWidth) * kLaneWidth * dim;
    size_t lane = j % kLaneWidth;
    double s = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      double d = blk[i * kLaneWidth + lane] - q[i];
      s += d * d;
    }
    out[j] = s;
  }
}

void L2Batch4Scalar(const double* q, const double* const p[4], size_t dim,
                    double* out) {
  for (int j = 0; j < 4; ++j) out[j] = L2DistSqPair(p[j], q, dim);
}

void MinDistBatch4Scalar(const double* const lo[4], const double* const hi[4],
                         const double* p, size_t dim, double* out) {
  for (int j = 0; j < 4; ++j) out[j] = MinDistSqRef(lo[j], hi[j], p, dim);
}

void MinMaxDistBatch4Scalar(const double* const lo[4],
                            const double* const hi[4], const double* p,
                            size_t dim, double* out) {
  for (int j = 0; j < 4; ++j) out[j] = MinMaxDistSqRef(lo[j], hi[j], p, dim);
}

const KernelOps kScalarOps = {
    "scalar",        DotBlocked,     MatVecBlocked,
    AxpyScalar,      L2BatchSoaScalar, L2Batch4Scalar,
    MinDistBatch4Scalar, MinMaxDistBatch4Scalar,
};

}  // namespace

const KernelOps* GetScalarOps() { return &kScalarOps; }

}  // namespace kernels
}  // namespace nncell
