// AVX2 kernels. Compiled with -mavx2 -ffp-contract=off on x86-64 (the
// dispatcher only selects this table when cpuid reports AVX2, so the TU may
// freely use the intrinsics). Every kernel is bit-equal to the scalar
// reference in kernels_scalar.cc: point-lane kernels keep each object's
// accumulation strictly sequential (lanes are objects), dim-lane kernels
// reproduce the canonical blocked reduction, and all min/max selections use
// cmp+blend with exact C-ternary semantics (never min_pd/max_pd, whose NaN
// behavior differs).

#include "common/kernels/kernels_isa.h"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

namespace nncell {
namespace kernels {
namespace {

// (a > b) ? a : b per lane, matching SelectMax in the scalar reference:
// blendv picks the second source where the compare is true, the first
// (here b) where it is false — including every NaN case.
inline __m256d SelectMaxPd(__m256d a, __m256d b) {
  return _mm256_blendv_pd(b, a, _mm256_cmp_pd(a, b, _CMP_GT_OQ));
}

// (v < best) ? v : best per lane.
inline __m256d SelectMinPd(__m256d v, __m256d best) {
  return _mm256_blendv_pd(best, v, _mm256_cmp_pd(v, best, _CMP_LT_OQ));
}

// (acc0 + acc2) + (acc1 + acc3): the canonical combine of the four lane
// accumulators (see DotBlocked in kernels_scalar.cc).
inline double ReduceBlocked(__m256d acc) {
  __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                            _mm256_extractf128_pd(acc, 1));
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  size_t n4 = n & ~(kLaneWidth - 1);
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double s = ReduceBlocked(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void MatVecAvx2(const double* a, size_t rows, size_t n, size_t stride,
                const double* x, double* y) {
  for (size_t r = 0; r < rows; ++r) {
    y[r] = DotAvx2(a + r * stride, x, n);
  }
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  size_t n4 = n & ~(kLaneWidth - 1);
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

// One SoA block: lane j is point j, per-dimension accumulation sequential.
inline __m256d L2BlockAvx2(const double* q, const double* blk, size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < dim; ++i) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(blk + i * kLaneWidth),
                              _mm256_set1_pd(q[i]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  return acc;
}

void L2BatchSoaAvx2(const double* q, const double* blocks, size_t n,
                    size_t dim, double* out) {
  size_t full = n / kLaneWidth;
  for (size_t b = 0; b < full; ++b) {
    _mm256_storeu_pd(out + b * kLaneWidth,
                     L2BlockAvx2(q, blocks + b * kLaneWidth * dim, dim));
  }
  size_t rem = n % kLaneWidth;
  if (rem) {
    double tmp[kLaneWidth];
    _mm256_storeu_pd(tmp, L2BlockAvx2(q, blocks + full * kLaneWidth * dim,
                                      dim));
    for (size_t j = 0; j < rem; ++j) out[full * kLaneWidth + j] = tmp[j];
  }
}

inline __m256d Gather4(const double* const p[4], size_t i) {
  return _mm256_set_pd(p[3][i], p[2][i], p[1][i], p[0][i]);
}

void L2Batch4Avx2(const double* q, const double* const p[4], size_t dim,
                  double* out) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < dim; ++i) {
    __m256d d = _mm256_sub_pd(Gather4(p, i), _mm256_set1_pd(q[i]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out, acc);
}

void MinDistBatch4Avx2(const double* const lo[4], const double* const hi[4],
                       const double* p, size_t dim, double* out) {
  __m256d acc = _mm256_setzero_pd();
  __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < dim; ++i) {
    __m256d pv = _mm256_set1_pd(p[i]);
    __m256d t1 = _mm256_sub_pd(Gather4(lo, i), pv);
    __m256d t2 = _mm256_sub_pd(pv, Gather4(hi, i));
    __m256d d = SelectMaxPd(SelectMaxPd(t1, t2), zero);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out, acc);
}

void MinMaxDistBatch4Avx2(const double* const lo[4],
                          const double* const hi[4], const double* p,
                          size_t dim, double* out) {
  const __m256d half = _mm256_set1_pd(0.5);
  __m256d sum_max = _mm256_setzero_pd();
  for (size_t i = 0; i < dim; ++i) {
    __m256d lov = Gather4(lo, i);
    __m256d hiv = Gather4(hi, i);
    __m256d pv = _mm256_set1_pd(p[i]);
    __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(lov, hiv));
    // (p >= mid) ? lo : hi
    __m256d far_face = _mm256_blendv_pd(
        hiv, lov, _mm256_cmp_pd(pv, mid, _CMP_GE_OQ));
    __m256d dmax = _mm256_sub_pd(pv, far_face);
    sum_max = _mm256_add_pd(sum_max, _mm256_mul_pd(dmax, dmax));
  }
  __m256d best = _mm256_set1_pd(__builtin_huge_val());
  for (size_t k = 0; k < dim; ++k) {
    __m256d lov = Gather4(lo, k);
    __m256d hiv = Gather4(hi, k);
    __m256d pv = _mm256_set1_pd(p[k]);
    __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(lov, hiv));
    __m256d far_face = _mm256_blendv_pd(
        hiv, lov, _mm256_cmp_pd(pv, mid, _CMP_GE_OQ));
    // (p <= mid) ? lo : hi
    __m256d near_face = _mm256_blendv_pd(
        hiv, lov, _mm256_cmp_pd(pv, mid, _CMP_LE_OQ));
    __m256d dmax = _mm256_sub_pd(pv, far_face);
    __m256d dmin = _mm256_sub_pd(pv, near_face);
    // (sum_max - dmax^2) + dmin^2, same association as the reference.
    __m256d v = _mm256_add_pd(
        _mm256_sub_pd(sum_max, _mm256_mul_pd(dmax, dmax)),
        _mm256_mul_pd(dmin, dmin));
    best = SelectMinPd(v, best);
  }
  _mm256_storeu_pd(out, best);
}

const KernelOps kAvx2Ops = {
    "avx2",          DotAvx2,        MatVecAvx2,
    AxpyAvx2,        L2BatchSoaAvx2, L2Batch4Avx2,
    MinDistBatch4Avx2, MinMaxDistBatch4Avx2,
};

}  // namespace

const KernelOps* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace kernels
}  // namespace nncell

#else  // !(__AVX2__ && __x86_64__)

namespace nncell {
namespace kernels {

const KernelOps* GetAvx2Ops() { return nullptr; }

}  // namespace kernels
}  // namespace nncell

#endif
