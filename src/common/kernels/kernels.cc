// Kernel dispatch: one table is selected at first use and never changes.
// Order of preference is cpuid-driven (avx2 on x86-64 with AVX2, neon on
// aarch64, else scalar); NNCELL_SIMD=off|scalar|avx2|neon overrides for
// testing. Asking for an ISA this build or CPU cannot run falls back to
// scalar and records the fact in DispatchReason() — results are identical
// either way, that is the whole point of the bit-equality contract.

#include "common/kernels/kernels_isa.h"

#include <cstdlib>
#include <cstring>

namespace nncell {
namespace kernels {
namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelOps* Avx2IfRunnable() {
  const KernelOps* ops = GetAvx2Ops();
  return (ops != nullptr && CpuHasAvx2()) ? ops : nullptr;
}

struct Dispatch {
  const KernelOps* ops;
  SimdLevel level;
  const char* reason;
};

Dispatch Resolve() {
  const KernelOps* avx2 = Avx2IfRunnable();
  const KernelOps* neon = GetNeonOps();
  const char* env = std::getenv("NNCELL_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    if (avx2 != nullptr) return {avx2, SimdLevel::kAvx2, "cpuid"};
    if (neon != nullptr) return {neon, SimdLevel::kNeon, "cpuid"};
    return {GetScalarOps(), SimdLevel::kScalar, "cpuid"};
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
    return {GetScalarOps(), SimdLevel::kScalar, "env"};
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (avx2 != nullptr) return {avx2, SimdLevel::kAvx2, "env"};
    return {GetScalarOps(), SimdLevel::kScalar, "env-fallback:avx2"};
  }
  if (std::strcmp(env, "neon") == 0) {
    if (neon != nullptr) return {neon, SimdLevel::kNeon, "env"};
    return {GetScalarOps(), SimdLevel::kScalar, "env-fallback:neon"};
  }
  return {GetScalarOps(), SimdLevel::kScalar, "env-fallback:unknown"};
}

const Dispatch& GetDispatch() {
  static const Dispatch d = Resolve();
  return d;
}

}  // namespace

const KernelOps& Ops() { return *GetDispatch().ops; }

const KernelOps& ScalarOps() { return *GetScalarOps(); }

SimdLevel ActiveLevel() { return GetDispatch().level; }

const char* ActiveLevelName() { return GetDispatch().ops->name; }

const char* DispatchReason() { return GetDispatch().reason; }

std::vector<const KernelOps*> AllOpsForTest() {
  std::vector<const KernelOps*> all;
  all.push_back(GetScalarOps());
  if (const KernelOps* avx2 = Avx2IfRunnable()) all.push_back(avx2);
  if (const KernelOps* neon = GetNeonOps()) all.push_back(neon);
  return all;
}

}  // namespace kernels
}  // namespace nncell
