#ifndef NNCELL_COMMON_KERNELS_KERNELS_H_
#define NNCELL_COMMON_KERNELS_KERNELS_H_

#include <cstddef>
#include <vector>

// Runtime-dispatched SIMD kernels for the distance and LP hot loops.
//
// One implementation table (KernelOps) is selected once, at first use, from
// CPU feature detection — overridable with NNCELL_SIMD=off|scalar|avx2|neon
// for testing. Every entry obeys the FP-determinism contract below, so all
// dispatch levels produce bit-identical doubles and the differential suite's
// byte-identity guarantees hold under any NNCELL_SIMD setting.
//
// FP-determinism contract (docs/KERNELS.md has the full write-up):
//
//  * Point-lane kernels (l2_batch_soa, l2_batch4, min_dist_batch4,
//    min_max_dist_batch4) vectorize ACROSS points/rects: SIMD lane j holds
//    object j, and each object's per-dimension accumulation runs in the
//    same strictly sequential order as the scalar pair kernel. They are
//    bit-equal to L2DistSqPair / MinDistSqRef / MinMaxDistSqRef by
//    construction.
//  * Dim-lane kernels (dot, mat_vec) vectorize ACROSS dimensions and use
//    the canonical lane-blocked reduction: kLaneWidth partial sums
//    (accumulator j takes terms i with i % kLaneWidth == j over the
//    blocked prefix), combined as (acc0 + acc2) + (acc1 + acc3), then the
//    tail terms added sequentially. The scalar reference implements the
//    identical order, so results match bit-for-bit across ISAs.
//  * axpy is elementwise (one mul + one add per element) — trivially
//    order-free.
//  * No FMA contraction anywhere: every kernel translation unit compiles
//    with -ffp-contract=off, keeping the separate mul/add roundings that
//    the contract above assumes.
//  * min/max selections are expressed as compare+select with the exact
//    semantics of the C ternary ((a > b) ? a : b), mirrored in SIMD by
//    cmp+blend — never min_pd/max_pd — so NaN propagation matches the
//    scalar reference lane for lane.

namespace nncell {
namespace kernels {

// SIMD lane width for SoA blocking, matrix-row padding, and the canonical
// blocked reduction. Fixed at 4 on every ISA (NEON runs 2x float64x2) so
// numeric results never depend on the dispatch level.
inline constexpr size_t kLaneWidth = 4;

enum class SimdLevel : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

// Rounds a row length up to the next multiple of kLaneWidth.
inline constexpr size_t PaddedDim(size_t dim) {
  return (dim + kLaneWidth - 1) / kLaneWidth * kLaneWidth;
}

struct KernelOps {
  const char* name;  // "scalar" | "avx2" | "neon"

  // Dim-lane (canonical blocked order). dot(a, b, n); mat_vec computes
  // y[r] = dot(a + r * stride, x, n) for r in [0, rows) — stride may
  // exceed n (padded constraint matrices).
  double (*dot)(const double* a, const double* b, size_t n);
  void (*mat_vec)(const double* a, size_t rows, size_t n, size_t stride,
                  const double* x, double* y);

  // Elementwise y[i] += alpha * x[i].
  void (*axpy)(double alpha, const double* x, double* y, size_t n);

  // Point-lane. blocks is the SoaBlockStore layout: full blocks of
  // kLaneWidth points, dimension-major inside a block
  // (blocks[b * kLaneWidth * dim + i * kLaneWidth + lane]). Writes
  // out[0..n) = L2DistSqPair(q, point_j, dim), bit-equal per point.
  void (*l2_batch_soa)(const double* q, const double* blocks, size_t n,
                       size_t dim, double* out);
  // Gather variant over 4 arbitrary row pointers (AoS candidates).
  void (*l2_batch4)(const double* q, const double* const p[4], size_t dim,
                    double* out);
  // MINDIST / MINMAXDIST [RKV 95] over 4 raw MBR bounds at once; lane j
  // is rect j, bit-equal to MinDistSqRef / MinMaxDistSqRef.
  void (*min_dist_batch4)(const double* const lo[4], const double* const hi[4],
                          const double* p, size_t dim, double* out);
  void (*min_max_dist_batch4)(const double* const lo[4],
                              const double* const hi[4], const double* p,
                              size_t dim, double* out);
};

// The dispatched table (resolved once, thread-safe) and the scalar
// reference table (always available, what kernel_test compares against).
const KernelOps& Ops();
const KernelOps& ScalarOps();

SimdLevel ActiveLevel();
const char* ActiveLevelName();
// Why the active level was chosen: "cpuid", "env", or
// "env-fallback:<requested>" when NNCELL_SIMD asked for an ISA this
// build/CPU cannot run (the dispatcher then falls back to scalar).
const char* DispatchReason();

// Every op table this build can run (scalar always; avx2/neon when both
// compiled in and supported by the CPU). For the equivalence suite.
std::vector<const KernelOps*> AllOpsForTest();

// --- scalar reference kernels (sequential order) --------------------------
// These are the semantic anchors for the point-lane kernels and the
// single-pair entry points used by thin wrappers in common/distance.h and
// common/hyper_rect.h. Out-of-line in kernels_scalar.cc so they compile
// with -ffp-contract=off on every architecture.

// s = sum_i (a[i] - b[i])^2, strictly sequential.
double L2DistSqPair(const double* a, const double* b, size_t dim);

// s = sum_i a[i]^2, strictly sequential.
double L2NormSqRef(const double* a, size_t dim);

// MINDIST: squared distance from p to the rect [lo, hi], strictly
// sequential, branchless form (bit-equal to the classic branchy loop for
// well-formed rects, NaN coordinates contribute 0 like the branchy form).
double MinDistSqRef(const double* lo, const double* hi, const double* p,
                    size_t dim);

// MINMAXDIST of [RKV 95], two-pass allocation-free form, sequential.
double MinMaxDistSqRef(const double* lo, const double* hi, const double* p,
                       size_t dim);

// --- convenience wrappers over the dispatched table -----------------------

inline double Dot(const double* a, const double* b, size_t n) {
  return Ops().dot(a, b, n);
}

inline void MatVec(const double* a, size_t rows, size_t n, size_t stride,
                   const double* x, double* y) {
  Ops().mat_vec(a, rows, n, stride, x, y);
}

inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  Ops().axpy(alpha, x, y, n);
}

inline void L2DistSqBatch4(const double* q, const double* const p[4],
                           size_t dim, double* out) {
  Ops().l2_batch4(q, p, dim, out);
}

inline void MinDistSqBatch4(const double* const lo[4],
                            const double* const hi[4], const double* p,
                            size_t dim, double* out) {
  Ops().min_dist_batch4(lo, hi, p, dim, out);
}

inline void MinMaxDistSqBatch4(const double* const lo[4],
                               const double* const hi[4], const double* p,
                               size_t dim, double* out) {
  Ops().min_max_dist_batch4(lo, hi, p, dim, out);
}

}  // namespace kernels
}  // namespace nncell

#endif  // NNCELL_COMMON_KERNELS_KERNELS_H_
