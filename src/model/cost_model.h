#ifndef NNCELL_MODEL_COST_MODEL_H_
#define NNCELL_MODEL_COST_MODEL_H_

#include <cstddef>

namespace nncell {

// Analytic cost model of nearest-neighbor search in high-dimensional data
// spaces, after Berchtold, Boehm, Keim, Kriegel [BBKK 97] -- the paper's
// theoretical motivation ("index-based approaches must access a large
// portion of the data points in higher dimensions"). All formulas assume
// N uniformly distributed points in [0,1]^d and Euclidean distance.

// Volume of the d-dimensional unit ball.
double UnitBallVolume(size_t d);

// Expected nearest-neighbor distance: the radius r with
// N * Vol(Ball(r)) = 1  =>  r = (Gamma(d/2+1) / (N * pi^(d/2)))^(1/d).
// (Boundary effects ignored, as in the model.)
double ExpectedNNDistance(size_t n, size_t d);

// Expected number of data pages whose region intersects the NN sphere,
// modelling page regions as hypercubes of volume c_eff / N (c_eff =
// effective page capacity). Uses the Minkowski-sum volume
//   vol(cube_a ⊕ ball_r) = sum_k C(d,k) a^(d-k) V_k r^k,
// clipped to the total page count. This is the lower bound any
// data-partitioning index must pay for an exact NN query.
double ExpectedNNPageAccesses(size_t n, size_t d, size_t c_eff);

// The fraction of all data pages an NN query touches under the model --
// the "dimensionality curse" curve that motivates precomputing the
// solution space.
double ExpectedAccessFraction(size_t n, size_t d, size_t c_eff);

}  // namespace nncell

#endif  // NNCELL_MODEL_COST_MODEL_H_
