#include "model/cost_model.h"

#include <cmath>

#include "common/check.h"

namespace nncell {

double UnitBallVolume(size_t d) {
  // V_d = pi^(d/2) / Gamma(d/2 + 1).
  double half = static_cast<double>(d) / 2.0;
  return std::pow(M_PI, half) / std::tgamma(half + 1.0);
}

double ExpectedNNDistance(size_t n, size_t d) {
  NNCELL_CHECK(n > 0 && d > 0);
  // N * V_d * r^d = 1.
  return std::pow(1.0 / (static_cast<double>(n) * UnitBallVolume(d)),
                  1.0 / static_cast<double>(d));
}

namespace {

double BinomialCoefficient(size_t n, size_t k) {
  double result = 1.0;
  for (size_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace

double ExpectedNNPageAccesses(size_t n, size_t d, size_t c_eff) {
  NNCELL_CHECK(n > 0 && d > 0 && c_eff > 0);
  double num_pages =
      std::ceil(static_cast<double>(n) / static_cast<double>(c_eff));
  if (num_pages <= 1.0) return 1.0;
  // Page regions as hypercubes with side a, volume c_eff/N.
  double a = std::pow(static_cast<double>(c_eff) / static_cast<double>(n),
                      1.0 / static_cast<double>(d));
  double r = ExpectedNNDistance(n, d);
  // A page is touched iff its region intersects the NN sphere: the page
  // center lies in the Minkowski sum of its cube and the sphere.
  double minkowski = 0.0;
  for (size_t k = 0; k <= d; ++k) {
    minkowski += BinomialCoefficient(d, k) *
                 std::pow(a, static_cast<double>(d - k)) * UnitBallVolume(k) *
                 std::pow(r, static_cast<double>(k));
  }
  // Expected pages = density of pages * intersected volume, capped.
  double accesses = num_pages * std::min(1.0, minkowski);
  return std::max(1.0, std::min(accesses, num_pages));
}

double ExpectedAccessFraction(size_t n, size_t d, size_t c_eff) {
  double num_pages =
      std::ceil(static_cast<double>(n) / static_cast<double>(c_eff));
  return ExpectedNNPageAccesses(n, d, c_eff) / num_pages;
}

}  // namespace nncell
