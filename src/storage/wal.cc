#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "storage/durable_format.h"
#include "storage/fs_util.h"
#include "storage/wire.h"

namespace nncell {

namespace {

struct WalMetrics {
  metrics::Counter* appends;
  metrics::Counter* append_bytes;
  metrics::Counter* fsyncs;
  metrics::Counter* tail_truncations;
};

[[maybe_unused]] const WalMetrics& Metrics() {
  static const WalMetrics m = {
      metrics::Registry::Global().counter(metrics::kWalRecordsAppended),
      metrics::Registry::Global().counter(metrics::kWalBytesAppended),
      metrics::Registry::Global().counter(metrics::kWalFsyncs),
      metrics::Registry::Global().counter(metrics::kWalTailTruncations),
  };
  return m;
}

std::string HeaderBytes(uint64_t start_lsn) {
  std::string h;
  wire::PutU64(&h, durable::kWalMagic);
  wire::PutU32(&h, durable::kWalVersion);
  wire::PutU64(&h, start_lsn);
  wire::PutU32(&h, Crc32c(h.data(), h.size()));
  return h;
}

uint32_t RecordCrc(uint64_t lsn, const uint8_t* payload, size_t len) {
  uint32_t crc = Crc32c(&lsn, sizeof(lsn));
  return Crc32cExtend(crc, payload, len);
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, int fd, uint64_t next_lsn,
                             size_t group_sync)
    : path_(std::move(path)),
      group_sync_(group_sync == 0 ? 1 : group_sync),
      fd_(fd),
      next_lsn_(next_lsn) {}

WriteAheadLog::~WriteAheadLog() {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, uint64_t create_start_lsn, size_t group_sync,
    bool strict_header, RecoverResult* recovered) {
  RecoverResult local;
  RecoverResult& rec = recovered ? *recovered : local;
  rec = RecoverResult{};

  std::string data;
  bool exists = fs::PathExists(path);
  if (exists) {
    auto read = fs::ReadFileToString(path);
    if (!read.ok()) return read.status();
    data = std::move(*read);
  }

  uint64_t start_lsn = create_start_lsn;
  size_t valid_end = durable::kWalHeaderBytes;
  if (!exists || data.size() < durable::kWalHeaderBytes) {
    if (exists && strict_header) {
      return Status::InvalidArgument(
          "wal header truncated (" + std::to_string(data.size()) +
          " bytes): " + path);
    }
    // Fresh log (or the torn remains of the very first creation).
    NNCELL_RETURN_IF_ERROR(fs::WriteFileAtomic(path, HeaderBytes(start_lsn)));
    rec.created = true;
    rec.start_lsn = start_lsn;
  } else {
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
    wire::Reader r(bytes, data.size());
    uint64_t magic = 0;
    uint32_t version = 0, header_crc = 0;
    r.GetU64(&magic);
    r.GetU32(&version);
    r.GetU64(&start_lsn);
    r.GetU32(&header_crc);
    if (magic != durable::kWalMagic) {
      return Status::InvalidArgument("not a write-ahead log (bad magic): " +
                                     path);
    }
    if (version != durable::kWalVersion) {
      return Status::InvalidArgument(
          "unsupported wal version " + std::to_string(version) +
          " (supported: " + std::to_string(durable::kWalVersion) + ")");
    }
    if (Crc32c(bytes, durable::kWalHeaderBytes - 4) != header_crc) {
      return Status::InvalidArgument("wal header checksum mismatch: " + path);
    }
    rec.start_lsn = start_lsn;

    // Scan records. Torn-vs-corrupt is decided by the header CRC: an
    // append is one write() call, and a crash leaves a *prefix* of it, so
    // any tail holding a full record header holds the authentic one. A
    // header that fails its CRC, an authenticated length that is absurd,
    // or a payload checksum failure over a complete extent is therefore
    // corruption -- never truncatable; only an incomplete header or an
    // authentic-length record cut short is a torn tail.
    uint64_t prev_lsn = start_lsn;
    while (r.remaining() > 0) {
      if (r.remaining() < durable::kWalRecordHeaderBytes) break;  // torn
      const size_t rec_off = r.pos();
      uint32_t len = 0, payload_crc = 0, header_crc = 0;
      uint64_t lsn = 0;
      r.GetU32(&len);
      r.GetU32(&payload_crc);
      r.GetU64(&lsn);
      r.GetU32(&header_crc);
      if (Crc32c(bytes + rec_off, durable::kWalRecordHeaderBytes - 4) !=
          header_crc) {
        return Status::InvalidArgument(
            "wal record header at offset " + std::to_string(rec_off) +
            " corrupted (header checksum mismatch): " + path);
      }
      if (len > durable::kWalMaxPayload) {
        return Status::InvalidArgument(
            "wal record at offset " + std::to_string(rec_off) +
            " claims a " + std::to_string(len) +
            "-byte payload (limit " + std::to_string(durable::kWalMaxPayload) +
            "): " + path);
      }
      if (len > r.remaining()) break;  // authentic header, torn payload
      const uint8_t* payload = r.cur();
      r.Skip(len);
      if (RecordCrc(lsn, payload, len) != payload_crc) {
        return Status::InvalidArgument(
            "wal record at offset " + std::to_string(rec_off) + " (lsn " +
            std::to_string(lsn) + ") checksum mismatch: " + path);
      }
      if (lsn != prev_lsn + 1) {
        return Status::InvalidArgument(
            "wal lsn discontinuity: expected " + std::to_string(prev_lsn + 1) +
            ", found " + std::to_string(lsn) + ": " + path);
      }
      prev_lsn = lsn;
      valid_end = r.pos();
      Record record;
      record.lsn = lsn;
      record.payload.assign(payload, payload + len);
      rec.records.push_back(std::move(record));
    }
    rec.torn_bytes = data.size() - valid_end;
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(fs::ErrnoMessage("open " + path));
  }
  if (rec.torn_bytes > 0) {
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      ::close(fd);
      return Status::Internal(fs::ErrnoMessage("ftruncate " + path));
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal(fs::ErrnoMessage("fsync " + path));
    }
    NNCELL_METRIC_COUNT(Metrics().tail_truncations, 1);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::Internal(fs::ErrnoMessage("lseek " + path));
  }

  uint64_t last =
      rec.records.empty() ? rec.start_lsn : rec.records.back().lsn;
  if (rec.created) last = start_lsn;
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, last + 1, group_sync));
}

Status WriteAheadLog::Append(std::string_view payload) {
  // One critical section for LSN assignment + write + group-sync decision:
  // concurrent appenders interleave whole records, in LSN order.
  MutexLock lock(mu_);
  if (!healthy_) {
    return Status::FailedPrecondition(
        "wal disabled by an earlier write failure; reopen to recover");
  }
  if (payload.size() > durable::kWalMaxPayload) {
    return Status::InvalidArgument("wal payload too large");
  }
  const uint64_t lsn = next_lsn_;
  std::string record;
  wire::PutU32(&record, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&record,
               RecordCrc(lsn, reinterpret_cast<const uint8_t*>(payload.data()),
                         payload.size()));
  wire::PutU64(&record, lsn);
  wire::PutU32(&record, Crc32c(record.data(), record.size()));
  record.append(payload);

  Status st = fs::WriteAllFd(fd_, record, "wal.append.write");
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  ++next_lsn_;
  ++unsynced_;
  NNCELL_METRIC_COUNT(Metrics().appends, 1);
  NNCELL_METRIC_COUNT(Metrics().append_bytes, record.size());
  if (unsynced_ >= group_sync_) return SyncLocked();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  MutexLock lock(mu_);
  return SyncLocked();
}

Status WriteAheadLog::SyncLocked() {
  if (!healthy_) {
    return Status::FailedPrecondition(
        "wal disabled by an earlier write failure; reopen to recover");
  }
  if (unsynced_ == 0) return Status::OK();
  Status st = fs::FsyncFd(fd_, "wal.append.fsync");
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  unsynced_ = 0;
  NNCELL_METRIC_COUNT(Metrics().fsyncs, 1);
  return Status::OK();
}

Status WriteAheadLog::Truncate(uint64_t new_start_lsn) {
  if (failpoint::Check("wal.truncate") == failpoint::Action::kCrash) {
    failpoint::Crash();
  }
  NNCELL_RETURN_IF_ERROR(fs::WriteFileAtomic(path_, HeaderBytes(new_start_lsn)));
  MutexLock lock(mu_);
  // The old fd points at the replaced inode; switch to the new log.
  int fd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    healthy_ = false;
    return Status::Internal(fs::ErrnoMessage("open " + path_));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    healthy_ = false;
    return Status::Internal(fs::ErrnoMessage("lseek " + path_));
  }
  ::close(fd_);
  fd_ = fd;
  next_lsn_ = new_start_lsn + 1;
  unsynced_ = 0;
  healthy_ = true;
  return Status::OK();
}

}  // namespace nncell
