#include "storage/buffer_pool.h"

#include <cstring>

namespace nncell {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {
  NNCELL_CHECK(file != nullptr);
  NNCELL_CHECK(capacity_pages >= 1);
  frames_.reserve(capacity_);
}

BufferPool::Frame& BufferPool::GetFrame(PageId id, bool load_from_disk) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    Touch(it->second);
    return frames_[it->second];
  }

  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else if (frames_.size() < capacity_) {
    idx = frames_.size();
    frames_.emplace_back();
    frames_[idx].bytes.resize(file_->page_size());
  } else {
    idx = EvictOne();
  }

  Frame& f = frames_[idx];
  f.id = id;
  f.dirty = false;
  if (load_from_disk) {
    ++stats_.physical_reads;
    file_->Read(id, f.bytes.data());
  } else {
    std::memset(f.bytes.data(), 0, f.bytes.size());
  }
  lru_.push_front(idx);
  f.lru_it = lru_.begin();
  map_[id] = idx;
  return f;
}

void BufferPool::Touch(size_t frame_idx) {
  lru_.erase(frames_[frame_idx].lru_it);
  lru_.push_front(frame_idx);
  frames_[frame_idx].lru_it = lru_.begin();
}

size_t BufferPool::EvictOne() {
  NNCELL_CHECK(!lru_.empty());
  size_t idx = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[idx];
  if (f.dirty) {
    ++stats_.writebacks;
    file_->Write(f.id, f.bytes.data());
  }
  map_.erase(f.id);
  f.id = kInvalidPageId;
  return idx;
}

const uint8_t* BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  return GetFrame(id, /*load_from_disk=*/true).bytes.data();
}

uint8_t* BufferPool::FetchMutable(PageId id) {
  ++stats_.logical_reads;
  Frame& f = GetFrame(id, /*load_from_disk=*/true);
  f.dirty = true;
  return f.bytes.data();
}

PageId BufferPool::AllocatePage() {
  PageId id = file_->Allocate();
  Frame& f = GetFrame(id, /*load_from_disk=*/false);
  f.dirty = true;
  return id;
}

PageId BufferPool::AllocateRun(size_t count) {
  PageId first = file_->AllocateRun(count);
  for (size_t i = 0; i < count; ++i) {
    Frame& f = GetFrame(first + static_cast<PageId>(i), false);
    f.dirty = true;
  }
  return first;
}

void BufferPool::FreePage(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    size_t idx = it->second;
    lru_.erase(frames_[idx].lru_it);
    map_.erase(it);
    frames_[idx].id = kInvalidPageId;
    frames_[idx].dirty = false;
    free_frames_.push_back(idx);
  }
  file_->Free(id);
}

void BufferPool::Flush() {
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      ++stats_.writebacks;
      file_->Write(f.id, f.bytes.data());
      f.dirty = false;
    }
  }
}

void BufferPool::Invalidate() {
  for (Frame& f : frames_) {
    f.id = kInvalidPageId;
    f.dirty = false;
  }
  lru_.clear();
  map_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) free_frames_.push_back(i);
}

void BufferPool::DropCache() {
  Flush();
  for (Frame& f : frames_) f.id = kInvalidPageId;
  lru_.clear();
  map_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) free_frames_.push_back(i);
}

}  // namespace nncell
