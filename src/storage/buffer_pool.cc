#include "storage/buffer_pool.h"

#include <cstring>
#include <sstream>
#include <unordered_set>

#include "common/metrics.h"
#include "common/metrics_names.h"

namespace nncell {

namespace {

// Registry handles, resolved once. Counters aggregate over every pool in
// the process (cell index, point index, baselines alike); per-pool detail
// stays available through BufferPool::stats().
struct PoolMetrics {
  metrics::Counter* logical_reads;
  metrics::Counter* misses;
  metrics::Counter* evictions;
  metrics::Counter* writebacks;
  metrics::Gauge* pinned_frames;
};

[[maybe_unused]] const PoolMetrics& Metrics() {
  static const PoolMetrics m = {
      metrics::Registry::Global().counter(metrics::kPoolLogicalReads),
      metrics::Registry::Global().counter(metrics::kPoolMisses),
      metrics::Registry::Global().counter(metrics::kPoolEvictions),
      metrics::Registry::Global().counter(metrics::kPoolWritebacks),
      metrics::Registry::Global().gauge(metrics::kPoolPinnedFrames),
  };
  return m;
}

inline void BumpRelaxed(std::atomic<uint64_t>& v) {
  // nncell-lint: allow(relaxed-atomics) stats counters bumped under the shard
  v.fetch_add(1, std::memory_order_relaxed);  // mutex; relaxed so stats() reads lock-free
}

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {
  NNCELL_CHECK(file != nullptr);
  NNCELL_CHECK(capacity_pages >= 1);
  size_t num_shards = 1;
  if (capacity_pages >= kShardThreshold) {
    num_shards = capacity_pages / (kShardThreshold / 2);
    if (num_shards > kMaxShards) num_shards = kMaxShards;
  }
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Shard capacities sum exactly to the configured budget. Constructing
    // under the (uncontended) shard mutex keeps the thread-safety analysis
    // exact: `frames` is guarded, and the exemption for constructors only
    // covers members of the object being constructed, not the Shard's.
    MutexLock lock(shard->mu);
    shard->capacity = capacity_ / num_shards + (s < capacity_ % num_shards);
    NNCELL_CHECK(shard->capacity >= 1);
    shard->frames.reserve(shard->capacity);
    shards_.push_back(std::move(shard));
  }
}

BufferPool::Frame& BufferPool::GetFrame(Shard& shard, PageId id,
                                        bool load_from_disk) {
  auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    Touch(shard, it->second);
    return shard.frames[it->second];
  }

  size_t idx;
  if (!shard.free_frames.empty()) {
    idx = shard.free_frames.back();
    shard.free_frames.pop_back();
  } else if (shard.frames.size() < shard.capacity) {
    idx = shard.frames.size();
    shard.frames.emplace_back();
    shard.frames[idx].bytes.resize(file_->page_size());
  } else {
    idx = EvictOne(shard);
  }

  Frame& f = shard.frames[idx];
  f.id = id;
  NNCELL_DCHECK(!f.dirty);
  NNCELL_DCHECK(f.pins == 0);
  if (load_from_disk) {
    BumpRelaxed(shard.stats.physical_reads);
    NNCELL_METRIC_COUNT(Metrics().misses, 1);
    file_->Read(id, f.bytes.data());
  } else {
    std::memset(f.bytes.data(), 0, f.bytes.size());
  }
  shard.lru.push_front(idx);
  f.lru_it = shard.lru.begin();
  shard.map[id] = idx;
  return f;
}

void BufferPool::Touch(Shard& shard, size_t frame_idx) {
  shard.lru.erase(shard.frames[frame_idx].lru_it);
  shard.lru.push_front(frame_idx);
  shard.frames[frame_idx].lru_it = shard.lru.begin();
}

size_t BufferPool::EvictOne(Shard& shard) {
  // Oldest unpinned frame; pinned frames are not eviction candidates.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t idx = *it;
    Frame& f = shard.frames[idx];
    if (f.pins > 0) continue;
    shard.lru.erase(std::next(it).base());
    NNCELL_METRIC_COUNT(Metrics().evictions, 1);
    if (f.dirty) {
      BumpRelaxed(shard.stats.writebacks);
      NNCELL_METRIC_COUNT(Metrics().writebacks, 1);
      file_->Write(f.id, f.bytes.data());
      ClearDirty(shard, f);
    }
    shard.map.erase(f.id);
    f.id = kInvalidPageId;
    return idx;
  }
  NNCELL_CHECK_MSG(false, "buffer pool shard exhausted: every frame pinned");
  return 0;  // unreachable
}

const uint8_t* BufferPool::Fetch(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  BumpRelaxed(shard.stats.logical_reads);
  NNCELL_METRIC_COUNT(Metrics().logical_reads, 1);
  return GetFrame(shard, id, /*load_from_disk=*/true).bytes.data();
}

uint8_t* BufferPool::FetchMutable(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  BumpRelaxed(shard.stats.logical_reads);
  NNCELL_METRIC_COUNT(Metrics().logical_reads, 1);
  Frame& f = GetFrame(shard, id, /*load_from_disk=*/true);
  MarkDirty(shard, f);
  return f.bytes.data();
}

PageId BufferPool::AllocatePage() {
  PageId id = file_->Allocate();
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  Frame& f = GetFrame(shard, id, /*load_from_disk=*/false);
  MarkDirty(shard, f);
  return id;
}

PageId BufferPool::AllocateRun(size_t count) {
  PageId first = file_->AllocateRun(count);
  for (size_t i = 0; i < count; ++i) {
    PageId id = first + static_cast<PageId>(i);
    Shard& shard = ShardOf(id);
    MutexLock lock(shard.mu);
    Frame& f = GetFrame(shard, id, /*load_from_disk=*/false);
    MarkDirty(shard, f);
  }
  return first;
}

void BufferPool::FreePage(PageId id) {
  Shard& shard = ShardOf(id);
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      size_t idx = it->second;
      NNCELL_CHECK_MSG(shard.frames[idx].pins == 0, "freeing a pinned page");
      shard.lru.erase(shard.frames[idx].lru_it);
      shard.map.erase(it);
      shard.frames[idx].id = kInvalidPageId;
      ClearDirty(shard, shard.frames[idx]);
      shard.free_frames.push_back(idx);
    }
  }
  file_->Free(id);
}

void BufferPool::Pin(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  Frame& f = GetFrame(shard, id, /*load_from_disk=*/true);
  if (f.pins == 0) {
    ++shard.pinned_frames;
    NNCELL_METRIC_GAUGE_ADD(Metrics().pinned_frames, 1);
  }
  ++f.pins;
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(id);
  NNCELL_CHECK_MSG(it != shard.map.end(), "unpinning a non-resident page");
  Frame& f = shard.frames[it->second];
  NNCELL_CHECK_MSG(f.pins > 0, "double unpin");
  --f.pins;
  if (f.pins == 0) {
    NNCELL_CHECK(shard.pinned_frames > 0);
    --shard.pinned_frames;
    NNCELL_METRIC_GAUGE_ADD(Metrics().pinned_frames, -1);
  }
}

size_t BufferPool::pinned_frames() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->pinned_frames;
  }
  return total;
}

size_t BufferPool::dirty_frames() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->dirty_frames;
  }
  return total;
}

void BufferPool::Flush() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& f : shard->frames) {
      if (f.id != kInvalidPageId && f.dirty) {
        BumpRelaxed(shard->stats.writebacks);
        NNCELL_METRIC_COUNT(Metrics().writebacks, 1);
        file_->Write(f.id, f.bytes.data());
        ClearDirty(*shard, f);
      }
    }
  }
}

void BufferPool::Invalidate() {
  NNCELL_CHECK_MSG(pinned_frames() == 0, "Invalidate with pinned pages");
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& f : shard->frames) {
      f.id = kInvalidPageId;
      ClearDirty(*shard, f);
    }
    shard->lru.clear();
    shard->map.clear();
    shard->free_frames.clear();
    for (size_t i = 0; i < shard->frames.size(); ++i) {
      shard->free_frames.push_back(i);
    }
  }
}

void BufferPool::DropCache() {
  NNCELL_CHECK_MSG(pinned_frames() == 0, "DropCache with pinned pages");
  Flush();
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& f : shard->frames) f.id = kInvalidPageId;
    shard->lru.clear();
    shard->map.clear();
    shard->free_frames.clear();
    for (size_t i = 0; i < shard->frames.size(); ++i) {
      shard->free_frames.push_back(i);
    }
  }
}

BufferStats BufferPool::stats() const {
  // Lock-free sum over the shards: the counters are relaxed atomics, so a
  // mid-query reader (metrics snapshot, QueryTrace) never contends with
  // the fetch path and TSan stays clean.
  BufferStats total;
  for (const auto& shard : shards_) {
    total.logical_reads +=  // nncell-lint: allow(relaxed-atomics) sum is
        shard->stats.logical_reads.load(std::memory_order_relaxed);
    total.physical_reads +=  // nncell-lint: allow(relaxed-atomics) a point-
        shard->stats.physical_reads.load(std::memory_order_relaxed);
    total.writebacks +=  // nncell-lint: allow(relaxed-atomics) in-time read
        shard->stats.writebacks.load(std::memory_order_relaxed);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    // nncell-lint: allow(relaxed-atomics) quiescent-point reset (writer-exclusive)
    shard->stats.logical_reads.store(0, std::memory_order_relaxed);
    // nncell-lint: allow(relaxed-atomics) quiescent-point reset (writer-exclusive)
    shard->stats.physical_reads.store(0, std::memory_order_relaxed);
    // nncell-lint: allow(relaxed-atomics) quiescent-point reset (writer-exclusive)
    shard->stats.writebacks.store(0, std::memory_order_relaxed);
  }
}

Status BufferPool::AuditPins(bool expect_unpinned) const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    std::ostringstream err;
    err << "shard " << s << ": ";

    // 1. The map and the frame table agree.
    for (const auto& [id, idx] : shard.map) {
      if (idx >= shard.frames.size()) {
        err << "map entry for page " << id << " points past the frame table";
        return Status::Internal(err.str());
      }
      if (shard.frames[idx].id != id) {
        err << "map says frame " << idx << " holds page " << id
            << " but the frame says " << shard.frames[idx].id;
        return Status::Internal(err.str());
      }
    }

    // 2. LRU list: no duplicates, every element resident and mapped.
    std::unordered_set<size_t> in_lru;
    for (size_t idx : shard.lru) {
      if (idx >= shard.frames.size()) {
        err << "LRU references a frame past the table";
        return Status::Internal(err.str());
      }
      if (!in_lru.insert(idx).second) {
        err << "frame " << idx << " appears twice in the LRU list";
        return Status::Internal(err.str());
      }
      const Frame& f = shard.frames[idx];
      if (f.id == kInvalidPageId) {
        err << "LRU frame " << idx << " holds no page";
        return Status::Internal(err.str());
      }
      auto it = shard.map.find(f.id);
      if (it == shard.map.end() || it->second != idx) {
        err << "LRU frame " << idx << " (page " << f.id << ") not in the map";
        return Status::Internal(err.str());
      }
    }
    if (in_lru.size() != shard.map.size()) {
      err << "LRU size " << in_lru.size() << " != map size "
          << shard.map.size();
      return Status::Internal(err.str());
    }

    // 3. Free frames: empty, clean, unpinned, and disjoint from the LRU.
    std::unordered_set<size_t> in_free;
    for (size_t idx : shard.free_frames) {
      if (idx >= shard.frames.size()) {
        err << "free list references a frame past the table";
        return Status::Internal(err.str());
      }
      if (!in_free.insert(idx).second) {
        err << "frame " << idx << " appears twice in the free list";
        return Status::Internal(err.str());
      }
      const Frame& f = shard.frames[idx];
      if (f.id != kInvalidPageId || f.dirty || f.pins != 0) {
        err << "free frame " << idx << " is not empty/clean/unpinned";
        return Status::Internal(err.str());
      }
      if (in_lru.count(idx) != 0) {
        err << "frame " << idx << " is both free and in the LRU";
        return Status::Internal(err.str());
      }
    }
    if (in_lru.size() + in_free.size() != shard.frames.size()) {
      err << "frames " << shard.frames.size() << " != LRU " << in_lru.size()
          << " + free " << in_free.size() << " (orphaned frame)";
      return Status::Internal(err.str());
    }

    // 4. Incremental counters match a recount.
    size_t pinned = 0, dirty = 0;
    for (const Frame& f : shard.frames) {
      if (f.pins > 0) ++pinned;
      if (f.dirty) ++dirty;
    }
    if (pinned != shard.pinned_frames) {
      err << "pinned-frame counter " << shard.pinned_frames
          << " != recount " << pinned;
      return Status::Internal(err.str());
    }
    if (dirty != shard.dirty_frames) {
      err << "dirty-frame counter " << shard.dirty_frames << " != recount "
          << dirty;
      return Status::Internal(err.str());
    }

    // 5. Pin leaks: at a quiescent point every Pin must have been Unpinned.
    if (expect_unpinned && pinned != 0) {
      err << pinned << " frame(s) still pinned at a quiescent point:";
      for (const Frame& f : shard.frames) {
        if (f.pins > 0) err << " page " << f.id << " (x" << f.pins << ")";
      }
      return Status::Internal(err.str());
    }
  }
  return Status::OK();
}

}  // namespace nncell
