#include "storage/buffer_pool.h"

#include <cstring>
#include <sstream>
#include <unordered_set>

namespace nncell {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {
  NNCELL_CHECK(file != nullptr);
  NNCELL_CHECK(capacity_pages >= 1);
  frames_.reserve(capacity_);
}

BufferPool::Frame& BufferPool::GetFrame(PageId id, bool load_from_disk) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    Touch(it->second);
    return frames_[it->second];
  }

  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else if (frames_.size() < capacity_) {
    idx = frames_.size();
    frames_.emplace_back();
    frames_[idx].bytes.resize(file_->page_size());
  } else {
    idx = EvictOne();
  }

  Frame& f = frames_[idx];
  f.id = id;
  NNCELL_DCHECK(!f.dirty);
  NNCELL_DCHECK(f.pins == 0);
  if (load_from_disk) {
    ++stats_.physical_reads;
    file_->Read(id, f.bytes.data());
  } else {
    std::memset(f.bytes.data(), 0, f.bytes.size());
  }
  lru_.push_front(idx);
  f.lru_it = lru_.begin();
  map_[id] = idx;
  return f;
}

void BufferPool::Touch(size_t frame_idx) {
  lru_.erase(frames_[frame_idx].lru_it);
  lru_.push_front(frame_idx);
  frames_[frame_idx].lru_it = lru_.begin();
}

size_t BufferPool::EvictOne() {
  // Oldest unpinned frame; pinned frames are not eviction candidates.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Frame& f = frames_[idx];
    if (f.pins > 0) continue;
    lru_.erase(std::next(it).base());
    if (f.dirty) {
      ++stats_.writebacks;
      file_->Write(f.id, f.bytes.data());
      ClearDirty(f);
    }
    map_.erase(f.id);
    f.id = kInvalidPageId;
    return idx;
  }
  NNCELL_CHECK_MSG(false, "buffer pool exhausted: every frame is pinned");
  return 0;  // unreachable
}

const uint8_t* BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  return GetFrame(id, /*load_from_disk=*/true).bytes.data();
}

uint8_t* BufferPool::FetchMutable(PageId id) {
  ++stats_.logical_reads;
  Frame& f = GetFrame(id, /*load_from_disk=*/true);
  MarkDirty(f);
  return f.bytes.data();
}

PageId BufferPool::AllocatePage() {
  PageId id = file_->Allocate();
  Frame& f = GetFrame(id, /*load_from_disk=*/false);
  MarkDirty(f);
  return id;
}

PageId BufferPool::AllocateRun(size_t count) {
  PageId first = file_->AllocateRun(count);
  for (size_t i = 0; i < count; ++i) {
    Frame& f = GetFrame(first + static_cast<PageId>(i), false);
    MarkDirty(f);
  }
  return first;
}

void BufferPool::FreePage(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    size_t idx = it->second;
    NNCELL_CHECK_MSG(frames_[idx].pins == 0, "freeing a pinned page");
    lru_.erase(frames_[idx].lru_it);
    map_.erase(it);
    frames_[idx].id = kInvalidPageId;
    ClearDirty(frames_[idx]);
    free_frames_.push_back(idx);
  }
  file_->Free(id);
}

void BufferPool::Pin(PageId id) {
  Frame& f = GetFrame(id, /*load_from_disk=*/true);
  if (f.pins == 0) ++pinned_frames_;
  ++f.pins;
}

void BufferPool::Unpin(PageId id) {
  auto it = map_.find(id);
  NNCELL_CHECK_MSG(it != map_.end(), "unpinning a non-resident page");
  Frame& f = frames_[it->second];
  NNCELL_CHECK_MSG(f.pins > 0, "double unpin");
  --f.pins;
  if (f.pins == 0) {
    NNCELL_CHECK(pinned_frames_ > 0);
    --pinned_frames_;
  }
}

void BufferPool::Flush() {
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      ++stats_.writebacks;
      file_->Write(f.id, f.bytes.data());
      ClearDirty(f);
    }
  }
}

void BufferPool::Invalidate() {
  NNCELL_CHECK_MSG(pinned_frames_ == 0, "Invalidate with pinned pages");
  for (Frame& f : frames_) {
    f.id = kInvalidPageId;
    ClearDirty(f);
  }
  lru_.clear();
  map_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) free_frames_.push_back(i);
}

void BufferPool::DropCache() {
  NNCELL_CHECK_MSG(pinned_frames_ == 0, "DropCache with pinned pages");
  Flush();
  for (Frame& f : frames_) f.id = kInvalidPageId;
  lru_.clear();
  map_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) free_frames_.push_back(i);
}

Status BufferPool::AuditPins(bool expect_unpinned) const {
  std::ostringstream err;

  // 1. The map and the frame table agree.
  for (const auto& [id, idx] : map_) {
    if (idx >= frames_.size()) {
      err << "map entry for page " << id << " points past the frame table";
      return Status::Internal(err.str());
    }
    if (frames_[idx].id != id) {
      err << "map says frame " << idx << " holds page " << id
          << " but the frame says " << frames_[idx].id;
      return Status::Internal(err.str());
    }
  }

  // 2. LRU list: no duplicates, every element resident and mapped.
  std::unordered_set<size_t> in_lru;
  for (size_t idx : lru_) {
    if (idx >= frames_.size()) {
      return Status::Internal("LRU references a frame past the table");
    }
    if (!in_lru.insert(idx).second) {
      err << "frame " << idx << " appears twice in the LRU list";
      return Status::Internal(err.str());
    }
    const Frame& f = frames_[idx];
    if (f.id == kInvalidPageId) {
      err << "LRU frame " << idx << " holds no page";
      return Status::Internal(err.str());
    }
    auto it = map_.find(f.id);
    if (it == map_.end() || it->second != idx) {
      err << "LRU frame " << idx << " (page " << f.id << ") not in the map";
      return Status::Internal(err.str());
    }
  }
  if (in_lru.size() != map_.size()) {
    err << "LRU size " << in_lru.size() << " != map size " << map_.size();
    return Status::Internal(err.str());
  }

  // 3. Free frames: empty, clean, unpinned, and disjoint from the LRU.
  std::unordered_set<size_t> in_free;
  for (size_t idx : free_frames_) {
    if (idx >= frames_.size()) {
      return Status::Internal("free list references a frame past the table");
    }
    if (!in_free.insert(idx).second) {
      err << "frame " << idx << " appears twice in the free list";
      return Status::Internal(err.str());
    }
    const Frame& f = frames_[idx];
    if (f.id != kInvalidPageId || f.dirty || f.pins != 0) {
      err << "free frame " << idx << " is not empty/clean/unpinned";
      return Status::Internal(err.str());
    }
    if (in_lru.count(idx) != 0) {
      err << "frame " << idx << " is both free and in the LRU";
      return Status::Internal(err.str());
    }
  }
  if (in_lru.size() + in_free.size() != frames_.size()) {
    err << "frames " << frames_.size() << " != LRU " << in_lru.size()
        << " + free " << in_free.size() << " (orphaned frame)";
    return Status::Internal(err.str());
  }

  // 4. Incremental counters match a recount.
  size_t pinned = 0, dirty = 0;
  for (const Frame& f : frames_) {
    if (f.pins > 0) ++pinned;
    if (f.dirty) ++dirty;
  }
  if (pinned != pinned_frames_) {
    err << "pinned-frame counter " << pinned_frames_ << " != recount "
        << pinned;
    return Status::Internal(err.str());
  }
  if (dirty != dirty_frames_) {
    err << "dirty-frame counter " << dirty_frames_ << " != recount " << dirty;
    return Status::Internal(err.str());
  }

  // 5. Pin leaks: at a quiescent point every Pin must have been Unpinned.
  if (expect_unpinned && pinned != 0) {
    err << pinned << " frame(s) still pinned at a quiescent point:";
    for (const Frame& f : frames_) {
      if (f.pins > 0) err << " page " << f.id << " (x" << f.pins << ")";
    }
    return Status::Internal(err.str());
  }
  return Status::OK();
}

}  // namespace nncell
