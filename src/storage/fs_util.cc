#include "storage/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace nncell {
namespace fs {

std::string ErrnoMessage(const std::string& what) {
  // strerror_r instead of strerror: the WAL and snapshot paths can fail on
  // several threads at once and must not share libc's static buffer. Handle
  // both the XSI (int) and GNU (char*) variants.
  char buf[128];
  buf[0] = '\0';
  const int err = errno;
#if defined(_GNU_SOURCE) || (defined(__GLIBC__) && defined(__USE_GNU))
  const char* msg = strerror_r(err, buf, sizeof(buf));
#else
  const char* msg = strerror_r(err, buf, sizeof(buf)) == 0 ? buf : "unknown";
#endif
  return what + ": " + msg;
}

namespace {

std::string Errno(const std::string& what) { return ErrnoMessage(what); }

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// RAII fd so every error path closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    int f = fd;
    fd = -1;
    return f;
  }
};

}  // namespace

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    if (IsDirectory(dir)) return Status::OK();
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }
  return Status::Internal(Errno("mkdir " + dir));
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (f.fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("open " + path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(f.fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("read " + path));
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

Status WriteAllFd(int fd, std::string_view bytes, const char* fp_name) {
  failpoint::Action fault = failpoint::Check(fp_name);
  if (fault == failpoint::Action::kError) {
    return Status::Internal(std::string(fp_name) + ": injected write error");
  }
  size_t limit = bytes.size();
  if (fault != failpoint::Action::kOff) limit = bytes.size() / 2;

  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write"));
    }
    written += static_cast<size_t>(n);
  }
  if (fault == failpoint::Action::kCrash) failpoint::Crash();
  if (fault == failpoint::Action::kShortWrite) {
    return Status::Internal(std::string(fp_name) + ": injected short write (" +
                            std::to_string(limit) + " of " +
                            std::to_string(bytes.size()) + " bytes)");
  }
  return Status::OK();
}

Status FsyncFd(int fd, const char* fp_name) {
  failpoint::Action fault = failpoint::Check(fp_name);
  if (fault == failpoint::Action::kCrash) failpoint::Crash();
  if (fault != failpoint::Action::kOff) {
    return Status::Internal(std::string(fp_name) + ": injected fsync failure");
  }
  if (::fsync(fd) != 0) return Status::Internal(Errno("fsync"));
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (f.fd < 0) return Status::Internal(Errno("open " + tmp));
    NNCELL_RETURN_IF_ERROR(WriteAllFd(f.fd, bytes, "fs.atomic_write.data"));
    NNCELL_RETURN_IF_ERROR(FsyncFd(f.fd, "fs.atomic_write.fsync"));
    if (::close(f.release()) != 0) {
      return Status::Internal(Errno("close " + tmp));
    }
  }

  if (failpoint::Check("fs.atomic_write.rename") == failpoint::Action::kCrash) {
    failpoint::Crash();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(Errno("rename " + tmp + " -> " + path));
  }
  if (failpoint::Check("fs.atomic_write.done") == failpoint::Action::kCrash) {
    failpoint::Crash();
  }

  // Make the rename itself durable.
  Fd dir;
  dir.fd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir.fd < 0) return Status::Internal(Errno("open dir of " + path));
  if (::fsync(dir.fd) != 0) return Status::Internal(Errno("fsync dir"));
  return Status::OK();
}

}  // namespace fs
}  // namespace nncell
