#ifndef NNCELL_STORAGE_BUFFER_POOL_H_
#define NNCELL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace nncell {

struct BufferStats {
  uint64_t logical_reads = 0;   // Fetch calls
  uint64_t physical_reads = 0;  // cache misses -> disk reads
  uint64_t writebacks = 0;      // dirty evictions / flushes

  void Reset() { logical_reads = physical_reads = writebacks = 0; }
};

// LRU page cache over a PageFile. Single-threaded by design (the paper's
// experiments are sequential); pointers returned by Fetch are valid until
// the next pool call. This is "the same amount of cache" every index
// structure is allowed in the paper's evaluation.
class BufferPool {
 public:
  BufferPool(PageFile* file, size_t capacity_pages);

  size_t page_size() const { return file_->page_size(); }
  size_t capacity() const { return capacity_; }
  PageFile* file() const { return file_; }

  // Read access to a page's bytes (through the cache).
  const uint8_t* Fetch(PageId id);

  // Write access; marks the page dirty. The frame contents are written
  // back to the PageFile on eviction or Flush.
  uint8_t* FetchMutable(PageId id);

  // Allocates a fresh page and returns its id; the zeroed frame is cached
  // and dirty.
  PageId AllocatePage();
  PageId AllocateRun(size_t count);

  // Frees a page; drops its frame without write-back.
  void FreePage(PageId id);

  // Writes all dirty frames back.
  void Flush();

  // Flush + drop every frame: simulates a cold cache (used before queries
  // so that page-access counts match the paper's cold measurements).
  void DropCache();

  // Drops every frame WITHOUT write-back. Only for invalidating the cache
  // after the underlying PageFile was replaced wholesale (persistence).
  void Invalidate();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    PageId id = kInvalidPageId;
    bool dirty = false;
    std::list<size_t>::iterator lru_it;
  };

  Frame& GetFrame(PageId id, bool load_from_disk);
  void Touch(size_t frame_idx);
  size_t EvictOne();

  PageFile* file_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<PageId, size_t> map_;
  std::vector<size_t> free_frames_;
  BufferStats stats_;
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_BUFFER_POOL_H_
