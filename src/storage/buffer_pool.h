#ifndef NNCELL_STORAGE_BUFFER_POOL_H_
#define NNCELL_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page_file.h"

namespace nncell {

// Aggregated access counters (a point-in-time snapshot; see stats()).
struct BufferStats {
  uint64_t logical_reads = 0;   // Fetch calls
  uint64_t physical_reads = 0;  // cache misses -> disk reads
  uint64_t writebacks = 0;      // dirty evictions / flushes

  void Reset() { logical_reads = physical_reads = writebacks = 0; }
};

// LRU page cache over a PageFile, safe for N concurrent readers. The frame
// table is split into shards (pages hash to a shard by id, each shard has
// its own mutex, LRU list and slice of the capacity), so concurrent
// fetches of different pages rarely contend. This is still "the same
// amount of cache" every index structure is allowed in the paper's
// evaluation: the shard capacities sum to `capacity_pages`. Small pools
// (below kShardThreshold pages) use a single shard and behave exactly like
// the classic single-threaded LRU cache.
//
// Threading contract:
//  * Any number of threads may call Fetch / Pin / Unpin concurrently.
//  * Mutations (FetchMutable, Allocate*, FreePage, Flush, DropCache,
//    Invalidate) require exclusive access: one writer, no readers. The
//    tree layer enforces this (builds commit single-threaded; queries are
//    read-only).
//  * A pointer returned by Fetch is guaranteed stable only while the
//    caller holds a pin on the page; unpinned frames may be evicted and
//    recycled by any other thread's miss.
//
// Pinning: Pin(id) keeps the page resident (its frame is never evicted and
// its bytes never move) until the matching Unpin(id). Pins nest; the count
// lives in the frame itself and is manipulated under the shard mutex. The
// node store pins a node's pages while scanning it so the zero-copy
// EntryView cursors stay valid even while sibling readers fault pages in
// and out of the same shard. Unpinning a page that is not pinned, or
// freeing/dropping a pinned page, is a programming error and aborts.
// AuditPins() is the quiescent-point validator: it locks every shard and
// cross-checks the frame tables, LRU lists, free lists, pin counts and
// dirty accounting.
class BufferPool {
 public:
  BufferPool(PageFile* file, size_t capacity_pages);

  size_t page_size() const { return file_->page_size(); }
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  PageFile* file() const { return file_; }

  // Read access to a page's bytes (through the cache). See the threading
  // contract above for pointer stability.
  const uint8_t* Fetch(PageId id);

  // Write access; marks the page dirty. The frame contents are written
  // back to the PageFile on eviction or Flush. Writer-exclusive.
  uint8_t* FetchMutable(PageId id);

  // Allocates a fresh page and returns its id; the zeroed frame is cached
  // and dirty. Writer-exclusive.
  PageId AllocatePage();
  PageId AllocateRun(size_t count);

  // Frees a page; drops its frame without write-back. The page must not be
  // pinned. Writer-exclusive.
  void FreePage(PageId id);

  // Keeps the page resident (loading it if necessary) until Unpin. Pins
  // nest; every Pin needs a matching Unpin.
  void Pin(PageId id);

  // Releases one pin. Aborts when the page is not resident or not pinned
  // (double-unpin detection).
  void Unpin(PageId id);

  // Number of currently pinned frames (not pin nesting depth), summed over
  // the shards.
  size_t pinned_frames() const;
  // Number of dirty frames, maintained incrementally per shard (audited
  // against a recount by AuditPins).
  size_t dirty_frames() const;

  // Writes all dirty frames back. Writer-exclusive.
  void Flush();

  // Flush + drop every frame: simulates a cold cache (used before queries
  // so that page-access counts match the paper's cold measurements).
  // Requires that no page is pinned. Writer-exclusive.
  void DropCache();

  // Drops every frame WITHOUT write-back. Only for invalidating the cache
  // after the underlying PageFile was replaced wholesale (persistence).
  // Requires that no page is pinned. Writer-exclusive.
  void Invalidate();

  // Quiescent-point self-check. Verifies per shard that the frame map,
  // LRU list and free-frame list exactly partition the frame table, that
  // the incremental pin/dirty counters match a recount, and (when
  // `expect_unpinned`, the default) that every pin has been released --
  // i.e. no pin leaks. Returns OK or a description of the first violation.
  Status AuditPins(bool expect_unpinned = true) const;

  // Aggregated over the shards. The per-shard counters are relaxed
  // atomics, so this is safe to call from any thread while queries are in
  // flight (the metrics registry and QueryTrace read it mid-query); the
  // result is a consistent-enough point-in-time sum, exact at quiescent
  // points.
  BufferStats stats() const;
  void ResetStats();

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    PageId id = kInvalidPageId;
    bool dirty = false;
    uint32_t pins = 0;
    std::list<size_t>::iterator lru_it;
  };

  // Shard access counters. Increments happen under the shard mutex (they
  // accompany structural changes anyway), but they are atomics so the
  // stats read path -- which may run mid-query, e.g. from a QueryTrace or
  // a metrics snapshot -- can sum them without taking the shard locks.
  struct ShardStats {
    std::atomic<uint64_t> logical_reads{0};
    std::atomic<uint64_t> physical_reads{0};
    std::atomic<uint64_t> writebacks{0};
  };

  struct Shard {
    mutable Mutex mu;
    size_t capacity = 0;  // fixed at construction, read-only afterwards
    std::vector<Frame> frames NNCELL_GUARDED_BY(mu);
    std::list<size_t> lru NNCELL_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<PageId, size_t> map NNCELL_GUARDED_BY(mu);
    std::vector<size_t> free_frames NNCELL_GUARDED_BY(mu);
    size_t pinned_frames NNCELL_GUARDED_BY(mu) = 0;
    size_t dirty_frames NNCELL_GUARDED_BY(mu) = 0;
    ShardStats stats;  // relaxed atomics: lock-free reads by stats()
  };

  // Pools smaller than this stay single-sharded (exact classic LRU
  // semantics for the fine-grained unit tests and tiny ad-hoc caches).
  static constexpr size_t kShardThreshold = 64;
  static constexpr size_t kMaxShards = 16;

  Shard& ShardOf(PageId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  // All helpers below require shard.mu to be held by the caller.
  Frame& GetFrame(Shard& shard, PageId id, bool load_from_disk)
      NNCELL_REQUIRES(shard.mu);
  void Touch(Shard& shard, size_t frame_idx) NNCELL_REQUIRES(shard.mu);
  size_t EvictOne(Shard& shard) NNCELL_REQUIRES(shard.mu);
  void MarkDirty(Shard& shard, Frame& f) NNCELL_REQUIRES(shard.mu) {
    if (!f.dirty) {
      f.dirty = true;
      ++shard.dirty_frames;
    }
  }
  void ClearDirty(Shard& shard, Frame& f) NNCELL_REQUIRES(shard.mu) {
    if (f.dirty) {
      f.dirty = false;
      NNCELL_CHECK(shard.dirty_frames > 0);
      --shard.dirty_frames;
    }
  }

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// RAII pin: pins `id` on construction, unpins on destruction. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
    pool_->Pin(id_);
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_), id_(other.id_) {
    other.pool_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      id_ = other.id_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(id_);
      pool_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_BUFFER_POOL_H_
