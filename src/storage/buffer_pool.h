#ifndef NNCELL_STORAGE_BUFFER_POOL_H_
#define NNCELL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace nncell {

struct BufferStats {
  uint64_t logical_reads = 0;   // Fetch calls
  uint64_t physical_reads = 0;  // cache misses -> disk reads
  uint64_t writebacks = 0;      // dirty evictions / flushes

  void Reset() { logical_reads = physical_reads = writebacks = 0; }
};

// LRU page cache over a PageFile. Single-threaded by design (the paper's
// experiments are sequential); pointers returned by Fetch are valid until
// the next pool call, unless the page is pinned. This is "the same amount
// of cache" every index structure is allowed in the paper's evaluation.
//
// Pinning: Pin(id) keeps the page resident (its frame is never evicted and
// its bytes never move) until the matching Unpin(id). Pins nest. The node
// store pins a node's first page while scanning it so the zero-copy
// EntryView cursors stay valid even if a callback touches the pool, and
// future concurrent readers will rely on the same discipline. Unpinning a
// page that is not pinned, or freeing/dropping a pinned page, is a
// programming error and aborts. AuditPins() is the quiescent-point
// validator: it cross-checks the frame table, LRU list, free list, pin
// counts and dirty accounting.
class BufferPool {
 public:
  BufferPool(PageFile* file, size_t capacity_pages);

  size_t page_size() const { return file_->page_size(); }
  size_t capacity() const { return capacity_; }
  PageFile* file() const { return file_; }

  // Read access to a page's bytes (through the cache).
  const uint8_t* Fetch(PageId id);

  // Write access; marks the page dirty. The frame contents are written
  // back to the PageFile on eviction or Flush.
  uint8_t* FetchMutable(PageId id);

  // Allocates a fresh page and returns its id; the zeroed frame is cached
  // and dirty.
  PageId AllocatePage();
  PageId AllocateRun(size_t count);

  // Frees a page; drops its frame without write-back. The page must not be
  // pinned.
  void FreePage(PageId id);

  // Keeps the page resident (loading it if necessary) until Unpin. Pins
  // nest; every Pin needs a matching Unpin.
  void Pin(PageId id);

  // Releases one pin. Aborts when the page is not resident or not pinned
  // (double-unpin detection).
  void Unpin(PageId id);

  // Number of currently pinned frames (not pin nesting depth).
  size_t pinned_frames() const { return pinned_frames_; }
  // Number of dirty frames, maintained incrementally (audited against a
  // recount by AuditPins).
  size_t dirty_frames() const { return dirty_frames_; }

  // Writes all dirty frames back.
  void Flush();

  // Flush + drop every frame: simulates a cold cache (used before queries
  // so that page-access counts match the paper's cold measurements).
  // Requires that no page is pinned.
  void DropCache();

  // Drops every frame WITHOUT write-back. Only for invalidating the cache
  // after the underlying PageFile was replaced wholesale (persistence).
  // Requires that no page is pinned.
  void Invalidate();

  // Quiescent-point self-check. Verifies that the frame map, LRU list and
  // free-frame list exactly partition the frame table, that the
  // incremental pin/dirty counters match a recount, and (when
  // `expect_unpinned`, the default) that every pin has been released --
  // i.e. no pin leaks. Returns OK or a description of the first violation.
  Status AuditPins(bool expect_unpinned = true) const;

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    PageId id = kInvalidPageId;
    bool dirty = false;
    uint32_t pins = 0;
    std::list<size_t>::iterator lru_it;
  };

  Frame& GetFrame(PageId id, bool load_from_disk);
  void Touch(size_t frame_idx);
  size_t EvictOne();
  void MarkDirty(Frame& f) {
    if (!f.dirty) {
      f.dirty = true;
      ++dirty_frames_;
    }
  }
  void ClearDirty(Frame& f) {
    if (f.dirty) {
      f.dirty = false;
      NNCELL_CHECK(dirty_frames_ > 0);
      --dirty_frames_;
    }
  }

  PageFile* file_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<PageId, size_t> map_;
  std::vector<size_t> free_frames_;
  size_t pinned_frames_ = 0;
  size_t dirty_frames_ = 0;
  BufferStats stats_;
};

// RAII pin: pins `id` on construction, unpins on destruction. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
    pool_->Pin(id_);
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_), id_(other.id_) {
    other.pool_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      id_ = other.id_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(id_);
      pool_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_BUFFER_POOL_H_
