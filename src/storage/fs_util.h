#ifndef NNCELL_STORAGE_FS_UTIL_H_
#define NNCELL_STORAGE_FS_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace nncell {
namespace fs {

// POSIX file helpers for the durability layer. All fallible operations
// return Status; the write paths carry the failpoints the crash matrix
// injects into (names below; semantics in common/failpoint.h).

// "`what`: <strerror(errno)>", via strerror_r so concurrent error paths
// never share libc's static buffer (WAL appends from several threads can
// fail at once).
std::string ErrnoMessage(const std::string& what);

bool PathExists(const std::string& path);
bool IsDirectory(const std::string& path);

// Creates `dir` (one level) if it does not exist.
Status EnsureDirectory(const std::string& dir);

StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes `bytes` into fd at the current offset, looping over partial
// writes. `fp_name` is the failpoint evaluated before the write: kError
// fails before writing, kShortWrite writes half then fails, kCrash writes
// half then _exit()s (the torn write a crash leaves behind).
Status WriteAllFd(int fd, std::string_view bytes, const char* fp_name);

// fsyncs fd; evaluates failpoint `fp_name` first (kError/kShortWrite fail
// without syncing, kCrash exits).
Status FsyncFd(int fd, const char* fp_name);

// Durably replaces `path` with `bytes`: write to `path + ".tmp"`, fsync,
// rename over `path`, fsync the parent directory. On any error the
// destination is untouched (the temp file may remain and is overwritten by
// the next attempt). Failpoints, in order of evaluation:
//   fs.atomic_write.data    -- during the temp-file data write
//   fs.atomic_write.fsync   -- before fsyncing the temp file
//   fs.atomic_write.rename  -- before the rename (temp complete, target old)
//   fs.atomic_write.done    -- after the rename, before the directory fsync
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace fs
}  // namespace nncell

#endif  // NNCELL_STORAGE_FS_UTIL_H_
