#ifndef NNCELL_STORAGE_WAL_H_
#define NNCELL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace nncell {

// Append-only write-ahead log with checksummed, length-prefixed records
// and monotonically increasing LSNs (docs/PERSISTENCE.md for the byte
// layout). The payload is opaque here; NNCellIndex logs insert/delete
// operations through nncell/wal_records.h.
//
// Durability contract: a record is durable once the Append that wrote it
// (or a later Sync) returned OK under group_sync = 1; with group_sync = N
// only every N-th append syncs, trading the tail of acknowledged records
// against fsync cost. Open() scans an existing log, truncates a torn
// final record (the expected artifact of a crash mid-append), and fails
// with a precise Status on corruption. The two are separated soundly by
// the per-record header CRC: a crash leaves a prefix of one append, so a
// tail holding a full record header holds an authentic one -- anything
// that fails a checksum is corruption and is never silently truncated.
//
// Any write or sync failure poisons the log: every later Append/Sync
// fails immediately, because the file offset after a partial write is
// unknown. The owner must recover by reopening (which re-scans and
// truncates) -- matching how the durable index surfaces I/O faults.
//
// Thread safety: Append / Sync / last_lsn / healthy may be called from
// several threads at once; one internal mutex serializes the append and
// group-sync path (LSN assignment, the write, and the sync decision are
// one critical section, so records hit the file in LSN order). Truncate
// still requires external exclusion from concurrent appenders -- it
// replaces the file wholesale, which cannot be meaningfully interleaved
// with appends the checkpoint has not folded in.
class WriteAheadLog {
 public:
  struct Record {
    uint64_t lsn = 0;
    std::vector<uint8_t> payload;
  };

  struct RecoverResult {
    std::vector<Record> records;  // valid records, in LSN order
    uint64_t start_lsn = 0;       // header base: records begin at start+1
    uint64_t torn_bytes = 0;      // torn tail truncated from the file
    bool created = false;         // no (usable) log existed
  };

  // Opens `path`, scanning and repairing an existing log, or creates an
  // empty one with base LSN `create_start_lsn`. With `strict_header`
  // false, a log too short to hold a header is recreated empty (the crash
  // window of the very first creation); with true it is an error (a log
  // that once held acknowledged records must parse). `group_sync` >= 1 is
  // the group-commit granularity.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, uint64_t create_start_lsn, size_t group_sync,
      bool strict_header, RecoverResult* recovered);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one record (assigning the next LSN) and syncs per the group
  // policy. On OK with group_sync = 1 the record is durable.
  Status Append(std::string_view payload);

  // Forces any unsynced appends to disk.
  Status Sync();

  // Atomically replaces the log with an empty one whose base LSN is
  // `new_start_lsn` (checkpoint fold: everything <= new_start_lsn is now
  // covered by the snapshot). Uses the same temp+rename+dir-fsync protocol
  // as snapshot writes.
  Status Truncate(uint64_t new_start_lsn);

  // LSN of the last appended (or recovered) record; records created by the
  // next Append get last_lsn() + 1.
  uint64_t last_lsn() const {
    MutexLock lock(mu_);
    return next_lsn_ - 1;
  }
  const std::string& path() const { return path_; }
  bool healthy() const {
    MutexLock lock(mu_);
    return healthy_;
  }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t next_lsn,
                size_t group_sync);

  // Sync body shared by Append's group-commit tail and the public Sync().
  Status SyncLocked() NNCELL_REQUIRES(mu_);

  const std::string path_;
  const size_t group_sync_;
  mutable Mutex mu_;  // serializes the append / group-sync critical section
  int fd_ NNCELL_GUARDED_BY(mu_);
  uint64_t next_lsn_ NNCELL_GUARDED_BY(mu_);
  size_t unsynced_ NNCELL_GUARDED_BY(mu_) = 0;
  bool healthy_ NNCELL_GUARDED_BY(mu_) = true;
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_WAL_H_
