#ifndef NNCELL_STORAGE_DURABLE_FORMAT_H_
#define NNCELL_STORAGE_DURABLE_FORMAT_H_

#include <cstddef>
#include <cstdint>

// Single source of truth for every constant of the on-disk formats: the
// checksummed snapshot image, the standalone page-file image, and the
// write-ahead log. docs/PERSISTENCE.md documents the byte-level layouts,
// and tools/check_docs_links.sh cross-checks every constant name and value
// in this header against that document in both directions, so the format
// documentation cannot drift from the code.
//
// Magic values spell an ASCII tag when the u64 is read big-endian
// (on-disk, little-endian, the bytes appear reversed).

namespace nncell {
namespace durable {

// --- snapshot image (NNCellIndex::Save / Load / Checkpoint) --------------
inline constexpr uint64_t kSnapshotMagic = 0x4e4e43454c534e32ULL;  // "NNCELSN2"
inline constexpr uint64_t kSnapshotFooterMagic = 0x4e4e43454c465432ULL;  // "NNCELFT2"
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr size_t kSnapshotHeaderBytes = 64;
inline constexpr size_t kSnapshotFooterBytes = 24;

// --- standalone page-file image (PageFile::SaveTo / LoadFrom) ------------
inline constexpr uint64_t kPageImageMagic = 0x4e4e43454c504632ULL;  // "NNCELPF2"
inline constexpr uint32_t kPageImageVersion = 2;

// --- write-ahead log ------------------------------------------------------
inline constexpr uint64_t kWalMagic = 0x4e4e43454c574c31ULL;  // "NNCELWL1"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 24;
inline constexpr size_t kWalRecordHeaderBytes = 20;
// Sanity bound on one record's payload; a parsed length above this is
// corruption, not a huge record.
inline constexpr uint32_t kWalMaxPayload = 16777216;

// WAL record payload op codes (first payload byte).
inline constexpr uint8_t kWalOpInsert = 1;
inline constexpr uint8_t kWalOpDelete = 2;

// File names inside a durable index directory (NNCellIndex::Open).
inline constexpr char kSnapshotFileName[] = "snapshot.nncell";
inline constexpr char kWalFileName[] = "wal.log";

}  // namespace durable
}  // namespace nncell

#endif  // NNCELL_STORAGE_DURABLE_FORMAT_H_
