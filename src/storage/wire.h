#ifndef NNCELL_STORAGE_WIRE_H_
#define NNCELL_STORAGE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace nncell {
namespace wire {

// Little-endian append helpers and a bounds-checked reader for the on-disk
// formats (snapshot, page image, WAL; docs/PERSISTENCE.md). Unlike
// storage/byte_io.h -- whose cursors CHECK-abort, correct for trusted
// in-memory pages -- the Reader here reports overruns as a sticky failure
// bit, because its input is an untrusted file.
//
// All integers are stored little-endian; the memcpy encoding below is
// byte-order-correct only on little-endian hosts, which is the only
// platform the repo targets (static_assert in wire.h's single user would
// be overkill; every format test round-trips through these helpers).

template <typename T>
inline void PutRaw(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

inline void PutU8(std::string* out, uint8_t v) { PutRaw(out, v); }
inline void PutU32(std::string* out, uint32_t v) { PutRaw(out, v); }
inline void PutU64(std::string* out, uint64_t v) { PutRaw(out, v); }
inline void PutF64(std::string* out, double v) { PutRaw(out, v); }
inline void PutBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool GetBytes(void* out, size_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return GetBytes(out, sizeof(T));
  }

  bool GetU8(uint8_t* v) { return Get(v); }
  bool GetU32(uint32_t* v) { return Get(v); }
  bool GetU64(uint64_t* v) { return Get(v); }
  bool GetF64(double* v) { return Get(v); }

  bool Skip(size_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }

  // Current read position / window (for spans checksummed as a unit).
  const uint8_t* cur() const { return data_ + pos_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool failed() const { return failed_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace wire
}  // namespace nncell

#endif  // NNCELL_STORAGE_WIRE_H_
