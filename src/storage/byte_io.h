#ifndef NNCELL_STORAGE_BYTE_IO_H_
#define NNCELL_STORAGE_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace nncell {

// Little bounded byte cursors used to serialize tree nodes into pages.
// All reads/writes are bounds-checked; overruns are programming errors.

class ByteWriter {
 public:
  ByteWriter(uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    NNCELL_CHECK(pos_ + sizeof(T) <= size_);
    std::memcpy(data_ + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  void PutDoubles(const double* values, size_t count) {
    NNCELL_CHECK(pos_ + count * sizeof(double) <= size_);
    std::memcpy(data_ + pos_, values, count * sizeof(double));
    pos_ += count * sizeof(double);
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    NNCELL_CHECK(pos_ + sizeof(T) <= size_);
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void GetDoubles(double* out, size_t count) {
    NNCELL_CHECK(pos_ + count * sizeof(double) <= size_);
    std::memcpy(out, data_ + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_BYTE_IO_H_
