#ifndef NNCELL_STORAGE_PAGE_FILE_H_
#define NNCELL_STORAGE_PAGE_FILE_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace nncell {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

// Simulated secondary storage: a flat array of fixed-size pages plus
// disk-access counters. The paper's evaluation is in page accesses, so
// every Read/Write here is one "disk I/O"; the BufferPool in front of this
// class models the main-memory cache all competing index structures get.
class PageFile {
 public:
  explicit PageFile(size_t page_size = 4096) : page_size_(page_size) {
    NNCELL_CHECK(page_size >= 64);
  }

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size() / page_size_; }

  // Allocates one zeroed page and returns its id. Reuses freed pages;
  // otherwise ids are consecutive (supernodes rely on contiguous ranges
  // from AllocateRun).
  PageId Allocate();

  // Allocates `count` consecutive pages, returns the first id.
  PageId AllocateRun(size_t count);

  // Returns a page to the free list.
  void Free(PageId id);

  // Free-list introspection for the structural validators: the number of
  // freed (reallocatable) pages, and the freed ids themselves. A correct
  // client structure owning this file reaches exactly the pages that are
  // allocated and not on the free list -- anything else is an orphan.
  size_t num_free_pages() const { return free_list_.size(); }
  const std::vector<PageId>& free_pages() const { return free_list_; }

  // Read/Write may be called from several threads at once (the sharded
  // BufferPool issues cache misses concurrently) as long as the page set
  // itself is not being allocated or freed at the same time; the access
  // counters are guarded by an internal mutex.
  void Read(PageId id, uint8_t* out);
  void Write(PageId id, const uint8_t* data);

  uint64_t disk_reads() const {
    MutexLock lock(stats_mu_);
    return disk_reads_;
  }
  uint64_t disk_writes() const {
    MutexLock lock(stats_mu_);
    return disk_writes_;
  }
  void ResetStats() {
    MutexLock lock(stats_mu_);
    disk_reads_ = disk_writes_ = 0;
    std::fill(per_disk_reads_.begin(), per_disk_reads_.end(), uint64_t{0});
  }

  // Declustering simulation [Ber+ 97]: pages are distributed round-robin
  // over `disks` independent devices. MaxDiskReads() is the depth of the
  // parallel read schedule since the last ResetStats() -- with D disks the
  // parallel I/O time of a query is the maximum per-disk read count, not
  // the sum. disks = 1 (default) models a single device.
  void SetDeclustering(size_t disks);
  size_t disks() const {
    MutexLock lock(stats_mu_);
    return per_disk_reads_.size();
  }
  uint64_t MaxDiskReads() const;

  // Persistence (format v2, docs/PERSISTENCE.md): the page image and free
  // list as a checksummed section -- CRC32C'd section header and free
  // list, one CRC32C per page. AppendSection emits the section bytes;
  // ParseSection consumes one section from data[*pos..size), advancing
  // *pos. Parsing is all-or-nothing: on any error (truncation, checksum
  // mismatch, size mismatch, corrupt free list) the file is left exactly
  // as it was and a precise Status describes the first violation.
  void AppendSection(std::string* out) const;
  Status ParseSection(const uint8_t* data, size_t size, size_t* pos);

  // Standalone image: a magic/version/CRC envelope around one section.
  // LoadFrom consumes the whole stream, validates everything, and only
  // then replaces the current image (page size must match; any BufferPool
  // on top must be Invalidate()d afterwards). Failure leaves the file
  // untouched.
  Status SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);

  // Exchanges page image and free list with `other` (page sizes may
  // differ); access counters stay put. Used to commit a fully validated
  // parse in one step.
  void Swap(PageFile& other);

 private:
  uint8_t* PagePtr(PageId id) {
    NNCELL_CHECK(static_cast<size_t>(id) < num_pages());
    return pages_.data() + static_cast<size_t>(id) * page_size_;
  }

  size_t page_size_;
  std::vector<uint8_t> pages_;      // writer-exclusive (threading contract)
  std::vector<PageId> free_list_;   // writer-exclusive (threading contract)
  mutable Mutex stats_mu_;  // guards the access counters below
  uint64_t disk_reads_ NNCELL_GUARDED_BY(stats_mu_) = 0;
  uint64_t disk_writes_ NNCELL_GUARDED_BY(stats_mu_) = 0;
  std::vector<uint64_t> per_disk_reads_ NNCELL_GUARDED_BY(stats_mu_) = {0};
};

}  // namespace nncell

#endif  // NNCELL_STORAGE_PAGE_FILE_H_
