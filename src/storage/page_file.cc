#include "storage/page_file.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "storage/durable_format.h"
#include "storage/wire.h"

namespace nncell {

namespace {

// Registry handles for the simulated-disk syscall/byte counters,
// aggregated over every PageFile in the process.
struct FileMetrics {
  metrics::Counter* read_pages;
  metrics::Counter* write_pages;
  metrics::Counter* read_bytes;
  metrics::Counter* write_bytes;
};

[[maybe_unused]] const FileMetrics& Metrics() {
  static const FileMetrics m = {
      metrics::Registry::Global().counter(metrics::kFileReadPages),
      metrics::Registry::Global().counter(metrics::kFileWritePages),
      metrics::Registry::Global().counter(metrics::kFileReadBytes),
      metrics::Registry::Global().counter(metrics::kFileWriteBytes),
  };
  return m;
}

}  // namespace

PageId PageFile::Allocate() {
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(PagePtr(id), 0, page_size_);
    return id;
  }
  PageId id = static_cast<PageId>(num_pages());
  pages_.resize(pages_.size() + page_size_, 0);
  return id;
}

PageId PageFile::AllocateRun(size_t count) {
  NNCELL_CHECK(count >= 1);
  // Runs always come from the end of the file so they are contiguous.
  PageId first = static_cast<PageId>(num_pages());
  pages_.resize(pages_.size() + count * page_size_, 0);
  return first;
}

void PageFile::Free(PageId id) {
  NNCELL_CHECK(static_cast<size_t>(id) < num_pages());
  free_list_.push_back(id);
}

void PageFile::Read(PageId id, uint8_t* out) {
  {
    MutexLock lock(stats_mu_);
    ++disk_reads_;
    ++per_disk_reads_[id % per_disk_reads_.size()];
  }
  NNCELL_METRIC_COUNT(Metrics().read_pages, 1);
  NNCELL_METRIC_COUNT(Metrics().read_bytes, page_size_);
  // The page bytes themselves are read without the lock: concurrent reads
  // of (distinct or identical) pages are safe, and allocation/free only
  // happens in exclusive-writer phases.
  std::memcpy(out, PagePtr(id), page_size_);
}

void PageFile::SetDeclustering(size_t disks) {
  NNCELL_CHECK(disks >= 1);
  MutexLock lock(stats_mu_);
  per_disk_reads_.assign(disks, 0);
}

uint64_t PageFile::MaxDiskReads() const {
  MutexLock lock(stats_mu_);
  uint64_t worst = 0;
  for (uint64_t v : per_disk_reads_) worst = std::max(worst, v);
  return worst;
}

void PageFile::Write(PageId id, const uint8_t* data) {  // writes not declustered (build-time)
  {
    MutexLock lock(stats_mu_);
    ++disk_writes_;
  }
  NNCELL_METRIC_COUNT(Metrics().write_pages, 1);
  NNCELL_METRIC_COUNT(Metrics().write_bytes, page_size_);
  std::memcpy(PagePtr(id), data, page_size_);
}

void PageFile::Swap(PageFile& other) {
  std::swap(page_size_, other.page_size_);
  pages_.swap(other.pages_);
  free_list_.swap(other.free_list_);
}

// Section layout (docs/PERSISTENCE.md):
//   u64 page_size, u64 num_pages, u64 free_count, u32 header_crc
//   free_count x u32 free page ids, u32 free_crc
//   num_pages x [page bytes, u32 page_crc]
void PageFile::AppendSection(std::string* out) const {
  std::string header;
  wire::PutU64(&header, page_size_);
  wire::PutU64(&header, num_pages());
  wire::PutU64(&header, free_list_.size());
  wire::PutU32(&header, Crc32c(header.data(), header.size()));
  out->append(header);

  std::string free_bytes;
  for (PageId id : free_list_) wire::PutU32(&free_bytes, id);
  out->append(free_bytes);
  wire::PutU32(out, Crc32c(free_bytes.data(), free_bytes.size()));

  for (size_t p = 0; p < num_pages(); ++p) {
    const uint8_t* page = pages_.data() + p * page_size_;
    wire::PutBytes(out, page, page_size_);
    wire::PutU32(out, Crc32c(page, page_size_));
  }
}

Status PageFile::ParseSection(const uint8_t* data, size_t size, size_t* pos) {
  wire::Reader r(data + *pos, size - *pos);
  uint64_t page_size = 0, pages = 0, free_count = 0;
  const uint8_t* header_start = r.cur();
  uint32_t header_crc = 0;
  if (!r.GetU64(&page_size) || !r.GetU64(&pages) || !r.GetU64(&free_count) ||
      !r.GetU32(&header_crc)) {
    return Status::InvalidArgument("page image section truncated (header)");
  }
  if (Crc32c(header_start, 24) != header_crc) {
    return Status::InvalidArgument(
        "page image section header checksum mismatch");
  }
  if (page_size != page_size_) {
    return Status::InvalidArgument(
        "page size mismatch: image has " + std::to_string(page_size) +
        ", file expects " + std::to_string(page_size_));
  }
  if (pages > 0xffffffffULL) {  // PageIds are u32; also bounds `need` below
    return Status::InvalidArgument("corrupt page image: page count " +
                                   std::to_string(pages) + " implausible");
  }
  if (free_count > pages) {
    return Status::InvalidArgument(
        "corrupt page image: free count " + std::to_string(free_count) +
        " exceeds page count " + std::to_string(pages));
  }
  const uint64_t need = free_count * 4 + 4 + pages * (page_size + 4);
  if (r.remaining() < need) {
    return Status::InvalidArgument(
        "page image truncated: section needs " + std::to_string(need) +
        " more bytes, stream has " + std::to_string(r.remaining()));
  }

  std::vector<PageId> free_list(free_count);
  const uint8_t* free_start = r.cur();
  for (uint64_t i = 0; i < free_count; ++i) {
    uint32_t id = 0;
    r.GetU32(&id);
    if (id >= pages) {
      return Status::InvalidArgument(
          "corrupt page image: free page id " + std::to_string(id) +
          " out of range");
    }
    free_list[i] = id;
  }
  uint32_t free_crc = 0;
  r.GetU32(&free_crc);
  if (Crc32c(free_start, free_count * 4) != free_crc) {
    return Status::InvalidArgument("page image free-list checksum mismatch");
  }

  std::vector<uint8_t> image(pages * page_size);
  for (uint64_t p = 0; p < pages; ++p) {
    uint8_t* dst = image.data() + p * page_size;
    uint32_t page_crc = 0;
    r.GetBytes(dst, page_size);
    r.GetU32(&page_crc);
    if (Crc32c(dst, page_size) != page_crc) {
      return Status::InvalidArgument("page " + std::to_string(p) +
                                     " checksum mismatch");
    }
  }
  NNCELL_CHECK(!r.failed());  // sizes were pre-validated against `need`

  // Fully validated: commit in one step.
  pages_ = std::move(image);
  free_list_ = std::move(free_list);
  *pos += r.pos();
  return Status::OK();
}

Status PageFile::SaveTo(std::ostream& out) const {
  std::string buf;
  wire::PutU64(&buf, durable::kPageImageMagic);
  wire::PutU32(&buf, durable::kPageImageVersion);
  wire::PutU32(&buf, Crc32c(buf.data(), buf.size()));
  AppendSection(&buf);
  wire::PutU32(&buf, Crc32c(buf.data(), buf.size()));  // whole-image crc
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out.good()) return Status::Internal("page file write failed");
  return Status::OK();
}

Status PageFile::LoadFrom(std::istream& in) {
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  wire::Reader r(bytes, data.size());
  uint64_t magic = 0;
  uint32_t version = 0, header_crc = 0;
  if (!r.GetU64(&magic) || !r.GetU32(&version) || !r.GetU32(&header_crc)) {
    return Status::InvalidArgument("page file image truncated (envelope)");
  }
  if (magic != durable::kPageImageMagic) {
    return Status::InvalidArgument("not a page file image (bad magic)");
  }
  if (version != durable::kPageImageVersion) {
    return Status::InvalidArgument(
        "unsupported page image version " + std::to_string(version) +
        " (supported: " + std::to_string(durable::kPageImageVersion) + ")");
  }
  if (Crc32c(bytes, 12) != header_crc) {
    return Status::InvalidArgument("page file envelope checksum mismatch");
  }
  if (data.size() < 20) {
    return Status::InvalidArgument("page file image truncated (no trailer)");
  }
  uint32_t image_crc = 0;
  std::memcpy(&image_crc, bytes + data.size() - 4, 4);
  if (Crc32c(bytes, data.size() - 4) != image_crc) {
    return Status::InvalidArgument("page file image checksum mismatch");
  }

  // Parse into a scratch file; the live image is replaced only on success.
  PageFile parsed(page_size_);
  size_t pos = 16;
  NNCELL_RETURN_IF_ERROR(parsed.ParseSection(bytes, data.size() - 4, &pos));
  if (pos != data.size() - 4) {
    return Status::InvalidArgument("page file image has trailing garbage");
  }
  Swap(parsed);
  return Status::OK();
}

}  // namespace nncell
