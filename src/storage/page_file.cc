#include "storage/page_file.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/metrics.h"
#include "common/metrics_names.h"

namespace nncell {

namespace {

// Registry handles for the simulated-disk syscall/byte counters,
// aggregated over every PageFile in the process.
struct FileMetrics {
  metrics::Counter* read_pages;
  metrics::Counter* write_pages;
  metrics::Counter* read_bytes;
  metrics::Counter* write_bytes;
};

[[maybe_unused]] const FileMetrics& Metrics() {
  static const FileMetrics m = {
      metrics::Registry::Global().counter(metrics::kFileReadPages),
      metrics::Registry::Global().counter(metrics::kFileWritePages),
      metrics::Registry::Global().counter(metrics::kFileReadBytes),
      metrics::Registry::Global().counter(metrics::kFileWriteBytes),
  };
  return m;
}

}  // namespace

PageId PageFile::Allocate() {
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(PagePtr(id), 0, page_size_);
    return id;
  }
  PageId id = static_cast<PageId>(num_pages());
  pages_.resize(pages_.size() + page_size_, 0);
  return id;
}

PageId PageFile::AllocateRun(size_t count) {
  NNCELL_CHECK(count >= 1);
  // Runs always come from the end of the file so they are contiguous.
  PageId first = static_cast<PageId>(num_pages());
  pages_.resize(pages_.size() + count * page_size_, 0);
  return first;
}

void PageFile::Free(PageId id) {
  NNCELL_CHECK(static_cast<size_t>(id) < num_pages());
  free_list_.push_back(id);
}

void PageFile::Read(PageId id, uint8_t* out) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++disk_reads_;
    ++per_disk_reads_[id % per_disk_reads_.size()];
  }
  NNCELL_METRIC_COUNT(Metrics().read_pages, 1);
  NNCELL_METRIC_COUNT(Metrics().read_bytes, page_size_);
  // The page bytes themselves are read without the lock: concurrent reads
  // of (distinct or identical) pages are safe, and allocation/free only
  // happens in exclusive-writer phases.
  std::memcpy(out, PagePtr(id), page_size_);
}

void PageFile::SetDeclustering(size_t disks) {
  NNCELL_CHECK(disks >= 1);
  std::lock_guard<std::mutex> lock(stats_mu_);
  per_disk_reads_.assign(disks, 0);
}

uint64_t PageFile::MaxDiskReads() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  uint64_t worst = 0;
  for (uint64_t v : per_disk_reads_) worst = std::max(worst, v);
  return worst;
}

void PageFile::Write(PageId id, const uint8_t* data) {  // writes not declustered (build-time)
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++disk_writes_;
  }
  NNCELL_METRIC_COUNT(Metrics().write_pages, 1);
  NNCELL_METRIC_COUNT(Metrics().write_bytes, page_size_);
  std::memcpy(PagePtr(id), data, page_size_);
}

namespace {
constexpr uint64_t kPageFileMagic = 0x4e4e43454c4c5046ULL;  // "NNCELLPF"
}  // namespace

Status PageFile::SaveTo(std::ostream& out) const {
  auto put64 = [&out](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put64(kPageFileMagic);
  put64(page_size_);
  put64(num_pages());
  put64(free_list_.size());
  for (PageId id : free_list_) put64(id);
  out.write(reinterpret_cast<const char*>(pages_.data()),
            static_cast<std::streamsize>(pages_.size()));
  if (!out.good()) return Status::Internal("page file write failed");
  return Status::OK();
}

Status PageFile::LoadFrom(std::istream& in) {
  // Replaces the current image entirely; any BufferPool on top must call
  // Invalidate() afterwards.
  auto get64 = [&in]() {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get64() != kPageFileMagic) {
    return Status::InvalidArgument("bad page file magic");
  }
  uint64_t page_size = get64();
  if (page_size != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  uint64_t pages = get64();
  uint64_t free_count = get64();
  free_list_.resize(free_count);
  for (uint64_t i = 0; i < free_count; ++i) {
    free_list_[i] = static_cast<PageId>(get64());
  }
  pages_.resize(pages * page_size_);
  in.read(reinterpret_cast<char*>(pages_.data()),
          static_cast<std::streamsize>(pages_.size()));
  if (!in.good()) return Status::InvalidArgument("truncated page file");
  return Status::OK();
}

}  // namespace nncell
