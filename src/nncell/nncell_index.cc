#include "nncell/nncell_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/distance.h"
#include "common/kernels/kernels.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "common/rng.h"
#include "rstar/rstar_tree.h"
#include "storage/wal.h"
#include "xtree/xtree.h"

namespace nncell {

namespace {

constexpr uint64_t kInvalidId = std::numeric_limits<uint64_t>::max();

// out[j] = L2DistSq(points[ids[j]], q) through the batched gather kernel,
// four owners per call; bit-equal to the per-pair kernel.
void BatchOwnerDistSq(const PointSet& points, const uint64_t* ids, size_t n,
                      const double* q, size_t dim, double* out) {
  const double* ptrs[4];
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    for (size_t t = 0; t < 4; ++t) ptrs[t] = points[ids[j + t]];
    kernels::L2DistSqBatch4(q, ptrs, dim, out + j);
  }
  for (; j < n; ++j) out[j] = L2DistSq(points[ids[j]], q, dim);
}

// Registry handles for the query pipeline (resolved once per process).
struct QueryMetrics {
  metrics::Counter* count;
  metrics::Counter* candidates;
  metrics::Counter* distance_computations;
  metrics::Counter* fallbacks;
  metrics::Histogram* candidates_per_query;
};

[[maybe_unused]] const QueryMetrics& Metrics() {
  static const QueryMetrics m = {
      metrics::Registry::Global().counter(metrics::kQueryCount),
      metrics::Registry::Global().counter(metrics::kQueryCandidates),
      metrics::Registry::Global().counter(metrics::kQueryDistanceComputations),
      metrics::Registry::Global().counter(metrics::kQueryFallbacks),
      metrics::Registry::Global().histogram(metrics::kQueryCandidatesPerQuery),
  };
  return m;
}

// Registry handles for the approximate query tier.
struct ApproxQueryMetrics {
  metrics::Counter* count;
  metrics::Counter* terminated_early;
  metrics::Counter* truncated;
  metrics::Counter* leaf_visits;
  metrics::Histogram* leaf_visits_per_query;
};

[[maybe_unused]] const ApproxQueryMetrics& ApproxMetrics() {
  static const ApproxQueryMetrics m = {
      metrics::Registry::Global().counter(metrics::kApproxQueryCount),
      metrics::Registry::Global().counter(metrics::kApproxTerminatedEarly),
      metrics::Registry::Global().counter(metrics::kApproxTruncated),
      metrics::Registry::Global().counter(metrics::kApproxLeafVisits),
      metrics::Registry::Global().histogram(
          metrics::kApproxLeafVisitsPerQuery),
  };
  return m;
}

}  // namespace

namespace {

// Data space under the sqrt(weight) isometry: [0, sqrt(w_i)] per dim.
HyperRect MetricSpaceBox(size_t dim, const std::vector<double>& weights) {
  HyperRect box = HyperRect::UnitCube(dim);
  if (!weights.empty()) {
    NNCELL_CHECK_MSG(weights.size() == dim, "weight vector dim mismatch");
    for (size_t i = 0; i < dim; ++i) {
      NNCELL_CHECK_MSG(weights[i] > 0.0, "metric weights must be positive");
      box.hi(i) = std::sqrt(weights[i]);
    }
  }
  return box;
}

}  // namespace

NNCellIndex::NNCellIndex(BufferPool* pool, size_t dim, NNCellOptions options)
    : dim_(dim),
      options_(options),
      space_(MetricSpaceBox(dim, options.weights)),
      points_(dim),
      approximator_(dim, space_, options.lp, options.approx) {
  TreeOptions tree_opts = options_.tree;
  tree_opts.dim = dim;
  // Leaf entries are (approximation rectangle, point id); like the paper,
  // the index stores only the approximations (2dN values) and owner
  // coordinates are resolved from the point table at query time.
  tree_opts.aux_per_entry = 0;
  if (options_.use_xtree) {
    tree_ = std::make_unique<XTree>(pool, tree_opts);
  } else {
    tree_ = std::make_unique<RStarTree>(pool, tree_opts);
  }

  // Build-time point index on private storage so that its page traffic
  // never pollutes the query-time statistics of the cell index.
  point_file_ = std::make_unique<PageFile>(pool->page_size());
  point_pool_ = std::make_unique<BufferPool>(point_file_.get(), 4096);
  TreeOptions point_opts;
  point_opts.dim = dim;
  point_tree_ = std::make_unique<XTree>(point_pool_.get(), point_opts);

  SetNumThreads(options_.parallel.num_threads);
}

void NNCellIndex::SetNumThreads(size_t num_threads) {
  options_.parallel.num_threads = num_threads;
  size_t resolved = options_.parallel.Resolve();
  if (resolved <= 1) {
    thread_pool_.reset();
  } else if (thread_pool_ == nullptr ||
             thread_pool_->num_threads() != resolved) {
    thread_pool_ = std::make_unique<ThreadPool>(resolved);
  }
}

NNCellIndex::~NNCellIndex() = default;

double NNCellIndex::SphereRadius() const {
  if (options_.sphere_radius > 0.0) return options_.sphere_radius;
  return DefaultSphereRadius(std::max<size_t>(live_count_, 1), dim_);
}

std::vector<const double*> NNCellIndex::SelectCandidates(const double* point,
                                                         uint64_t self) const {
  std::vector<const double*> candidates;
  switch (options_.algorithm) {
    case ApproxAlgorithm::kCorrect: {
      candidates.reserve(live_count_);
      for (size_t j = 0; j < points_.size(); ++j) {
        if (j != self && alive_[j]) candidates.push_back(points_[j]);
      }
      break;
    }
    case ApproxAlgorithm::kPoint: {
      // "All points of which the rectangle in the index contains the
      // point": every point stored on a leaf page of the point index whose
      // page region contains `point`.
      auto matches = point_tree_->LeafPageQuery(point);
      for (const auto& m : matches) {
        if (m.id != self) candidates.push_back(points_[m.id]);
      }
      break;
    }
    case ApproxAlgorithm::kSphere: {
      // "All points of which the rectangle in the index intersects the
      // sphere" around `point` with the heuristic radius. Optionally the
      // page-granular result is filtered to the points actually inside
      // the sphere, which caps the LP constraint count at the expected
      // ~2^d near neighbors instead of everything sharing a page region.
      double r = SphereRadius();
      auto matches = point_tree_->LeafPageSphereQuery(point, r);
      const double r_sq = r * r;
      for (const auto& m : matches) {
        if (m.id == self) continue;
        if (options_.sphere_point_filter &&
            L2DistSq(points_[m.id], point, dim_) > r_sq) {
          continue;
        }
        candidates.push_back(points_[m.id]);
      }
      break;
    }
    case ApproxAlgorithm::kNNDirection: {
      // Directional nearest neighbors; a scan with the same semantics as
      // the paper's 4d index queries.
      // The selector needs the probe point inside the set; when the point
      // is new we scan manually.
      const size_t d = dim_;
      constexpr size_t kNone = std::numeric_limits<size_t>::max();
      std::vector<size_t> nn_idx(2 * d, kNone), ax_idx(2 * d, kNone);
      std::vector<double> nn_best(2 * d,
                                  std::numeric_limits<double>::infinity());
      std::vector<double> ax_best(2 * d, -1.0);
      for (size_t j = 0; j < points_.size(); ++j) {
        if (j == self || !alive_[j]) continue;
        const double* p = points_[j];
        double dist2 = L2DistSq(p, point, d);
        if (dist2 == 0.0) continue;
        double inv_norm = 1.0 / std::sqrt(dist2);
        for (size_t i = 0; i < d; ++i) {
          double comp = p[i] - point[i];
          for (int sign = 0; sign < 2; ++sign) {
            double along = sign ? -comp : comp;
            if (along <= 0.0) continue;
            size_t slot = 2 * i + sign;
            if (dist2 < nn_best[slot]) {
              nn_best[slot] = dist2;
              nn_idx[slot] = j;
            }
            double cosine = along * inv_norm;
            if (cosine > ax_best[slot]) {
              ax_best[slot] = cosine;
              ax_idx[slot] = j;
            }
          }
        }
      }
      std::vector<size_t> ids;
      for (size_t s = 0; s < 2 * d; ++s) {
        if (nn_idx[s] != kNone) ids.push_back(nn_idx[s]);
        if (ax_idx[s] != kNone) ids.push_back(ax_idx[s]);
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      for (size_t id : ids) candidates.push_back(points_[id]);
      break;
    }
  }
  return candidates;
}

std::vector<HyperRect> NNCellIndex::ComputeCellRects(const double* owner,
                                                     uint64_t self,
                                                     ApproxStats* stats) const {
  std::vector<const double*> candidates = SelectCandidates(owner, self);
  HyperRect full = approximator_.ApproximateMbr(owner, candidates, stats);
  if (options_.decomposition.max_partitions <= 1) {
    return {full};
  }
  return DecomposeCell(approximator_, owner, candidates, full,
                       options_.decomposition, stats);
}

std::vector<double> NNCellIndex::ToMetricSpace(const double* x) const {
  std::vector<double> y(x, x + dim_);
  if (!options_.weights.empty()) {
    for (size_t i = 0; i < dim_; ++i) y[i] *= std::sqrt(options_.weights[i]);
  }
  return y;
}

std::vector<double> NNCellIndex::FromMetricSpace(
    const std::vector<double>& x) const {
  std::vector<double> y = x;
  if (!options_.weights.empty()) {
    for (size_t i = 0; i < dim_; ++i) y[i] /= std::sqrt(options_.weights[i]);
  }
  return y;
}

std::vector<double> NNCellIndex::OriginalPoint(uint64_t id) const {
  NNCELL_CHECK(id < points_.size());
  const double* p = points_[id];
  return FromMetricSpace(std::vector<double>(p, p + dim_));
}

StatusOr<uint64_t> NNCellIndex::RegisterPoint(
    const std::vector<double>& original, bool insert_into_point_tree) {
  if (original.size() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  std::vector<double> point = ToMetricSpace(original.data());
  if (!space_.ContainsPoint(point)) {
    return Status::OutOfRange("point outside the data space [0,1]^d");
  }
  auto [it, inserted] = point_lookup_.emplace(point, points_.size());
  if (!inserted) {
    return Status::AlreadyExists("exact duplicate point");
  }
  uint64_t id = points_.Add(point);
  cell_rects_.emplace_back();
  alive_.push_back(true);
  ++live_count_;
  if (insert_into_point_tree) {
    point_tree_->Insert(HyperRect::FromPoint(point), id);
  }
  return id;
}

StatusOr<uint64_t> NNCellIndex::Insert(const std::vector<double>& original) {
  if (original.size() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  // Durable mode: validate the operation, then log it before any mutation
  // (write-ahead). A record is only ever appended for an insert that will
  // succeed, so replay never hits a rejection.
  if (wal_ != nullptr) {
    NNCELL_RETURN_IF_ERROR(LogInsert(original));
  }
  std::vector<double> point = ToMetricSpace(original.data());
  // 1. Find the cells the new point will shrink. Stale approximations
  // remain correct supersets of the shrunk cells, so maintenance is a
  // quality (overlap) concern, not a correctness one.
  std::vector<uint64_t> affected;
  if (options_.maintenance == MaintenanceMode::kExact) {
    for (uint64_t id = 0; id < points_.size(); ++id) {
      if (alive_[id] && CellAffectedBy(id, point.data())) {
        affected.push_back(id);
      }
    }
  } else if (options_.maintenance == MaintenanceMode::kSphere) {
    double r = SphereRadius();
    for (uint64_t id = 0; id < points_.size(); ++id) {
      if (!alive_[id]) continue;
      for (const HyperRect& rect : cell_rects_[id]) {
        if (rect.MinDistSq(point.data()) <= r * r) {
          affected.push_back(id);
          break;
        }
      }
    }
  }

  // 2. Register the point and insert its cell approximation.
  StatusOr<uint64_t> id_or = RegisterPoint(original, true);
  if (!id_or.ok()) return id_or;
  uint64_t id = *id_or;
  std::vector<HyperRect> rects =
      ComputeCellRects(points_[id], id, &build_stats_.approx);
  for (const HyperRect& rect : rects) {
    tree_->Insert(rect, id, points_[id]);
    ++build_stats_.entries_inserted;
  }
  cell_rects_[id] = std::move(rects);

  // 3. Maintenance: shrink the affected approximations.
  for (uint64_t aff : affected) {
    RecomputeCell(aff);
    ++build_stats_.cells_recomputed;
  }
  return id;
}

Status NNCellIndex::Delete(uint64_t id) {
  if (!IsAlive(id)) return Status::NotFound("no live point with this id");
  if (wal_ != nullptr) {
    NNCELL_RETURN_IF_ERROR(LogDelete(id));
  }

  // Cells adjacent to the deleted cell may grow into the freed region,
  // which is contained in the deleted cell and hence in its MBR union:
  // recompute every live cell whose approximation intersects it.
  std::vector<uint64_t> affected;
  for (uint64_t other = 0; other < points_.size(); ++other) {
    if (other == id || !alive_[other]) continue;
    bool touches = false;
    for (const HyperRect& mine : cell_rects_[id]) {
      for (const HyperRect& theirs : cell_rects_[other]) {
        if (mine.Intersects(theirs)) {
          touches = true;
          break;
        }
      }
      if (touches) break;
    }
    if (touches) affected.push_back(other);
  }

  // Remove the point and its approximations from both indexes.
  for (const HyperRect& rect : cell_rects_[id]) {
    bool removed = tree_->Delete(rect, id);
    NNCELL_CHECK_MSG(removed, "indexed cell rectangle missing");
  }
  cell_rects_[id].clear();
  bool removed =
      point_tree_->Delete(HyperRect::FromPoint(points_[id], dim_), id);
  NNCELL_CHECK_MSG(removed, "point tree entry missing");
  point_lookup_.erase(points_.Get(id));
  alive_[id] = false;
  --live_count_;
  ++build_stats_.deletions;

  for (uint64_t aff : affected) {
    RecomputeCell(aff);
    ++build_stats_.cells_recomputed;
  }
  return Status::OK();
}

Status NNCellIndex::BulkBuild(const PointSet& pts) {
  if (pts.dim() != dim_) return Status::InvalidArgument("dimension mismatch");
  const bool fresh = points_.empty();
  // Phase 1: register everything (points visible to candidate selection).
  // On a fresh index the point tree is bulk-loaded afterwards instead of
  // grown insert-by-insert.
  std::vector<uint64_t> ids;
  ids.reserve(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    StatusOr<uint64_t> id = RegisterPoint(pts.Get(i), !fresh);
    if (id.ok()) {
      ids.push_back(*id);
    } else if (id.status().code() != StatusCode::kAlreadyExists) {
      return id.status();
    }
  }
  if (fresh) {
    std::vector<Entry> point_entries;
    point_entries.reserve(ids.size());
    for (uint64_t id : ids) {
      Entry e;
      e.rect = HyperRect::FromPoint(points_[id], dim_);
      e.id = id;
      point_entries.push_back(std::move(e));
    }
    point_tree_->BulkLoad(std::move(point_entries));
  }

  // Phase 2: one approximation per cell against the full point set. The
  // cell rectangles go through the tree's regular insert path: for fat,
  // heavily overlapping rectangles the R*/X split machinery groups by
  // rectangle similarity, which beats center-based STR packing here.
  //
  // The approximations only read state that is frozen after phase 1 (the
  // point table and the point tree), so the 2d LP solves per cell fan out
  // across the thread pool; the point tree's buffer pool serves the
  // workers as concurrent readers. Results are committed to the cell tree
  // on this thread in ascending point order, so the on-disk index is
  // byte-identical to a serial build regardless of the thread count.
  if (thread_pool_ != nullptr && ids.size() > 1) {
    std::vector<std::vector<HyperRect>> computed(ids.size());
    std::vector<ApproxStats> worker_stats(ids.size());
    thread_pool_->ParallelFor(0, ids.size(), [&](size_t i) {
      computed[i] =
          ComputeCellRects(points_[ids[i]], ids[i], &worker_stats[i]);
    });
    for (const ApproxStats& s : worker_stats) {
      build_stats_.approx.lp_runs += s.lp_runs;
      build_stats_.approx.lp_iterations += s.lp_iterations;
      build_stats_.approx.lp_failures += s.lp_failures;
      build_stats_.approx.constraint_rows += s.constraint_rows;
      build_stats_.approx.pruned_rows += s.pruned_rows;
      build_stats_.approx.skipped_faces += s.skipped_faces;
      build_stats_.approx.warm_faces += s.warm_faces;
      build_stats_.approx.cold_faces += s.cold_faces;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      const uint64_t id = ids[i];
      for (const HyperRect& rect : computed[i]) {
        tree_->Insert(rect, id, points_[id]);
        ++build_stats_.entries_inserted;
      }
      cell_rects_[id] = std::move(computed[i]);
    }
    // Durable mode: the bulk load becomes durable via one checkpoint
    // instead of one WAL record per point.
    if (wal_ != nullptr) return Checkpoint();
    return Status::OK();
  }
  for (uint64_t id : ids) {
    std::vector<HyperRect> rects =
        ComputeCellRects(points_[id], id, &build_stats_.approx);
    for (const HyperRect& rect : rects) {
      tree_->Insert(rect, id, points_[id]);
      ++build_stats_.entries_inserted;
    }
    cell_rects_[id] = std::move(rects);
  }
  if (wal_ != nullptr) return Checkpoint();
  return Status::OK();
}

bool NNCellIndex::CellAffectedBy(uint64_t id, const double* p) const {
  // The cell of `id` shrinks iff part of its (approximated) region is
  // closer to p than to its owner. For an MBR B this holds iff
  // min_{x in B} (|x-p|^2 - |x-owner|^2) < 0; the objective is linear in x
  // so the minimum is at a corner, separable per dimension.
  const double* owner = points_[id];
  for (const HyperRect& rect : cell_rects_[id]) {
    double min_val = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      // f(x) = sum_k [ (x_k - p_k)^2 - (x_k - o_k)^2 ]
      //      = sum_k [ 2 x_k (o_k - p_k) + p_k^2 - o_k^2 ]
      double a = 2.0 * (owner[k] - p[k]);
      double c = p[k] * p[k] - owner[k] * owner[k];
      min_val += std::min(a * rect.lo(k), a * rect.hi(k)) + c;
    }
    if (min_val < 0.0) return true;
  }
  return false;
}

void NNCellIndex::RecomputeCell(uint64_t id) {
  for (const HyperRect& rect : cell_rects_[id]) {
    bool removed = tree_->Delete(rect, id);
    NNCELL_CHECK_MSG(removed, "indexed cell rectangle missing");
  }
  std::vector<HyperRect> rects =
      ComputeCellRects(points_[id], id, &build_stats_.approx);
  for (const HyperRect& rect : rects) {
    tree_->Insert(rect, id, points_[id]);
    ++build_stats_.entries_inserted;
  }
  cell_rects_[id] = std::move(rects);
}

StatusOr<NNCellIndex::QueryResult> NNCellIndex::Query(
    const double* q_original) const {
  return Query(q_original, nullptr);
}

StatusOr<NNCellIndex::QueryResult> NNCellIndex::Query(
    const double* q_original, QueryTrace* trace) const {
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");

  BufferStats pool_before;
  if (trace != nullptr) {
    trace->Clear();
    pool_before = tree_->pool()->stats();
  }

  std::vector<double> q_vec = ToMetricSpace(q_original);
  const double* q = q_vec.data();
  QueryResult result;

  // Stage 1: point query on the cell index (Lemma 2: the true NN's cell
  // approximation contains q, so its owner is among the matches).
  TraceTimer probe_timer;
  auto matches = tree_->PointQuery(q);
  if (trace != nullptr) {
    trace->stages.push_back(
        {"index_probe", probe_timer.ElapsedMicros(), matches.size()});
  }
  result.candidates = matches.size();

  // Stage 2: exact distance scan over the candidate owners, four at a
  // time through the batched gather kernel. Results are compared in match
  // order with distances bit-equal to the pair kernel, so the winner (and
  // the id tie-break) is exactly the old scalar scan's.
  TraceTimer scan_timer;
  uint64_t distance_computations = matches.size();
  double best = std::numeric_limits<double>::infinity();
  uint64_t best_id = kInvalidId;
  const double* best_point = nullptr;
  {
    const size_t nm = matches.size();
    const double* ptrs[4];
    double d4[4];
    size_t i = 0;
    for (; i + 4 <= nm; i += 4) {
      for (size_t t = 0; t < 4; ++t) ptrs[t] = points_[matches[i + t].id];
      kernels::L2DistSqBatch4(q, ptrs, dim_, d4);
      for (size_t t = 0; t < 4; ++t) {
        const uint64_t id = matches[i + t].id;
        if (d4[t] < best || (d4[t] == best && id < best_id)) {
          best = d4[t];
          best_id = id;
          best_point = ptrs[t];
        }
      }
    }
    for (; i < nm; ++i) {
      const uint64_t id = matches[i].id;
      const double* owner = points_[id];
      double d2 = L2DistSq(owner, q, dim_);
      if (d2 < best || (d2 == best && id < best_id)) {
        best = d2;
        best_id = id;
        best_point = owner;
      }
    }
  }
  if (trace != nullptr) {
    trace->stages.push_back(
        {"distance_scan", scan_timer.ElapsedMicros(), matches.size()});
  }

  if (best_id == kInvalidId) {
    // Numeric edge (query on a cell face lost to LP tolerance) or query
    // outside the data space: fall back to an exact scan. Lemma 2 makes
    // this rare; the flag lets benchmarks count it.
    result.used_fallback = true;
    TraceTimer fallback_timer;
    uint64_t scanned = 0;
    uint64_t id4[4];
    const double* ptr4[4];
    double d4[4];
    size_t fill = 0;
    auto flush = [&](size_t count) {
      for (size_t t = 0; t < count; ++t) {
        if (d4[t] < best) {
          best = d4[t];
          best_id = id4[t];
          best_point = ptr4[t];
        }
      }
    };
    for (uint64_t id = 0; id < points_.size(); ++id) {
      if (!alive_[id]) continue;
      ++scanned;
      id4[fill] = id;
      ptr4[fill] = points_[id];
      if (++fill == 4) {
        kernels::L2DistSqBatch4(q, ptr4, dim_, d4);
        flush(4);
        fill = 0;
      }
    }
    for (size_t t = 0; t < fill; ++t) {
      d4[t] = L2DistSq(ptr4[t], q, dim_);
    }
    flush(fill);
    distance_computations += scanned;
    if (trace != nullptr) {
      trace->stages.push_back(
          {"fallback_scan", fallback_timer.ElapsedMicros(), scanned});
    }
  }

  NNCELL_METRIC_COUNT(Metrics().count, 1);
  NNCELL_METRIC_COUNT(Metrics().candidates, result.candidates);
  NNCELL_METRIC_COUNT(Metrics().distance_computations, distance_computations);
  NNCELL_METRIC_COUNT(Metrics().fallbacks, result.used_fallback ? 1 : 0);
  NNCELL_METRIC_RECORD(Metrics().candidates_per_query, result.candidates);

  if (trace != nullptr) {
    trace->candidates = result.candidates;
    trace->distance_computations = distance_computations;
    trace->used_fallback = result.used_fallback;
    BufferStats pool_after = tree_->pool()->stats();
    trace->logical_reads = pool_after.logical_reads - pool_before.logical_reads;
    trace->physical_reads =
        pool_after.physical_reads - pool_before.physical_reads;
  }

  result.id = best_id;
  result.dist = std::sqrt(best);
  result.point = FromMetricSpace(
      std::vector<double>(best_point, best_point + dim_));
  return result;
}

StatusOr<NNCellIndex::QueryResult> NNCellIndex::Query(
    const std::vector<double>& q) const {
  NNCELL_CHECK(q.size() == dim_);
  return Query(q.data());
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::QueryBatch(
    const PointSet& queries) const {
  if (queries.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");

  const size_t n = queries.size();
  std::vector<QueryResult> results(n);
  if (thread_pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      StatusOr<QueryResult> r = Query(queries[i]);
      if (!r.ok()) return r.status();
      results[i] = std::move(*r);
    }
    return results;
  }

  // N concurrent readers over the shared (sharded) buffer pool. Every
  // result lands in its own slot, so the batch output is deterministic
  // and identical to the serial loop above.
  std::vector<Status> errors(n, Status::OK());
  thread_pool_->ParallelFor(0, n, [&](size_t i) {
    StatusOr<QueryResult> r = Query(queries[i]);
    if (r.ok()) {
      results[i] = std::move(*r);
    } else {
      errors[i] = r.status();
    }
  });
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  return results;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::
    ApproxTraversalQuery(const double* q_original, size_t k,
                         const ApproxOptions& approx) const {
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");
  std::vector<QueryResult> results;
  if (k == 0) return results;
  k = std::min(k, live_count_);
  std::vector<double> q_vec = ToMetricSpace(q_original);

  // Certified / bounded best-first search over the point X-tree. The cell
  // index cannot drive this tier: a cell approximation's MINDIST does not
  // lower-bound its owner's distance (the true NN's cell contains q with
  // MINDIST 0), so the (1+epsilon) proof runs against the points
  // themselves. Entry MINDIST on a degenerate (point) rectangle is
  // bit-equal to the pair distance kernel.
  RTreeCore::ApproxNnResult r = point_tree_->ApproxNnQuery(
      q_vec.data(), k, approx.epsilon, approx.max_leaf_visits);
  NNCELL_CHECK(!r.hits.empty());

  ApproxCertificate cert;
  cert.terminated_early = r.terminated_early;
  cert.truncated = r.truncated;
  cert.approximate = r.terminated_early || r.truncated;
  cert.leaf_visits = r.leaf_visits;
  cert.bound = std::sqrt(r.bound_sq);

  NNCELL_METRIC_COUNT(ApproxMetrics().count, 1);
  NNCELL_METRIC_COUNT(ApproxMetrics().terminated_early,
                      r.terminated_early ? 1 : 0);
  NNCELL_METRIC_COUNT(ApproxMetrics().truncated, r.truncated ? 1 : 0);
  NNCELL_METRIC_COUNT(ApproxMetrics().leaf_visits, r.leaf_visits);
  NNCELL_METRIC_RECORD(ApproxMetrics().leaf_visits_per_query, r.leaf_visits);

  results.reserve(r.hits.size());
  for (const RTreeCore::ApproxNnResult::Hit& h : r.hits) {
    QueryResult res;
    res.id = h.id;
    res.dist = std::sqrt(h.dist_sq);
    const double* p = points_[h.id];
    res.point = FromMetricSpace(std::vector<double>(p, p + dim_));
    res.candidates = r.entries_scanned;
    res.approx = cert;
    results.push_back(std::move(res));
  }
  return results;
}

StatusOr<NNCellIndex::QueryResult> NNCellIndex::Query(
    const double* q_original, const ApproxOptions& approx) const {
  if (!approx.enabled()) return Query(q_original);
  StatusOr<std::vector<QueryResult>> r =
      ApproxTraversalQuery(q_original, 1, approx);
  if (!r.ok()) return r.status();
  return std::move(r->front());
}

StatusOr<NNCellIndex::QueryResult> NNCellIndex::Query(
    const std::vector<double>& q, const ApproxOptions& approx) const {
  NNCELL_CHECK(q.size() == dim_);
  return Query(q.data(), approx);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::QueryBatch(
    const PointSet& queries, const ApproxOptions& approx) const {
  if (!approx.enabled()) return QueryBatch(queries);
  if (queries.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");

  const size_t n = queries.size();
  std::vector<QueryResult> results(n);
  if (thread_pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      StatusOr<QueryResult> r = Query(queries[i], approx);
      if (!r.ok()) return r.status();
      results[i] = std::move(*r);
    }
    return results;
  }
  std::vector<Status> errors(n, Status::OK());
  thread_pool_->ParallelFor(0, n, [&](size_t i) {
    StatusOr<QueryResult> r = Query(queries[i], approx);
    if (r.ok()) {
      results[i] = std::move(*r);
    } else {
      errors[i] = r.status();
    }
  });
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  return results;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::KnnQuery(
    const double* q_original, size_t k, const ApproxOptions& approx) const {
  if (!approx.enabled()) return KnnQuery(q_original, k);
  return ApproxTraversalQuery(q_original, k, approx);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::KnnQuery(
    const std::vector<double>& q, size_t k,
    const ApproxOptions& approx) const {
  NNCELL_CHECK(q.size() == dim_);
  return KnnQuery(q.data(), k, approx);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::KnnQuery(
    const double* q_original, size_t k) const {
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");
  std::vector<double> q_vec = ToMetricSpace(q_original);
  const double* q = q_vec.data();
  std::vector<QueryResult> results;
  if (k == 0) return results;
  k = std::min(k, live_count_);

  // Seed radius from the point-query candidates: if they already cover k
  // distinct owners, the k-th smallest owner distance bounds the k-NN
  // radius from above.
  auto matches = tree_->PointQuery(q);
  std::vector<double> dists;
  {
    std::vector<uint64_t> ids;
    for (const auto& m : matches) ids.push_back(m.id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    dists.resize(ids.size());
    BatchOwnerDistSq(points_, ids.data(), ids.size(), q, dim_, dists.data());
  }
  std::sort(dists.begin(), dists.end());

  double radius_sq;
  if (dists.size() >= k) {
    radius_sq = dists[k - 1];
  } else if (!dists.empty()) {
    radius_sq = std::max(dists.back(), 1e-12);
  } else {
    radius_sq = 1e-6;  // numeric edge: start tiny and grow
  }

  // Ball query on the cell index, growing the radius until k owners lie
  // within it. Each point's approximation contains the point itself, so
  // the ball query cannot miss an owner inside the ball.
  for (int attempt = 0; attempt < 64; ++attempt) {
    double r = std::sqrt(radius_sq);
    HyperRect ball_box = HyperRect::Empty(dim_);
    for (size_t i = 0; i < dim_; ++i) {
      ball_box.lo(i) = q[i] - r;
      ball_box.hi(i) = q[i] + r;
    }
    auto in_box = tree_->RangeQuery(ball_box);
    std::vector<uint64_t> ids;
    for (const auto& m : in_box) ids.push_back(m.id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

    std::vector<double> d2s(ids.size());
    BatchOwnerDistSq(points_, ids.data(), ids.size(), q, dim_, d2s.data());
    std::vector<std::pair<double, uint64_t>> within;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (d2s[i] <= radius_sq) within.emplace_back(d2s[i], ids[i]);
    }
    if (within.size() >= k) {
      std::sort(within.begin(), within.end());
      results.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        QueryResult res;
        res.id = within[i].second;
        res.dist = std::sqrt(within[i].first);
        const double* p = points_[res.id];
        res.point = FromMetricSpace(std::vector<double>(p, p + dim_));
        res.candidates = ids.size();
        results.push_back(std::move(res));
      }
      return results;
    }
    radius_sq *= 4.0;  // double the radius and retry
  }
  return Status::Internal("kNN radius search did not converge");
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::KnnQuery(
    const std::vector<double>& q, size_t k) const {
  NNCELL_CHECK(q.size() == dim_);
  return KnnQuery(q.data(), k);
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::RangeSearch(
    const double* q_original, double radius) const {
  if (live_count_ == 0) return Status::FailedPrecondition("index is empty");
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  std::vector<double> q_vec = ToMetricSpace(q_original);
  const double* q = q_vec.data();

  HyperRect ball_box = HyperRect::Empty(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    ball_box.lo(i) = q[i] - radius;
    ball_box.hi(i) = q[i] + radius;
  }
  auto in_box = tree_->RangeQuery(ball_box);
  std::vector<uint64_t> ids;
  for (const auto& m : in_box) ids.push_back(m.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  const double radius_sq = radius * radius;
  std::vector<double> d2s(ids.size());
  BatchOwnerDistSq(points_, ids.data(), ids.size(), q, dim_, d2s.data());
  std::vector<std::pair<double, uint64_t>> within;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (d2s[i] <= radius_sq) within.emplace_back(d2s[i], ids[i]);
  }
  std::sort(within.begin(), within.end());

  std::vector<QueryResult> results;
  results.reserve(within.size());
  for (const auto& [d2, id] : within) {
    QueryResult res;
    res.id = id;
    res.dist = std::sqrt(d2);
    const double* p = points_[id];
    res.point = FromMetricSpace(std::vector<double>(p, p + dim_));
    res.candidates = ids.size();
    results.push_back(std::move(res));
  }
  return results;
}

StatusOr<std::vector<NNCellIndex::QueryResult>> NNCellIndex::RangeSearch(
    const std::vector<double>& q, double radius) const {
  NNCELL_CHECK(q.size() == dim_);
  return RangeSearch(q.data(), radius);
}

ApproxStats NNCellIndex::MeasureApproxEffort(size_t sample,
                                             uint64_t seed) const {
  ApproxStats stats;
  if (live_count_ == 0 || sample == 0) return stats;
  std::vector<uint64_t> live;
  live.reserve(live_count_);
  for (uint64_t id = 0; id < points_.size(); ++id) {
    if (alive_[id]) live.push_back(id);
  }
  sample = std::min(sample, live.size());
  // Stride sampling spreads the probes over the id range (ids correlate
  // with insertion order, not space, so any spread is as good as random);
  // the seed rotates the phase without changing the sample size.
  const size_t stride = live.size() / sample;
  const size_t offset = static_cast<size_t>(seed % stride);
  for (size_t k = 0; k < sample; ++k) {
    uint64_t id = live[offset + k * stride];
    (void)ComputeCellRects(points_[id], id, &stats);
  }
  return stats;
}

double NNCellIndex::ExpectedCandidates() const {
  double total = 0.0;
  for (const auto& rects : cell_rects_) {
    for (const HyperRect& rect : rects) {
      total += HyperRect::Intersection(rect, space_).Volume();
    }
  }
  return total / space_.Volume();
}

const std::vector<HyperRect>& NNCellIndex::CellRects(uint64_t id) const {
  NNCELL_CHECK(id < cell_rects_.size());
  return cell_rects_[id];
}

Status NNCellIndex::CheckInvariants(size_t sample_queries,
                                    uint64_t seed) const {
  std::string tree_err = tree_->Validate();
  if (!tree_err.empty()) return Status::Internal("cell tree: " + tree_err);
  tree_err = point_tree_->Validate();
  if (!tree_err.empty()) return Status::Internal("point tree: " + tree_err);

  // Quiescent buffer pools: no leaked pins, consistent frame accounting.
  Status pool_st = tree_->pool()->AuditPins();
  if (!pool_st.ok()) {
    return Status::Internal("cell pool: " + pool_st.message());
  }
  pool_st = point_pool_->AuditPins();
  if (!pool_st.ok()) {
    return Status::Internal("point pool: " + pool_st.message());
  }

  // Bookkeeping consistency.
  size_t live = 0, entries = 0;
  for (uint64_t id = 0; id < points_.size(); ++id) {
    if (alive_[id]) {
      ++live;
      entries += cell_rects_[id].size();
      if (cell_rects_[id].empty()) {
        return Status::Internal("live point without approximation");
      }
      // Every point lies in its own cell, hence in one of its rects.
      bool covered = false;
      for (const HyperRect& rect : cell_rects_[id]) {
        if (rect.ContainsPoint(points_[id])) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::Internal("owner point outside its approximation");
      }
    } else if (!cell_rects_[id].empty()) {
      return Status::Internal("dead point still has approximations");
    }
  }
  if (live != live_count_) return Status::Internal("live count mismatch");
  if (entries != tree_->size()) {
    return Status::Internal("cell tree size mismatch");
  }
  if (live != point_tree_->size()) {
    return Status::Internal("point tree size mismatch");
  }

  // The indexed entries must be exactly the bookkept approximations: same
  // ids, same rectangles, same multiplicities. Approximations are clipped
  // to the data space, so a range query over a slightly padded space box
  // reaches every entry.
  {
    HyperRect everything = space_;
    for (size_t i = 0; i < dim_; ++i) {
      everything.lo(i) -= 1.0;
      everything.hi(i) += 1.0;
    }
    auto matches = tree_->RangeQuery(everything);
    if (matches.size() != entries) {
      return Status::Internal("indexed entry count differs from bookkeeping");
    }
    std::map<uint64_t, std::vector<HyperRect>> indexed;
    for (auto& m : matches) {
      if (m.id >= cell_rects_.size() || !alive_[m.id]) {
        return Status::Internal("indexed entry owned by a dead/unknown point");
      }
      indexed[m.id].push_back(std::move(m.rect));
    }
    auto rect_less = [](const HyperRect& a, const HyperRect& b) {
      if (a.lo() != b.lo()) return a.lo() < b.lo();
      return a.hi() < b.hi();
    };
    for (uint64_t id = 0; id < cell_rects_.size(); ++id) {
      if (!alive_[id]) continue;
      auto it = indexed.find(id);
      if (it == indexed.end() ||
          it->second.size() != cell_rects_[id].size()) {
        return Status::Internal(
            "indexed rectangles of a point differ from bookkeeping");
      }
      std::vector<HyperRect> expect = cell_rects_[id];
      std::sort(expect.begin(), expect.end(), rect_less);
      std::sort(it->second.begin(), it->second.end(), rect_less);
      for (size_t r = 0; r < expect.size(); ++r) {
        if (!(expect[r] == it->second[r])) {
          return Status::Internal(
              "indexed rectangle bytes differ from the bookkept "
              "approximation");
        }
      }
    }
  }

  // Sampled end-to-end exactness against a brute-force scan.
  if (live > 0) {
    Rng rng(seed);
    std::vector<double> q(dim_);
    for (size_t t = 0; t < sample_queries; ++t) {
      for (auto& v : q) v = rng.NextDouble();
      // Query() transforms into metric space itself; scan in metric space.
      StatusOr<QueryResult> r = Query(FromMetricSpace(q));
      if (!r.ok()) return r.status();
      double best = std::numeric_limits<double>::infinity();
      for (uint64_t id = 0; id < points_.size(); ++id) {
        if (!alive_[id]) continue;
        best = std::min(best, L2DistSq(points_[id], q.data(), dim_));
      }
      if (std::abs(r->dist * r->dist - best) > 1e-9) {
        return Status::Internal("sampled query returned a non-NN");
      }
    }
  }
  return Status::OK();
}

RTreeCore::TreeInfo NNCellIndex::TreeInfo() const { return tree_->Info(); }

std::string NNCellIndex::ValidateTree() const { return tree_->Validate(); }

}  // namespace nncell
