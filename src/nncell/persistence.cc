// Snapshot persistence (format v2, docs/PERSISTENCE.md): a 64-byte
// checksummed header, a metadata section (options, point table, liveness,
// approximation rectangles, tree states), the two page-file sections, and
// a 24-byte footer whose CRC32C covers the whole file. Loading validates
// every checksum and structural invariant before mutating anything, so a
// failed load leaves the caller's PageFile/BufferPool and the returned
// error precisely describing the first violation -- never a partial index.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "nncell/nncell_index.h"
#include "storage/durable_format.h"
#include "storage/fs_util.h"
#include "storage/wire.h"

namespace nncell {

namespace {

struct SnapshotMetrics {
  metrics::Counter* saves;
  metrics::Counter* save_bytes;
  metrics::Counter* loads;
  metrics::Counter* load_failures;
};

[[maybe_unused]] const SnapshotMetrics& Metrics() {
  static const SnapshotMetrics m = {
      metrics::Registry::Global().counter(metrics::kSnapshotSaves),
      metrics::Registry::Global().counter(metrics::kSnapshotSaveBytes),
      metrics::Registry::Global().counter(metrics::kSnapshotLoads),
      metrics::Registry::Global().counter(metrics::kSnapshotLoadFailures),
  };
  return m;
}

// Every load rejection funnels through here so the failure counter cannot
// be forgotten on a new error path.
Status LoadError(std::string msg) {
  NNCELL_METRIC_COUNT(Metrics().load_failures, 1);
  return Status::InvalidArgument(std::move(msg));
}

void PutTreeState(std::string* out, const RTreeCore::PersistentState& st) {
  wire::PutU64(out, st.root);
  wire::PutU64(out, st.height);
  wire::PutU64(out, st.size);
}

bool GetTreeState(wire::Reader* r, RTreeCore::PersistentState* st) {
  uint64_t root = 0, height = 0, size = 0;
  if (!r->GetU64(&root) || !r->GetU64(&height) || !r->GetU64(&size)) {
    return false;
  }
  st->root = static_cast<PageId>(root);
  st->height = static_cast<size_t>(height);
  st->size = static_cast<size_t>(size);
  return true;
}

// Parsed header fields (the fixed 64 bytes after validation).
struct SnapshotHeader {
  uint64_t page_size = 0;
  uint64_t dim = 0;
  uint64_t point_count = 0;
  uint64_t live_count = 0;
  uint64_t wal_lsn = 0;
  uint64_t meta_len = 0;
};

// Validates magic, version and header CRC; fills `hdr` on success.
Status ParseHeader(const uint8_t* data, size_t size, SnapshotHeader* hdr) {
  constexpr size_t kMin =
      durable::kSnapshotHeaderBytes + durable::kSnapshotFooterBytes;
  if (size < kMin) {
    return Status::InvalidArgument(
        "snapshot truncated (" + std::to_string(size) +
        " bytes; header and footer alone need " + std::to_string(kMin) + ")");
  }
  wire::Reader r(data, durable::kSnapshotHeaderBytes);
  uint64_t magic = 0;
  uint32_t version = 0, header_crc = 0;
  r.GetU64(&magic);
  r.GetU32(&version);
  r.GetU32(&header_crc);
  if (magic != durable::kSnapshotMagic) {
    return Status::InvalidArgument("not an NN-cell snapshot (bad magic)");
  }
  if (version != durable::kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (supported: " + std::to_string(durable::kSnapshotVersion) + ")");
  }
  uint8_t zeroed[durable::kSnapshotHeaderBytes];
  std::memcpy(zeroed, data, durable::kSnapshotHeaderBytes);
  std::memset(zeroed + 12, 0, 4);  // the crc field itself
  if (Crc32c(zeroed, durable::kSnapshotHeaderBytes) != header_crc) {
    return Status::InvalidArgument("snapshot header checksum mismatch");
  }
  r.GetU64(&hdr->page_size);
  r.GetU64(&hdr->dim);
  r.GetU64(&hdr->point_count);
  r.GetU64(&hdr->live_count);
  r.GetU64(&hdr->wal_lsn);
  r.GetU64(&hdr->meta_len);
  NNCELL_CHECK(!r.failed());
  return Status::OK();
}

}  // namespace

Status NNCellIndex::SerializeSnapshot(std::string* out,
                                      uint64_t wal_lsn) const {
  // Make the page images consistent with the logical tree state.
  point_pool_->Flush();
  tree_->pool()->Flush();

  // Metadata section: everything outside the two page files.
  std::string meta;
  wire::PutU64(&meta, static_cast<uint64_t>(options_.algorithm));
  wire::PutU64(&meta, options_.use_xtree ? 1 : 0);
  wire::PutU64(&meta, static_cast<uint64_t>(options_.maintenance));
  wire::PutU64(&meta, options_.sphere_point_filter ? 1 : 0);
  wire::PutF64(&meta, options_.sphere_radius);
  wire::PutU64(&meta, options_.decomposition.max_partitions);
  wire::PutU64(&meta, options_.decomposition.max_split_dims);
  wire::PutU64(&meta, static_cast<uint64_t>(options_.decomposition.measure));
  wire::PutU64(&meta, options_.weights.size());
  for (double w : options_.weights) wire::PutF64(&meta, w);

  const std::vector<double>& raw = points_.raw();
  wire::PutU64(&meta, raw.size());
  wire::PutBytes(&meta, raw.data(), raw.size() * sizeof(double));
  for (bool a : alive_) wire::PutU8(&meta, a ? 1 : 0);
  for (const auto& rects : cell_rects_) {
    wire::PutU64(&meta, rects.size());
    for (const HyperRect& rect : rects) {
      wire::PutBytes(&meta, rect.lo().data(), dim_ * sizeof(double));
      wire::PutBytes(&meta, rect.hi().data(), dim_ * sizeof(double));
    }
  }
  PutTreeState(&meta, tree_->SaveState());
  PutTreeState(&meta, point_tree_->SaveState());

  // Header (crc field written as zero, patched after the fact).
  std::string hdr;
  wire::PutU64(&hdr, durable::kSnapshotMagic);
  wire::PutU32(&hdr, durable::kSnapshotVersion);
  wire::PutU32(&hdr, 0);
  wire::PutU64(&hdr, tree_->pool()->file()->page_size());
  wire::PutU64(&hdr, dim_);
  wire::PutU64(&hdr, alive_.size());
  wire::PutU64(&hdr, live_count_);
  wire::PutU64(&hdr, wal_lsn);
  wire::PutU64(&hdr, meta.size());
  NNCELL_CHECK(hdr.size() == durable::kSnapshotHeaderBytes);
  const uint32_t header_crc = Crc32c(hdr.data(), hdr.size());
  std::memcpy(hdr.data() + 12, &header_crc, 4);

  out->clear();
  out->append(hdr);
  out->append(meta);
  wire::PutU32(out, Crc32c(meta.data(), meta.size()));
  tree_->pool()->file()->AppendSection(out);
  point_file_->AppendSection(out);

  // Footer: total length + whole-file CRC, so truncation and any single
  // bit flip anywhere in the image are detected up front at load.
  std::string footer;
  wire::PutU64(&footer, durable::kSnapshotFooterMagic);
  wire::PutU64(&footer, out->size() + durable::kSnapshotFooterBytes);
  wire::PutU32(&footer, Crc32c(out->data(), out->size()));
  wire::PutU32(&footer, Crc32c(footer.data(), footer.size()));
  NNCELL_CHECK(footer.size() == durable::kSnapshotFooterBytes);
  out->append(footer);

  NNCELL_METRIC_COUNT(Metrics().saves, 1);
  NNCELL_METRIC_COUNT(Metrics().save_bytes, out->size());
  return Status::OK();
}

Status NNCellIndex::Save(std::ostream& out) const {
  std::string image;
  NNCELL_RETURN_IF_ERROR(SerializeSnapshot(&image, /*wal_lsn=*/0));
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  if (!out.good()) return Status::Internal("index write failed");
  return Status::OK();
}

Status NNCellIndex::Save(const std::string& path) const {
  std::string image;
  NNCELL_RETURN_IF_ERROR(SerializeSnapshot(&image, /*wal_lsn=*/0));
  return fs::WriteFileAtomic(path, image);
}

StatusOr<size_t> NNCellIndex::PeekSnapshotPageSize(const std::string& image) {
  SnapshotHeader hdr;
  NNCELL_RETURN_IF_ERROR(ParseHeader(
      reinterpret_cast<const uint8_t*>(image.data()), image.size(), &hdr));
  return static_cast<size_t>(hdr.page_size);
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::LoadImage(
    const uint8_t* data, size_t size, PageFile* file, BufferPool* pool,
    uint64_t* wal_lsn) {
  SnapshotHeader hdr;
  {
    Status st = ParseHeader(data, size, &hdr);
    if (!st.ok()) return LoadError(st.message());
  }

  // Footer next: its whole-file CRC front-loads corruption detection, so
  // every later parse step runs on bytes already known to be intact.
  const uint8_t* footer = data + size - durable::kSnapshotFooterBytes;
  wire::Reader fr(footer, durable::kSnapshotFooterBytes);
  uint64_t footer_magic = 0, total_len = 0;
  uint32_t file_crc = 0, footer_crc = 0;
  fr.GetU64(&footer_magic);
  fr.GetU64(&total_len);
  fr.GetU32(&file_crc);
  fr.GetU32(&footer_crc);
  if (footer_magic != durable::kSnapshotFooterMagic) {
    return LoadError(
        "snapshot footer damaged (bad footer magic; truncated file?)");
  }
  if (Crc32c(footer, durable::kSnapshotFooterBytes - 4) != footer_crc) {
    return LoadError("snapshot footer checksum mismatch");
  }
  if (total_len != size) {
    return LoadError("snapshot length mismatch: footer records " +
                     std::to_string(total_len) + " bytes, file has " +
                     std::to_string(size));
  }
  if (Crc32c(data, size - durable::kSnapshotFooterBytes) != file_crc) {
    return LoadError("snapshot body checksum mismatch");
  }

  if (pool->file() != file) {
    return LoadError("pool does not wrap the given file");
  }
  if (hdr.page_size != file->page_size()) {
    return LoadError("page size mismatch: snapshot has " +
                     std::to_string(hdr.page_size) + ", file expects " +
                     std::to_string(file->page_size()));
  }
  if (hdr.dim == 0) {
    return LoadError("corrupt snapshot: dimension 0");
  }
  const size_t dim = static_cast<size_t>(hdr.dim);
  const size_t body_end = size - durable::kSnapshotFooterBytes;
  if (hdr.meta_len > body_end - durable::kSnapshotHeaderBytes ||
      body_end - durable::kSnapshotHeaderBytes - hdr.meta_len < 4) {
    return LoadError("snapshot metadata length " +
                     std::to_string(hdr.meta_len) +
                     " exceeds the image body");
  }
  const uint8_t* meta = data + durable::kSnapshotHeaderBytes;
  uint32_t meta_crc = 0;
  std::memcpy(&meta_crc, meta + hdr.meta_len, 4);
  if (Crc32c(meta, hdr.meta_len) != meta_crc) {
    return LoadError("snapshot metadata checksum mismatch");
  }

  // --- metadata ----------------------------------------------------------
  wire::Reader r(meta, hdr.meta_len);
  NNCellOptions options;
  uint64_t algorithm = 0, use_xtree = 0, maintenance = 0, point_filter = 0;
  uint64_t max_partitions = 0, max_split_dims = 0, measure = 0;
  uint64_t weight_count = 0;
  r.GetU64(&algorithm);
  r.GetU64(&use_xtree);
  r.GetU64(&maintenance);
  r.GetU64(&point_filter);
  r.GetF64(&options.sphere_radius);
  r.GetU64(&max_partitions);
  r.GetU64(&max_split_dims);
  r.GetU64(&measure);
  r.GetU64(&weight_count);
  if (r.failed()) return LoadError("snapshot metadata truncated (options)");
  if (algorithm > static_cast<uint64_t>(ApproxAlgorithm::kNNDirection)) {
    return LoadError("corrupt snapshot: unknown approximation algorithm " +
                     std::to_string(algorithm));
  }
  if (maintenance > static_cast<uint64_t>(MaintenanceMode::kExact)) {
    return LoadError("corrupt snapshot: unknown maintenance mode " +
                     std::to_string(maintenance));
  }
  if (measure > static_cast<uint64_t>(ObliquenessMeasure::kExtent)) {
    return LoadError("corrupt snapshot: unknown obliqueness measure " +
                     std::to_string(measure));
  }
  if (weight_count != 0 && weight_count != dim) {
    return LoadError("corrupt snapshot: weight count " +
                     std::to_string(weight_count) +
                     " does not match dimension " + std::to_string(dim));
  }
  options.algorithm = static_cast<ApproxAlgorithm>(algorithm);
  options.use_xtree = use_xtree != 0;
  options.maintenance = static_cast<MaintenanceMode>(maintenance);
  options.sphere_point_filter = point_filter != 0;
  options.decomposition.max_partitions = static_cast<size_t>(max_partitions);
  options.decomposition.max_split_dims = static_cast<size_t>(max_split_dims);
  options.decomposition.measure = static_cast<ObliquenessMeasure>(measure);
  options.weights.resize(weight_count);
  for (double& w : options.weights) r.GetF64(&w);

  uint64_t raw_count = 0;
  r.GetU64(&raw_count);
  if (r.failed() || raw_count > r.remaining() / sizeof(double)) {
    return LoadError("snapshot metadata truncated (point table)");
  }
  if (raw_count != hdr.point_count * dim) {
    return LoadError("corrupt snapshot: point table has " +
                     std::to_string(raw_count) + " coordinates, expected " +
                     std::to_string(hdr.point_count * dim));
  }
  std::vector<double> raw(static_cast<size_t>(raw_count));
  r.GetBytes(raw.data(), raw.size() * sizeof(double));

  const size_t n = static_cast<size_t>(hdr.point_count);
  std::vector<bool> alive(n);
  uint64_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    uint8_t a = 0;
    r.GetU8(&a);
    alive[i] = a != 0;
    live += alive[i] ? 1 : 0;
  }
  if (r.failed()) return LoadError("snapshot metadata truncated (liveness)");
  if (live != hdr.live_count) {
    return LoadError("corrupt snapshot: header records " +
                     std::to_string(hdr.live_count) +
                     " live points, liveness bitmap has " +
                     std::to_string(live));
  }

  std::vector<std::vector<HyperRect>> cell_rects(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t rect_count = 0;
    r.GetU64(&rect_count);
    if (r.failed() ||
        rect_count > r.remaining() / (2 * dim * sizeof(double))) {
      return LoadError("snapshot metadata truncated (approximations)");
    }
    if (alive[i] && rect_count == 0) {
      return LoadError("corrupt snapshot: live point " + std::to_string(i) +
                       " has no approximation rectangles");
    }
    cell_rects[i].reserve(static_cast<size_t>(rect_count));
    for (uint64_t k = 0; k < rect_count; ++k) {
      std::vector<double> lo(dim), hi(dim);
      r.GetBytes(lo.data(), dim * sizeof(double));
      r.GetBytes(hi.data(), dim * sizeof(double));
      cell_rects[i].emplace_back(std::move(lo), std::move(hi));
    }
  }

  RTreeCore::PersistentState cell_state, point_state;
  if (!GetTreeState(&r, &cell_state) || !GetTreeState(&r, &point_state)) {
    return LoadError("snapshot metadata truncated (tree states)");
  }
  if (r.remaining() != 0) {
    return LoadError("snapshot metadata has trailing garbage");
  }

  // --- page files (parsed into scratch, committed only at the end) -------
  size_t pos = durable::kSnapshotHeaderBytes + hdr.meta_len + 4;
  PageFile cell_scratch(static_cast<size_t>(hdr.page_size));
  {
    Status st = cell_scratch.ParseSection(data, body_end, &pos);
    if (!st.ok()) return LoadError("cell index " + st.message());
  }
  PageFile point_scratch(static_cast<size_t>(hdr.page_size));
  {
    Status st = point_scratch.ParseSection(data, body_end, &pos);
    if (!st.ok()) return LoadError("point index " + st.message());
  }
  if (pos != body_end) {
    return LoadError("snapshot has trailing garbage before the footer");
  }
  if (cell_state.root >= cell_scratch.num_pages()) {
    return LoadError("corrupt snapshot: cell tree root page " +
                     std::to_string(cell_state.root) + " out of range");
  }
  if (point_state.root >= point_scratch.num_pages()) {
    return LoadError("corrupt snapshot: point tree root page " +
                     std::to_string(point_state.root) + " out of range");
  }

  // --- everything validated: build and commit ----------------------------
  auto index = std::make_unique<NNCellIndex>(pool, dim, options);
  for (size_t i = 0; i < raw.size(); i += dim) {
    index->points_.Add(raw.data() + i);
  }
  index->alive_ = std::move(alive);
  index->live_count_ = static_cast<size_t>(hdr.live_count);
  index->cell_rects_ = std::move(cell_rects);
  for (size_t i = 0; i < n; ++i) {
    if (index->alive_[i]) {
      index->point_lookup_.emplace(index->points_.Get(i), i);
    }
  }
  // Replace the page images; the constructor's fresh root pages become
  // dead pages of the restored image, dropped by the pool invalidation.
  file->Swap(cell_scratch);
  pool->Invalidate();
  index->tree_->RestoreState(cell_state);
  index->point_file_->Swap(point_scratch);
  index->point_pool_->Invalidate();
  index->point_tree_->RestoreState(point_state);

  if (wal_lsn != nullptr) *wal_lsn = hdr.wal_lsn;
  NNCELL_METRIC_COUNT(Metrics().loads, 1);
  return index;
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::Load(std::istream& in,
                                                         PageFile* file,
                                                         BufferPool* pool) {
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return LoadImage(reinterpret_cast<const uint8_t*>(data.data()), data.size(),
                   file, pool, /*wal_lsn=*/nullptr);
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::Load(
    const std::string& path, PageFile* file, BufferPool* pool) {
  auto data = fs::ReadFileToString(path);
  if (!data.ok()) return data.status();
  return LoadImage(reinterpret_cast<const uint8_t*>(data->data()),
                   data->size(), file, pool, /*wal_lsn=*/nullptr);
}

}  // namespace nncell
