#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "nncell/nncell_index.h"

namespace nncell {

namespace {

constexpr uint64_t kIndexMagic = 0x4e4e43454c4c4958ULL;  // "NNCELLIX"
constexpr uint32_t kIndexVersion = 1;

void PutU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t GetU64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

double GetF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void PutDoubles(std::ostream& out, const std::vector<double>& v) {
  PutU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> GetDoubles(std::istream& in) {
  std::vector<double> v(GetU64(in));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
  return v;
}

void PutRect(std::ostream& out, const HyperRect& r) {
  PutDoubles(out, r.lo());
  PutDoubles(out, r.hi());
}

HyperRect GetRect(std::istream& in) {
  std::vector<double> lo = GetDoubles(in);
  std::vector<double> hi = GetDoubles(in);
  return HyperRect(std::move(lo), std::move(hi));
}

void PutTreeState(std::ostream& out, const RTreeCore::PersistentState& st) {
  PutU64(out, st.root);
  PutU64(out, st.height);
  PutU64(out, st.size);
}

RTreeCore::PersistentState GetTreeState(std::istream& in) {
  RTreeCore::PersistentState st;
  st.root = static_cast<PageId>(GetU64(in));
  st.height = GetU64(in);
  st.size = GetU64(in);
  return st;
}

}  // namespace

Status NNCellIndex::Save(std::ostream& out) const {
  PutU64(out, kIndexMagic);
  PutU64(out, kIndexVersion);
  PutU64(out, dim_);

  // Options that affect on-disk interpretation / future mutations.
  PutU64(out, static_cast<uint64_t>(options_.algorithm));
  PutU64(out, options_.use_xtree ? 1 : 0);
  PutU64(out, static_cast<uint64_t>(options_.maintenance));
  PutU64(out, options_.sphere_point_filter ? 1 : 0);
  PutF64(out, options_.sphere_radius);
  PutU64(out, options_.decomposition.max_partitions);
  PutU64(out, options_.decomposition.max_split_dims);
  PutU64(out, static_cast<uint64_t>(options_.decomposition.measure));
  PutDoubles(out, options_.weights);

  // Point table + liveness + approximations.
  PutDoubles(out, points_.raw());
  PutU64(out, alive_.size());
  for (bool a : alive_) out.put(a ? 1 : 0);
  PutU64(out, live_count_);
  for (const auto& rects : cell_rects_) {
    PutU64(out, rects.size());
    for (const HyperRect& r : rects) PutRect(out, r);
  }

  // Trees: logical state + page images (flush caches first).
  point_pool_->Flush();
  PutTreeState(out, tree_->SaveState());
  PutTreeState(out, point_tree_->SaveState());
  // The cell-index pool is owned by the caller; flush it so the page
  // image on its PageFile is consistent, then dump both files.
  tree_->pool()->Flush();
  NNCELL_RETURN_IF_ERROR(tree_->pool()->file()->SaveTo(out));
  NNCELL_RETURN_IF_ERROR(point_file_->SaveTo(out));
  if (!out.good()) return Status::Internal("index write failed");
  return Status::OK();
}

Status NNCellIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  return Save(out);
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::Load(std::istream& in,
                                                         PageFile* file,
                                                         BufferPool* pool) {
  if (GetU64(in) != kIndexMagic) {
    return Status::InvalidArgument("not an NN-cell index image");
  }
  if (GetU64(in) != kIndexVersion) {
    return Status::InvalidArgument("unsupported index version");
  }
  size_t dim = static_cast<size_t>(GetU64(in));

  NNCellOptions options;
  options.algorithm = static_cast<ApproxAlgorithm>(GetU64(in));
  options.use_xtree = GetU64(in) != 0;
  options.maintenance = static_cast<MaintenanceMode>(GetU64(in));
  options.sphere_point_filter = GetU64(in) != 0;
  options.sphere_radius = GetF64(in);
  options.decomposition.max_partitions = static_cast<size_t>(GetU64(in));
  options.decomposition.max_split_dims = static_cast<size_t>(GetU64(in));
  options.decomposition.measure =
      static_cast<ObliquenessMeasure>(GetU64(in));
  options.weights = GetDoubles(in);

  auto index = std::make_unique<NNCellIndex>(pool, dim, options);

  // Point table.
  std::vector<double> raw = GetDoubles(in);
  if (raw.size() % dim != 0) {
    return Status::InvalidArgument("corrupt point table");
  }
  for (size_t i = 0; i < raw.size(); i += dim) {
    index->points_.Add(raw.data() + i);
  }
  uint64_t n = GetU64(in);
  index->alive_.resize(n);
  for (uint64_t i = 0; i < n; ++i) index->alive_[i] = in.get() != 0;
  index->live_count_ = static_cast<size_t>(GetU64(in));
  index->cell_rects_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t rects = GetU64(in);
    index->cell_rects_[i].reserve(rects);
    for (uint64_t r = 0; r < rects; ++r) {
      index->cell_rects_[i].push_back(GetRect(in));
    }
  }
  // Rebuild the duplicate-lookup over live points.
  for (uint64_t i = 0; i < n; ++i) {
    if (index->alive_[i]) index->point_lookup_.emplace(index->points_.Get(i), i);
  }

  RTreeCore::PersistentState cell_state = GetTreeState(in);
  RTreeCore::PersistentState point_state = GetTreeState(in);

  // Restore the page images; the constructor's fresh root pages become
  // dead pages of the restored image.
  if (pool->file() != file) {
    return Status::InvalidArgument("pool does not wrap the given file");
  }
  NNCELL_RETURN_IF_ERROR(file->LoadFrom(in));
  pool->Invalidate();
  index->tree_->RestoreState(cell_state);
  NNCELL_RETURN_IF_ERROR(index->point_file_->LoadFrom(in));
  index->point_pool_->Invalidate();
  index->point_tree_->RestoreState(point_state);

  if (!in.good()) return Status::InvalidArgument("truncated index image");
  return index;
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::Load(
    const std::string& path, PageFile* file, BufferPool* pool) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::InvalidArgument("cannot open " + path);
  return Load(in, file, pool);
}

}  // namespace nncell
