#ifndef NNCELL_NNCELL_NNCELL_INDEX_H_
#define NNCELL_NNCELL_NNCELL_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/approx.h"
#include "common/hyper_rect.h"
#include "common/point_set.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "geom/cell_approximator.h"
#include "geom/decomposition.h"
#include "nncell/query_trace.h"
#include "rstar/rtree_core.h"
#include "storage/buffer_pool.h"

namespace nncell {

class WriteAheadLog;

// How existing cells are repaired after a dynamic insert. A new point only
// ever *shrinks* cells, and a stale (larger) approximation is still a
// correct superset, so maintenance is a quality knob, not a correctness
// requirement (Section 2 of the paper).
enum class MaintenanceMode {
  kNone,    // never touch existing approximations
  kSphere,  // the paper's heuristic: recompute cells whose MBR intersects a
            // sphere around the new point
  kExact,   // recompute exactly the cells whose MBR crosses the bisector of
            // (owner, new point) -- every cell that can actually shrink
};

// Threading knob for the parallel phases of the engine. The per-point LP
// solves of a bulk build are embarrassingly parallel ([Ber+ 97] proposes
// parallelism as the cure for the residual NN search cost; covering-box
// Voronoi constructions make the same observation), and batched queries
// fan out across concurrent readers of the shared buffer pool.
struct ParallelOptions {
  // Threads used for BulkBuild LP fan-out and QueryBatch. 1 = serial
  // (no pool is created); 0 = one thread per hardware core.
  size_t num_threads = 1;

  size_t Resolve() const {
    return num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  }
};

struct NNCellOptions {
  // Which points contribute LP constraints (Section 2's four algorithms).
  ApproxAlgorithm algorithm = ApproxAlgorithm::kSphere;

  // Sphere strategy radius; 0 = the paper's heuristic, which shrinks as
  // the database grows.
  double sphere_radius = 0.0;

  // Per-dimension weights of a weighted Euclidean metric
  //   d_W(x,y)^2 = sum_i w_i (x_i - y_i)^2
  // ("adaptable" similarity search: user-tuned feature importance).
  // Empty = plain Euclidean. Implemented by the isometry x_i -> sqrt(w_i)
  // x_i, under which every NN-cell/bisector argument goes through
  // unchanged; reported distances are d_W, reported points are in the
  // original coordinates.
  std::vector<double> weights;

  // Sphere strategy: additionally require the candidate *point* (not just
  // its page region) to lie inside the sphere. Keeps the LP constraint
  // count near-constant in N, making large static builds tractable; the
  // MBRs may only grow (Lemma 1 still applies).
  bool sphere_point_filter = true;

  // Section 3 decomposition; max_partitions <= 1 disables it.
  DecompositionOptions decomposition;

  // Underlying multidimensional index for the approximations.
  bool use_xtree = true;

  MaintenanceMode maintenance = MaintenanceMode::kExact;

  LpOptions lp;

  // LP hot-path pipeline knobs (bisector pre-pruning, warm-started face
  // solves). Runtime-only like `lp`: both settings yield the same MBRs, so
  // neither is part of the persisted image.
  CellApproxOptions approx;

  // Threading for BulkBuild / QueryBatch. Purely a runtime knob: the
  // built index is byte-identical for every thread count, so it is not
  // part of the persisted image.
  ParallelOptions parallel;

  // Options forwarded to the underlying tree (dim / aux are overwritten).
  TreeOptions tree;
};

struct NNCellBuildStats {
  ApproxStats approx;
  size_t cells_recomputed = 0;  // dynamic-maintenance recomputations
  size_t entries_inserted = 0;  // tree entries written (incl. decomposition)
  size_t deletions = 0;
};

// The paper's contribution: nearest-neighbor search by indexing the
// solution space. Every data point's NN-cell (order-1 Voronoi cell bounded
// by the data space) is approximated by one or more MBRs via linear
// programming and stored in an X-tree; a NN query is then a point query on
// that index followed by exact distance checks among the candidate owners.
class NNCellIndex {
 public:
  // `pool` provides the paged storage for the underlying tree. The data
  // space is fixed to [0,1]^dim as in the paper.
  NNCellIndex(BufferPool* pool, size_t dim, NNCellOptions options);
  ~NNCellIndex();

  NNCellIndex(const NNCellIndex&) = delete;
  NNCellIndex& operator=(const NNCellIndex&) = delete;

  size_t dim() const { return dim_; }
  // Number of live points.
  size_t size() const { return live_count_; }
  // Internal point table in *metric-transformed* coordinates (identical to
  // the input coordinates unless options().weights is set). Includes
  // tombstoned points; check IsAlive().
  const PointSet& points() const { return points_; }
  const NNCellOptions& options() const { return options_; }
  const NNCellBuildStats& build_stats() const { return build_stats_; }

  // Dynamically inserts a point (paper Fig. 3: candidate selection, 2d LP
  // runs, index insert, then maintenance of the cells the new point
  // shrinks). Exact duplicates are rejected (their NN-cell would be
  // degenerate).
  StatusOr<uint64_t> Insert(const std::vector<double>& point);

  // Static index creation (the paper's precomputation): registers all
  // points first, then computes every approximation once against the full
  // point set -- no maintenance needed. Duplicates are skipped.
  Status BulkBuild(const PointSet& pts);

  // Deletes a point. Neighboring cells grow into the freed region, so
  // every cell whose approximation touches the deleted cell's
  // approximation is recomputed (a superset of the true Voronoi
  // neighbors; the paper defers to Roos' dynamic Voronoi algorithms for
  // this case). Ids are stable; deleted ids are never reused.
  Status Delete(uint64_t id);

  // Whether the id refers to a live point.
  bool IsAlive(uint64_t id) const {
    return id < alive_.size() && alive_[id];
  }

  // The point's coordinates in the *original* (pre-weight-isometry) space,
  // exactly as they were passed to Insert/BulkBuild. Used by callers that
  // re-partition points (the sharded rebalance) and by anything that must
  // round-trip a point through the public API.
  std::vector<double> OriginalPoint(uint64_t id) const;

  struct QueryResult {
    uint64_t id = 0;              // index of the nearest neighbor
    double dist = 0.0;            // Euclidean distance
    std::vector<double> point;    // its coordinates
    size_t candidates = 0;        // candidate cells inspected
    bool used_fallback = false;   // numeric edge case: fell back to scan
    ApproxCertificate approx;     // default (exact) unless ApproxOptions
                                  // requested the approximate tier
  };

  // Nearest-neighbor query = point query on the approximation index plus
  // exact distance checks over the candidates (Lemma 2 guarantees the true
  // NN is always among them). Query is safe to call from any number of
  // threads concurrently as long as no thread mutates the index (Insert /
  // Delete / BulkBuild) at the same time.
  StatusOr<QueryResult> Query(const double* q) const;
  StatusOr<QueryResult> Query(const std::vector<double>& q) const;

  // Traced variant: when `trace` is non-null it is cleared and filled with
  // the per-stage timeline of this one query (see query_trace.h). Same
  // thread-safety as the untraced overloads; the buffer-pool read deltas in
  // the trace are attributed pool-wide, so they are exact only when no
  // other query runs concurrently.
  StatusOr<QueryResult> Query(const double* q, QueryTrace* trace) const;

  // Batched nearest-neighbor search: answers every query and returns the
  // results in input order. With options().parallel.num_threads > 1 the
  // batch is fanned across the thread pool -- N concurrent readers over
  // the shared buffer pool; results are identical to a serial loop of
  // Query() calls. Several threads may call QueryBatch concurrently.
  StatusOr<std::vector<QueryResult>> QueryBatch(const PointSet& queries) const;

  // Approximate query tier (docs/APPROXIMATE.md): certified (1+epsilon)
  // answers and bounded-effort search via best-first traversal of the
  // point X-tree. Exactness contract: when !approx.enabled() (epsilon ==
  // 0 and no budget) these dispatch to the exact overloads above and are
  // bit-identical to them (ids, distances, candidates, metrics). When
  // enabled, the answer's certificate is populated: min(dist, approx.bound)
  // lower-bounds the true NN distance, an untruncated search additionally
  // guarantees dist <= (1+epsilon) * true distance, and a truncated search
  // returns best-seen with approx.approximate == true. Same thread-safety
  // as the exact overloads.
  StatusOr<QueryResult> Query(const double* q,
                              const ApproxOptions& approx) const;
  StatusOr<QueryResult> Query(const std::vector<double>& q,
                              const ApproxOptions& approx) const;
  StatusOr<std::vector<QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const;
  StatusOr<std::vector<QueryResult>> KnnQuery(
      const double* q, size_t k, const ApproxOptions& approx) const;
  StatusOr<std::vector<QueryResult>> KnnQuery(
      const std::vector<double>& q, size_t k,
      const ApproxOptions& approx) const;

  // Reconfigures the thread count for the parallel phases (e.g. after
  // Load, which restores with the serial default). Not thread-safe: call
  // only while no other thread uses the index.
  void SetNumThreads(size_t num_threads);

  // Exact k-nearest-neighbor search -- the extension the paper names as
  // future work. Every point within distance r of q has a cell
  // approximation intersecting Ball(q, r) (the approximation contains its
  // owner), so a ball query on the cell index with a radius that provably
  // covers k owners returns a superset of the true k-NN. The radius comes
  // from the point-query candidates and grows geometrically in the rare
  // case they contain fewer than k owners. Results are ascending by
  // distance; returns min(k, size()) entries.
  StatusOr<std::vector<QueryResult>> KnnQuery(const double* q,
                                              size_t k) const;
  StatusOr<std::vector<QueryResult>> KnnQuery(const std::vector<double>& q,
                                              size_t k) const;

  // Similarity range query: every live point within `radius` of q
  // (ascending by distance). Same covering argument as KnnQuery: each
  // in-range owner's cell approximation contains the owner and therefore
  // intersects Ball(q, radius), so a ball query on the cell index cannot
  // miss one. Distances are in the configured (possibly weighted) metric.
  StatusOr<std::vector<QueryResult>> RangeSearch(const double* q,
                                                 double radius) const;
  StatusOr<std::vector<QueryResult>> RangeSearch(const std::vector<double>& q,
                                                 double radius) const;

  // Re-runs the cell-approximation pipeline (candidate selection + LP
  // solves) for `sample` deterministically chosen live points and returns
  // the aggregated effort counters; the computed rectangles are discarded
  // and the index is not modified. Pure read -- used by `nncell_cli stats`
  // to surface live LP metrics for an index loaded from disk. `seed` only
  // rotates which points are sampled.
  ApproxStats MeasureApproxEffort(size_t sample, uint64_t seed = 0) const;

  // The paper's quality measure: the expected number of approximations
  // containing a uniform query point (sum of MBR volumes over the data
  // space volume). 1.0 = perfect (no overlap).
  double ExpectedCandidates() const;

  // The current approximation rectangles of one point (>= 1 entries).
  const std::vector<HyperRect>& CellRects(uint64_t id) const;

  // Underlying tree statistics / validation (test support).
  RTreeCore::TreeInfo TreeInfo() const;
  std::string ValidateTree() const;

  // Deep self-check: validates the underlying tree, verifies that every
  // live point lies inside (one of) its own approximation rectangles,
  // that the indexed entries match the bookkeeping exactly, and that
  // `sample_queries` random queries return the true nearest neighbor.
  // Returns OK or a description of the first violation.
  Status CheckInvariants(size_t sample_queries = 100,
                         uint64_t seed = 0x5eed) const;

  // Persistence: writes the complete index -- options, point table,
  // approximations and both page files -- as one checksummed snapshot
  // (format v2, docs/PERSISTENCE.md). Save(path) writes atomically via
  // temp file + fsync + rename, so a crash mid-save leaves the previous
  // snapshot intact. Restoring replaces the contents of `file` (the
  // cell-index storage `pool` wraps; page size must match the saved one),
  // and is all-or-nothing: on any error -- truncation, checksum mismatch,
  // version skew -- `file`, `pool` and the returned Status describe the
  // first violation and nothing has been mutated.
  Status Save(std::ostream& out) const;
  Status Save(const std::string& path) const;
  static StatusOr<std::unique_ptr<NNCellIndex>> Load(std::istream& in,
                                                     PageFile* file,
                                                     BufferPool* pool);
  static StatusOr<std::unique_ptr<NNCellIndex>> Load(const std::string& path,
                                                     PageFile* file,
                                                     BufferPool* pool);

  // --- Durable mode --------------------------------------------------------

  struct DurableOptions {
    size_t page_size = 4096;   // used when creating a fresh durable index
    size_t pool_pages = 4096;  // cell-index buffer pool capacity
    // WAL group-commit granularity: fsync every N-th append. 1 = every
    // acknowledged Insert/Delete is durable before it returns; N > 1
    // trades the tail of < N acknowledged operations against fsync cost.
    size_t wal_group_sync = 1;
  };

  // What Open() found and did; for operators and the recovery tests.
  struct RecoveryInfo {
    bool snapshot_loaded = false;       // a snapshot existed and parsed
    bool created = false;               // neither snapshot nor usable WAL
    uint64_t snapshot_wal_lsn = 0;      // WAL position the snapshot covers
    uint64_t wal_records_replayed = 0;  // records re-applied after it
    uint64_t wal_records_skipped = 0;   // records the snapshot already held
    uint64_t wal_torn_bytes = 0;        // torn WAL tail truncated
  };

  // Opens (or creates) a durable index rooted at directory `dir`:
  // loads `dir`/snapshot.nncell if present, replays the WAL tail from
  // `dir`/wal.log (skipping records the snapshot already covers,
  // truncating a torn final record), and arms the WAL so every later
  // Insert/Delete is logged before it mutates the index. `dim` must match
  // an existing snapshot, or be the dimension of the new index when the
  // directory is empty (0 = "whatever the snapshot says", creation error
  // when there is none). Corruption anywhere -- snapshot or mid-WAL --
  // surfaces as a precise error, never as a silently wrong index.
  static StatusOr<std::unique_ptr<NNCellIndex>> Open(
      const std::string& dir, size_t dim, NNCellOptions options,
      DurableOptions dopts, RecoveryInfo* info = nullptr);
  static StatusOr<std::unique_ptr<NNCellIndex>> Open(const std::string& dir,
                                                     size_t dim,
                                                     NNCellOptions options) {
    return Open(dir, dim, std::move(options), DurableOptions(), nullptr);
  }

  // Folds the WAL into a fresh snapshot: atomically writes the snapshot
  // (recording the covered WAL position), then truncates the log. A crash
  // between the two steps is safe -- the next Open skips the already-
  // covered records by LSN. Durable mode only.
  Status Checkpoint();

  // True when this index was created by Open() and logs to a WAL.
  bool durable() const { return wal_ != nullptr; }

 private:
  // Candidate constraint points for `point` (not yet inserted) per the
  // configured algorithm; `self` is kInvalidId for new points or the id of
  // the point whose cell is being recomputed.
  std::vector<const double*> SelectCandidates(const double* point,
                                              uint64_t self) const;

  // Computes the decomposed MBR approximation of `owner`'s cell. Pure
  // read (candidate selection + LP solves): safe to run concurrently for
  // different owners as long as each call gets its own `stats`.
  std::vector<HyperRect> ComputeCellRects(const double* owner, uint64_t self,
                                          ApproxStats* stats) const;

  // Replaces the indexed rectangles of `id` with freshly computed ones.
  void RecomputeCell(uint64_t id);

  // True when the cell of `id` can shrink due to the new point `p`.
  bool CellAffectedBy(uint64_t id, const double* p) const;

  double SphereRadius() const;

  // Applies / inverts the sqrt(weight) isometry (identity when unweighted).
  std::vector<double> ToMetricSpace(const double* x) const;
  std::vector<double> FromMetricSpace(const std::vector<double>& x) const;

  // Registers the point in points_ / lookup (and, unless deferred for a
  // bulk load, the point tree); returns its id or an error (duplicate,
  // out of space, wrong dimension).
  StatusOr<uint64_t> RegisterPoint(const std::vector<double>& point,
                                   bool insert_into_point_tree);

  // Serializes the full snapshot image (header, metadata, both page
  // files, footer) recording `wal_lsn` as the WAL position it covers.
  Status SerializeSnapshot(std::string* out, uint64_t wal_lsn) const;

  // Validates and loads one snapshot image. All-or-nothing: `file` and
  // `pool` are only mutated after every checksum and structural check has
  // passed. `wal_lsn` receives the WAL position the snapshot covers.
  static StatusOr<std::unique_ptr<NNCellIndex>> LoadImage(
      const uint8_t* data, size_t size, PageFile* file, BufferPool* pool,
      uint64_t* wal_lsn);

  // Reads the page size out of a snapshot header (validating magic,
  // version and header checksum only) so Open can size the PageFile.
  static StatusOr<size_t> PeekSnapshotPageSize(const std::string& image);

  // Durable-mode write-ahead hooks (durability.cc): LogInsert/LogDelete
  // re-run the operation's preconditions and append its WAL record, so a
  // record is only ever logged for an operation that will succeed;
  // ReplayWalRecord re-applies one recovered record.
  Status LogInsert(const std::vector<double>& original);
  Status LogDelete(uint64_t id);
  Status ReplayWalRecord(const std::vector<uint8_t>& payload);

  size_t dim_;
  NNCellOptions options_;
  HyperRect space_;
  PointSet points_;
  CellApproximator approximator_;

  // Durable-mode storage, owned by the index (in-memory indexes borrow
  // the caller's pool instead and leave these null). Declared before
  // tree_ so the pool the tree flushes into outlives it.
  std::unique_ptr<PageFile> durable_file_;
  std::unique_ptr<BufferPool> durable_pool_;

  std::unique_ptr<RTreeCore> tree_;  // indexes the cell approximations

  // Workers for BulkBuild fan-out and QueryBatch; nullptr when the
  // resolved thread count is 1 (serial).
  std::unique_ptr<ThreadPool> thread_pool_;

  // Build-time point index: the paper's Point/Sphere strategies select
  // candidates by page rectangles of an index over the data points.
  std::unique_ptr<PageFile> point_file_;
  std::unique_ptr<BufferPool> point_pool_;
  std::unique_ptr<RTreeCore> point_tree_;

  // Shared engine of the approximate-tier overloads: certified /
  // bounded-effort best-first k-NN on point_tree_ (requires
  // approx.enabled(); the public overloads dispatch to the exact path
  // otherwise).
  StatusOr<std::vector<QueryResult>> ApproxTraversalQuery(
      const double* q_original, size_t k, const ApproxOptions& approx) const;

  std::vector<std::vector<HyperRect>> cell_rects_;  // per point id
  std::vector<bool> alive_;                          // tombstones
  size_t live_count_ = 0;
  std::map<std::vector<double>, uint64_t> point_lookup_;  // duplicate check
  NNCellBuildStats build_stats_;

  // Durable mode (set by Open): operations append here before mutating.
  std::unique_ptr<WriteAheadLog> wal_;
  std::string durable_dir_;
};

}  // namespace nncell

#endif  // NNCELL_NNCELL_NNCELL_INDEX_H_
