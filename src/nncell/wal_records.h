#ifndef NNCELL_NNCELL_WAL_RECORDS_H_
#define NNCELL_NNCELL_WAL_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/durable_format.h"
#include "storage/wire.h"

namespace nncell {
namespace walrec {

// Payload encoding of the durable index's WAL records (the framing --
// length, checksum, LSN -- lives in storage/wal.h; byte-level layout in
// docs/PERSISTENCE.md):
//   insert: u8 op = kWalOpInsert, u64 expected_id, u32 dim,
//           dim x f64 coordinates (original, pre-metric-transform space)
//   delete: u8 op = kWalOpDelete, u64 id
// Inserts carry the id the index must assign on replay; a mismatch means
// the log and the snapshot disagree and recovery fails loudly.

inline std::string EncodeInsert(uint64_t expected_id,
                                const std::vector<double>& point) {
  std::string payload;
  wire::PutU8(&payload, durable::kWalOpInsert);
  wire::PutU64(&payload, expected_id);
  wire::PutU32(&payload, static_cast<uint32_t>(point.size()));
  wire::PutBytes(&payload, point.data(), point.size() * sizeof(double));
  return payload;
}

inline std::string EncodeDelete(uint64_t id) {
  std::string payload;
  wire::PutU8(&payload, durable::kWalOpDelete);
  wire::PutU64(&payload, id);
  return payload;
}

struct Decoded {
  uint8_t op = 0;
  uint64_t id = 0;             // expected insert id, or the deleted id
  std::vector<double> point;   // insert only
};

inline Status Decode(const std::vector<uint8_t>& payload, Decoded* out) {
  wire::Reader r(payload.data(), payload.size());
  if (!r.GetU8(&out->op)) {
    return Status::InvalidArgument("wal record payload empty");
  }
  switch (out->op) {
    case durable::kWalOpInsert: {
      uint32_t dim = 0;
      if (!r.GetU64(&out->id) || !r.GetU32(&dim) ||
          dim > r.remaining() / sizeof(double)) {
        return Status::InvalidArgument("wal insert record truncated");
      }
      out->point.resize(dim);
      r.GetBytes(out->point.data(), dim * sizeof(double));
      break;
    }
    case durable::kWalOpDelete:
      if (!r.GetU64(&out->id)) {
        return Status::InvalidArgument("wal delete record truncated");
      }
      break;
    default:
      return Status::InvalidArgument("unknown wal record op " +
                                     std::to_string(out->op));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("wal record has trailing garbage");
  }
  return Status::OK();
}

}  // namespace walrec
}  // namespace nncell

#endif  // NNCELL_NNCELL_WAL_RECORDS_H_
