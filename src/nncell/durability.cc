// Durable mode of NNCellIndex: Open() recovers snapshot + WAL tail into a
// live index that write-ahead-logs every later Insert/Delete, and
// Checkpoint() folds the log back into a fresh snapshot. The recovery
// invariant (docs/PERSISTENCE.md): after a crash at any point, Open either
// reconstructs exactly the acknowledged operations or fails with a precise
// error -- never a silently wrong index.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "nncell/nncell_index.h"
#include "nncell/wal_records.h"
#include "storage/durable_format.h"
#include "storage/fs_util.h"
#include "storage/wal.h"

namespace nncell {

namespace {

struct DurabilityMetrics {
  metrics::Counter* replayed;
  metrics::Counter* skipped;
  metrics::Counter* checkpoints;
};

[[maybe_unused]] const DurabilityMetrics& Metrics() {
  static const DurabilityMetrics m = {
      metrics::Registry::Global().counter(metrics::kWalRecordsReplayed),
      metrics::Registry::Global().counter(metrics::kWalRecordsSkipped),
      metrics::Registry::Global().counter(metrics::kWalCheckpoints),
  };
  return m;
}

}  // namespace

Status NNCellIndex::LogInsert(const std::vector<double>& original) {
  // Re-run the Insert preconditions: a record must never be appended for
  // an operation the index would then reject (its replay would fail).
  if (original.size() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  std::vector<double> point = ToMetricSpace(original.data());
  if (!space_.ContainsPoint(point)) {
    return Status::OutOfRange("point outside the data space [0,1]^d");
  }
  if (point_lookup_.find(point) != point_lookup_.end()) {
    return Status::AlreadyExists("exact duplicate point");
  }
  return wal_->Append(walrec::EncodeInsert(points_.size(), original));
}

Status NNCellIndex::LogDelete(uint64_t id) {
  return wal_->Append(walrec::EncodeDelete(id));
}

Status NNCellIndex::ReplayWalRecord(const std::vector<uint8_t>& payload) {
  walrec::Decoded rec;
  NNCELL_RETURN_IF_ERROR(walrec::Decode(payload, &rec));
  switch (rec.op) {
    case durable::kWalOpInsert: {
      if (rec.point.size() != dim_) {
        return Status::InvalidArgument(
            "wal insert dimension " + std::to_string(rec.point.size()) +
            " does not match index dimension " + std::to_string(dim_));
      }
      if (rec.id != points_.size()) {
        return Status::Internal(
            "wal insert expects id " + std::to_string(rec.id) +
            " but the index would assign " + std::to_string(points_.size()) +
            " (snapshot and log disagree)");
      }
      StatusOr<uint64_t> id = Insert(rec.point);
      if (!id.ok()) return id.status();
      NNCELL_CHECK(*id == rec.id);
      return Status::OK();
    }
    case durable::kWalOpDelete:
      return Delete(rec.id);
    default:
      return Status::InvalidArgument("unknown wal record op " +
                                     std::to_string(rec.op));
  }
}

StatusOr<std::unique_ptr<NNCellIndex>> NNCellIndex::Open(
    const std::string& dir, size_t dim, NNCellOptions options,
    DurableOptions dopts, RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo& ri = info != nullptr ? *info : local;
  ri = RecoveryInfo{};

  NNCELL_RETURN_IF_ERROR(fs::EnsureDirectory(dir));
  const std::string snap_path =
      dir + "/" + std::string(durable::kSnapshotFileName);
  const std::string wal_path = dir + "/" + std::string(durable::kWalFileName);

  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
  uint64_t snap_lsn = 0;

  if (fs::PathExists(snap_path)) {
    auto data = fs::ReadFileToString(snap_path);
    if (!data.ok()) return data.status();
    auto page_size = PeekSnapshotPageSize(*data);
    if (!page_size.ok()) return page_size.status();
    file = std::make_unique<PageFile>(*page_size);
    pool = std::make_unique<BufferPool>(file.get(), dopts.pool_pages);
    auto loaded =
        LoadImage(reinterpret_cast<const uint8_t*>(data->data()),
                  data->size(), file.get(), pool.get(), &snap_lsn);
    if (!loaded.ok()) return loaded.status();
    index = std::move(*loaded);
    if (dim != 0 && dim != index->dim_) {
      return Status::InvalidArgument(
          "dimension mismatch: snapshot has " +
          std::to_string(index->dim_) + ", caller expects " +
          std::to_string(dim));
    }
    ri.snapshot_loaded = true;
    ri.snapshot_wal_lsn = snap_lsn;
  } else {
    if (dim == 0) {
      return Status::InvalidArgument(
          "no snapshot in " + dir +
          " and no dimension given to create a fresh index");
    }
    file = std::make_unique<PageFile>(dopts.page_size);
    pool = std::make_unique<BufferPool>(file.get(), dopts.pool_pages);
    index = std::make_unique<NNCellIndex>(pool.get(), dim, options);
  }

  // A snapshot that loaded implies every acknowledged record up to its LSN
  // is covered, so a WAL too damaged to even hold its header is a hard
  // error then (strict); without a snapshot, a headerless file can only be
  // the torn first creation and is recreated empty.
  WriteAheadLog::RecoverResult rec;
  auto wal = WriteAheadLog::Open(wal_path, snap_lsn, dopts.wal_group_sync,
                                 /*strict_header=*/ri.snapshot_loaded, &rec);
  if (!wal.ok()) return wal.status();
  ri.wal_torn_bytes = rec.torn_bytes;
  ri.created = !ri.snapshot_loaded && rec.created;

  if (!rec.created && rec.start_lsn > snap_lsn) {
    return Status::InvalidArgument(
        "wal starts at lsn " + std::to_string(rec.start_lsn) +
        " but the snapshot only covers lsn " + std::to_string(snap_lsn) +
        ": acknowledged operations are missing");
  }

  // Replay the tail the snapshot does not cover. Records at or below the
  // snapshot's LSN are the checkpoint crash window (snapshot written, log
  // not yet truncated) and are skipped by LSN, keeping replay idempotent.
  for (const auto& record : rec.records) {
    if (record.lsn <= snap_lsn) {
      ++ri.wal_records_skipped;
      continue;
    }
    Status st = index->ReplayWalRecord(record.payload);
    if (!st.ok()) {
      return Status(st.code(), "wal replay (lsn " +
                                   std::to_string(record.lsn) +
                                   "): " + st.message());
    }
    ++ri.wal_records_replayed;
  }
  NNCELL_METRIC_COUNT(Metrics().replayed, ri.wal_records_replayed);
  NNCELL_METRIC_COUNT(Metrics().skipped, ri.wal_records_skipped);

  index->durable_file_ = std::move(file);
  index->durable_pool_ = std::move(pool);
  index->wal_ = std::move(*wal);
  index->durable_dir_ = dir;
  return index;
}

Status NNCellIndex::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint() requires a durable index (use NNCellIndex::Open)");
  }
  // Push the group-commit tail so the snapshot's LSN is durable in the
  // log too; a poisoned WAL fails here and the operator must reopen.
  NNCELL_RETURN_IF_ERROR(wal_->Sync());
  const uint64_t lsn = wal_->last_lsn();
  std::string image;
  NNCELL_RETURN_IF_ERROR(SerializeSnapshot(&image, lsn));
  NNCELL_RETURN_IF_ERROR(fs::WriteFileAtomic(
      durable_dir_ + "/" + std::string(durable::kSnapshotFileName), image));
  // The crash window between snapshot and truncation: recovery skips the
  // now-covered records by LSN, so crashing here is safe (tested by the
  // crash matrix).
  switch (failpoint::Check("checkpoint.after_snapshot")) {
    case failpoint::Action::kCrash:
      failpoint::Crash();
    case failpoint::Action::kError:
      return Status::Internal("injected failure: checkpoint.after_snapshot");
    default:
      break;
  }
  NNCELL_RETURN_IF_ERROR(wal_->Truncate(lsn));
  NNCELL_METRIC_COUNT(Metrics().checkpoints, 1);
  return Status::OK();
}

}  // namespace nncell
