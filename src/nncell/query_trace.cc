#include "nncell/query_trace.h"

#include <cinttypes>
#include <cstdio>

namespace nncell {

namespace {

void AppendKV(std::string* out, const char* key, uint64_t v, bool comma) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  *out += buf;
}

}  // namespace

std::string QueryTrace::ToJson() const {
  std::string out = "{";
  AppendKV(&out, "candidates", candidates, true);
  AppendKV(&out, "distance_computations", distance_computations, true);
  AppendKV(&out, "logical_reads", logical_reads, true);
  AppendKV(&out, "physical_reads", physical_reads, true);
  out += "\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    const Stage& s = stages[i];
    char buf[160];
    // Stage timings are the only non-integers in the object; two decimals
    // keep the output diff-friendly without rounding real signal away.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"items\":%" PRIu64 ",\"micros\":%.2f,\"name\":\"%s\"}",
                  i == 0 ? "" : ",", s.items, s.micros, s.name.c_str());
    out += buf;
  }
  out += "],";
  out += "\"used_fallback\":";
  out += used_fallback ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace nncell
