#ifndef NNCELL_NNCELL_QUERY_TRACE_H_
#define NNCELL_NNCELL_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nncell {

// Opt-in per-query timeline. A caller passes a QueryTrace* into
// NNCellIndex::Query and gets back the stage-by-stage breakdown of that one
// query: the index probe (point query on the cell tree), the exact distance
// scan over the candidates, and -- in the rare numeric edge case -- the
// sequential fallback scan. Tracing is independent of the global metrics
// registry: it costs nothing unless a trace object is supplied, works even
// when metrics are compiled out, and never touches shared state beyond the
// buffer pool's (relaxed atomic) access counters.
//
// See docs/OPERATIONS.md for how to read a trace.
struct QueryTrace {
  struct Stage {
    std::string name;   // "index_probe" | "distance_scan" | "fallback_scan"
    double micros = 0;  // wall time of the stage
    uint64_t items = 0; // items handled (candidates found / distances done)
  };

  std::vector<Stage> stages;

  // Totals, mirrored from the stage list for convenience.
  uint64_t candidates = 0;             // candidate cells from the probe
  uint64_t distance_computations = 0;  // exact L2 evaluations
  bool used_fallback = false;

  // Buffer-pool deltas of the cell-index pool across the whole query.
  // Logical = Fetch calls, physical = cache misses. Under concurrent
  // queries these attribute the *pool-wide* traffic during this query's
  // window, exact when queries run one at a time.
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;

  void Clear() { *this = QueryTrace(); }

  // One stable JSON object (sorted keys, integers except stage timings).
  std::string ToJson() const;
};

// Monotonic stopwatch for trace stages.
class TraceTimer {
 public:
  TraceTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nncell

#endif  // NNCELL_NNCELL_QUERY_TRACE_H_
