#ifndef NNCELL_XTREE_XSPLIT_H_
#define NNCELL_XTREE_XSPLIT_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "rstar/node.h"

namespace nncell {

// X-tree directory split machinery [BKK 96].

// Overlap measure of a binary split: intersection volume over union volume
// of the two group MBRs (0 = overlap-free, 1 = identical).
double SplitOverlap(const HyperRect& a, const HyperRect& b);

// Searches all axes and sweep positions for the split with minimal overlap
// between the two groups, requiring at least `min_fill` entries per group.
// Returns nullopt when no balanced split exists (then the X-tree creates a
// supernode). When several splits achieve the minimal overlap, the most
// balanced one wins.
std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>>
OverlapMinimalSplit(std::vector<Entry> entries, size_t dim, size_t min_fill,
                    double* achieved_overlap);

}  // namespace nncell

#endif  // NNCELL_XTREE_XSPLIT_H_
