#include "xtree/xsplit.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "rstar/split.h"

namespace nncell {

double SplitOverlap(const HyperRect& a, const HyperRect& b) {
  double inter = HyperRect::OverlapVolume(a, b);
  if (inter <= 0.0) return 0.0;
  double uni = a.Volume() + b.Volume() - inter;
  if (uni <= 0.0) return 1.0;  // degenerate: fully coincident flat rects
  return inter / uni;
}

std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>>
OverlapMinimalSplit(std::vector<Entry> entries, size_t dim, size_t min_fill,
                    double* achieved_overlap) {
  const size_t n = entries.size();
  NNCELL_CHECK(n >= 2);
  size_t m = std::min(min_fill, n / 2);
  m = std::max<size_t>(m, 1);

  size_t best_axis = 0, best_split = 0;
  bool best_by_lower = true;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_balance = std::numeric_limits<double>::infinity();

  for (size_t axis = 0; axis < dim; ++axis) {
    for (bool by_lower : {true, false}) {
      std::stable_sort(entries.begin(), entries.end(),
                       [axis, by_lower](const Entry& a, const Entry& b) {
                         double ka =
                             by_lower ? a.rect.lo(axis) : a.rect.hi(axis);
                         double kb =
                             by_lower ? b.rect.lo(axis) : b.rect.hi(axis);
                         return ka < kb;
                       });
      std::vector<HyperRect> prefix(n), suffix(n);
      prefix[0] = entries[0].rect;
      for (size_t i = 1; i < n; ++i) {
        prefix[i] = HyperRect::Union(prefix[i - 1], entries[i].rect);
      }
      suffix[n - 1] = entries[n - 1].rect;
      for (size_t i = n - 1; i-- > 0;) {
        suffix[i] = HyperRect::Union(suffix[i + 1], entries[i].rect);
      }
      for (size_t k = m; k + m <= n; ++k) {
        double overlap = SplitOverlap(prefix[k - 1], suffix[k]);
        double balance =
            std::abs(static_cast<double>(k) - static_cast<double>(n - k));
        if (overlap < best_overlap - 1e-15 ||
            (overlap <= best_overlap + 1e-15 && balance < best_balance)) {
          best_overlap = std::min(overlap, best_overlap);
          best_balance = balance;
          best_axis = axis;
          best_split = k;
          best_by_lower = by_lower;
        }
      }
    }
  }

  if (best_split == 0) return std::nullopt;  // no balanced split possible

  std::stable_sort(entries.begin(), entries.end(),
                   [best_axis, best_by_lower](const Entry& a, const Entry& b) {
                     double ka = best_by_lower ? a.rect.lo(best_axis)
                                               : a.rect.hi(best_axis);
                     double kb = best_by_lower ? b.rect.lo(best_axis)
                                               : b.rect.hi(best_axis);
                     return ka < kb;
                   });
  if (achieved_overlap != nullptr) *achieved_overlap = best_overlap;
  std::vector<Entry> left(std::make_move_iterator(entries.begin()),
                          std::make_move_iterator(entries.begin() + best_split));
  std::vector<Entry> right(std::make_move_iterator(entries.begin() + best_split),
                           std::make_move_iterator(entries.end()));
  return std::make_pair(std::move(left), std::move(right));
}

}  // namespace nncell
