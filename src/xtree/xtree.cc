#include "xtree/xtree.h"

#include <sstream>

#include "common/metrics.h"
#include "common/metrics_names.h"
#include "rstar/split.h"
#include "xtree/xsplit.h"

namespace nncell {

XTree::XTree(BufferPool* pool, TreeOptions options)
    : RTreeCore(pool, options) {
  NNCELL_CHECK(options.max_supernode_pages >= 1);
}

size_t XTree::MaxEntries(const Node& node) const {
  // A node may fill its current page span before overflow treatment runs.
  return store().Capacity(node.is_leaf, node.page_span());
}

std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>>
XTree::SplitNode(const Node& node) {
  const size_t dim = options().dim;
  const size_t min_fill = MinFill(node.is_leaf);

  // Data nodes always use the R* topological split (the X-tree changes the
  // directory only).
  if (node.is_leaf) {
    return RStarSplit(node.entries, dim, min_fill);
  }

  // 1. Topological (R*) split attempt.
  auto topo = RStarSplit(node.entries, dim, min_fill);
  HyperRect left_mbr = MbrOfRange(topo.first, 0, topo.first.size(), dim);
  HyperRect right_mbr = MbrOfRange(topo.second, 0, topo.second.size(), dim);
  if (SplitOverlap(left_mbr, right_mbr) <= options().max_overlap) {
    return topo;
  }

  // 2. Overlap-minimal split attempt.
  double achieved = 1.0;
  auto minimal =
      OverlapMinimalSplit(node.entries, dim, min_fill, &achieved);
  if (minimal.has_value() && achieved <= options().max_overlap) {
    return minimal;
  }

  // 3. Supernode: grow instead of splitting, as long as the budget allows.
  if (node.page_span() < options().max_supernode_pages) {
    ++supernode_events_;
    [[maybe_unused]] static metrics::Counter* const supernode_counter =
        metrics::Registry::Global().counter(metrics::kIndexSupernodeEvents);
    NNCELL_METRIC_COUNT(supernode_counter, 1);
    return std::nullopt;
  }

  // Budget exhausted: fall back to the least bad split available.
  if (minimal.has_value()) return minimal;
  return topo;
}

std::string XTree::ValidateNode(const Node& node, PageId pid,
                                bool /*is_root*/) const {
  std::ostringstream err;
  if (node.is_leaf && node.page_span() != 1) {
    err << "node " << pid << ": data node became a supernode (spans "
        << node.page_span() << " pages)";
    return err.str();
  }
  if (node.page_span() > options().max_supernode_pages) {
    err << "node " << pid << ": supernode spans " << node.page_span()
        << " pages, budget is " << options().max_supernode_pages;
    return err.str();
  }
  if (node.page_span() > 1 &&
      node.entries.size() <= store().Capacity(node.is_leaf, 1)) {
    err << "node " << pid << ": supernode holds only " << node.entries.size()
        << " entries, which fit a single page";
    return err.str();
  }
  return "";
}

}  // namespace nncell
