#ifndef NNCELL_XTREE_XTREE_H_
#define NNCELL_XTREE_XTREE_H_

#include <optional>
#include <utility>
#include <vector>

#include "rstar/rtree_core.h"

namespace nncell {

// The X-tree [BKK 96]: an R*-tree variant built for high-dimensional data.
// Directory splits that would introduce more than max_overlap overlap are
// replaced by an overlap-minimal split; when no balanced overlap-minimal
// split exists the node becomes a supernode spanning multiple pages instead
// of being split. This keeps the directory (nearly) overlap-free, which is
// what makes it the strongest baseline in the paper's evaluation.
class XTree : public RTreeCore {
 public:
  XTree(BufferPool* pool, TreeOptions options);

  // Number of supernode-growth decisions taken (for tests/benchmarks).
  size_t supernode_events() const { return supernode_events_; }

 protected:
  size_t MaxEntries(const Node& node) const override;

  std::optional<std::pair<std::vector<Entry>, std::vector<Entry>>> SplitNode(
      const Node& node) override;

  // Supernode invariants (checked by Validate): data nodes never become
  // supernodes, directory supernodes respect the configured page budget,
  // and a multi-page node genuinely needs its span (a supernode that fits
  // one page should have been shrunk on its last Write).
  std::string ValidateNode(const Node& node, PageId pid,
                           bool is_root) const override;

 private:
  size_t supernode_events_ = 0;
};

}  // namespace nncell

#endif  // NNCELL_XTREE_XTREE_H_
