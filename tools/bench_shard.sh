#!/usr/bin/env bash
# Sharded serving bench harness: nncell_server --shards=K + bench/loadgen,
# gated by BENCH_shard.json.
#
#   tools/bench_shard.sh [--quick] [--update] [--build-dir DIR]
#
# Sweeps the shard count K over fresh servers (K=0 is the plain unsharded
# backend; full sweep 0 1 2 4 8, quick sweep 0 4) and runs the same
# deterministic single-connection workload against each. Three gates:
#
#   * per-K exact: each scenario's integer results (checksum, op counts)
#     equal the committed baseline -- one connection + fixed seed makes
#     the response stream a pure function of the flags.
#   * cross-K bit-identity: the id_checksum (a hash over result ids only)
#     must be IDENTICAL across every K including the unsharded K=0 run.
#     This is the scatter-gather merge contract of docs/SHARDING.md
#     measured over the wire: shard count changes fan-out and candidate
#     counts, never answers.
#   * conservation: each server's DRAINED counters satisfy
#     accepted == completed + rejected with zero malformed frames.
#
# Per-K fan-out metrics (shard.query.probes / pruned) are pulled from
# STATS_JSON and reported, never gated (they are workload-shape numbers,
# not invariants). Wall-clock numbers are reported, never gated.
# --update rewrites BENCH_shard.json from a full run.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
UPDATE=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --update) UPDATE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--update] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD_DIR" ]]; then
  for d in build-dev build; do
    if [[ -d "$d" ]]; then BUILD_DIR="$d"; break; fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -d "$BUILD_DIR" ]]; then
  echo "no build directory found (configure with: cmake --preset dev)" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target nncell_server loadgen

SCRATCH=$(mktemp -d)
SRV_PID=""
cleanup() {
  if [[ -n "$SRV_PID" ]] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill -KILL "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

LOADGEN="$BUILD_DIR/bench/loadgen"
SWEEP="0 1 2 4 8"
if [[ "$QUICK" == 1 ]]; then SWEEP="0 4"; fi

SCENARIOS=""
SERVERS=""
for K in $SWEEP; do
  SOCK="$SCRATCH/shard$K.sock"
  SRV_LOG="$SCRATCH/server$K.log"
  SHARD_FLAG=""
  if [[ "$K" != 0 ]]; then SHARD_FLAG="--shards=$K"; fi
  # shellcheck disable=SC2086
  "$BUILD_DIR/tools/nncell_server" "$SCRATCH/index$K" --socket="$SOCK" \
    --dim=16 $SHARD_FLAG >"$SRV_LOG" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 100); do
    [[ -S "$SOCK" ]] && grep -q READY "$SRV_LOG" && break
    sleep 0.1
  done
  if ! grep -q READY "$SRV_LOG"; then
    echo "server (K=$K) failed to start:" >&2
    cat "$SRV_LOG" >&2
    exit 1
  fi

  # Deterministic workload: identical flags for every K except the
  # self-describing --shards label.
  RUN_JSON=$("$LOADGEN" --socket="$SOCK" --connections=1 --ops=400 \
    --preload=128 --dim=16 --mix=90:8:2 --zipf=0.99 --seed=7 \
    --label="shard$K" --shards="$K")

  # Fan-out observability straight off the live server (reported only).
  STATS_JSON=$("$LOADGEN" --socket="$SOCK" --stats)

  kill -TERM "$SRV_PID"
  wait "$SRV_PID"
  SRV_PID=""
  DRAINED=$(grep DRAINED "$SRV_LOG")
  ACCEPTED=$(sed -nE 's/.*accepted=([0-9]+).*/\1/p' <<<"$DRAINED")
  COMPLETED=$(sed -nE 's/.*completed=([0-9]+).*/\1/p' <<<"$DRAINED")
  REJECTED=$(sed -nE 's/.*rejected=([0-9]+).*/\1/p' <<<"$DRAINED")
  MALFORMED=$(sed -nE 's/.*malformed=([0-9]+).*/\1/p' <<<"$DRAINED")
  CONSERVED=false
  if [[ $((COMPLETED + REJECTED)) -eq "$ACCEPTED" ]]; then CONSERVED=true; fi

  PROBES=$(python3 -c 'import json,sys; d=json.loads(sys.argv[1]); print(int(d["metrics"].get("shard.query.probes", 0)))' "$STATS_JSON")
  PRUNED=$(python3 -c 'import json,sys; d=json.loads(sys.argv[1]); print(int(d["metrics"].get("shard.query.pruned", 0)))' "$STATS_JSON")

  ROW=$(python3 -c '
import json, sys
run = json.loads(sys.argv[1])
run["server"] = {"accepted": int(sys.argv[2]), "completed": int(sys.argv[3]),
                 "conservation_ok": sys.argv[4] == "true",
                 "malformed": int(sys.argv[5]), "rejected": int(sys.argv[6])}
run["shard_metrics"] = {"probes": int(sys.argv[7]), "pruned": int(sys.argv[8])}
print(json.dumps(run, sort_keys=True))
' "$RUN_JSON" "$ACCEPTED" "$COMPLETED" "$CONSERVED" "$MALFORMED" "$REJECTED" \
    "$PROBES" "$PRUNED")

  if [[ -n "$SCENARIOS" ]]; then SCENARIOS="$SCENARIOS,"; fi
  SCENARIOS="$SCENARIOS$ROW"
done

OUT="$BUILD_DIR/bench_shard_current.json"
printf '{"scenarios":[%s]}\n' "$SCENARIOS" >"$OUT"

if [[ "$UPDATE" == 1 ]]; then
  if [[ "$QUICK" == 1 ]]; then
    echo "--update requires a full run (the baseline carries the full sweep)" >&2
    exit 2
  fi
  python3 -c 'import json,sys; doc=json.load(open(sys.argv[1])); json.dump(doc, open(sys.argv[1],"w"), indent=1, sort_keys=True)' "$OUT"
  cp "$OUT" BENCH_shard.json
  echo "BENCH_shard.json updated"
  exit 0
fi

python3 tools/bench_shard_diff.py BENCH_shard.json "$OUT"
