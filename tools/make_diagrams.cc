// make_diagrams -- regenerates the paper's illustrative figures as SVG:
//   fig1_voronoi.svg        order-2 Voronoi diagram + NN-diagram (Fig. 1)
//   fig2_distributions.svg  NN-cells and MBR approximations for uniform,
//                           grid and sparse data (Fig. 2 a-f)
//   fig6_decomposition.svg  decomposing an oblique cell along each axis
//                           (Fig. 6 a-c)
//
//   $ ./build/tools/make_diagrams [output_dir]

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/point_set.h"
#include "common/rng.h"
#include "data/generators.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "geom/decomposition.h"
#include "geom/voronoi2d.h"

namespace {

using namespace nncell;

// Minimal SVG canvas: world coordinates [0,1]^2 per panel, mapped into a
// grid of panels with labels.
class SvgCanvas {
 public:
  SvgCanvas(int panels_x, int panels_y, int panel_px = 260, int margin = 40)
      : panels_x_(panels_x), panel_px_(panel_px), margin_(margin) {
    width_ = panels_x * (panel_px + margin) + margin;
    height_ = panels_y * (panel_px + margin + 20) + margin;
    body_ += "<rect width='100%' height='100%' fill='white'/>\n";
  }

  void StartPanel(int ix, int iy, const std::string& title) {
    ox_ = margin_ + ix * (panel_px_ + margin_);
    oy_ = margin_ + iy * (panel_px_ + margin_ + 20);
    Rectangle(HyperRect({0.0, 0.0}, {1.0, 1.0}), "none", "#333", 1.5);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "<text x='%.1f' y='%.1f' font-family='sans-serif' "
                  "font-size='13' fill='#222'>%s</text>\n",
                  static_cast<double>(ox_),
                  static_cast<double>(oy_ + panel_px_ + 16), title.c_str());
    body_ += buf;
  }

  void Polygon(const Polygon2D& poly, const std::string& fill,
               const std::string& stroke, double width = 1.0,
               double opacity = 1.0) {
    if (poly.IsEmpty()) return;
    std::string points;
    for (const auto& v : poly.vertices) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f,%.2f ", X(v[0]), Y(v[1]));
      points += buf;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "<polygon points='%s' fill='%s' stroke='%s' "
                  "stroke-width='%.2f' fill-opacity='%.2f'/>\n",
                  points.c_str(), fill.c_str(), stroke.c_str(), width,
                  opacity);
    body_ += buf;
  }

  void Rectangle(const HyperRect& r, const std::string& fill,
                 const std::string& stroke, double width = 1.0,
                 double opacity = 1.0) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' "
                  "fill='%s' stroke='%s' stroke-width='%.2f' "
                  "fill-opacity='%.2f'/>\n",
                  X(r.lo(0)), Y(r.hi(1)), (r.hi(0) - r.lo(0)) * panel_px_,
                  (r.hi(1) - r.lo(1)) * panel_px_, fill.c_str(),
                  stroke.c_str(), width, opacity);
    body_ += buf;
  }

  void Point(double x, double y, const std::string& fill, double radius = 3) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "<circle cx='%.2f' cy='%.2f' r='%.1f' fill='%s'/>\n", X(x),
                  Y(y), radius, fill.c_str());
    body_ += buf;
  }

  bool Save(const std::string& path) const {
    std::ofstream out(path);
    if (!out.is_open()) return false;
    out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width_
        << "' height='" << height_ << "'>\n"
        << body_ << "</svg>\n";
    return out.good();
  }

 private:
  double X(double wx) const { return ox_ + wx * panel_px_; }
  double Y(double wy) const { return oy_ + (1.0 - wy) * panel_px_; }

  int panels_x_, panel_px_, margin_;
  int width_, height_;
  int ox_ = 0, oy_ = 0;
  std::string body_;
};

std::vector<const double*> AllOthers(const PointSet& pts, size_t skip) {
  std::vector<const double*> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i != skip) out.push_back(pts[i]);
  }
  return out;
}

void DrawNNCells(SvgCanvas& svg, const PointSet& pts) {
  for (size_t i = 0; i < pts.size(); ++i) {
    Polygon2D cell =
        ComputeNNCell2D(pts[i], AllOthers(pts, i), HyperRect::UnitCube(2));
    svg.Polygon(cell, "none", "#4466aa", 1.0);
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    svg.Point(pts[i][0], pts[i][1], "#cc3333");
  }
}

void DrawMbrs(SvgCanvas& svg, const PointSet& pts) {
  CellApproximator approx(2, HyperRect::UnitCube(2));
  for (size_t i = 0; i < pts.size(); ++i) {
    HyperRect mbr = approx.ApproximateMbr(pts[i], AllOthers(pts, i));
    svg.Rectangle(mbr, "#88aadd", "#335588", 1.0, 0.15);
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    svg.Point(pts[i][0], pts[i][1], "#cc3333");
  }
}

void MakeFig1(const std::string& dir) {
  // Paper Fig. 1: order-2 Voronoi diagram (a) and NN-diagram (b).
  PointSet pts = GenerateUniform(9, 2, 12);
  SvgCanvas svg(2, 1);
  svg.StartPanel(0, 0, "(a) Voronoi diagram of order 2");
  std::vector<const double*> sites;
  for (size_t i = 0; i < pts.size(); ++i) sites.push_back(pts[i]);
  const char* fills[] = {"#e8f0fe", "#fef3e8", "#e8fee9", "#fee8f4",
                         "#f4e8fe", "#feffe8"};
  int color = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      Polygon2D cell =
          ComputeOrderMCell2D(sites, {i, j}, HyperRect::UnitCube(2));
      if (cell.IsEmpty()) continue;
      svg.Polygon(cell, fills[color++ % 6], "#4466aa", 0.8, 0.9);
    }
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    svg.Point(pts[i][0], pts[i][1], "#cc3333");
  }
  svg.StartPanel(1, 0, "(b) NN-diagram (order-1 cells)");
  DrawNNCells(svg, pts);
  svg.Save(dir + "/fig1_voronoi.svg");
}

void MakeFig2(const std::string& dir) {
  // Paper Fig. 2: NN-cells and MBR approximations under three
  // distributions.
  SvgCanvas svg(2, 3);
  PointSet uniform = GenerateUniform(16, 2, 3);
  svg.StartPanel(0, 0, "(a) uniform data: NN-cells");
  DrawNNCells(svg, uniform);
  svg.StartPanel(1, 0, "(b) uniform data: MBR approximations");
  DrawMbrs(svg, uniform);

  PointSet grid = GenerateGrid(4, 2, 0.0, 1);
  svg.StartPanel(0, 1, "(c) multidim. uniform (grid): NN-cells");
  DrawNNCells(svg, grid);
  svg.StartPanel(1, 1, "(d) grid: MBRs == cells, no overlap");
  DrawMbrs(svg, grid);

  PointSet sparse = GenerateSparse(5, 2, 7);
  svg.StartPanel(0, 2, "(e) sparse data: NN-cells");
  DrawNNCells(svg, sparse);
  svg.StartPanel(1, 2, "(f) sparse: MBRs cover most of the space");
  DrawMbrs(svg, sparse);
  svg.Save(dir + "/fig2_distributions.svg");
}

void MakeFig6(const std::string& dir) {
  // Paper Fig. 6: decomposing an oblique cell. The diagonal neighbor pair
  // makes the center cell oblique; decomposition along the oblique
  // dimension shrinks the summed approximation volume.
  PointSet pts(2);
  pts.Add({0.45, 0.45});  // the oblique cell's owner
  pts.Add({0.8, 0.8});
  pts.Add({0.15, 0.1});
  auto others = AllOthers(pts, 0);
  CellApproximator approx(2, HyperRect::UnitCube(2));
  HyperRect full = approx.ApproximateMbr(pts[0], others);

  SvgCanvas svg(3, 1);
  svg.StartPanel(0, 0, "(a) an oblique NN-cell and its MBR");
  svg.Rectangle(full, "#88aadd", "#335588", 1.2, 0.15);
  DrawNNCells(svg, pts);

  DecompositionOptions opts;
  opts.max_partitions = 2;
  opts.max_split_dims = 1;
  const char* titles[] = {"(b) decomposition in x-direction",
                          "(c) decomposition in y-direction"};
  for (int axis = 0; axis < 2; ++axis) {
    svg.StartPanel(1 + axis, 0, titles[axis]);
    // Force the split axis by slicing the full MBR manually.
    double mid = 0.5 * (full.lo(axis) + full.hi(axis));
    HyperRect lo_half = full, hi_half = full;
    lo_half.hi(axis) = mid;
    hi_half.lo(axis) = mid;
    for (const HyperRect& clip : {lo_half, hi_half}) {
      HyperRect piece = approx.ApproximateClippedMbr(pts[0], others, clip);
      if (!piece.IsEmpty()) {
        svg.Rectangle(piece, "#88dd99", "#338855", 1.2, 0.25);
      }
    }
    DrawNNCells(svg, pts);
  }
  svg.Save(dir + "/fig6_decomposition.svg");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : ".";
  MakeFig1(dir);
  MakeFig2(dir);
  MakeFig6(dir);
  std::printf(
      "wrote %s/fig1_voronoi.svg, fig2_distributions.svg, "
      "fig6_decomposition.svg\n",
      dir.c_str());
  return 0;
}
