#!/usr/bin/env python3
"""Gate a bench_recall run against the committed BENCH_recall.json baseline.

Two layers of gating, both over deterministic integers only (wall times
are recorded for the human reader and never compared):

 1. Bit-identity with the baseline: per dimension config, the exact-mode
    identity counter (`exact_match` must also equal the query count: the
    approximate entry points answered bit-identically to the exact tier
    for every query), the exact-answer checksum, and the recall@1 /
    recall@10 hit counts of every epsilon- and budget-sweep point. Under
    the FP-determinism contract (docs/KERNELS.md) these are a pure
    function of the benched flags, so any drift is a behavior change.

 2. The recall floor of docs/APPROXIMATE.md: in the *current* run,
    recall@10 at the documented default epsilon must be >= 0.95 at every
    dimension. This keeps the default tuning honest even when the
    baseline is being regenerated (--update self-gates through this
    script with baseline == current).

Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

RECALL_FLOOR = 0.95


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {c["name"]: c for c in doc["configs"]}


def sweep_points(cfg):
    """Yields (label, point) for every sweep point of one config."""
    for p in cfg.get("epsilon_sweep", []):
        yield f"eps={p['epsilon']}", p
    for p in cfg.get("budget_sweep", []):
        yield f"budget={p['max_leaf_visits']}", p


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_recall.json")
    ap.add_argument("current", help="freshly produced bench_recall output")
    args = ap.parse_args()

    base_doc, committed = load(args.baseline)
    cur_doc, current = load(args.current)

    queries = cur_doc["queries"]
    recall_k = cur_doc["recall_k"]
    default_eps = cur_doc["default_epsilon"]
    failures = []
    compared = 0

    for name, cur in sorted(current.items()):
        # Exact-mode bit-identity is an absolute invariant of the current
        # run, not just a diff against the baseline.
        if cur["exact_match"] != queries:
            failures.append(
                f"{name}: exact_match {cur['exact_match']} != {queries} "
                f"(approximate entry points diverged from the exact tier)")
        ref = committed.get(name)
        if ref is None:
            print(f"  {name}: not in committed baseline, skipped")
            continue
        compared += 1
        if cur["exact_checksum"] != ref["exact_checksum"]:
            failures.append(
                f"{name}: exact_checksum {cur['exact_checksum']} != "
                f"committed {ref['exact_checksum']} (exact answers changed "
                f"bit-for-bit)")
        ref_points = dict(sweep_points(ref))
        for label, p in sweep_points(cur):
            rp = ref_points.get(label)
            if rp is None:
                print(f"  {name} {label}: not in baseline, skipped")
                continue
            for field in ("recall1_hits", "recall10_hits"):
                if p[field] != rp[field]:
                    failures.append(
                        f"{name} {label}: {field} {p[field]} != committed "
                        f"{rp[field]}")
        # The floor applies to the current run at the default epsilon.
        for p in cur.get("epsilon_sweep", []):
            if p["epsilon"] != default_eps:
                continue
            recall10 = p["recall10_hits"] / (queries * recall_k)
            status = "ok" if recall10 >= RECALL_FLOOR else "BELOW FLOOR"
            print(f"  {name}: recall@10 at default eps={default_eps} is "
                  f"{recall10:.4f} (floor {RECALL_FLOOR}) [{status}]")
            if recall10 < RECALL_FLOOR:
                failures.append(
                    f"{name}: recall@10 {recall10:.4f} at default epsilon "
                    f"{default_eps} below floor {RECALL_FLOOR}")

    if compared == 0:
        print("no overlapping configs between baseline and current run")
        return 1
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} config(s) match the baseline; recall floor "
          f"holds at eps={default_eps}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
