#!/usr/bin/env bash
# Serving bench harness: nncell_server + bench/loadgen, gated by
# BENCH_serve.json.
#
#   tools/bench_serve.sh [--quick] [--update] [--build-dir DIR]
#
# Starts a fresh server on a scratch durable index and runs two scenarios:
#
#   det  -- 1 connection, fixed op count, fixed seed. The response stream
#           is deterministic, so the integer checksum and per-type counts
#           gate EXACTLY against the committed baseline.
#   load -- 4 connections, closed loop (saturation). Only invariants gate:
#           zero errors, zero malformed frames, conservation. Skipped by
#           --quick. Wall-clock numbers are reported, never gated.
#
# After the scenarios the server is drained with SIGTERM and its DRAINED
# counters feed the conservation check (accepted == completed + rejected).
# --update rewrites BENCH_serve.json from a full run.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
UPDATE=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --update) UPDATE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--update] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD_DIR" ]]; then
  for d in build-dev build; do
    if [[ -d "$d" ]]; then BUILD_DIR="$d"; break; fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -d "$BUILD_DIR" ]]; then
  echo "no build directory found (configure with: cmake --preset dev)" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target nncell_server loadgen

SCRATCH=$(mktemp -d)
SOCK="$SCRATCH/serve.sock"
SRV_LOG="$SCRATCH/server.log"
SRV_PID=""
cleanup() {
  if [[ -n "$SRV_PID" ]] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill -KILL "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

"$BUILD_DIR/tools/nncell_server" "$SCRATCH/index" --socket="$SOCK" --dim=4 \
  >"$SRV_LOG" 2>&1 &
SRV_PID=$!
for _ in $(seq 100); do
  [[ -S "$SOCK" ]] && grep -q READY "$SRV_LOG" && break
  sleep 0.1
done
if ! grep -q READY "$SRV_LOG"; then
  echo "server failed to start:" >&2
  cat "$SRV_LOG" >&2
  exit 1
fi

LOADGEN="$BUILD_DIR/bench/loadgen"

# det: identical parameters in quick and full mode -- the committed
# checksum must match byte-for-byte either way.
DET_JSON=$("$LOADGEN" --socket="$SOCK" --connections=1 --ops=400 \
  --preload=100 --mix=90:8:2 --zipf=0.99 --seed=7 --label=det)

LOAD_JSON=""
if [[ "$QUICK" == 0 ]]; then
  LOAD_JSON=$("$LOADGEN" --socket="$SOCK" --connections=4 --ops=2000 \
    --preload=100 --mix=80:15:5 --zipf=0.99 --seed=11 --label=load)
fi

kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""
DRAINED=$(grep DRAINED "$SRV_LOG")
ACCEPTED=$(sed -nE 's/.*accepted=([0-9]+).*/\1/p' <<<"$DRAINED")
COMPLETED=$(sed -nE 's/.*completed=([0-9]+).*/\1/p' <<<"$DRAINED")
REJECTED=$(sed -nE 's/.*rejected=([0-9]+).*/\1/p' <<<"$DRAINED")
MALFORMED=$(sed -nE 's/.*malformed=([0-9]+).*/\1/p' <<<"$DRAINED")
CONSERVED=false
if [[ $((COMPLETED + REJECTED)) -eq "$ACCEPTED" ]]; then CONSERVED=true; fi

OUT="$BUILD_DIR/bench_serve_current.json"
{
  echo '{"scenarios":['
  echo -n "$DET_JSON"
  if [[ -n "$LOAD_JSON" ]]; then
    echo ','
    echo -n "$LOAD_JSON"
  fi
  echo '],'
  echo "\"server\":{\"accepted\":$ACCEPTED,\"completed\":$COMPLETED,\"conservation_ok\":$CONSERVED,\"malformed\":$MALFORMED,\"rejected\":$REJECTED}}"
} >"$OUT"

if [[ "$UPDATE" == 1 ]]; then
  if [[ "$QUICK" == 1 ]]; then
    echo "--update requires a full run (the baseline carries both scenarios)" >&2
    exit 2
  fi
  python3 -c 'import json,sys; doc=json.load(open(sys.argv[1])); json.dump(doc, open(sys.argv[1],"w"), indent=1, sort_keys=True)' "$OUT"
  cp "$OUT" BENCH_serve.json
  echo "BENCH_serve.json updated"
  exit 0
fi

python3 tools/bench_serve_diff.py BENCH_serve.json "$OUT"
