#!/usr/bin/env python3
"""Gate a bench_shard run against the committed BENCH_shard.json baseline.

Three gates (see tools/bench_shard.sh for the harness side):

  * per-K exact -- every scenario present in the current run must match
    the committed scenario of the same label on its deterministic integer
    results: checksum, id_checksum, and the per-type op counts, with every
    op succeeding (ok == sent, errors == rejected == 0).
  * cross-K bit-identity -- id_checksum must be identical across all
    scenarios of the current run, sharded and unsharded alike. This is
    the scatter-gather merge contract of docs/SHARDING.md: shard count
    may change fan-out, candidate counts and timing, never which point
    is the answer.
  * conservation -- each scenario's server block must satisfy
    accepted == completed + rejected with zero malformed frames.

A quick run carries a subset of the sweep; scenarios absent from the
current run are skipped, unknown labels fail. Fan-out metrics and
wall-clock numbers are reported, never gated.

Exits 0 when everything passes, 1 otherwise.
"""

import json
import sys

EXACT_KEYS = ("checksum", "id_checksum", "queries", "inserts", "deletes",
              "sent")


def scenarios(doc):
    return {s["label"]: s for s in doc["scenarios"]}


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BENCH_shard.json current.json",
              file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = scenarios(json.load(f))
    with open(sys.argv[2]) as f:
        current = scenarios(json.load(f))

    failures = []
    id_checksums = {}

    for label, scen in sorted(current.items()):
        ref = committed.get(label)
        if ref is None:
            failures.append(f"{label}: not in committed baseline")
            continue
        res, ref_res = scen["results"], ref["results"]
        for key in EXACT_KEYS:
            if res[key] != ref_res[key]:
                failures.append(
                    f"{label}: {key} = {res[key]}, baseline {ref_res[key]}")
        if res["ok"] != res["sent"]:
            failures.append(
                f"{label}: ok {res['ok']} != sent {res['sent']}")
        for key in ("errors", "rejected"):
            if res[key] != 0:
                failures.append(f"{label}: {key} = {res[key]}, want 0")
        srv = scen["server"]
        if not srv["conservation_ok"]:
            failures.append(
                f"{label}: conservation violated: accepted "
                f"{srv['accepted']} != completed {srv['completed']} + "
                f"rejected {srv['rejected']}")
        if srv["malformed"] != 0:
            failures.append(
                f"{label}: malformed = {srv['malformed']}, want 0")
        id_checksums[label] = res["id_checksum"]
        sm = scen.get("shard_metrics", {})
        print(f"  {label}: checksum {res['checksum']}, "
              f"{res['ok']}/{res['sent']} ops, "
              f"probes {sm.get('probes', 0)} / pruned {sm.get('pruned', 0)}, "
              f"p99 {res['latency_us']['p99']}us (not gated)")

    if len(set(id_checksums.values())) > 1:
        failures.append(
            "cross-K bit-identity violated: id_checksum differs across the "
            f"sweep: {id_checksums}")
    elif id_checksums:
        print(f"  cross-K: id_checksum {next(iter(id_checksums.values()))} "
              f"identical across {sorted(id_checksums)}")

    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("sharded serving bench gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
