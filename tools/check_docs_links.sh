#!/usr/bin/env bash
# Documentation consistency gate, run by CI (docs-check job) and as the
# `tool_docs_check` ctest:
#
#  1. Every relative markdown link in every tracked *.md file must point at
#     an existing file or directory.
#  2. docs/METRICS.md and src/common/metrics_names.h must agree exactly:
#     every registered metric name is documented, and every documented
#     metric name exists in the header (the single source of truth).
#  3. docs/PERSISTENCE.md and src/storage/durable_format.h must agree:
#     every on-disk format constant (magic, version, size, op code, file
#     name) is documented with its exact value, and every constant the
#     document names still exists in the persistence-layer headers.
#  4. docs/SERVING.md and src/server/protocol.h must agree the same way
#     PERSISTENCE.md does with durable_format.h: every wire-protocol
#     constant is documented with its exact value, and every constant the
#     document names still exists.
#  5. docs/STATIC_ANALYSIS.md's lint-check table and
#     `tools/nncell_lint.py --list-checks` must agree exactly: every
#     registered check is documented and every documented check exists.
#  6. docs/KERNELS.md and src/common/kernels/kernels.h must agree: every
#     layout constant in the kernel header (`kLaneWidth = 4`) is
#     documented with its exact value, and every constant the document
#     names still exists in the kernel headers.
#  7. docs/SHARDING.md and src/shard/shard_format.h must agree the same
#     way PERSISTENCE.md does with durable_format.h: every sharded-index
#     format constant (magic, version, size, op code, file/dir name) is
#     documented with its exact value, and every constant the document
#     names still exists.
#  8. docs/APPROXIMATE.md and src/common/approx.h must agree: every
#     approximate-tier constant (default epsilon, budget sentinel) is
#     documented with its exact value, and every constant the document
#     names still exists.
#
# Usage: check_docs_links.sh [repo-root]

set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || exit 2

fail=0

# --- 1. dead relative links ------------------------------------------------

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  md_files=$(git ls-files '*.md')
else
  md_files=$(find . -name '*.md' -not -path './build*' -not -path './.git/*' \
             | sed 's|^\./||')
fi

for f in $md_files; do
  # Inline links: [text](target). Targets split off any #anchor suffix.
  links=$(grep -oE '\]\([^)]+\)' "$f" 2>/dev/null | sed -e 's/^](//' -e 's/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ "${target#/}" != "$target" ]; then
      resolved=".$target"            # leading / = repo-root relative
    else
      resolved="$(dirname "$f")/$target"
    fi
    if [ ! -e "$resolved" ]; then
      echo "DEAD LINK: $f -> $link (resolved: $resolved)"
      fail=1
    fi
  done
done

# --- 2. METRICS.md <-> metrics_names.h ------------------------------------

names_header="src/common/metrics_names.h"
names_doc="docs/METRICS.md"

for required in "$names_header" "$names_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Registered names: the quoted dotted lowercase strings in the header
# (name constants only; units and help texts never match the pattern).
src_names=$(grep -oE '"[a-z0-9_]+(\.[a-z0-9_]+)+"' "$names_header" \
            | tr -d '"' | sort -u)
# Documented names: backticked dotted lowercase tokens in METRICS.md.
doc_names=$(grep -oE '`[a-z0-9_]+(\.[a-z0-9_]+)+`' "$names_doc" \
            | tr -d '`' | sort -u)

undocumented=$(comm -23 <(printf '%s\n' "$src_names") \
                        <(printf '%s\n' "$doc_names"))
if [ -n "$undocumented" ]; then
  echo "UNDOCUMENTED METRICS (in $names_header, missing from $names_doc):"
  printf '  %s\n' $undocumented
  fail=1
fi

stale=$(comm -13 <(printf '%s\n' "$src_names") \
                 <(printf '%s\n' "$doc_names"))
if [ -n "$stale" ]; then
  echo "STALE DOC METRICS (in $names_doc, not registered in $names_header):"
  printf '  %s\n' $stale
  fail=1
fi

# --- 3. PERSISTENCE.md <-> durable_format.h --------------------------------

fmt_header="src/storage/durable_format.h"
fmt_doc="docs/PERSISTENCE.md"
fp_header="src/common/failpoint.h"

for required in "$fmt_header" "$fmt_doc" "$fp_header"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Forward: every `kName = value` constant in the format header must appear
# in the document with its exact value (integer suffixes and quotes are
# normalized away; the doc's backticks are stripped before matching).
doc_flat=$(tr -d '`' < "$fmt_doc")
n_consts=0
while read -r name value; do
  [ -z "$name" ] && continue
  n_consts=$((n_consts + 1))
  case "$value" in
    \"*\")
      value="${value%\"}"
      value="${value#\"}"
      if ! printf '%s' "$doc_flat" | grep -qF "$name" ||
         ! printf '%s' "$doc_flat" | grep -qF "$value"; then
        echo "UNDOCUMENTED FORMAT CONSTANT: $name = \"$value\"" \
             "(missing from $fmt_doc)"
        fail=1
      fi
      ;;
    *)
      value=$(printf '%s' "$value" | sed -E 's/U?L?L?$//')
      if ! printf '%s' "$doc_flat" | grep -qF "$name = $value"; then
        echo "FORMAT CONSTANT DRIFT: $fmt_doc must state \"$name = $value\"" \
             "(from $fmt_header)"
        fail=1
      fi
      ;;
  esac
done <<EOF
$(sed -nE 's/^inline constexpr [A-Za-z0-9_]+ (k[A-Za-z0-9]+)(\[\])? = ([^;]+);.*/\1 \3/p' "$fmt_header")
EOF

# Reverse: every backticked kConstant the document names must still be
# defined in the persistence-layer headers.
doc_consts=$(grep -oE '`k[A-Z][A-Za-z0-9]*`' "$fmt_doc" | tr -d '`' | sort -u)
for c in $doc_consts; do
  if ! grep -qE "\b$c\b" "$fmt_header" "$fp_header"; then
    echo "STALE DOC CONSTANT: $c (in $fmt_doc, not defined in" \
         "$fmt_header or $fp_header)"
    fail=1
  fi
done

# --- 4. SERVING.md <-> protocol.h ------------------------------------------

wire_header="src/server/protocol.h"
wire_doc="docs/SERVING.md"

for required in "$wire_header" "$wire_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Forward: every `kName = value` constant in the protocol header must
# appear in the document with its exact value.
wire_doc_flat=$(tr -d '`' < "$wire_doc")
n_wire_consts=0
while read -r name value; do
  [ -z "$name" ] && continue
  n_wire_consts=$((n_wire_consts + 1))
  value=$(printf '%s' "$value" | sed -E 's/U?L?L?$//')
  if ! printf '%s' "$wire_doc_flat" | grep -qF "$name = $value"; then
    echo "WIRE CONSTANT DRIFT: $wire_doc must state \"$name = $value\"" \
         "(from $wire_header)"
    fail=1
  fi
done <<EOF
$(sed -nE 's/^inline constexpr [A-Za-z0-9_]+ (k[A-Za-z0-9]+)(\[\])? = ([^;]+);.*/\1 \3/p' "$wire_header")
EOF

# Reverse: every backticked kConstant the document names must still be
# defined in the protocol or failpoint headers.
wire_doc_consts=$(grep -oE '`k[A-Z][A-Za-z0-9]*`' "$wire_doc" \
                  | tr -d '`' | sort -u)
for c in $wire_doc_consts; do
  if ! grep -qE "\b$c\b" "$wire_header" "$fp_header"; then
    echo "STALE DOC CONSTANT: $c (in $wire_doc, not defined in" \
         "$wire_header or $fp_header)"
    fail=1
  fi
done

# --- 5. STATIC_ANALYSIS.md <-> nncell_lint.py ------------------------------

lint_tool="tools/nncell_lint.py"
sa_doc="docs/STATIC_ANALYSIS.md"

for required in "$lint_tool" "$sa_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

n_lint_checks=0
if command -v python3 >/dev/null 2>&1; then
  # Registered checks, from the tool itself (the single source of truth).
  tool_checks=$(python3 "$lint_tool" --list-checks | cut -d: -f1 | sort -u)
  # Documented checks: first-column backticked names in the doc's table.
  doc_checks=$(grep -oE '^\| `[a-z0-9-]+` \|' "$sa_doc" \
               | sed -E 's/^\| `([a-z0-9-]+)` \|/\1/' | sort -u)

  undocumented_checks=$(comm -23 <(printf '%s\n' "$tool_checks") \
                                 <(printf '%s\n' "$doc_checks"))
  if [ -n "$undocumented_checks" ]; then
    echo "UNDOCUMENTED LINT CHECKS (registered in $lint_tool, missing from" \
         "$sa_doc's table):"
    printf '  %s\n' $undocumented_checks
    fail=1
  fi

  stale_checks=$(comm -13 <(printf '%s\n' "$tool_checks") \
                          <(printf '%s\n' "$doc_checks"))
  if [ -n "$stale_checks" ]; then
    echo "STALE DOC LINT CHECKS (in $sa_doc, not registered in $lint_tool):"
    printf '  %s\n' $stale_checks
    fail=1
  fi
  n_lint_checks=$(printf '%s\n' "$tool_checks" | wc -l | tr -d ' ')
else
  echo "note: python3 not found; skipping lint-check table drift check"
fi

# --- 6. KERNELS.md <-> kernels.h -------------------------------------------

kern_header="src/common/kernels/kernels.h"
kern_doc="docs/KERNELS.md"

for required in "$kern_header" "$kern_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Forward: every `kName = value` layout constant in the kernel header must
# appear in the document with its exact value.
kern_doc_flat=$(tr -d '`' < "$kern_doc")
n_kern_consts=0
while read -r name value; do
  [ -z "$name" ] && continue
  n_kern_consts=$((n_kern_consts + 1))
  value=$(printf '%s' "$value" | sed -E 's/U?L?L?$//')
  if ! printf '%s' "$kern_doc_flat" | grep -qF "$name = $value"; then
    echo "KERNEL CONSTANT DRIFT: $kern_doc must state \"$name = $value\"" \
         "(from $kern_header)"
    fail=1
  fi
done <<EOF
$(sed -nE 's/^inline constexpr [A-Za-z0-9_]+ (k[A-Za-z0-9]+)(\[\])? = ([^;]+);.*/\1 \3/p' "$kern_header")
EOF

# Reverse: every backticked kConstant the document names must still be
# defined in the kernel headers.
kern_doc_consts=$(grep -oE '`k[A-Z][A-Za-z0-9]*`' "$kern_doc" \
                  | tr -d '`' | sort -u)
for c in $kern_doc_consts; do
  if ! grep -qE "\b$c\b" "$kern_header" "src/common/kernels/soa_store.h"; then
    echo "STALE DOC CONSTANT: $c (in $kern_doc, not defined in" \
         "$kern_header or soa_store.h)"
    fail=1
  fi
done

# --- 7. SHARDING.md <-> shard_format.h -------------------------------------

shard_header="src/shard/shard_format.h"
shard_doc="docs/SHARDING.md"

for required in "$shard_header" "$shard_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Forward: every `kName = value` constant in the shard format header must
# appear in the document with its exact value (same normalization as the
# PERSISTENCE.md check: integer suffixes and quotes stripped).
shard_doc_flat=$(tr -d '`' < "$shard_doc")
n_shard_consts=0
while read -r name value; do
  [ -z "$name" ] && continue
  n_shard_consts=$((n_shard_consts + 1))
  case "$value" in
    \"*\")
      value="${value%\"}"
      value="${value#\"}"
      if ! printf '%s' "$shard_doc_flat" | grep -qF "$name" ||
         ! printf '%s' "$shard_doc_flat" | grep -qF "$value"; then
        echo "UNDOCUMENTED SHARD CONSTANT: $name = \"$value\"" \
             "(missing from $shard_doc)"
        fail=1
      fi
      ;;
    *)
      value=$(printf '%s' "$value" | sed -E 's/U?L?L?$//')
      if ! printf '%s' "$shard_doc_flat" | grep -qF "$name = $value"; then
        echo "SHARD CONSTANT DRIFT: $shard_doc must state \"$name = $value\"" \
             "(from $shard_header)"
        fail=1
      fi
      ;;
  esac
done <<EOF
$(sed -nE 's/^inline constexpr [A-Za-z0-9_]+ (k[A-Za-z0-9]+)(\[\])? = ([^;]+);.*/\1 \3/p' "$shard_header")
EOF

# Reverse: every backticked kConstant the document names must still be
# defined in the shard format or failpoint headers.
shard_doc_consts=$(grep -oE '`k[A-Z][A-Za-z0-9]*`' "$shard_doc" \
                   | tr -d '`' | sort -u)
for c in $shard_doc_consts; do
  if ! grep -qE "\b$c\b" "$shard_header" "$fp_header"; then
    echo "STALE DOC CONSTANT: $c (in $shard_doc, not defined in" \
         "$shard_header or $fp_header)"
    fail=1
  fi
done

# --- 8. APPROXIMATE.md <-> approx.h ----------------------------------------

approx_header="src/common/approx.h"
approx_doc="docs/APPROXIMATE.md"

for required in "$approx_header" "$approx_doc"; do
  if [ ! -f "$required" ]; then
    echo "MISSING FILE: $required"
    exit 1
  fi
done

# Forward: every `kName = value` constant in the approx header must appear
# in the document with its exact value.
approx_doc_flat=$(tr -d '`' < "$approx_doc")
n_approx_consts=0
while read -r name value; do
  [ -z "$name" ] && continue
  n_approx_consts=$((n_approx_consts + 1))
  value=$(printf '%s' "$value" | sed -E 's/U?L?L?$//')
  if ! printf '%s' "$approx_doc_flat" | grep -qF "$name = $value"; then
    echo "APPROX CONSTANT DRIFT: $approx_doc must state \"$name = $value\"" \
         "(from $approx_header)"
    fail=1
  fi
done <<EOF
$(sed -nE 's/^inline constexpr [A-Za-z0-9_]+ (k[A-Za-z0-9]+)(\[\])? = ([^;]+);.*/\1 \3/p' "$approx_header")
EOF

# Reverse: every backticked kConstant the document names must still be
# defined in the approx, protocol, or failpoint headers (APPROXIMATE.md
# also describes the wire blocks, so protocol constants are legal there).
approx_doc_consts=$(grep -oE '`k[A-Z][A-Za-z0-9]*`' "$approx_doc" \
                    | tr -d '`' | sort -u)
for c in $approx_doc_consts; do
  if ! grep -qE "\b$c\b" "$approx_header" "$wire_header" "$fp_header"; then
    echo "STALE DOC CONSTANT: $c (in $approx_doc, not defined in" \
         "$approx_header, $wire_header, or $fp_header)"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  n_links=$(printf '%s\n' "$md_files" | wc -l | tr -d ' ')
  n_names=$(printf '%s\n' "$src_names" | wc -l | tr -d ' ')
  echo "docs check OK: $n_links markdown files, $n_names metrics," \
       "$n_consts format constants, $n_wire_consts wire constants," \
       "$n_lint_checks lint checks, $n_kern_consts kernel constants," \
       "$n_shard_consts shard constants, $n_approx_consts approx" \
       "constants in sync"
fi
exit "$fail"
