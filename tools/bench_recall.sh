#!/usr/bin/env bash
# Approximate-tier recall bench driver (docs/APPROXIMATE.md).
#
#   tools/bench_recall.sh [--quick] [--update] [--build-dir DIR]
#
# Runs bench/bench_recall (building it first), then either gates the fresh
# run against the committed BENCH_recall.json (default) or rewrites the
# baseline (--update, full mode only). The gate compares only
# deterministic integers -- the recall hit counts of every epsilon/budget
# sweep point, the exact-mode bit-identity counter and the exact-answer
# checksum -- and additionally enforces the recall floor: recall@10 at the
# documented default epsilon must stay >= 0.95 at every dimension.
# --quick runs fewer timing reps; the counted passes are identical, so
# quick runs gate against the full baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
UPDATE=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --update) UPDATE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--update] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD_DIR" ]]; then
  for d in build-dev build; do
    if [[ -d "$d" ]]; then BUILD_DIR="$d"; break; fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -d "$BUILD_DIR" ]]; then
  echo "no build directory found (configure with: cmake --preset dev)" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target bench_recall

OUT="$BUILD_DIR/bench_recall_current.json"
ARGS=()
if [[ "$QUICK" == 1 ]]; then ARGS+=(--quick); fi
"$BUILD_DIR/bench/bench_recall" "${ARGS[@]}" "--out=$OUT"

if [[ "$UPDATE" == 1 ]]; then
  if [[ "$QUICK" == 1 ]]; then
    echo "--update requires a full run (reps affect the recorded wall times)" >&2
    exit 2
  fi
  # Refuse to commit a baseline that fails its own recall floor.
  python3 tools/bench_recall_diff.py "$OUT" "$OUT"
  cp "$OUT" BENCH_recall.json
  echo "BENCH_recall.json updated"
  exit 0
fi

python3 tools/bench_recall_diff.py BENCH_recall.json "$OUT"
