#!/usr/bin/env python3
"""Repo-specific lint pass for the nncell codebase.

Fast, dependency-free checks for invariants the compilers cannot see
(docs/STATIC_ANALYSIS.md explains where this sits among the four analysis
layers). Each check has a firing and a silent fixture tree under
tests/lint_fixtures/<check>/{bad,good}/ and is self-tested by
`--test-fixtures` (the `tool_lint_check` ctest and the static-analysis CI
job run that mode plus a full-tree scan).

Usage:
  tools/nncell_lint.py                  # lint the repository
  tools/nncell_lint.py --root DIR       # lint another tree (fixtures use this)
  tools/nncell_lint.py --list-checks    # one "name: description" line each
  tools/nncell_lint.py --test-fixtures  # verify every check against fixtures

Suppressions: a deliberate violation is silenced with an inline annotation
on the offending line or the line directly above:

    // nncell-lint: allow(check-name) reason why this is safe

The reason is mandatory; an allow() without one is itself a violation.
The `tsa-escape` check accepts no suppression at all (the zero-suppression
policy for thread-safety-annotated modules).
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Infrastructure


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments, preserving column
    positions, so pattern checks do not fire on prose."""
    out = []
    i, n = 0, len(line)
    in_str = None  # the quote character, when inside a literal
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            out.append(" " if c != in_str else c)
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest of the line is a comment
        out.append(c)
        i += 1
    return "".join(out)


ALLOW_RE = re.compile(r"nncell-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?")


def find_allow(lines, idx, check_name):
    """True when line idx or idx-1 carries a valid allow(check_name)
    annotation; 'missing reason' findings are reported by the caller."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) == check_name:
            return True, bool(m.group(2) and m.group(2).strip())
    return False, False


class Finding:
    def __init__(self, check, path, lineno, message):
        self.check = check
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.lineno, self.check,
                                   self.message)


def iter_source_files(root, suffixes):
    """Yields (abspath, relpath) for the tracked-source layout, skipping
    build trees and the lint fixtures themselves."""
    skip_dirs = {".git", "third_party"}
    for dirpath, dirnames, filenames in os.walk(root):
        rel_dir = os.path.relpath(dirpath, root)
        dirnames[:] = [
            d for d in dirnames
            if d not in skip_dirs and not d.startswith("build")
            and os.path.join(rel_dir, d).replace("\\", "/").lstrip("./")
            != "tests/lint_fixtures"
        ]
        for f in sorted(filenames):
            if f.endswith(suffixes):
                p = os.path.join(dirpath, f)
                yield p, os.path.relpath(p, root).replace("\\", "/")


def read_lines(path):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def suppressible(check):
    """Wraps a per-line finding generator with the allow() protocol."""

    def wrap(emit, lines, idx, path, message):
        allowed, has_reason = find_allow(lines, idx, check)
        if allowed and has_reason:
            return
        if allowed:
            emit(Finding(check, path, idx + 1,
                         "allow(%s) without a reason; state why the "
                         "violation is safe" % check))
            return
        emit(Finding(check, path, idx + 1, message))

    return wrap


# --------------------------------------------------------------------------
# Checks. Each is registered as (name, description, runner); a runner takes
# (root, files, emit) where files is [(abspath, relpath)] of C++ sources and
# emit collects Findings.

CHECKS = []


def check(name, description):
    def deco(fn):
        CHECKS.append((name, description, fn))
        return fn

    return deco


@check("unpinned-fetch",
       "BufferPool::Fetch outside src/storage must be covered by a "
       "PageGuard pin in the enclosing lines (frame pointers are only "
       "stable while pinned)")
def check_unpinned_fetch(root, files, emit):
    report = suppressible("unpinned-fetch")
    fetch_re = re.compile(r"(->|\.)\s*Fetch\s*\(")
    window = 25  # lines of lookback for the pin; covers every real idiom
    for path, rel in files:
        if not rel.startswith("src/") or rel.startswith("src/storage/"):
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if not fetch_re.search(code):
                continue
            lo = max(0, i - window)
            context = "\n".join(lines[lo:i + 1])
            if "PageGuard" in context:
                continue
            report(emit, lines, i, rel,
                   "Fetch() without a PageGuard in the preceding %d lines; "
                   "pin the page so the frame cannot be evicted mid-read" %
                   window)


@check("relaxed-atomics",
       "std::memory_order_relaxed outside src/common/metrics.* must carry "
       "an inline justification (relaxed ordering is a proof obligation)")
def check_relaxed_atomics(root, files, emit):
    report = suppressible("relaxed-atomics")
    for path, rel in files:
        if not rel.startswith("src/"):
            continue
        if rel in ("src/common/metrics.h", "src/common/metrics.cc",
                   "src/common/metrics_names.h"):
            continue  # the metrics layer is relaxed-by-design (documented)
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if "memory_order_relaxed" not in code:
                continue
            report(emit, lines, i, rel,
                   "memory_order_relaxed outside the metrics layer; "
                   "annotate with the invariant that makes relaxed "
                   "ordering sound here")


@check("naked-new",
       "naked `new` outside src/storage (ownership belongs in "
       "make_unique/containers; the storage layer and annotated "
       "process-lifetime singletons are the only exceptions)")
def check_naked_new(root, files, emit):
    report = suppressible("naked-new")
    new_re = re.compile(r"\bnew\b\s+[A-Za-z_:<]")
    for path, rel in files:
        if rel.startswith("src/storage/") or not rel.startswith(
            ("src/", "tools/", "bench/", "examples/")):
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if not new_re.search(code):
                continue
            report(emit, lines, i, rel,
                   "naked new; use std::make_unique / a container, or "
                   "annotate a deliberate process-lifetime singleton")


@check("raw-fsync",
       "fsync/fdatasync outside src/storage (durability syscalls go "
       "through fs_util so failpoints and Status propagation cover them)")
def check_raw_fsync(root, files, emit):
    report = suppressible("raw-fsync")
    fsync_re = re.compile(r"\b(fsync|fdatasync)\s*\(")
    for path, rel in files:
        if rel.startswith("src/storage/") or not rel.startswith(
            ("src/", "tools/", "bench/", "examples/")):
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if not fsync_re.search(code):
                continue
            report(emit, lines, i, rel,
                   "raw %s call; route durability I/O through fs_util so "
                   "failpoints and Status propagation see it" %
                   fsync_re.search(code).group(1))


CHECK_MACRO_RE = re.compile(r"\bNNCELL_D?CHECK(_MSG)?\s*\(")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?!=)|\.erase\s*\(|\.pop_back\s*\(|"
    r"\.push_back\s*\(|\.insert\s*\(")


@check("check-side-effects",
       "NNCELL_CHECK/DCHECK arguments must be side-effect free (DCHECKs "
       "compile out in release builds, taking the side effect with them)")
def check_side_effects(root, files, emit):
    report = suppressible("check-side-effects")
    for path, rel in files:
        if not rel.startswith(("src/", "tools/", "bench/", "examples/",
                               "tests/")):
            continue
        if rel == "src/common/check.h":
            continue  # the macro definitions themselves
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            m = CHECK_MACRO_RE.search(code)
            if not m:
                continue
            # The macro argument: from the opening paren to the matching
            # close (single-line; multi-line CHECK args are rare and the
            # continuation lines are scanned as part of this window).
            arg = code[m.end():]
            depth = 1
            out = []
            for c in arg:
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                out.append(c)
            arg_text = "".join(out)
            if SIDE_EFFECT_RE.search(arg_text):
                report(emit, lines, i, rel,
                       "side-effecting expression inside a check macro; "
                       "hoist the mutation out (DCHECKs vanish in release "
                       "builds)")


@check("wal-format-drift",
       "WAL record-size constants in src/storage/durable_format.h must "
       "match the byte-level layout documented in docs/PERSISTENCE.md")
def check_wal_format_drift(root, files, emit):
    header = os.path.join(root, "src/storage/durable_format.h")
    doc = os.path.join(root, "docs/PERSISTENCE.md")
    if not os.path.exists(header) or not os.path.exists(doc):
        return  # partial tree (fixture or subset scan): nothing to compare
    const_re = re.compile(
        r"inline constexpr \w+ (kWal[A-Za-z0-9]*(?:Bytes|Payload)) = "
        r"(\d+)")
    header_lines = read_lines(header)
    doc_text = read_lines(doc)
    doc_flat = "\n".join(doc_text).replace("`", "")
    found = 0
    for i, line in enumerate(header_lines):
        m = const_re.search(line)
        if not m:
            continue
        found += 1
        name, value = m.group(1), m.group(2)
        if "%s = %s" % (name, value) not in doc_flat:
            emit(Finding("wal-format-drift", "src/storage/durable_format.h",
                         i + 1,
                         "%s = %s is not stated in docs/PERSISTENCE.md "
                         "(update the doc or the format)" % (name, value)))
    if found == 0:
        emit(Finding("wal-format-drift", "src/storage/durable_format.h", 1,
                     "no kWal*Bytes constants found; the WAL layout "
                     "contract moved without updating this check"))


INDEXED = r"[A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*)*\s*\[[^\]]+\]"
ACCUM_PRODUCT_RE = re.compile(
    r"\+=\s*%s\s*\*\s*%s" % (INDEXED, INDEXED))
DIFF_ASSIGN_RE = re.compile(
    r"(?:^|[^=!<>+\-*/%%&|^])=\s*(?:%s)\s*-\s*(?:%s)\s*;" % (INDEXED, INDEXED))
DIFF_VAR_RE = re.compile(
    r"\b(?:double|float|auto)?\s*([A-Za-z_][A-Za-z0-9_]*)\s*=\s*" + INDEXED)
SQUARE_ACCUM_RE_TMPL = r"\+=\s*%s\s*\*\s*%s"


@check("scalar-distance-loop",
       "open-coded distance/dot accumulation outside src/common/kernels "
       "(`s += a[i] * b[i]` or `d = a[i] - b[i]; s += d * d`); route the "
       "loop through the dispatched kernel layer (common/kernels/kernels.h)")
def check_scalar_distance_loop(root, files, emit):
    report = suppressible("scalar-distance-loop")
    lookahead = 3  # lines between the difference and its squared accumulation
    for path, rel in files:
        if not rel.startswith("src/") or rel.startswith("src/common/kernels/"):
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if ACCUM_PRODUCT_RE.search(code):
                report(emit, lines, i, rel,
                       "accumulating a product of two indexed factors; use "
                       "kernels::Dot / MatVec (blocked, dispatched) instead "
                       "of an open-coded dot loop")
                continue
            # Two-line distance idiom: `d = a[i] - b[i];` then `s += d * d`
            # within a few lines.
            if not DIFF_ASSIGN_RE.search(code):
                continue
            mv = DIFF_VAR_RE.search(code)
            if not mv:
                continue
            var = re.escape(mv.group(1))
            square_re = re.compile(SQUARE_ACCUM_RE_TMPL % (var, var))
            window = lines[i:i + 1 + lookahead]
            if any(square_re.search(strip_comments_and_strings(w))
                   for w in window):
                report(emit, lines, i, rel,
                       "open-coded squared-difference accumulation; use "
                       "kernels::L2DistSqPair or a batched distance kernel "
                       "(common/kernels/kernels.h)")


@check("shard-direct-io",
       "raw file I/O in src/shard outside shard_manifest.cc (the shard "
       "layer reaches disk only through the manifest/router helpers, the "
       "per-shard NNCellIndex, and the WriteAheadLog, so no shard code "
       "path can open a sibling shard's files behind the router's back)")
def check_shard_direct_io(root, files, emit):
    report = suppressible("shard-direct-io")
    io_re = re.compile(
        r"std::[io]?fstream|\bfopen\s*\(|::open\s*\(|"
        r"fs::ReadFileToString|fs::WriteFileAtomic")
    for path, rel in files:
        if not rel.startswith("src/shard/"):
            continue
        if rel == "src/shard/shard_manifest.cc":
            continue  # the one TU allowed raw file I/O (see its header)
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            m = io_re.search(code)
            if not m:
                continue
            report(emit, lines, i, rel,
                   "direct file I/O (%s) in the shard layer; go through "
                   "the shard_manifest helpers, the per-shard index, or "
                   "the router WAL so recovery and failpoints see it" %
                   m.group(0).strip("( "))


@check("tsa-escape",
       "NNCELL_NO_THREAD_SAFETY_ANALYSIS is banned in annotated modules "
       "(src/common, src/storage, src/nncell); restructure instead "
       "(not suppressible)")
def check_tsa_escape(root, files, emit):
    for path, rel in files:
        if not rel.startswith(("src/common/", "src/storage/", "src/nncell/")):
            continue
        if rel == "src/common/thread_annotations.h":
            continue  # the macro's definition
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if "NNCELL_NO_THREAD_SAFETY_ANALYSIS" in code:
                emit(Finding("tsa-escape", rel, i + 1,
                             "thread-safety analysis escape hatch in an "
                             "annotated module; restructure the locking so "
                             "the analysis can follow it"))


@check("approx-certificate",
       "code that sets a certificate's `approximate` flag must populate "
       "leaf_visits and bound in the surrounding lines (an approximate "
       "answer without its evidence is unverifiable; see "
       "docs/APPROXIMATE.md)")
def check_approx_certificate(root, files, emit):
    report = suppressible("approx-certificate")
    # An assignment, not a comparison: `approximate =` but never `==`.
    assign_re = re.compile(r"\bapproximate\s*=(?!=)")
    window = 12  # lines either side; every real certificate fill fits
    for path, rel in files:
        if not rel.startswith("src/"):
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            code = strip_comments_and_strings(line)
            if not assign_re.search(code):
                continue
            lo = max(0, i - window)
            hi = min(len(lines), i + window + 1)
            context = "\n".join(lines[lo:hi])
            if "leaf_visits" in context and "bound" in context:
                continue
            report(emit, lines, i, rel,
                   "certificate marked approximate without leaf_visits and "
                   "bound within %d lines; fill the whole ApproxCertificate "
                   "so the (1+epsilon) claim stays checkable" % window)


# --------------------------------------------------------------------------
# Drivers

CXX_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")


def run_checks(root, only=None):
    files = list(iter_source_files(root, CXX_SUFFIXES))
    findings = []
    for name, _desc, fn in CHECKS:
        if only is not None and name != only:
            continue
        fn(root, files, findings.append)
    return findings


def run_fixture_tests(repo_root):
    """Every check must fire on its bad fixture tree and stay silent on the
    good twin; a missing fixture is a failure (checks do not ship without
    regression coverage)."""
    fixtures = os.path.join(repo_root, "tests", "lint_fixtures")
    failures = []
    for name, _desc, _fn in CHECKS:
        for kind, expect_findings in (("bad", True), ("good", False)):
            tree = os.path.join(fixtures, name, kind)
            if not os.path.isdir(tree):
                failures.append("%s: missing fixture tree %s" %
                                (name, os.path.relpath(tree, repo_root)))
                continue
            found = [f for f in run_checks(tree, only=name)
                     if f.check == name]
            if expect_findings and not found:
                failures.append(
                    "%s: bad fixture produced no finding (check is dead)" %
                    name)
            elif not expect_findings and found:
                failures.append("%s: good fixture produced findings:\n  %s" %
                                (name, "\n  ".join(str(f) for f in found)))
    if failures:
        print("lint fixture self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("lint fixture self-test OK: %d checks x {bad,good} fixtures" %
          len(CHECKS))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="tree to lint (default: the repo containing this "
                         "script)")
    ap.add_argument("--list-checks", action="store_true",
                    help="print 'name: description' for every check")
    ap.add_argument("--test-fixtures", action="store_true",
                    help="self-test every check against its fixtures")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(args.root) if args.root else repo_root

    if args.list_checks:
        for name, desc, _fn in CHECKS:
            print("%s: %s" % (name, desc))
        return 0
    if args.test_fixtures:
        return run_fixture_tests(repo_root)

    findings = run_checks(root)
    for f in findings:
        print(f)
    if findings:
        print("nncell_lint: %d finding(s) across %d check(s)" %
              (len(findings), len({f.check for f in findings})))
        return 1
    print("nncell_lint OK: %d checks, no findings" % len(CHECKS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
