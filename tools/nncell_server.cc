// nncell_server -- always-on query service over a durable NN-cell index.
//
//   nncell_server <index-dir> --socket=PATH [--tcp-port=N] [--dim=N]
//                 [--threads=N] [--max-queue=N] [--max-batch=N]
//                 [--metrics=0|1] [--shards=K]
//
// Opens (or creates, with --dim) the durable index directory, serves the
// binary wire protocol of docs/SERVING.md on a unix-domain socket and/or
// 127.0.0.1 TCP, and runs until SIGINT or SIGTERM. A directory holding a
// shard.manifest is served as a sharded index (docs/SHARDING.md);
// --shards=K with --dim creates a fresh K-shard index, and STATS_JSON
// then carries a "shard" object with the routing epoch and per-shard
// breakdown. The signal triggers a
// graceful drain: stop accepting, answer everything already admitted, fold
// the WAL into a fresh snapshot (Checkpoint), then exit 0. A second signal
// during the drain is ignored; kill -9 is what crash recovery is for
// (docs/PERSISTENCE.md).
//
// Prints one READY line to stdout once the listeners are bound -- scripts
// wait for it before connecting -- and one DRAINED line with the
// conservation counters after the drain.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "nncell/nncell_index.h"
#include "server/server.h"
#include "shard/shard_format.h"
#include "shard/sharded_index.h"
#include "storage/fs_util.h"

namespace {

using namespace nncell;

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

// server::IndexBackend over a plain NNCellIndex (the daemon always talks
// to the server through a backend so the two index kinds share one code
// path below).
class PlainBackend : public server::IndexBackend {
 public:
  explicit PlainBackend(NNCellIndex* index) : index_(index) {}
  size_t dim() const override { return index_->dim(); }
  bool durable() const override { return index_->durable(); }
  StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const override {
    return index_->QueryBatch(queries, approx);
  }
  StatusOr<uint64_t> Insert(const std::vector<double>& point) override {
    return index_->Insert(point);
  }
  Status Delete(uint64_t id) override { return index_->Delete(id); }
  Status Checkpoint() override { return index_->Checkpoint(); }

 private:
  NNCellIndex* const index_;
};

// server::IndexBackend over a ShardedIndex: scatter-gather queries,
// routed writes, checkpoint across every shard, and the STATS_JSON
// "shard" object.
class ShardedBackend : public server::IndexBackend {
 public:
  explicit ShardedBackend(ShardedIndex* index) : index_(index) {}
  size_t dim() const override { return index_->dim(); }
  bool durable() const override { return index_->durable(); }
  StatusOr<std::vector<NNCellIndex::QueryResult>> QueryBatch(
      const PointSet& queries, const ApproxOptions& approx) const override {
    return index_->QueryBatch(queries, approx);
  }
  StatusOr<uint64_t> Insert(const std::vector<double>& point) override {
    return index_->Insert(point);
  }
  Status Delete(uint64_t id) override { return index_->Delete(id); }
  Status Checkpoint() override { return index_->Checkpoint(); }
  std::string ShardStatsJson() const override { return index_->StatsJson(); }

 private:
  ShardedIndex* const index_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nncell_server <index-dir> --socket=PATH"
                 " [--tcp-port=N] [--dim=N] [--threads=N]"
                 " [--max-queue=N] [--max-batch=N] [--metrics=0|1]"
                 " [--shards=K]\n");
    return 2;
  }
  const std::string dir = argv[1];
  server::ServerOptions sopt;
  if (const char* v = FlagValue(argc, argv, "--socket")) sopt.socket_path = v;
  if (const char* v = FlagValue(argc, argv, "--tcp-port")) {
    sopt.tcp_port = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--max-queue")) {
    sopt.max_queue = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--max-batch")) {
    sopt.max_batch = std::strtoul(v, nullptr, 10);
  }
  size_t dim = 0;
  if (const char* v = FlagValue(argc, argv, "--dim")) {
    dim = std::strtoul(v, nullptr, 10);
  }
  size_t threads = 0;
  if (const char* v = FlagValue(argc, argv, "--threads")) {
    threads = std::strtoul(v, nullptr, 10);
  }
  bool metrics_on = true;
  if (const char* v = FlagValue(argc, argv, "--metrics")) {
    metrics_on = std::atoi(v) != 0;
  }
  size_t shards = 0;
  if (const char* v = FlagValue(argc, argv, "--shards")) {
    shards = std::strtoul(v, nullptr, 10);
  }
  if (sopt.socket_path.empty() && sopt.tcp_port == 0) {
    std::fprintf(stderr, "nncell_server: need --socket and/or --tcp-port\n");
    return 2;
  }
  if (!fs::IsDirectory(dir) && dim == 0) {
    std::fprintf(stderr,
                 "nncell_server: %s does not exist; pass --dim=N to create "
                 "a fresh index\n",
                 dir.c_str());
    return 2;
  }

  // Block the shutdown signals before any thread exists so every server
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
    std::fprintf(stderr, "nncell_server: pthread_sigmask failed\n");
    return 1;
  }

  // A shard.manifest in the directory (or an explicit --shards when
  // creating fresh) selects the sharded backend; either way the wire
  // protocol and drain behavior are identical.
  const bool sharded =
      shards > 0 ||
      fs::PathExists(shard::JoinPath(dir, shard::kShardManifestFileName));

  std::unique_ptr<NNCellIndex> plain_index;
  std::unique_ptr<ShardedIndex> sharded_index;
  std::unique_ptr<server::IndexBackend> backend;
  uint64_t wal_replayed = 0;
  if (sharded) {
    ShardedOptions shopt;
    shopt.num_shards = shards > 0 ? shards : 1;
    ShardedIndex::RecoveryInfo info;
    auto idx = ShardedIndex::Open(dir, dim, NNCellOptions(),
                                  NNCellIndex::DurableOptions(), shopt, &info);
    if (!idx.ok()) {
      std::fprintf(stderr, "nncell_server: open %s failed: %s\n", dir.c_str(),
                   idx.status().ToString().c_str());
      return 1;
    }
    sharded_index = std::move(*idx);
    if (sharded_index->degraded()) {
      // Serving would silently answer from a subset of the data; make the
      // operator run the recovery runbook (docs/SHARDING.md) instead.
      std::fprintf(stderr,
                   "nncell_server: %zu of %zu shards failed to open; "
                   "run `nncell_cli recover %s` and restore the damaged "
                   "shard(s) before serving\n",
                   sharded_index->degraded_shards(),
                   sharded_index->num_shards(), dir.c_str());
      return 1;
    }
    wal_replayed = info.router_records_replayed;
    if (threads != 1) sharded_index->SetNumThreads(threads);
    backend = std::make_unique<ShardedBackend>(sharded_index.get());
  } else {
    NNCellIndex::RecoveryInfo info;
    auto idx = NNCellIndex::Open(dir, dim, NNCellOptions(),
                                 NNCellIndex::DurableOptions(), &info);
    if (!idx.ok()) {
      std::fprintf(stderr, "nncell_server: open %s failed: %s\n", dir.c_str(),
                   idx.status().ToString().c_str());
      return 1;
    }
    plain_index = std::move(*idx);
    wal_replayed = info.wal_records_replayed;
    if (threads != 1) plain_index->SetNumThreads(threads);
    backend = std::make_unique<PlainBackend>(plain_index.get());
  }
  metrics::Registry::SetEnabled(metrics_on);

  // Snapshot recovered state before Start(): once the dispatcher runs,
  // the index belongs to it and main must not touch it until Stop().
  const size_t recovered_points =
      sharded ? sharded_index->size() : plain_index->size();
  const size_t recovered_dim =
      sharded ? sharded_index->dim() : plain_index->dim();

  server::NNCellServer srv(backend.get(), sopt);
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "nncell_server: start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf(
      "READY dir=%s points=%zu dim=%zu shards=%zu wal_replayed=%llu "
      "socket=%s tcp_port=%d\n",
      dir.c_str(), recovered_points, recovered_dim,
      sharded ? sharded_index->num_shards() : size_t{0},
      static_cast<unsigned long long>(wal_replayed),
      sopt.socket_path.empty() ? "-" : sopt.socket_path.c_str(),
      sopt.tcp_port);
  std::fflush(stdout);

  int sig = 0;
  (void)sigwait(&sigs, &sig);
  std::fprintf(stderr, "nncell_server: got %s, draining\n",
               sig == SIGINT ? "SIGINT" : "SIGTERM");
  st = srv.Stop();
  std::printf(
      "DRAINED accepted=%llu completed=%llu rejected=%llu malformed=%llu "
      "checkpoint=%s\n",
      static_cast<unsigned long long>(srv.accepted()),
      static_cast<unsigned long long>(srv.completed()),
      static_cast<unsigned long long>(srv.rejected()),
      static_cast<unsigned long long>(srv.malformed()),
      st.ok() ? "ok" : st.ToString().c_str());
  std::fflush(stdout);
  return st.ok() ? 0 : 1;
}
