// nncell_server -- always-on query service over a durable NN-cell index.
//
//   nncell_server <index-dir> --socket=PATH [--tcp-port=N] [--dim=N]
//                 [--threads=N] [--max-queue=N] [--max-batch=N]
//                 [--metrics=0|1]
//
// Opens (or creates, with --dim) the durable index directory, serves the
// binary wire protocol of docs/SERVING.md on a unix-domain socket and/or
// 127.0.0.1 TCP, and runs until SIGINT or SIGTERM. The signal triggers a
// graceful drain: stop accepting, answer everything already admitted, fold
// the WAL into a fresh snapshot (Checkpoint), then exit 0. A second signal
// during the drain is ignored; kill -9 is what crash recovery is for
// (docs/PERSISTENCE.md).
//
// Prints one READY line to stdout once the listeners are bound -- scripts
// wait for it before connecting -- and one DRAINED line with the
// conservation counters after the drain.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "nncell/nncell_index.h"
#include "server/server.h"
#include "storage/fs_util.h"

namespace {

using namespace nncell;

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nncell_server <index-dir> --socket=PATH"
                 " [--tcp-port=N] [--dim=N] [--threads=N]"
                 " [--max-queue=N] [--max-batch=N] [--metrics=0|1]\n");
    return 2;
  }
  const std::string dir = argv[1];
  server::ServerOptions sopt;
  if (const char* v = FlagValue(argc, argv, "--socket")) sopt.socket_path = v;
  if (const char* v = FlagValue(argc, argv, "--tcp-port")) {
    sopt.tcp_port = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--max-queue")) {
    sopt.max_queue = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--max-batch")) {
    sopt.max_batch = std::strtoul(v, nullptr, 10);
  }
  size_t dim = 0;
  if (const char* v = FlagValue(argc, argv, "--dim")) {
    dim = std::strtoul(v, nullptr, 10);
  }
  size_t threads = 0;
  if (const char* v = FlagValue(argc, argv, "--threads")) {
    threads = std::strtoul(v, nullptr, 10);
  }
  bool metrics_on = true;
  if (const char* v = FlagValue(argc, argv, "--metrics")) {
    metrics_on = std::atoi(v) != 0;
  }
  if (sopt.socket_path.empty() && sopt.tcp_port == 0) {
    std::fprintf(stderr, "nncell_server: need --socket and/or --tcp-port\n");
    return 2;
  }
  if (!fs::IsDirectory(dir) && dim == 0) {
    std::fprintf(stderr,
                 "nncell_server: %s does not exist; pass --dim=N to create "
                 "a fresh index\n",
                 dir.c_str());
    return 2;
  }

  // Block the shutdown signals before any thread exists so every server
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
    std::fprintf(stderr, "nncell_server: pthread_sigmask failed\n");
    return 1;
  }

  NNCellIndex::RecoveryInfo info;
  auto idx = NNCellIndex::Open(dir, dim, NNCellOptions(),
                               NNCellIndex::DurableOptions(), &info);
  if (!idx.ok()) {
    std::fprintf(stderr, "nncell_server: open %s failed: %s\n", dir.c_str(),
                 idx.status().ToString().c_str());
    return 1;
  }
  if (threads != 1) (*idx)->SetNumThreads(threads);
  metrics::Registry::SetEnabled(metrics_on);

  // Snapshot recovered state before Start(): once the dispatcher runs,
  // the index belongs to it and main must not touch it until Stop().
  const size_t recovered_points = (*idx)->size();
  const size_t recovered_dim = (*idx)->dim();

  server::NNCellServer srv((*idx).get(), sopt);
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "nncell_server: start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf(
      "READY dir=%s points=%zu dim=%zu wal_replayed=%llu socket=%s "
      "tcp_port=%d\n",
      dir.c_str(), recovered_points, recovered_dim,
      static_cast<unsigned long long>(info.wal_records_replayed),
      sopt.socket_path.empty() ? "-" : sopt.socket_path.c_str(),
      sopt.tcp_port);
  std::fflush(stdout);

  int sig = 0;
  (void)sigwait(&sigs, &sig);
  std::fprintf(stderr, "nncell_server: got %s, draining\n",
               sig == SIGINT ? "SIGINT" : "SIGTERM");
  st = srv.Stop();
  std::printf(
      "DRAINED accepted=%llu completed=%llu rejected=%llu malformed=%llu "
      "checkpoint=%s\n",
      static_cast<unsigned long long>(srv.accepted()),
      static_cast<unsigned long long>(srv.completed()),
      static_cast<unsigned long long>(srv.rejected()),
      static_cast<unsigned long long>(srv.malformed()),
      st.ok() ? "ok" : st.ToString().c_str());
  std::fflush(stdout);
  return st.ok() ? 0 : 1;
}
