#!/usr/bin/env bash
# LP bench-regression harness driver.
#
#   tools/bench_regress.sh [--quick] [--update] [--build-dir DIR]
#
# Runs bench/bench_regress (building it first if a build tree is
# configured), then either gates the fresh counters against the committed
# BENCH_lp.json (default; >20% lp_iterations growth fails) or rewrites the
# baseline (--update, full mode only). --quick runs the CI smoke subset.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
UPDATE=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --update) UPDATE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--update] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD_DIR" ]]; then
  for d in build-dev build; do
    if [[ -d "$d" ]]; then BUILD_DIR="$d"; break; fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -d "$BUILD_DIR" ]]; then
  echo "no build directory found (configure with: cmake --preset dev)" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target bench_regress

OUT="$BUILD_DIR/bench_lp_current.json"
ARGS=()
if [[ "$QUICK" == 1 ]]; then ARGS+=(--quick); fi
"$BUILD_DIR/bench/bench_regress" "${ARGS[@]}" "--out=$OUT"

if [[ "$UPDATE" == 1 ]]; then
  if [[ "$QUICK" == 1 ]]; then
    echo "--update requires a full run (the baseline must contain every config)" >&2
    exit 2
  fi
  cp "$OUT" BENCH_lp.json
  echo "BENCH_lp.json updated"
  exit 0
fi

python3 tools/bench_regress_diff.py BENCH_lp.json "$OUT"
