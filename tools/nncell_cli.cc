// nncell_cli -- command-line front end for the NN-cell index.
//
//   nncell_cli build  <points.csv> <index.nncell|dir> [--algorithm=sphere]
//                     [--decompose=K] [--xtree=0|1] [--threads=N] [--durable]
//                     [--shards=K]
//   nncell_cli query  <index.nncell|dir> <queries.csv> [--k=1] [--threads=N]
//                     [--trace] [--epsilon=E] [--max-visits=N]
//   nncell_cli stats  <index.nncell|dir> [--json] [--probe-queries=N]
//                     [--lp-sample=N] [--seed=S] [--epsilon=E]
//                     [--max-visits=N]
//   nncell_cli checkpoint <dir>
//   nncell_cli recover    <dir> [--dim=N]
//   nncell_cli rebalance  <dir>
//
// An index argument that names a directory is opened as a durable index
// (snapshot + write-ahead log, docs/PERSISTENCE.md); `build --durable`
// creates one. A directory containing a `shard.manifest` is opened as a
// sharded index (docs/SHARDING.md); `build --durable --shards=K` creates
// one, and every command below accepts either kind. `checkpoint` folds
// the WAL(s) into fresh snapshots; `recover` opens the directory, replays
// the log(s), reports what recovery did, and exits nonzero on any
// corruption -- the operator entry points of the runbooks in
// docs/OPERATIONS.md. `rebalance` recomputes a sharded index's cuts from
// the live points and installs the next routing epoch.
//
// --threads=N runs the build's LP solves / the query batch on N worker
// threads (0 = one per hardware core). The built index is byte-identical
// for every thread count.
//
// `query --trace` prints, after each result line, the per-stage timeline
// of that query (index probe -> candidate distance scan -> fallback) as
// one JSON object; see docs/OPERATIONS.md.
//
// `query --epsilon=E` answers from the approximate tier with a certified
// (1+E)-approximate nearest neighbor; `--max-visits=N` caps the search at
// N leaf pages (docs/APPROXIMATE.md). Either flag switches the result
// lines to the approximate format (base line plus
// ` approx=<0|1> visits=<pages> bound=<dist>`); with both flags absent the
// output is byte-identical to the exact tier. `stats --json` accepts the
// same two flags to run the probe workload through the approximate tier;
// its "approx" object stays the constant {"enabled":0} when they are
// absent.
//
// `stats --json` emits one stable JSON object ({"index":...,"metrics":...})
// with the full metrics-registry snapshot after a deterministic probe
// workload: --probe-queries uniform NN queries (seeded by --seed) exercise
// the query/index/storage counters, and --lp-sample cell approximations are
// recomputed (and discarded) to exercise the LP counters. Every metric
// name is documented in docs/METRICS.md.
//
// CSV files contain one point per line, comma-separated coordinates in
// [0,1]. Lines starting with '#' are skipped. The build command prints
// progress and writes a self-contained binary index image; query prints
// one result line per query point.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nncell/nncell_index.h"
#include "nncell/query_trace.h"
#include "shard/shard_format.h"
#include "shard/sharded_index.h"
#include "storage/buffer_pool.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"

namespace {

using namespace nncell;

// An opened index plus whatever storage keeps it alive: durable indexes
// own their storage; file-image indexes borrow `file`/`pool` below.
// Exactly one of `index`/`sharded` is set.
struct OpenedIndex {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
  std::unique_ptr<ShardedIndex> sharded;
};

// A directory with a shard manifest is a sharded index root, not a plain
// durable index directory.
bool IsShardedDir(const std::string& path) {
  return fs::IsDirectory(path) &&
         fs::PathExists(shard::JoinPath(path, shard::kShardManifestFileName));
}

// Opens `path` as a sharded root, a durable directory, or a single-file
// snapshot image.
StatusOr<OpenedIndex> OpenAnyIndex(const std::string& path) {
  OpenedIndex o;
  if (IsShardedDir(path)) {
    auto idx = ShardedIndex::Open(path, 0, NNCellOptions(),
                                  NNCellIndex::DurableOptions(),
                                  ShardedOptions());
    if (!idx.ok()) return idx.status();
    o.sharded = std::move(*idx);
    return o;
  }
  if (fs::IsDirectory(path)) {
    auto idx = NNCellIndex::Open(path, 0, NNCellOptions());
    if (!idx.ok()) return idx.status();
    o.index = std::move(*idx);
    return o;
  }
  o.file = std::make_unique<PageFile>(4096);
  o.pool = std::make_unique<BufferPool>(o.file.get(), 4096);
  auto idx = NNCellIndex::Load(path, o.file.get(), o.pool.get());
  if (!idx.ok()) return idx.status();
  o.index = std::move(*idx);
  return o;
}

StatusOr<PointSet> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::string line;
  std::vector<std::vector<double>> rows;
  size_t dim = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                       ": not a number: " + cell);
      }
      row.push_back(v);
    }
    if (row.empty()) continue;
    if (dim == 0) dim = row.size();
    if (row.size() != dim) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": inconsistent dimension");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument(path + ": no points");
  PointSet pts(dim);
  pts.Reserve(rows.size());
  for (const auto& row : rows) pts.Add(row);
  return pts;
}

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int Build(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: nncell_cli build <points.csv> <out.nncell>\n");
    return 2;
  }
  auto pts = ReadCsv(argv[2]);
  if (!pts.ok()) {
    std::fprintf(stderr, "%s\n", pts.status().ToString().c_str());
    return 1;
  }
  NNCellOptions options;
  if (const char* alg = FlagValue(argc, argv, "--algorithm")) {
    std::string a = alg;
    if (a == "correct") options.algorithm = ApproxAlgorithm::kCorrect;
    else if (a == "point") options.algorithm = ApproxAlgorithm::kPoint;
    else if (a == "sphere") options.algorithm = ApproxAlgorithm::kSphere;
    else if (a == "nn-direction") options.algorithm = ApproxAlgorithm::kNNDirection;
    else {
      std::fprintf(stderr, "unknown algorithm %s\n", alg);
      return 2;
    }
  }
  if (const char* k = FlagValue(argc, argv, "--decompose")) {
    options.decomposition.max_partitions = std::strtoul(k, nullptr, 10);
  }
  if (const char* x = FlagValue(argc, argv, "--xtree")) {
    options.use_xtree = std::atoi(x) != 0;
  }
  if (const char* t = FlagValue(argc, argv, "--threads")) {
    options.parallel.num_threads = std::strtoul(t, nullptr, 10);
  }

  size_t shards = 0;
  if (const char* s = FlagValue(argc, argv, "--shards")) {
    shards = std::strtoul(s, nullptr, 10);
    if (shards == 0) {
      std::fprintf(stderr, "--shards must be at least 1\n");
      return 2;
    }
    if (!HasFlag(argc, argv, "--durable")) {
      std::fprintf(stderr,
                   "--shards requires --durable: a sharded index is a "
                   "directory of per-shard snapshot+WAL dirs plus a router, "
                   "not a single-file image\n");
      return 2;
    }
  }

  if (shards > 0) {
    // Sharded durable build: partition along quantile-balanced cuts and
    // build every shard in parallel (docs/SHARDING.md).
    ShardedOptions sopts;
    sopts.num_shards = shards;
    auto idx = ShardedIndex::Open(std::string(argv[3]), pts->dim(), options,
                                  NNCellIndex::DurableOptions(), sopts);
    if (!idx.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    Stopwatch timer;
    Status st = (*idx)->BulkBuild(*pts);
    if (!st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "built sharded index %s: %zu points, dim=%zu, algorithm=%s, "
        "%zu shards, %.2fs,\n"
        "  expected candidates per query %.2f\n",
        argv[3], (*idx)->size(), (*idx)->dim(),
        ApproxAlgorithmName((*idx)->options().algorithm), (*idx)->num_shards(),
        timer.ElapsedSeconds(), (*idx)->ExpectedCandidates());
    return 0;
  }

  if (HasFlag(argc, argv, "--durable")) {
    // Durable build: the output is a directory with a checksummed snapshot
    // and a write-ahead log; BulkBuild checkpoints on completion, and later
    // Insert/Delete through Open() are logged before they apply.
    auto idx = NNCellIndex::Open(std::string(argv[3]), pts->dim(), options);
    if (!idx.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    Stopwatch timer;
    Status st = (*idx)->BulkBuild(*pts);
    if (!st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "built durable index %s: %zu points, dim=%zu, algorithm=%s, %.2fs,\n"
        "  %zu LP runs, expected candidates per query %.2f\n",
        argv[3], (*idx)->size(), (*idx)->dim(),
        ApproxAlgorithmName((*idx)->options().algorithm),
        timer.ElapsedSeconds(), (*idx)->build_stats().approx.lp_runs,
        (*idx)->ExpectedCandidates());
    return 0;
  }

  PageFile file(4096);
  BufferPool pool(&file, 4096);
  NNCellIndex index(&pool, pts->dim(), options);
  Stopwatch timer;
  Status st = index.BulkBuild(*pts);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double secs = timer.ElapsedSeconds();
  st = index.Save(std::string(argv[3]));
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "built %s: %zu points, dim=%zu, algorithm=%s, %.2fs,\n"
      "  %zu LP runs, expected candidates per query %.2f\n",
      argv[3], index.size(), index.dim(),
      ApproxAlgorithmName(index.options().algorithm), secs,
      index.build_stats().approx.lp_runs, index.ExpectedCandidates());
  return 0;
}

// One result line: the exact-tier format, plus the certificate suffix
// when the query ran through the approximate tier. The suffix is only
// ever printed when `approx` is enabled, so exact-mode output stays
// byte-identical to what it was before the approximate tier existed.
void PrintNnLine(size_t i, const NNCellIndex::QueryResult& r,
                 const ApproxOptions& approx) {
  std::printf("query %zu: nn id=%llu dist=%.6f candidates=%zu", i,
              static_cast<unsigned long long>(r.id), r.dist, r.candidates);
  if (approx.enabled()) {
    std::printf(" approx=%d visits=%llu bound=%.6f",
                r.approx.approximate ? 1 : 0,
                static_cast<unsigned long long>(r.approx.leaf_visits),
                r.approx.bound);
  }
  std::printf("\n");
}

// The batch/serial/knn answer paths, shared verbatim between the plain and
// the sharded index (whose query API mirrors NNCellIndex and answers
// bit-identically; docs/SHARDING.md).
template <typename Index>
int RunQueries(Index& index, const PointSet& queries, size_t k,
               size_t threads, const ApproxOptions& approx) {
  if (k == 1 && (threads == 0 || threads > 1)) {
    // Batched answer path: results are identical to the serial loop below,
    // computed by concurrent readers.
    auto results = approx.enabled() ? index.QueryBatch(queries, approx)
                                    : index.QueryBatch(queries);
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < results->size(); ++i) {
      PrintNnLine(i, (*results)[i], approx);
    }
    return 0;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (k == 1) {
      auto r = approx.enabled() ? index.Query(queries[i], approx)
                                : index.Query(queries[i]);
      if (!r.ok()) {
        std::printf("query %zu: error %s\n", i, r.status().ToString().c_str());
        continue;
      }
      PrintNnLine(i, *r, approx);
    } else {
      auto r = approx.enabled() ? index.KnnQuery(queries[i], k, approx)
                                : index.KnnQuery(queries[i], k);
      if (!r.ok()) {
        std::printf("query %zu: error %s\n", i, r.status().ToString().c_str());
        continue;
      }
      std::printf("query %zu:", i);
      for (const auto& hit : *r) {
        std::printf(" (%llu, %.6f)", static_cast<unsigned long long>(hit.id),
                    hit.dist);
      }
      if (approx.enabled() && !r->empty()) {
        const auto& cert = r->front().approx;
        std::printf(" approx=%d visits=%llu bound=%.6f",
                    cert.approximate ? 1 : 0,
                    static_cast<unsigned long long>(cert.leaf_visits),
                    cert.bound);
      }
      std::printf("\n");
    }
  }
  return 0;
}

// Parses --epsilon / --max-visits into ApproxOptions; returns false (after
// printing the reason) on a malformed value.
bool ParseApproxFlags(int argc, char** argv, ApproxOptions* approx) {
  if (const char* e = FlagValue(argc, argv, "--epsilon")) {
    char* end = nullptr;
    approx->epsilon = std::strtod(e, &end);
    if (end == e || *end != '\0' || !(approx->epsilon >= 0.0)) {
      std::fprintf(stderr, "--epsilon must be a finite value >= 0\n");
      return false;
    }
  }
  if (const char* m = FlagValue(argc, argv, "--max-visits")) {
    char* end = nullptr;
    approx->max_leaf_visits = std::strtoull(m, &end, 10);
    if (end == m || *end != '\0') {
      std::fprintf(stderr, "--max-visits must be a non-negative integer\n");
      return false;
    }
  }
  return true;
}

int Query(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: nncell_cli query <index> <queries.csv>\n");
    return 2;
  }
  auto opened = OpenAnyIndex(argv[2]);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  const size_t index_dim =
      opened->sharded ? opened->sharded->dim() : opened->index->dim();
  auto queries = ReadCsv(argv[3]);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  if (queries->dim() != index_dim) {
    std::fprintf(stderr, "query dim %zu != index dim %zu\n", queries->dim(),
                 index_dim);
    return 1;
  }
  size_t k = 1;
  if (const char* kv = FlagValue(argc, argv, "--k")) {
    k = std::strtoul(kv, nullptr, 10);
  }
  size_t threads = 1;
  if (const char* t = FlagValue(argc, argv, "--threads")) {
    threads = std::strtoul(t, nullptr, 10);
    if (opened->sharded) {
      opened->sharded->SetNumThreads(threads);
    } else {
      opened->index->SetNumThreads(threads);
    }
  }
  ApproxOptions approx;
  if (!ParseApproxFlags(argc, argv, &approx)) return 2;
  const bool trace_mode = HasFlag(argc, argv, "--trace");
  if (trace_mode && approx.enabled()) {
    // The trace instruments the exact cell-index pipeline; the approximate
    // tier bypasses it entirely (docs/APPROXIMATE.md).
    std::fprintf(stderr,
                 "--trace cannot be combined with --epsilon/--max-visits\n");
    return 2;
  }
  if (trace_mode && k == 1) {
    if (opened->sharded) {
      // Per-stage timelines are a single-index diagnostic; a sharded query
      // is a merge of several of them. Point the operator at the shards.
      std::fprintf(stderr,
                   "--trace is not supported on a sharded index; trace a "
                   "single shard directory instead (docs/SHARDING.md)\n");
      return 2;
    }
    // Traced queries run serially: the per-query buffer-pool deltas in the
    // trace are only exact when queries do not overlap.
    metrics::Registry::SetEnabled(true);
    auto& index = opened->index;
    for (size_t i = 0; i < queries->size(); ++i) {
      QueryTrace trace;
      auto r = index->Query((*queries)[i], &trace);
      if (!r.ok()) {
        std::printf("query %zu: error %s\n", i, r.status().ToString().c_str());
        continue;
      }
      std::printf("query %zu: nn id=%llu dist=%.6f candidates=%zu\n", i,
                  static_cast<unsigned long long>(r->id), r->dist,
                  r->candidates);
      std::printf("trace %zu: %s\n", i, trace.ToJson().c_str());
    }
    return 0;
  }
  if (opened->sharded) {
    return RunQueries(*opened->sharded, *queries, k, threads, approx);
  }
  return RunQueries(*opened->index, *queries, k, threads, approx);
}

// LP-effort probe for the stats workload: the sharded index has no
// aggregate recompute hook, so its LP counters reflect the build only.
void ProbeLpEffort(NNCellIndex& index, size_t lp_sample, uint64_t seed) {
  (void)index.MeasureApproxEffort(lp_sample, seed);
}
void ProbeLpEffort(ShardedIndex&, size_t, uint64_t) {}

// Stats over either index kind; `sharded` is null for a plain index, and
// its presence only *adds* output (the unsharded text and JSON stay
// byte-identical to what they were before sharding existed).
template <typename Index>
int RunStats(Index& index, const ShardedIndex* sharded, int argc,
             char** argv) {
  auto info = index.TreeInfo();
  if (!HasFlag(argc, argv, "--json")) {
    std::printf("points:             %zu (dim %zu)\n", index.size(),
                index.dim());
    std::printf("algorithm:          %s\n",
                ApproxAlgorithmName(index.options().algorithm));
    std::printf("expected candidates:%.2f\n", index.ExpectedCandidates());
    std::printf("tree height:        %zu\n", info.height);
    std::printf("tree nodes:         %zu (%zu leaves, %zu supernodes)\n",
                info.num_nodes, info.num_leaves, info.num_supernodes);
    std::printf("tree pages:         %zu (%zu bytes)\n", info.total_pages,
                info.total_pages * 4096);
    std::printf("validation:         %s\n",
                index.ValidateTree().empty() ? "OK"
                                             : index.ValidateTree().c_str());
    if (sharded != nullptr) {
      ShardedIndex::ShardStats s = sharded->Stats();
      std::printf("shards:             %zu (epoch %llu, route dim %u, "
                  "%zu degraded)\n",
                  sharded->num_shards(),
                  static_cast<unsigned long long>(s.epoch), s.route_dim,
                  sharded->degraded_shards());
      for (size_t i = 0; i < s.live.size(); ++i) {
        std::printf("  shard %-2zu          %llu live / %llu total, "
                    "%llu probes%s\n",
                    i, static_cast<unsigned long long>(s.live[i]),
                    static_cast<unsigned long long>(s.total[i]),
                    static_cast<unsigned long long>(s.probes[i]),
                    s.healthy[i] ? "" : " [DEGRADED]");
      }
    }
    std::printf("(run with --json for the full metrics snapshot)\n");
    return 0;
  }

  // --json: run a deterministic probe workload with metrics enabled, then
  // dump {"index": <index facts>, "metrics": <registry snapshot>}.
  size_t probe_queries = 16;
  size_t lp_sample = 8;
  uint64_t seed = 0x5eed;
  if (const char* v = FlagValue(argc, argv, "--probe-queries")) {
    probe_queries = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--lp-sample")) {
    lp_sample = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    seed = std::strtoull(v, nullptr, 10);
  }
  ApproxOptions approx;
  if (!ParseApproxFlags(argc, argv, &approx)) return 2;

  metrics::Registry& registry = metrics::Registry::Global();
  registry.ResetAll();
  metrics::Registry::SetEnabled(true);
  Rng rng(seed);
  std::vector<double> q(index.dim());
  // Aggregated certificate facts for the "approx" JSON object; stay zero
  // (and unreported) when the probe runs through the exact tier.
  uint64_t approx_approximate = 0;
  uint64_t approx_terminated_early = 0;
  uint64_t approx_truncated = 0;
  uint64_t approx_leaf_visits = 0;
  for (size_t t = 0; t < probe_queries; ++t) {
    for (auto& v : q) v = rng.NextDouble();
    auto r = approx.enabled() ? index.Query(q, approx) : index.Query(q);
    if (!r.ok()) {
      std::fprintf(stderr, "probe query failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (approx.enabled()) {
      approx_approximate += r->approx.approximate ? 1 : 0;
      approx_terminated_early += r->approx.terminated_early ? 1 : 0;
      approx_truncated += r->approx.truncated ? 1 : 0;
      approx_leaf_visits += r->approx.leaf_visits;
    }
  }
  // Recompute (and discard) a few cell approximations so the LP pipeline
  // counters reflect this index, not just zeros.
  ProbeLpEffort(index, lp_sample, seed);
  metrics::Registry::SetEnabled(false);

  char buf[512];
  std::string out = "{\"index\":{";
  std::snprintf(
      buf, sizeof(buf),
      "\"algorithm\":\"%s\",\"dim\":%zu,\"expected_candidates\":%.4f,"
      "\"kernel_dispatch\":\"%s\",\"lp_sample\":%zu,\"points\":%zu,"
      "\"probe_queries\":%zu,\"tree_height\":%zu,\"tree_leaves\":%zu,"
      "\"tree_nodes\":%zu,\"tree_pages\":%zu,\"tree_supernodes\":%zu,"
      "\"validation\":\"%s\"",
      ApproxAlgorithmName(index.options().algorithm), index.dim(),
      index.ExpectedCandidates(), kernels::ActiveLevelName(), lp_sample,
      index.size(), probe_queries, info.height, info.num_leaves,
      info.num_nodes, info.total_pages, info.num_supernodes,
      index.ValidateTree().empty() ? "OK" : "FAILED");
  out += buf;
  out += "}";
  // The "approx" object is the constant {"enabled":0} unless the probe ran
  // through the approximate tier, so consumers of the exact-tier schema
  // see one stable token (docs/APPROXIMATE.md).
  if (approx.enabled()) {
    std::snprintf(
        buf, sizeof(buf),
        ",\"approx\":{\"enabled\":1,\"epsilon\":%.6f,\"max_leaf_visits\":%llu,"
        "\"queries\":%zu,\"approximate\":%llu,\"terminated_early\":%llu,"
        "\"truncated\":%llu,\"leaf_visits\":%llu}",
        approx.epsilon,
        static_cast<unsigned long long>(approx.max_leaf_visits), probe_queries,
        static_cast<unsigned long long>(approx_approximate),
        static_cast<unsigned long long>(approx_terminated_early),
        static_cast<unsigned long long>(approx_truncated),
        static_cast<unsigned long long>(approx_leaf_visits));
    out += buf;
  } else {
    out += ",\"approx\":{\"enabled\":0}";
  }
  if (sharded != nullptr) {
    out += ",\"shard\":";
    out += sharded->StatsJson();
  }
  out += ",\"metrics\":";
  out += registry.SnapshotJson();
  out += "}";
  std::printf("%s\n", out.c_str());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: nncell_cli stats <index> [--json]"
                 " [--probe-queries=N] [--lp-sample=N] [--seed=S]\n");
    return 2;
  }
  auto opened = OpenAnyIndex(argv[2]);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  if (opened->sharded) {
    return RunStats(*opened->sharded, opened->sharded.get(), argc, argv);
  }
  return RunStats(*opened->index, nullptr, argc, argv);
}

int Checkpoint(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: nncell_cli checkpoint <dir>\n");
    return 2;
  }
  const std::string dir = argv[2];
  if (!fs::IsDirectory(dir)) {
    std::fprintf(stderr, "%s is not a durable index directory\n", dir.c_str());
    return 2;
  }
  if (IsShardedDir(dir)) {
    ShardedIndex::RecoveryInfo sinfo;
    auto idx = ShardedIndex::Open(dir, 0, NNCellOptions(),
                                  NNCellIndex::DurableOptions(),
                                  ShardedOptions(), &sinfo);
    if (!idx.ok()) {
      std::fprintf(stderr, "%s\n", idx.status().ToString().c_str());
      return 1;
    }
    Status st = (*idx)->Checkpoint();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "checkpointed %s: %zu live points across %zu shards, %llu router "
        "records folded into the router snapshot\n",
        dir.c_str(), (*idx)->size(), (*idx)->num_shards(),
        static_cast<unsigned long long>(sinfo.router_records_replayed));
    return 0;
  }
  NNCellIndex::RecoveryInfo info;
  auto idx = NNCellIndex::Open(dir, 0, NNCellOptions(),
                               NNCellIndex::DurableOptions(), &info);
  if (!idx.ok()) {
    std::fprintf(stderr, "%s\n", idx.status().ToString().c_str());
    return 1;
  }
  Status st = (*idx)->Checkpoint();
  if (!st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "checkpointed %s: %zu live points, %llu wal records folded into the "
      "snapshot\n",
      dir.c_str(), (*idx)->size(),
      static_cast<unsigned long long>(info.wal_records_replayed));
  return 0;
}

// Sharded recovery report: what Open() finished, replayed and reconciled,
// plus one status line per shard. Exits nonzero when any shard is
// degraded or tree validation fails -- the operator entry point of the
// degraded-shard runbook (docs/SHARDING.md, docs/OPERATIONS.md).
int RecoverSharded(const std::string& dir) {
  ShardedIndex::RecoveryInfo info;
  auto idx = ShardedIndex::Open(dir, 0, NNCellOptions(),
                                NNCellIndex::DurableOptions(),
                                ShardedOptions(), &info);
  if (!idx.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 idx.status().ToString().c_str());
    return 1;
  }
  std::string tree_check = (*idx)->ValidateTree();
  std::printf("recovered sharded index %s:\n", dir.c_str());
  std::printf("  shards:            %zu (epoch %llu)\n", (*idx)->num_shards(),
              static_cast<unsigned long long>((*idx)->epoch()));
  std::printf("  rebalance:         %s\n",
              info.finalized_install  ? "finalized a committed install"
              : info.discarded_staging ? "discarded uncommitted staging"
                                       : "none in flight");
  std::printf("  router replayed:   %llu records (%llu already in snapshot)\n",
              static_cast<unsigned long long>(info.router_records_replayed),
              static_cast<unsigned long long>(info.router_records_skipped));
  std::printf("  reconciled:        %llu inserts, %llu deletes\n",
              static_cast<unsigned long long>(info.reconciled_inserts),
              static_cast<unsigned long long>(info.reconciled_deletes));
  for (size_t i = 0; i < info.shards.size(); ++i) {
    const auto& s = info.shards[i];
    if (s.status.ok()) {
      std::printf("  shard %-2zu           ok (%llu wal records replayed)\n", i,
                  static_cast<unsigned long long>(
                      s.info.wal_records_replayed));
    } else {
      std::printf("  shard %-2zu           DEGRADED: %s\n", i,
                  s.status.ToString().c_str());
    }
  }
  std::printf("  live points:       %zu (dim %zu)\n", (*idx)->size(),
              (*idx)->dim());
  std::printf("  tree validation:   %s\n",
              tree_check.empty() ? "OK" : tree_check.c_str());
  return ((*idx)->degraded() || !tree_check.empty()) ? 1 : 0;
}

int Recover(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: nncell_cli recover <dir> [--dim=N]\n");
    return 2;
  }
  const std::string dir = argv[2];
  if (!fs::IsDirectory(dir)) {
    std::fprintf(stderr, "%s is not a durable index directory\n", dir.c_str());
    return 2;
  }
  if (IsShardedDir(dir)) return RecoverSharded(dir);
  size_t dim = 0;
  if (const char* d = FlagValue(argc, argv, "--dim")) {
    dim = std::strtoul(d, nullptr, 10);
  }
  NNCellIndex::RecoveryInfo info;
  auto idx = NNCellIndex::Open(dir, dim, NNCellOptions(),
                               NNCellIndex::DurableOptions(), &info);
  if (!idx.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 idx.status().ToString().c_str());
    return 1;
  }
  std::string tree_check = (*idx)->ValidateTree();
  std::printf("recovered %s:\n", dir.c_str());
  std::printf("  snapshot:        %s\n",
              info.snapshot_loaded
                  ? ("loaded (covers wal lsn " +
                     std::to_string(info.snapshot_wal_lsn) + ")")
                        .c_str()
                  : (info.created ? "none (fresh index)" : "none"));
  std::printf("  wal replayed:    %llu records\n",
              static_cast<unsigned long long>(info.wal_records_replayed));
  std::printf("  wal skipped:     %llu records (already in snapshot)\n",
              static_cast<unsigned long long>(info.wal_records_skipped));
  std::printf("  wal torn tail:   %llu bytes truncated\n",
              static_cast<unsigned long long>(info.wal_torn_bytes));
  std::printf("  live points:     %zu (dim %zu)\n", (*idx)->size(),
              (*idx)->dim());
  std::printf("  tree validation: %s\n",
              tree_check.empty() ? "OK" : tree_check.c_str());
  return tree_check.empty() ? 0 : 1;
}

int Rebalance(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: nncell_cli rebalance <dir>\n");
    return 2;
  }
  const std::string dir = argv[2];
  if (!IsShardedDir(dir)) {
    std::fprintf(stderr, "%s is not a sharded index directory (no %s)\n",
                 dir.c_str(), shard::kShardManifestFileName);
    return 2;
  }
  auto idx = ShardedIndex::Open(dir, 0, NNCellOptions(),
                                NNCellIndex::DurableOptions(),
                                ShardedOptions());
  if (!idx.ok()) {
    std::fprintf(stderr, "%s\n", idx.status().ToString().c_str());
    return 1;
  }
  const uint64_t epoch_before = (*idx)->epoch();
  Stopwatch timer;
  Status st = (*idx)->Rebalance(/*force=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "rebalance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  ShardedIndex::ShardStats s = (*idx)->Stats();
  std::printf("rebalanced %s: epoch %llu -> %llu, %zu shards, %zu live "
              "points, %.2fs\n",
              dir.c_str(), static_cast<unsigned long long>(epoch_before),
              static_cast<unsigned long long>((*idx)->epoch()),
              (*idx)->num_shards(), (*idx)->size(), timer.ElapsedSeconds());
  for (size_t i = 0; i < s.live.size(); ++i) {
    std::printf("  shard %-2zu %llu live points\n", i,
                static_cast<unsigned long long>(s.live[i]));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nncell_cli"
                 " <build|query|stats|checkpoint|recover|rebalance> ...\n"
                 "  build <points.csv> <out.nncell|dir> [--algorithm=A]"
                 " [--decompose=K] [--xtree=0|1] [--threads=N] [--durable]"
                 " [--shards=K]\n"
                 "  query <index.nncell|dir> <queries.csv> [--k=N]"
                 " [--threads=N] [--trace]\n"
                 "  stats <index.nncell|dir> [--json] [--probe-queries=N]"
                 " [--lp-sample=N] [--seed=S]\n"
                 "  checkpoint <dir>\n"
                 "  recover <dir> [--dim=N]\n"
                 "  rebalance <dir>\n");
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "build") return Build(argc, argv);
  if (cmd == "query") return Query(argc, argv);
  if (cmd == "stats") return Stats(argc, argv);
  if (cmd == "checkpoint") return Checkpoint(argc, argv);
  if (cmd == "recover") return Recover(argc, argv);
  if (cmd == "rebalance") return Rebalance(argc, argv);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}
