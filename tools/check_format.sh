#!/usr/bin/env bash
# Verifies that every C++ source file is clang-format clean (no diff against
# the repo's .clang-format). Exits 0 when clean or when clang-format is not
# installed (so developer machines without LLVM tooling are not blocked);
# pass --strict to make a missing clang-format an error, as CI does.
#
# Usage: tools/check_format.sh [--strict] [--fix]
#   --strict  fail (exit 2) if clang-format is unavailable
#   --fix     rewrite files in place instead of just reporting
set -u

strict=0
fix=0
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    --fix) fix=1 ;;
    *)
      echo "unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
      clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi

if [ -z "$CLANG_FORMAT" ]; then
  if [ "$strict" -eq 1 ]; then
    echo "error: clang-format not found (required with --strict)" >&2
    exit 2
  fi
  echo "clang-format not found; skipping format check"
  exit 0
fi

mapfile -t files < <(git ls-files '*.h' '*.cc')
if [ "${#files[@]}" -eq 0 ]; then
  echo "no C++ files tracked; nothing to check"
  exit 0
fi

if [ "$fix" -eq 1 ]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    if [ "$bad" -eq 0 ]; then
      echo "files needing formatting (run tools/check_format.sh --fix):"
    fi
    echo "  $f"
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  exit 1
fi
echo "all ${#files[@]} files clang-format clean ($("$CLANG_FORMAT" --version))"
