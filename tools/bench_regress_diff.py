#!/usr/bin/env python3
"""Gate a bench_regress run against the committed BENCH_lp.json baseline.

Compares by config name (a quick run carries a subset of the committed
configs) using only the deterministic LP counters, which are a pure
function of config and seed -- wall-clock never gates. Two checks per
config:

  1. No iteration regression: the new optimized lp_iterations may exceed
     the committed optimized lp_iterations by at most --max-regression
     (default 20%).
  2. The optimized pipeline still beats its own in-run baseline: new
     optimized lp_iterations <= new baseline lp_iterations * (1 + slop).

Exits 0 when every compared config passes, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {c["name"]: c for c in doc["configs"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_lp.json")
    ap.add_argument("current", help="freshly produced bench_regress output")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed relative lp_iterations growth vs baseline")
    args = ap.parse_args()

    committed = load(args.baseline)
    current = load(args.current)

    compared = 0
    failures = []
    for name, cur in sorted(current.items()):
        ref = committed.get(name)
        if ref is None:
            print(f"  {name}: not in committed baseline, skipped")
            continue
        compared += 1
        ref_it = ref["optimized"]["lp_iterations"]
        cur_it = cur["optimized"]["lp_iterations"]
        limit = ref_it * (1.0 + args.max_regression)
        status = "ok"
        if cur_it > limit:
            status = "ITERATION REGRESSION"
            failures.append(
                f"{name}: optimized lp_iterations {cur_it} > "
                f"{limit:.0f} (committed {ref_it} +{args.max_regression:.0%})")
        base_it = cur["baseline"]["lp_iterations"]
        if cur_it > base_it * 1.05:
            status = "SLOWER THAN COLD"
            failures.append(
                f"{name}: optimized lp_iterations {cur_it} exceeds its own "
                f"cold baseline {base_it}")
        print(f"  {name}: iters {cur_it} (committed {ref_it}, "
              f"cold {base_it}) [{status}]")

    if compared == 0:
        print("no overlapping configs between baseline and current run")
        return 1
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} config(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
