#!/usr/bin/env python3
"""Gate a bench_simd run against the committed BENCH_simd.json baseline.

Compares by config name using only the deterministic counters: the bit-fold
checksum of every computed double and the evaluation count, both a pure
function of dim/n/seed under the kernel FP-determinism contract
(docs/KERNELS.md) -- any single-ulp drift on any dispatch level flips the
checksum. Wall-clock and the speedup headline never gate; they vary with
the machine and are reported for the human reader only.

Exits 0 when every compared config matches exactly, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {c["name"]: c for c in doc["configs"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_simd.json")
    ap.add_argument("current", help="freshly produced bench_simd output")
    args = ap.parse_args()

    base_doc, committed = load(args.baseline)
    cur_doc, current = load(args.current)

    print(f"dispatch: {cur_doc.get('dispatch')} "
          f"({cur_doc.get('dispatch_reason')}), "
          f"baseline recorded {base_doc.get('dispatch')}")

    compared = 0
    failures = []
    for name, cur in sorted(current.items()):
        ref = committed.get(name)
        if ref is None:
            print(f"  {name}: not in committed baseline, skipped")
            continue
        compared += 1
        status = "ok"
        if cur["checksum"] != ref["checksum"]:
            status = "CHECKSUM DRIFT"
            failures.append(
                f"{name}: checksum {cur['checksum']} != committed "
                f"{ref['checksum']} (kernel output changed bit-for-bit)")
        if cur["evals"] != ref["evals"]:
            status = "EVAL COUNT DRIFT"
            failures.append(
                f"{name}: evals {cur['evals']} != committed {ref['evals']}")
        print(f"  {name}: checksum {cur['checksum']} evals {cur['evals']} "
              f"speedup {cur.get('wall_speedup', 0):.2f}x [{status}]")

    if compared == 0:
        print("no overlapping configs between baseline and current run")
        return 1
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} config(s) bit-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
