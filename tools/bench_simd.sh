#!/usr/bin/env bash
# SIMD kernel bench harness driver.
#
#   tools/bench_simd.sh [--quick] [--update] [--build-dir DIR]
#
# Runs bench/bench_simd (building it first), then either gates the fresh
# deterministic counters against the committed BENCH_simd.json (default;
# checksums and eval counts must match bit-for-bit) or rewrites the
# baseline (--update, full mode only). --quick runs fewer timing reps --
# the counted pass is identical, so quick runs gate against the full
# baseline. The binary itself fails when the dispatched table diverges
# from scalar, so a run on AVX2 hardware doubles as a bit-equality check.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
UPDATE=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --update) UPDATE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--update] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD_DIR" ]]; then
  for d in build-dev build; do
    if [[ -d "$d" ]]; then BUILD_DIR="$d"; break; fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -d "$BUILD_DIR" ]]; then
  echo "no build directory found (configure with: cmake --preset dev)" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target bench_simd

OUT="$BUILD_DIR/bench_simd_current.json"
ARGS=()
if [[ "$QUICK" == 1 ]]; then ARGS+=(--quick); fi
"$BUILD_DIR/bench/bench_simd" "${ARGS[@]}" "--out=$OUT"

if [[ "$UPDATE" == 1 ]]; then
  if [[ "$QUICK" == 1 ]]; then
    echo "--update requires a full run (reps affect the recorded wall times)" >&2
    exit 2
  fi
  cp "$OUT" BENCH_simd.json
  echo "BENCH_simd.json updated"
  exit 0
fi

python3 tools/bench_simd_diff.py BENCH_simd.json "$OUT"
