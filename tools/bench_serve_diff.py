#!/usr/bin/env python3
"""Gate a bench_serve run against the committed BENCH_serve.json baseline.

The det scenario (1 connection, fixed seed) is deterministic end to end,
so its integer results gate exactly: the query-response checksum and the
per-type op counts must equal the committed values, and every op must
succeed (ok == sent, errors == rejected == 0).

The load scenario (concurrent connections) is nondeterministic by nature;
only invariants gate: zero errors and a positive completed-op count.
Wall-clock fields (latency percentiles, throughput) never gate -- they are
reported for humans.

The server block gates on conservation (accepted == completed + rejected)
and zero malformed frames.

Exits 0 when everything passes, 1 otherwise.
"""

import json
import sys


def scenarios(doc):
    return {s["label"]: s["results"] for s in doc["scenarios"]}


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BENCH_serve.json current.json",
              file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    ref = scenarios(committed)
    cur = scenarios(current)
    failures = []

    det = cur.get("det")
    if det is None:
        failures.append("det scenario missing from current run")
    else:
        ref_det = ref["det"]
        for key in ("checksum", "queries", "inserts", "deletes", "sent"):
            if det[key] != ref_det[key]:
                failures.append(
                    f"det: {key} = {det[key]}, baseline {ref_det[key]}")
        if det["ok"] != det["sent"]:
            failures.append(f"det: ok {det['ok']} != sent {det['sent']}")
        for key in ("errors", "rejected"):
            if det[key] != 0:
                failures.append(f"det: {key} = {det[key]}, want 0")
        print(f"  det: checksum {det['checksum']} ok, "
              f"{det['ok']}/{det['sent']} ops, "
              f"p99 {det['latency_us']['p99']}us (not gated)")

    load = cur.get("load")
    if load is None:
        print("  load: not in current run, skipped (quick mode)")
    else:
        if load["errors"] != 0:
            failures.append(f"load: errors = {load['errors']}, want 0")
        if load["ok"] == 0:
            failures.append("load: no ops completed")
        print(f"  load: {load['ok']}/{load['sent']} ops, "
              f"{load['rejected']} rejected (backpressure), "
              f"{load['throughput_ops_s']:.0f} ops/s, "
              f"p99 {load['latency_us']['p99']}us (not gated)")

    server = current["server"]
    if not server["conservation_ok"]:
        failures.append(
            f"server: conservation violated: accepted {server['accepted']} "
            f"!= completed {server['completed']} + rejected "
            f"{server['rejected']}")
    if server["malformed"] != 0:
        failures.append(f"server: malformed = {server['malformed']}, want 0")
    print(f"  server: accepted {server['accepted']} = "
          f"completed {server['completed']} + rejected {server['rejected']}, "
          f"malformed {server['malformed']}")

    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("serving bench gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
