// Differential oracle suite: the no-false-dismissal guarantee (Lemma 2)
// as an executable property. Every configuration of the index -- all four
// approximation algorithms, several dimensionalities and seeds, weighted
// metrics, decomposition, and post-insert/delete states -- must return
// exactly the nearest neighbor the SequentialScan baseline finds, because
// the scan IS the definition of correctness the paper's Lemma 2 promises
// to preserve.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/metrics.h"
#include "common/metrics_names.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "scan/sequential_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct IndexUnderTest {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

IndexUnderTest MakeIndex(size_t dim, const NNCellOptions& options) {
  IndexUnderTest t;
  t.file = std::make_unique<PageFile>(2048);
  t.pool = std::make_unique<BufferPool>(t.file.get(), 512);
  t.index = std::make_unique<NNCellIndex>(t.pool.get(), dim, options);
  return t;
}

struct ScanOracle {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<SequentialScan> scan;
};

// Oracle over the live points of `index`, in the same (possibly weighted)
// metric space the index searches internally: SequentialScan is plain
// Euclidean, so it scans the metric-transformed coordinates and its
// distances are directly comparable to QueryResult::dist.
ScanOracle MakeOracle(const NNCellIndex& index) {
  ScanOracle o;
  o.file = std::make_unique<PageFile>(2048);
  o.pool = std::make_unique<BufferPool>(o.file.get(), 512);
  o.scan = std::make_unique<SequentialScan>(o.pool.get(), index.dim());
  for (uint64_t id = 0; id < index.points().size(); ++id) {
    if (index.IsAlive(id)) o.scan->Insert(index.points()[id], id);
  }
  return o;
}

std::vector<double> ToMetric(const std::vector<double>& q,
                             const std::vector<double>& weights) {
  std::vector<double> m = q;
  for (size_t i = 0; i < weights.size(); ++i) m[i] *= std::sqrt(weights[i]);
  return m;
}

// One differential probe: the index answer must match the scan answer in
// distance exactly (both compute sqrt of an exact double sum; ties may
// legitimately resolve to different ids at equal distance).
void ExpectSameNearest(const NNCellIndex& index, const SequentialScan& scan,
                       const std::vector<double>& q) {
  auto got = index.Query(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  SequentialScan::Result want =
      scan.NearestNeighbor(ToMetric(q, index.options().weights).data());
  EXPECT_NEAR(got->dist, want.dist, 1e-9)
      << "index returned id " << got->id << ", scan id " << want.id;
  EXPECT_TRUE(index.IsAlive(got->id));
}

struct DiffCase {
  ApproxAlgorithm algorithm;
  size_t dim;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<DiffCase>& info) {
  std::string name = ApproxAlgorithmName(info.param.algorithm);
  // gtest parameter names must be alphanumeric ("NN-Direction" is not).
  name.erase(std::remove_if(name.begin(), name.end(),
                            [](unsigned char ch) { return !std::isalnum(ch); }),
             name.end());
  return name + "_d" + std::to_string(info.param.dim) + "_s" +
         std::to_string(info.param.seed);
}

class DifferentialTest : public testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, QueryMatchesSequentialScan) {
  const DiffCase& c = GetParam();
  // Smaller sets in high d keep the kCorrect (all-pairs LP) cases fast.
  const size_t n = c.dim <= 4 ? 130 : (c.dim <= 8 ? 90 : 60);

  NNCellOptions options;
  options.algorithm = c.algorithm;
  IndexUnderTest t = MakeIndex(c.dim, options);
  PointSet pts = GenerateUniform(n, c.dim, c.seed);
  ASSERT_TRUE(t.index->BulkBuild(pts).ok());

  ScanOracle oracle = MakeOracle(*t.index);
  Rng rng(c.seed ^ 0xd1ffe7);
  std::vector<double> q(c.dim);
  for (size_t i = 0; i < 40; ++i) {
    for (auto& v : q) v = rng.NextDouble();
    ExpectSameNearest(*t.index, *oracle.scan, q);
  }
}

TEST_P(DifferentialTest, StaysExactAcrossInsertsAndDeletes) {
  const DiffCase& c = GetParam();
  const size_t n = c.dim <= 4 ? 100 : 60;

  NNCellOptions options;
  options.algorithm = c.algorithm;
  IndexUnderTest t = MakeIndex(c.dim, options);
  PointSet pts = GenerateUniform(n, c.dim, c.seed);
  ASSERT_TRUE(t.index->BulkBuild(pts).ok());

  // Dynamic churn: a wave of inserts, then a wave of deletes (every 4th
  // original point), leaving a state no precomputation ever saw.
  Rng rng(c.seed ^ 0xc0ffee);
  std::vector<double> p(c.dim);
  for (size_t i = 0; i < 12; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    auto id = t.index->Insert(p);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  for (uint64_t id = 0; id < n; id += 4) {
    ASSERT_TRUE(t.index->Delete(id).ok());
  }
  ASSERT_TRUE(t.index->CheckInvariants(25, c.seed).ok());

  ScanOracle oracle = MakeOracle(*t.index);
  std::vector<double> q(c.dim);
  for (size_t i = 0; i < 30; ++i) {
    for (auto& v : q) v = rng.NextDouble();
    ExpectSameNearest(*t.index, *oracle.scan, q);
  }
}

std::vector<DiffCase> AllCases() {
  std::vector<DiffCase> cases;
  for (ApproxAlgorithm a :
       {ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
        ApproxAlgorithm::kSphere, ApproxAlgorithm::kNNDirection}) {
    for (size_t dim : {2u, 4u, 8u, 16u}) {
      for (uint64_t seed : {7u, 1234u}) {
        cases.push_back({a, dim, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DifferentialTest,
                         testing::ValuesIn(AllCases()), CaseName);

// The candidate count itself is differential-testable for the Correct
// strategy: with exact (undecomposed) cell MBRs there is exactly one
// rectangle per live point, so Query's candidate set must be precisely the
// cells whose stored rectangle contains q -- countable by brute force over
// the bookkept rectangles. Lemma 2 additionally demands at least one
// candidate for any in-space query (the true NN's cell contains q). The
// same totals must show up in the metrics registry.
TEST(DifferentialCandidateCountTest, CorrectStrategyMatchesContainmentOracle) {
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kCorrect;
  IndexUnderTest t = MakeIndex(4, options);
  PointSet pts = GenerateUniform(80, 4, 321);
  ASSERT_TRUE(t.index->BulkBuild(pts).ok());

  metrics::Registry& registry = metrics::Registry::Global();
  metrics::Counter* cand_counter =
      registry.counter(metrics::kQueryCandidates);
  const bool was_enabled = metrics::Registry::Enabled();
  metrics::Registry::SetEnabled(true);
  const uint64_t cand_before = cand_counter->Value();

  uint64_t total_candidates = 0;
  Rng rng(0xca9d);
  std::vector<double> q(4);
  for (int probe = 0; probe < 25; ++probe) {
    for (auto& v : q) v = rng.NextDouble();
    auto r = t.index->Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // No weights configured, so q is already in metric space.
    size_t contained = 0;
    for (uint64_t id = 0; id < t.index->points().size(); ++id) {
      if (!t.index->IsAlive(id)) continue;
      ASSERT_EQ(t.index->CellRects(id).size(), 1u);
      if (t.index->CellRects(id)[0].ContainsPoint(q.data())) ++contained;
    }
    EXPECT_GE(r->candidates, 1u);
    EXPECT_EQ(r->candidates, contained);
    total_candidates += r->candidates;
  }

  metrics::Registry::SetEnabled(was_enabled);
#if NNCELL_METRICS
  EXPECT_EQ(cand_counter->Value() - cand_before, total_candidates);
#else
  (void)cand_before;
  (void)total_candidates;
#endif
}

// Weighted metrics ride the same isometry argument: the index searches in
// sqrt(w)-scaled space, so an oracle scanning the scaled coordinates must
// agree on every weighted distance.
TEST(DifferentialWeightedTest, WeightedQueryMatchesScaledScan) {
  for (size_t dim : {2u, 8u}) {
    NNCellOptions options;
    options.algorithm = ApproxAlgorithm::kSphere;
    options.weights.resize(dim);
    for (size_t i = 0; i < dim; ++i) {
      options.weights[i] = 0.25 + 1.5 * static_cast<double>(i % 4);
    }
    IndexUnderTest t = MakeIndex(dim, options);
    PointSet pts = GenerateUniform(120, dim, 99);
    ASSERT_TRUE(t.index->BulkBuild(pts).ok());

    ScanOracle oracle = MakeOracle(*t.index);
    Rng rng(0x3e1f);
    std::vector<double> q(dim);
    for (size_t i = 0; i < 40; ++i) {
      for (auto& v : q) v = rng.NextDouble();
      ExpectSameNearest(*t.index, *oracle.scan, q);
    }
  }
}

// Decomposed approximations (Section 3) must not cost exactness either.
TEST(DifferentialDecompositionTest, DecomposedCellsStayExact) {
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  options.decomposition.max_partitions = 4;
  IndexUnderTest t = MakeIndex(6, options);
  PointSet pts = GenerateUniform(150, 6, 2024);
  ASSERT_TRUE(t.index->BulkBuild(pts).ok());

  ScanOracle oracle = MakeOracle(*t.index);
  Rng rng(0xdec0);
  std::vector<double> q(6);
  for (size_t i = 0; i < 40; ++i) {
    for (auto& v : q) v = rng.NextDouble();
    ExpectSameNearest(*t.index, *oracle.scan, q);
  }
}

// QueryBatch is defined as "identical to a serial loop of Query calls";
// hold it to that, including against the oracle.
TEST(DifferentialBatchTest, BatchEqualsSerialAndOracle) {
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  options.parallel.num_threads = 4;
  IndexUnderTest t = MakeIndex(8, options);
  PointSet pts = GenerateUniform(200, 8, 5);
  ASSERT_TRUE(t.index->BulkBuild(pts).ok());

  PointSet queries = GenerateQueries(60, 8, 6);
  auto batch = t.index->QueryBatch(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());

  ScanOracle oracle = MakeOracle(*t.index);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto serial = t.index->Query(queries[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].id, serial->id);
    EXPECT_EQ((*batch)[i].dist, serial->dist);
    SequentialScan::Result want = oracle.scan->NearestNeighbor(queries[i]);
    EXPECT_NEAR((*batch)[i].dist, want.dist, 1e-9);
  }
}

}  // namespace
}  // namespace nncell
