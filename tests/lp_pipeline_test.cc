// Property suite for the optimized LP hot path (bisector pre-pruning and
// ray-shoot warm starts, PR: LP hot-path overhaul). The optimizations
// promise *exact* equivalence, not an enlargement: the pruned system
// describes the same polytope as the full one, and warm/skipped face
// solves reach the same optimum as the seed's cold solver. The suites
// here hold the pipeline to that promise:
//
//   * face-value equivalence of the optimized vs cold pipeline across all
//     four ApproxAlgorithms and d in {2, 4, 8, 16}, at the index level;
//   * a randomized pruning audit over > 1000 cells (uniform and clustered
//     data) requiring zero face mismatches;
//   * an explicit lp::AuditSolution (feasibility + KKT) pass over every
//     face the optimized pipeline emits, covering the skipped, warm and
//     cold answer paths;
//   * unit tests of the FaceSolveSession ray-shoot itself.

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/hyper_rect.h"
#include "common/rng.h"
#include "data/generators.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "lp/active_set_solver.h"
#include "lp/audit.h"
#include "lp/face_solve_session.h"
#include "lp/lp_problem.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

// The per-face tolerance of the equivalence contract. The optimized and
// cold pipelines may walk different pivot paths, so face values can differ
// by solver snap-refinement dust -- but never by more than this.
constexpr double kFaceTol = 1e-9;

CellApproxOptions ColdOptions() {
  CellApproxOptions o;
  o.prune_bisectors = false;
  o.warm_start = false;
  return o;
}

std::vector<const double*> AllOthers(const PointSet& pts, size_t owner) {
  std::vector<const double*> others;
  others.reserve(pts.size() - 1);
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i != owner) others.push_back(pts[i]);
  }
  return others;
}

// ---------------------------------------------------------------------------
// Index-level equivalence: the optimized pipeline must reproduce the seed
// pipeline's cell rectangles for every algorithm and dimensionality.

struct BuiltIndex {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

BuiltIndex BuildIndex(const PointSet& pts, ApproxAlgorithm algorithm,
                      const CellApproxOptions& approx) {
  BuiltIndex b;
  b.file = std::make_unique<PageFile>(2048);
  b.pool = std::make_unique<BufferPool>(b.file.get(), 512);
  NNCellOptions options;
  options.algorithm = algorithm;
  options.approx = approx;
  b.index = std::make_unique<NNCellIndex>(b.pool.get(), pts.dim(), options);
  Status built = b.index->BulkBuild(pts);
  EXPECT_TRUE(built.ok()) << built.ToString();
  return b;
}

class LpPipelineEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LpPipelineEquivalenceTest, OptimizedFacesMatchColdAcrossAlgorithms) {
  const size_t d = GetParam();
  const PointSet pts = GenerateUniform(120, d, 1234 + d);
  for (ApproxAlgorithm algorithm :
       {ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
        ApproxAlgorithm::kSphere, ApproxAlgorithm::kNNDirection}) {
    SCOPED_TRACE(ApproxAlgorithmName(algorithm));
    BuiltIndex opt = BuildIndex(pts, algorithm, CellApproxOptions());
    BuiltIndex cold = BuildIndex(pts, algorithm, ColdOptions());

    // The optimized build must actually have taken the optimized paths --
    // equivalence with nothing exercised would be vacuous.
    const ApproxStats& s = opt.index->build_stats().approx;
    EXPECT_GT(s.skipped_faces + s.warm_faces, 0u);
    EXPECT_EQ(cold.index->build_stats().approx.skipped_faces, 0u);
    EXPECT_EQ(cold.index->build_stats().approx.warm_faces, 0u);

    for (uint64_t id = 0; id < pts.size(); ++id) {
      const std::vector<HyperRect>& a = opt.index->CellRects(id);
      const std::vector<HyperRect>& b = cold.index->CellRects(id);
      ASSERT_EQ(a.size(), b.size()) << "id " << id;
      for (size_t r = 0; r < a.size(); ++r) {
        for (size_t k = 0; k < d; ++k) {
          EXPECT_NEAR(a[r].lo(k), b[r].lo(k), kFaceTol)
              << "id " << id << " rect " << r << " dim " << k;
          EXPECT_NEAR(a[r].hi(k), b[r].hi(k), kFaceTol)
              << "id " << id << " rect " << r << " dim " << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpPipelineEquivalenceTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

// ---------------------------------------------------------------------------
// Randomized pruning audit: > 1000 cells, zero face mismatches allowed.
// Pruning runs alone (warm starts off) so a mismatch here indicts the
// pruner specifically, and the audit spans uniform and clustered layouts
// (clusters make bisector rows far more redundant, the pruner's best and
// therefore riskiest regime).

TEST(BisectorPrunerAuditTest, RandomizedThousandCellAuditHasZeroMismatches) {
  CellApproxOptions prune_only;
  prune_only.warm_start = false;

  size_t cells = 0;
  size_t mismatches = 0;
  size_t cells_with_pruning = 0;
  for (size_t d : {2u, 4u, 8u, 16u}) {
    for (int layout = 0; layout < 2; ++layout) {
      const uint64_t seed = 7000 + 10 * d + layout;
      const PointSet pts = layout == 0
                               ? GenerateUniform(135, d, seed)
                               : GenerateClusters(135, d, /*clusters=*/6,
                                                  /*stddev=*/0.05, seed);
      CellApproximator pruned(d, HyperRect::UnitCube(d), LpOptions(),
                              prune_only);
      CellApproximator cold(d, HyperRect::UnitCube(d), LpOptions(),
                            ColdOptions());
      for (size_t owner = 0; owner < pts.size(); ++owner) {
        auto others = AllOthers(pts, owner);
        ApproxStats stats;
        HyperRect a = pruned.ApproximateMbr(pts[owner], others, &stats);
        HyperRect b = cold.ApproximateMbr(pts[owner], others);
        ++cells;
        if (stats.pruned_rows > 0) ++cells_with_pruning;
        for (size_t k = 0; k < d; ++k) {
          if (std::abs(a.lo(k) - b.lo(k)) > kFaceTol ||
              std::abs(a.hi(k) - b.hi(k)) > kFaceTol) {
            ++mismatches;
            ADD_FAILURE() << "cell " << owner << " d=" << d << " layout "
                          << layout << " dim " << k << ": pruned ["
                          << a.lo(k) << ", " << a.hi(k) << "] vs cold ["
                          << b.lo(k) << ", " << b.hi(k) << "]";
          }
        }
      }
    }
  }
  EXPECT_GE(cells, 1000u);
  EXPECT_EQ(mismatches, 0u);
  // The audit must have exercised real pruning, not 1000 vacuous passes.
  EXPECT_GT(cells_with_pruning, 100u);
}

// ---------------------------------------------------------------------------
// Explicit per-face KKT audit of the optimized pipeline. The approximator
// DCHECK-audits faces in debug builds only; this test keeps the audit in
// every build, and proves all three answer paths (skipped / warm / cold)
// both occur and certify.

TEST(LpPipelineAuditTest, EveryOptimizedFacePassesFeasibilityAndKktAudit) {
  size_t skipped = 0, warm = 0, cold = 0;
  FaceSolveSession session;
  BisectorPruner pruner;
  for (size_t d : {2u, 4u, 8u, 16u}) {
    const PointSet pts = GenerateUniform(90, d, 4321 + d);
    const HyperRect space = HyperRect::UnitCube(d);
    for (size_t owner = 0; owner < 25; ++owner) {
      auto others = AllOthers(pts, owner);
      LpProblem& problem = session.problem();
      problem.Reset(d);
      pruner.BuildPruned(pts[owner], others, d, space, &problem);
      std::vector<double> start(pts[owner], pts[owner] + d);
      session.BeginCell(/*warm_start=*/true);
      session.PrepareFaces(problem, start);
      std::vector<double> c(d, 0.0);
      for (size_t i = 0; i < d; ++i) {
        c[i] = 1.0;
        for (bool maximize : {true, false}) {
          LpResult res = session.SolveFace(problem, c, i, maximize, start);
          switch (session.last_face_kind()) {
            case FaceSolveSession::FaceKind::kSkipped: ++skipped; break;
            case FaceSolveSession::FaceKind::kWarm: ++warm; break;
            case FaceSolveSession::FaceKind::kCold: ++cold; break;
          }
          ASSERT_EQ(res.status, LpStatus::kOptimal);
          Status audit = lp::AuditSolution(
              problem, c, res,
              maximize ? lp::LpSense::kMaximize : lp::LpSense::kMinimize);
          EXPECT_TRUE(audit.ok())
              << "d=" << d << " owner=" << owner << " axis=" << i
              << (maximize ? " max: " : " min: ") << audit.ToString();
        }
        c[i] = 0.0;
      }
    }
  }
  // All three answer paths must have been audited. (Skipped faces dominate
  // in high d where cells reach the data-space box; warm faces dominate in
  // low d where a bisector blocks the ray first.)
  EXPECT_GT(skipped, 0u);
  EXPECT_GT(warm, 0u);
}

// ---------------------------------------------------------------------------
// FaceSolveSession ray-shoot unit tests.

TEST(FaceSolveSessionTest, BoxOnlyCellSkipsEveryFaceExactly) {
  const size_t d = 4;
  FaceSolveSession session;
  LpProblem& problem = session.problem();
  problem.Reset(d);
  problem.AddBoxConstraints(HyperRect::UnitCube(d));
  std::vector<double> start(d, 0.3);
  session.BeginCell(/*warm_start=*/true);
  session.PrepareFaces(problem, start);
  std::vector<double> c(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    c[i] = 1.0;
    LpResult up = session.SolveFace(problem, c, i, /*maximize=*/true, start);
    EXPECT_EQ(session.last_face_kind(), FaceSolveSession::FaceKind::kSkipped);
    LpResult dn = session.SolveFace(problem, c, i, /*maximize=*/false, start);
    EXPECT_EQ(session.last_face_kind(), FaceSolveSession::FaceKind::kSkipped);
    // Box rows are +-e_i with rhs 1 / 0: certified values are exact.
    EXPECT_EQ(up.objective, 1.0);
    EXPECT_EQ(dn.objective, 0.0);
    EXPECT_EQ(up.iterations, 0u);
    EXPECT_EQ(dn.iterations, 0u);
    c[i] = 0.0;
  }
}

TEST(FaceSolveSessionTest, DisabledWarmStartAlwaysSolvesCold) {
  const size_t d = 3;
  const PointSet pts = GenerateUniform(20, d, 99);
  FaceSolveSession session;
  LpProblem& problem = session.problem();
  problem.Reset(d);
  BuildCellProblemInto(pts[0], AllOthers(pts, 0), d, HyperRect::UnitCube(d),
                       &problem);
  std::vector<double> start(pts[0], pts[0] + d);
  session.BeginCell(/*warm_start=*/false);
  session.PrepareFaces(problem, start);  // must be a no-op
  std::vector<double> c(d, 0.0);
  c[0] = 1.0;
  LpResult res = session.SolveFace(problem, c, 0, /*maximize=*/true, start);
  EXPECT_EQ(session.last_face_kind(), FaceSolveSession::FaceKind::kCold);
  ActiveSetSolver reference;
  LpResult want = reference.Maximize(problem, c, start);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, want.objective, kFaceTol);
}

TEST(FaceSolveSessionTest, WarmAndSkippedFacesMatchColdSolverOnRandomCells) {
  Rng rng(31337);
  FaceSolveSession session;
  ActiveSetSolver reference;
  for (int trial = 0; trial < 30; ++trial) {
    const size_t d = 2 + rng.NextIndex(7);
    PointSet pts(d);
    const size_t n = 15 + rng.NextIndex(25);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    const size_t owner = rng.NextIndex(n);
    LpProblem& problem = session.problem();
    problem.Reset(d);
    BuildCellProblemInto(pts[owner], AllOthers(pts, owner), d,
                         HyperRect::UnitCube(d), &problem);
    std::vector<double> start(pts[owner], pts[owner] + d);
    session.BeginCell(/*warm_start=*/true);
    session.PrepareFaces(problem, start);
    std::vector<double> c(d, 0.0);
    for (size_t i = 0; i < d; ++i) {
      c[i] = 1.0;
      for (bool maximize : {true, false}) {
        LpResult res = session.SolveFace(problem, c, i, maximize, start);
        LpResult want = maximize ? reference.Maximize(problem, c, start)
                                 : reference.Minimize(problem, c, start);
        ASSERT_EQ(res.status, LpStatus::kOptimal);
        ASSERT_EQ(want.status, LpStatus::kOptimal);
        EXPECT_NEAR(res.objective, want.objective, kFaceTol)
            << "trial " << trial << " axis " << i;
      }
      c[i] = 0.0;
    }
  }
}

TEST(FaceSolveSessionTest, BeginCellResetsPreparedStateBetweenCells) {
  // A session prepared on one cell must not leak ray data into the next:
  // after BeginCell + PrepareFaces on cell B, every face answer must match
  // a fresh session's. (This is the invariant behind parallel-build
  // determinism -- worker threads reuse one session across many cells.)
  const size_t d = 4;
  const PointSet pts = GenerateUniform(30, d, 777);
  FaceSolveSession reused;
  std::vector<double> c(d, 0.0);
  for (size_t owner = 0; owner < 10; ++owner) {
    LpProblem& problem = reused.problem();
    problem.Reset(d);
    BuildCellProblemInto(pts[owner], AllOthers(pts, owner), d,
                         HyperRect::UnitCube(d), &problem);
    std::vector<double> start(pts[owner], pts[owner] + d);
    reused.BeginCell(/*warm_start=*/true);
    reused.PrepareFaces(problem, start);

    FaceSolveSession fresh;
    LpProblem& fresh_problem = fresh.problem();
    fresh_problem.Reset(d);
    BuildCellProblemInto(pts[owner], AllOthers(pts, owner), d,
                         HyperRect::UnitCube(d), &fresh_problem);
    fresh.BeginCell(/*warm_start=*/true);
    fresh.PrepareFaces(fresh_problem, start);

    for (size_t i = 0; i < d; ++i) {
      c[i] = 1.0;
      for (bool maximize : {true, false}) {
        LpResult a = reused.SolveFace(problem, c, i, maximize, start);
        LpResult b = fresh.SolveFace(fresh_problem, c, i, maximize, start);
        EXPECT_EQ(reused.last_face_kind(), fresh.last_face_kind());
        EXPECT_EQ(a.objective, b.objective) << "owner " << owner;
        EXPECT_EQ(a.iterations, b.iterations);
      }
      c[i] = 0.0;
    }
  }
}

// ---------------------------------------------------------------------------
// Pruner outer bound: R must contain the computed MBR (the soundness
// argument rests on cell subset R throughout the shave).

TEST(BisectorPrunerTest, OuterBoundContainsComputedMbr) {
  Rng rng(2468);
  BisectorPruner pruner;
  for (int trial = 0; trial < 20; ++trial) {
    const size_t d = 2 + rng.NextIndex(7);
    PointSet pts(d);
    const size_t n = 40 + rng.NextIndex(60);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    const size_t owner = rng.NextIndex(n);
    auto others = AllOthers(pts, owner);
    LpProblem problem(d);
    pruner.BuildPruned(pts[owner], others, d, HyperRect::UnitCube(d),
                       &problem);
    CellApproximator cold(d, HyperRect::UnitCube(d), LpOptions(),
                          ColdOptions());
    HyperRect mbr = cold.ApproximateMbr(pts[owner], others);
    const HyperRect& bound = pruner.outer_bound();
    for (size_t k = 0; k < d; ++k) {
      EXPECT_LE(bound.lo(k), mbr.lo(k) + kFaceTol) << "dim " << k;
      EXPECT_GE(bound.hi(k), mbr.hi(k) - kFaceTol) << "dim " << k;
    }
  }
}

}  // namespace
}  // namespace nncell
