#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/byte_io.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

TEST(ByteIoTest, RoundTripScalars) {
  std::vector<uint8_t> buf(64);
  ByteWriter w(buf.data(), buf.size());
  w.Put<uint8_t>(7);
  w.Put<uint16_t>(1234);
  w.Put<uint32_t>(0xdeadbeef);
  w.Put<uint64_t>(0x0123456789abcdefULL);
  w.Put<double>(3.25);
  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.Get<uint8_t>(), 7);
  EXPECT_EQ(r.Get<uint16_t>(), 1234);
  EXPECT_EQ(r.Get<uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.Get<uint64_t>(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.Get<double>(), 3.25);
  EXPECT_EQ(r.position(), w.position());
}

TEST(ByteIoTest, RoundTripDoubleArray) {
  std::vector<uint8_t> buf(128);
  std::vector<double> in = {1.5, -2.25, 1e-12, 1e100};
  ByteWriter w(buf.data(), buf.size());
  w.PutDoubles(in.data(), in.size());
  ByteReader r(buf.data(), buf.size());
  std::vector<double> out(in.size());
  r.GetDoubles(out.data(), out.size());
  EXPECT_EQ(in, out);
}

TEST(PageFileTest, AllocateReadWrite) {
  PageFile file(256);
  PageId a = file.Allocate();
  PageId b = file.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(file.num_pages(), 2u);
  std::vector<uint8_t> data(256, 0xab), out(256, 0);
  file.Write(a, data.data());
  file.Read(a, out.data());
  EXPECT_EQ(data, out);
  // Page b stays zeroed.
  file.Read(b, out.data());
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(file.disk_reads(), 2u);
  EXPECT_EQ(file.disk_writes(), 1u);
}

TEST(PageFileTest, FreeListReuse) {
  PageFile file(128);
  PageId a = file.Allocate();
  std::vector<uint8_t> data(128, 0xff);
  file.Write(a, data.data());
  file.Free(a);
  PageId b = file.Allocate();
  EXPECT_EQ(a, b);  // reused
  std::vector<uint8_t> out(128, 0xff);
  file.Read(b, out.data());
  EXPECT_EQ(out[0], 0);  // zeroed on reuse
}

TEST(PageFileTest, AllocateRunIsContiguous) {
  PageFile file(128);
  file.Allocate();
  PageId first = file.AllocateRun(4);
  EXPECT_EQ(file.num_pages(), 5u);
  EXPECT_EQ(first, 1u);
}

TEST(BufferPoolTest, CacheHitAvoidsDisk) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId p = pool.AllocatePage();
  pool.Flush();
  file.ResetStats();
  pool.ResetStats();
  pool.Fetch(p);
  pool.Fetch(p);
  pool.Fetch(p);
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // allocated frame still hot
  EXPECT_EQ(file.disk_reads(), 0u);
}

TEST(BufferPoolTest, ColdFetchHitsDisk) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId p = pool.AllocatePage();
  uint8_t* frame = pool.FetchMutable(p);
  frame[0] = 42;
  pool.DropCache();
  pool.ResetStats();
  const uint8_t* data = pool.Fetch(p);
  EXPECT_EQ(data[0], 42);  // write-back happened
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, LruEviction) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId a = pool.AllocatePage();
  PageId b = pool.AllocatePage();
  PageId c = pool.AllocatePage();  // evicts a (LRU)
  pool.ResetStats();
  pool.Fetch(b);  // hit
  pool.Fetch(c);  // hit
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  pool.Fetch(a);  // miss
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, DirtyEvictionWritesBack) {
  PageFile file(128);
  BufferPool pool(&file, 1);
  PageId a = pool.AllocatePage();
  uint8_t* frame = pool.FetchMutable(a);
  frame[5] = 99;
  PageId b = pool.AllocatePage();  // evicts dirty a
  (void)b;
  EXPECT_GE(pool.stats().writebacks, 1u);
  std::vector<uint8_t> out(128);
  file.Read(a, out.data());
  EXPECT_EQ(out[5], 99);
}

TEST(BufferPoolTest, LruOrderUpdatedByFetch) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId a = pool.AllocatePage();
  PageId b = pool.AllocatePage();
  pool.Fetch(a);               // a most recent, b is LRU
  PageId c = pool.AllocatePage();  // evicts b
  (void)c;
  pool.ResetStats();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  pool.Fetch(b);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, FreePageDropsFrame) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId a = pool.AllocatePage();
  pool.FreePage(a);
  PageId b = pool.AllocatePage();
  EXPECT_EQ(a, b);  // file reuses the page id
  const uint8_t* data = pool.Fetch(b);
  EXPECT_EQ(data[0], 0);
}

TEST(PageFileTest, DeclusteringCounters) {
  PageFile file(128);
  file.SetDeclustering(4);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(file.Allocate());
  std::vector<uint8_t> buf(128);
  // Read pages 0..7: two reads land on each of the 4 disks.
  for (PageId p : pages) file.Read(p, buf.data());
  EXPECT_EQ(file.disks(), 4u);
  EXPECT_EQ(file.MaxDiskReads(), 2u);
  EXPECT_EQ(file.disk_reads(), 8u);
  file.ResetStats();
  EXPECT_EQ(file.MaxDiskReads(), 0u);
  // Skewed access: all reads on one disk.
  for (int i = 0; i < 5; ++i) file.Read(pages[0], buf.data());
  EXPECT_EQ(file.MaxDiskReads(), 5u);
}

TEST(PageFileTest, SingleDiskDepthEqualsReads) {
  PageFile file(128);
  PageId p = file.Allocate();
  std::vector<uint8_t> buf(128);
  for (int i = 0; i < 3; ++i) file.Read(p, buf.data());
  EXPECT_EQ(file.MaxDiskReads(), file.disk_reads());
}

TEST(BufferPoolTest, InvalidateDropsDirtyFrames) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId p = pool.AllocatePage();
  pool.Flush();
  uint8_t* frame = pool.FetchMutable(p);
  frame[0] = 77;        // dirty, never flushed
  pool.Invalidate();    // must NOT write back
  std::vector<uint8_t> out(128);
  file.Read(p, out.data());
  EXPECT_EQ(out[0], 0);
}

TEST(BufferPoolTest, ManyPagesStress) {
  PageFile file(256);
  BufferPool pool(&file, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 100; ++i) {
    PageId p = pool.AllocatePage();
    uint8_t* frame = pool.FetchMutable(p);
    std::memset(frame, i, 256);
    ids.push_back(p);
  }
  pool.Flush();
  for (int i = 0; i < 100; ++i) {
    const uint8_t* data = pool.Fetch(ids[i]);
    EXPECT_EQ(data[0], static_cast<uint8_t>(i)) << i;
    EXPECT_EQ(data[255], static_cast<uint8_t>(i));
  }
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinTest, PinnedPageSurvivesEvictionPressure) {
  PageFile file(128);
  BufferPool pool(&file, 3);
  PageId keep = pool.AllocatePage();
  uint8_t* bytes = pool.FetchMutable(keep);
  bytes[0] = 99;
  const uint8_t* before = pool.Fetch(keep);

  pool.Pin(keep);
  // Cycle far more pages than the pool holds: an unpinned `keep` would be
  // evicted and its frame bytes reused.
  for (int i = 0; i < 20; ++i) {
    PageId p = pool.AllocatePage();
    pool.FetchMutable(p)[0] = static_cast<uint8_t>(i);
  }
  // The pinned frame never moved and never lost its contents.
  const uint8_t* after = pool.Fetch(keep);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after[0], 99);
  EXPECT_EQ(pool.pinned_frames(), 1u);

  // A leak check must fire while the pin is held...
  EXPECT_FALSE(pool.AuditPins().ok());
  // ...but structural consistency (with pins allowed) must still pass.
  EXPECT_TRUE(pool.AuditPins(/*expect_unpinned=*/false).ok());

  pool.Unpin(keep);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinTest, PinsNest) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId p = pool.AllocatePage();
  pool.Pin(p);
  pool.Pin(p);
  EXPECT_EQ(pool.pinned_frames(), 1u);  // one frame, nested twice
  pool.Unpin(p);
  EXPECT_EQ(pool.pinned_frames(), 1u);  // still pinned once
  pool.Unpin(p);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinTest, PageGuardReleasesOnScopeExit) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId p = pool.AllocatePage();
  {
    PageGuard guard(&pool, p);
    EXPECT_EQ(pool.pinned_frames(), 1u);
    PageGuard moved = std::move(guard);  // ownership transfer, no double pin
    EXPECT_EQ(pool.pinned_frames(), 1u);
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinTest, PinLoadsEvictedPage) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId p = pool.AllocatePage();
  pool.FetchMutable(p)[0] = 55;
  pool.DropCache();  // p now only on disk
  pool.Pin(p);       // must load it back
  EXPECT_EQ(pool.Fetch(p)[0], 55);
  pool.Unpin(p);
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinTest, DirtyAccountingTracked) {
  PageFile file(128);
  BufferPool pool(&file, 4);
  PageId a = pool.AllocatePage();  // allocation dirties the frame
  PageId b = pool.AllocatePage();
  EXPECT_EQ(pool.dirty_frames(), 2u);
  pool.Flush();
  EXPECT_EQ(pool.dirty_frames(), 0u);
  pool.FetchMutable(a);
  EXPECT_EQ(pool.dirty_frames(), 1u);
  pool.Fetch(b);  // read access stays clean
  EXPECT_EQ(pool.dirty_frames(), 1u);
  EXPECT_TRUE(pool.AuditPins().ok());
}

TEST(BufferPoolPinDeathTest, DoubleUnpinAborts) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId p = pool.AllocatePage();
  pool.Pin(p);
  pool.Unpin(p);
  EXPECT_DEATH(pool.Unpin(p), "double unpin|not pinned");
}

TEST(BufferPoolPinDeathTest, FreeingPinnedPageAborts) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId p = pool.AllocatePage();
  pool.Pin(p);
  EXPECT_DEATH(pool.FreePage(p), "pinned");
  pool.Unpin(p);
}

TEST(BufferPoolPinDeathTest, AllFramesPinnedAborts) {
  PageFile file(128);
  BufferPool pool(&file, 2);
  PageId a = pool.AllocatePage();
  PageId b = pool.AllocatePage();
  pool.Pin(a);
  pool.Pin(b);
  EXPECT_DEATH(pool.AllocatePage(), "pinned");
  pool.Unpin(a);
  pool.Unpin(b);
}

}  // namespace
}  // namespace nncell
