// Server-grade protocol tests: encode/decode round trips pinned to the
// byte layout of docs/SERVING.md, malformed-frame handling through a live
// in-process server (bad magic / version / CRC / length / type -- a clean
// error frame and a deliberate keep-or-close decision, never a crash), a
// fixed-seed fuzz loop that feeds 10k garbage frames, and regression tests
// for the two socket failpoint sites.

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "nncell/nncell_index.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace server {
namespace {

// --- pure protocol round trips -------------------------------------------

TEST(FrameTest, HeaderByteLayout) {
  std::string frame;
  EncodeFrame(kReqPing, 0x1122334455667788ULL, "ab", &frame);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 2);
  const auto* b = reinterpret_cast<const uint8_t*>(frame.data());
  // u32 magic, little-endian.
  EXPECT_EQ(b[0], 0x46);  // 'F'
  EXPECT_EQ(b[1], 0x43);  // 'C'
  EXPECT_EQ(b[2], 0x4e);  // 'N'
  EXPECT_EQ(b[3], 0x4e);  // 'N'
  EXPECT_EQ(b[4], kProtocolVersion);
  EXPECT_EQ(b[5], kReqPing);
  EXPECT_EQ(b[6], 0);  // reserved
  EXPECT_EQ(b[7], 0);
  // u64 request id, little-endian.
  EXPECT_EQ(b[8], 0x88);
  EXPECT_EQ(b[15], 0x11);
  // u32 payload length.
  EXPECT_EQ(b[16], 2);
  EXPECT_EQ(b[17], 0);

  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(b, frame.size(), &header).ok());
  EXPECT_EQ(header.type, kReqPing);
  EXPECT_EQ(header.request_id, 0x1122334455667788ULL);
  EXPECT_EQ(header.payload_len, 2u);
  EXPECT_TRUE(VerifyPayloadCrc(header, "ab").ok());
  EXPECT_FALSE(VerifyPayloadCrc(header, "aB").ok());
}

TEST(FrameTest, EncodeDecodeIsByteStable) {
  std::string a, b;
  EncodeFrame(kReqQuery, 7, "payload", &a);
  EncodeFrame(kReqQuery, 7, "payload", &b);
  EXPECT_EQ(a, b);
}

TEST(FrameTest, HeaderRejectsCorruption) {
  std::string frame;
  EncodeFrame(kReqPing, 1, "", &frame);
  FrameHeader header;

  std::string bad = frame;
  bad[0] ^= 0xff;  // magic
  EXPECT_FALSE(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                                 bad.size(), &header)
                   .ok());
  bad = frame;
  bad[4] = 99;  // version
  EXPECT_FALSE(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                                 bad.size(), &header)
                   .ok());
  bad = frame;
  bad[6] = 1;  // reserved bits
  EXPECT_FALSE(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                                 bad.size(), &header)
                   .ok());
  bad = frame;
  bad[19] = 0xff;  // payload_len far beyond kFrameMaxPayload
  EXPECT_FALSE(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                                 bad.size(), &header)
                   .ok());
}

TEST(FrameTest, PointPayloadRoundTrip) {
  const std::vector<double> point = {0.25, -1.5, 3.75};
  std::string payload;
  EncodePointPayload(point, &payload);
  std::vector<double> back;
  ASSERT_TRUE(DecodePointPayload(payload, &back).ok());
  EXPECT_EQ(back, point);

  // Re-encoding the decoded value is byte-identical.
  std::string again;
  EncodePointPayload(back, &again);
  EXPECT_EQ(again, payload);

  EXPECT_FALSE(DecodePointPayload(payload.substr(0, 10), &back).ok());
  EXPECT_FALSE(DecodePointPayload(payload + "x", &back).ok());
  EXPECT_FALSE(DecodePointPayload("", &back).ok());
}

TEST(FrameTest, BatchPayloadRoundTrip) {
  const std::vector<std::vector<double>> points = {{1, 2}, {3, 4}, {5, 6}};
  std::string payload;
  EncodeBatchPayload(points, &payload);
  size_t dim = 0, count = 0;
  std::vector<double> flat;
  ASSERT_TRUE(DecodeBatchPayload(payload, &dim, &flat, &count).ok());
  EXPECT_EQ(dim, 2u);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(flat, (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(DecodeBatchPayload(payload.substr(0, 9), &dim, &flat, &count)
                   .ok());
}

TEST(FrameTest, DeletePayloadRoundTrip) {
  std::string payload;
  EncodeDeletePayload(0xdeadbeefULL, &payload);
  uint64_t id = 0;
  ASSERT_TRUE(DecodeDeletePayload(payload, &id).ok());
  EXPECT_EQ(id, 0xdeadbeefULL);
  EXPECT_FALSE(DecodeDeletePayload(payload + "x", &id).ok());
}

TEST(FrameTest, StatusPayloadRoundTrip) {
  std::string payload;
  EncodeStatusPayload(kStatusRetryLater, "queue full", &payload);
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusRetryLater);
  EXPECT_EQ(message, "queue full");
}

TEST(FrameTest, QueryResultPayloadRoundTrip) {
  WireQueryResult r;
  r.id = 17;
  r.dist = 0.125;
  r.candidates = 9;
  r.used_fallback = 1;
  r.point = {0.5, 0.75};
  std::string payload;
  EncodeQueryResultPayload(r, &payload);

  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  ASSERT_EQ(status, kStatusOk);
  WireQueryResult back;
  ASSERT_TRUE(DecodeQueryResultBody(body, &back).ok());
  EXPECT_TRUE(back == r);

  std::vector<WireQueryResult> rs = {r, r};
  rs[1].id = 18;
  payload.clear();
  EncodeQueryBatchResultPayload(rs, &payload);
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  std::vector<WireQueryResult> backs;
  ASSERT_TRUE(DecodeQueryBatchResultBody(body, &backs).ok());
  ASSERT_EQ(backs.size(), 2u);
  EXPECT_TRUE(backs[0] == rs[0]);
  EXPECT_TRUE(backs[1] == rs[1]);
}

TEST(FrameTest, InsertAndStatsPayloadRoundTrip) {
  std::string payload;
  EncodeInsertResultPayload(41, &payload);
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  uint64_t id = 0;
  ASSERT_TRUE(DecodeInsertResultBody(body, &id).ok());
  EXPECT_EQ(id, 41u);

  payload.clear();
  EncodeStatsPayload("{\"a\":1}", &payload);
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  std::string json;
  ASSERT_TRUE(DecodeStatsBody(body, &json).ok());
  EXPECT_EQ(json, "{\"a\":1}");
}

// --- live in-process server ----------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ =
        ::testing::TempDir() + "server_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".sock";
    std::filesystem::remove(socket_path_);
    file_ = std::make_unique<PageFile>(1024);
    pool_ = std::make_unique<BufferPool>(file_.get(), 512);
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    index_ = std::make_unique<NNCellIndex>(pool_.get(), 2, opts);
    Rng rng(0x5e1);
    for (int i = 0; i < 20; ++i) {
      auto id = index_->Insert({rng.NextDouble(), rng.NextDouble()});
      ASSERT_TRUE(id.ok());
    }
  }

  void TearDown() override {
    if (server_) {
      ASSERT_TRUE(server_->Stop().ok());
    }
    failpoint::DisarmAll();
    std::filesystem::remove(socket_path_);
  }

  void StartServer(ServerOptions sopt = ServerOptions()) {
    sopt.socket_path = socket_path_;
    server_ = std::make_unique<NNCellServer>(index_.get(), sopt);
    ASSERT_TRUE(server_->Start().ok());
  }

  StatusOr<Client> Connect() { return Client::ConnectUnix(socket_path_); }

  std::string socket_path_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<NNCellIndex> index_;
  std::unique_ptr<NNCellServer> server_;
};

TEST_F(ServerTest, PingQueryInsertDeleteStats) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());

  auto r = client->Query({0.5, 0.5});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto direct = index_->Query(std::vector<double>{0.5, 0.5}.data());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(r->id, direct->id);
  EXPECT_EQ(r->dist, direct->dist);
  EXPECT_EQ(r->candidates, direct->candidates);
  ASSERT_EQ(r->point.size(), 2u);

  auto id = client->Insert({0.123, 0.456});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(index_->IsAlive(*id));
  ASSERT_TRUE(client->Delete(*id).ok());
  EXPECT_FALSE(index_->IsAlive(*id));

  auto stats = client->StatsJson();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"server\":{"), std::string::npos);
  EXPECT_NE(stats->find("\"accepted\":"), std::string::npos);
  EXPECT_NE(stats->find("\"metrics\":"), std::string::npos);
  EXPECT_NE(stats->find("server.requests.accepted"), std::string::npos);
}

TEST_F(ServerTest, QueryBatchMatchesSingles) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::vector<std::vector<double>> queries = {
      {0.1, 0.9}, {0.4, 0.4}, {0.8, 0.2}};
  auto batch = client->QueryBatch(queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = client->Query(queries[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE((*batch)[i] == *single) << "query " << i;
  }
}

TEST_F(ServerTest, CheckpointOnNonDurableIndexFails) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  Status st = client->Checkpoint();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // The error is a response, not a connection fault.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, DimensionMismatchIsErrorNotDisconnect) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto r = client->Query({0.1, 0.2, 0.3});  // index is d=2
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(server_->malformed(), 0u);
}

TEST_F(ServerTest, BadMagicGetsErrorFrameAndClose) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::string frame;
  EncodeFrame(kReqPing, 5, "", &frame);
  frame[0] ^= 0xff;
  ASSERT_TRUE(client->SendRaw(frame).ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client->RecvFrame(&header, &payload).ok());
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusMalformed);
  // The stream cannot be resynchronized: the server closes deliberately.
  Status eof = client->RecvFrame(&header, &payload);
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(server_->malformed(), 1u);
}

TEST_F(ServerTest, BadCrcKeepsConnection) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::string frame;
  EncodeFrame(kReqDelete, 6, std::string(8, 'x'), &frame);
  frame[kFrameHeaderBytes] ^= 0xff;  // corrupt payload, CRC now mismatches
  ASSERT_TRUE(client->SendRaw(frame).ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client->RecvFrame(&header, &payload).ok());
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusMalformed);
  // Framing stayed intact, so the connection survives.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(server_->malformed(), 1u);
}

TEST_F(ServerTest, UnknownTypeKeepsConnection) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::string frame;
  EncodeFrame(99, 7, "", &frame);
  ASSERT_TRUE(client->SendRaw(frame).ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client->RecvFrame(&header, &payload).ok());
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusMalformed);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, OversizedLengthCloses) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::string frame;
  EncodeFrame(kReqPing, 8, "", &frame);
  frame[19] = 0x7f;  // payload_len high byte: ~2GB, over kFrameMaxPayload
  ASSERT_TRUE(client->SendRaw(frame).ok());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client->RecvFrame(&header, &payload).ok());
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusMalformed);
  EXPECT_FALSE(client->RecvFrame(&header, &payload).ok());
}

TEST_F(ServerTest, TruncatedPayloadCloses) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::string frame;
  EncodeFrame(kReqQuery, 9, std::string(100, 'q'), &frame);
  // Send the header plus 10 of the 100 payload bytes, then half-close.
  ASSERT_TRUE(client->SendRaw(frame.substr(0, kFrameHeaderBytes + 10)).ok());
  ASSERT_EQ(::shutdown(client->fd(), SHUT_WR), 0);
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client->RecvFrame(&header, &payload).ok());
  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
  EXPECT_EQ(status, kStatusMalformed);
  EXPECT_FALSE(client->RecvFrame(&header, &payload).ok());

  // The server survives for fresh connections.
  auto again = Connect();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Ping().ok());
}

TEST_F(ServerTest, BackpressureIsExplicitRetryLater) {
  ServerOptions sopt;
  sopt.max_queue = 1;
  StartServer(sopt);
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  // Pipeline many queries without reading responses: the reader thread
  // outruns the single dispatcher, so admissions hit the full queue.
  const size_t kPipelined = 400;
  std::string out;
  std::string query_payload;
  EncodePointPayload({0.3, 0.7}, &query_payload);
  for (size_t i = 0; i < kPipelined; ++i) {
    EncodeFrame(kReqQuery, 100 + i, query_payload, &out);
  }
  ASSERT_TRUE(client->SendRaw(out).ok());

  // Every request gets exactly one response: OK or RETRY_LATER. Rejections
  // are written immediately by the reader thread and may overtake queued
  // OK responses, so responses are matched by request id, not position.
  std::set<uint64_t> seen;
  size_t ok = 0, retry = 0;
  for (size_t i = 0; i < kPipelined; ++i) {
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(client->RecvFrame(&header, &payload).ok()) << "frame " << i;
    ASSERT_GE(header.request_id, 100u);
    ASSERT_LT(header.request_id, 100 + kPipelined);
    EXPECT_TRUE(seen.insert(header.request_id).second)
        << "duplicate response for request " << header.request_id;
    uint8_t status = 0;
    std::string_view body;
    std::string message;
    ASSERT_TRUE(DecodeStatusPayload(payload, &status, &body, &message).ok());
    if (status == kStatusOk) {
      ++ok;
    } else {
      ASSERT_EQ(status, kStatusRetryLater);
      ++retry;
    }
  }
  EXPECT_EQ(seen.size(), kPipelined);
  EXPECT_EQ(ok + retry, kPipelined);
  EXPECT_GT(retry, 0u) << "queue of 1 never filled -- timing anomaly";
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(server_->rejected(), retry);

  // Conservation at quiescence.
  EXPECT_EQ(server_->accepted(), server_->completed() + server_->rejected());
}

TEST_F(ServerTest, ConservationAfterDrain) {
  StartServer();
  {
    auto client = Connect();
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(client->Query({0.2, 0.8}).ok());
    }
    auto id = client->Insert({0.9, 0.9});
    ASSERT_TRUE(id.ok());
  }
  ASSERT_TRUE(server_->Stop().ok());
  EXPECT_EQ(server_->accepted(), 26u);
  EXPECT_EQ(server_->accepted(), server_->completed() + server_->rejected());
  server_.reset();
}

TEST_F(ServerTest, StopAnswersQueuedRequestsBeforeExit) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // Pipeline queries, then immediately drain. Every admitted request must
  // still be answered (graceful drain, not abort).
  const size_t kPipelined = 50;
  std::string out;
  std::string query_payload;
  EncodePointPayload({0.6, 0.1}, &query_payload);
  for (size_t i = 0; i < kPipelined; ++i) {
    EncodeFrame(kReqQuery, i + 1, query_payload, &out);
  }
  ASSERT_TRUE(client->SendRaw(out).ok());
  ASSERT_TRUE(server_->Stop().ok());
  EXPECT_EQ(server_->accepted(), server_->completed() + server_->rejected());

  size_t answered = 0;
  for (;;) {
    FrameHeader header;
    std::string payload;
    if (!client->RecvFrame(&header, &payload).ok()) break;
    ++answered;
  }
  EXPECT_EQ(answered, server_->completed() + server_->rejected());
  server_.reset();
}

// --- fuzz: 10k garbage frames, fixed seed --------------------------------

TEST_F(ServerTest, FuzzSurvives10kGarbageFrames) {
  StartServer();
  Rng rng(0xf022);
  std::string garbage;
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  size_t reconnects = 0;
  for (int i = 0; i < 10000; ++i) {
    garbage.clear();
    const int shape = static_cast<int>(rng.NextIndex(4));
    if (shape == 0) {
      // Pure noise.
      const size_t n = rng.NextIndex(64);
      for (size_t k = 0; k < n; ++k) {
        garbage.push_back(static_cast<char>(rng.NextU64() & 0xff));
      }
    } else if (shape == 1) {
      // Valid header bytes, garbage payload of the advertised length.
      const size_t n = rng.NextIndex(32);
      std::string payload;
      for (size_t k = 0; k < n; ++k) {
        payload.push_back(static_cast<char>(rng.NextU64() & 0xff));
      }
      EncodeFrame(static_cast<uint8_t>(rng.NextIndex(16)), rng.NextU64(),
                  payload, &garbage);
      // Half the time, break the CRC after the fact.
      if (n > 0 && rng.NextIndex(2) == 0) {
        garbage[kFrameHeaderBytes] ^= 0x5a;
      }
    } else if (shape == 2) {
      // A truncated prefix of a valid frame.
      std::string full;
      EncodeFrame(kReqQuery, rng.NextU64(), std::string(24, 'z'), &full);
      garbage = full.substr(0, rng.NextIndex(full.size()));
    } else {
      // A well-formed ping (keeps some streams in sync).
      EncodeFrame(kReqPing, rng.NextU64(), "", &garbage);
    }
    if (!garbage.empty() && !client->SendRaw(garbage).ok()) {
      client = Connect();
      ASSERT_TRUE(client.ok()) << "reconnect " << reconnects;
      ++reconnects;
      continue;
    }
    // Periodically rotate the connection; never read responses -- the
    // server must not block on a client that ignores its error frames.
    if (i % 50 == 49) {
      client = Connect();
      ASSERT_TRUE(client.ok()) << "rotate at " << i;
    }
  }
  // The server is alive and still speaks the protocol.
  auto probe = Connect();
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->Ping().ok());
  auto r = probe->Query({0.5, 0.5});
  EXPECT_TRUE(r.ok());
}

// --- socket failpoint regression (fault-injection sites) ------------------

#if NNCELL_FAILPOINTS

class SocketFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  int fds_[2];
};

TEST_F(SocketFailpointTest, ReadErrorFiresBeforeConsuming) {
  ASSERT_EQ(::send(fds_[1], "abcdefgh", 8, 0), 8);
  const uint64_t before = failpoint::Evaluations("server.socket.read");
  failpoint::Arm("server.socket.read", failpoint::Action::kError);
  char buf[8];
  Status st = ReadFull(fds_[0], buf, sizeof(buf));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected read error"), std::string::npos);
  // kError fails before touching the socket: the bytes are still there.
  // (The one-shot disarmed itself when it fired, so only the armed check
  // counts toward Evaluations.)
  Status again = ReadFull(fds_[0], buf, sizeof(buf));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::memcmp(buf, "abcdefgh", 8), 0);
  EXPECT_GE(failpoint::Evaluations("server.socket.read"), before + 1);
}

TEST_F(SocketFailpointTest, ShortReadConsumesHalf) {
  ASSERT_EQ(::send(fds_[1], "abcdefgh", 8, 0), 8);
  failpoint::Arm("server.socket.read", failpoint::Action::kShortWrite);
  char buf[8];
  Status st = ReadFull(fds_[0], buf, sizeof(buf));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected short read"), std::string::npos);
  // Exactly half was consumed; the rest is still in the stream.
  char rest[4];
  Status tail = ReadFull(fds_[0], rest, sizeof(rest));
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(std::memcmp(rest, "efgh", 4), 0);
}

TEST_F(SocketFailpointTest, WriteErrorAndShortWrite) {
  failpoint::Arm("server.socket.write", failpoint::Action::kError);
  Status st = WriteFull(fds_[0], "abcdefgh");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected write error"), std::string::npos);

  failpoint::Arm("server.socket.write", failpoint::Action::kShortWrite);
  st = WriteFull(fds_[0], "abcdefgh");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected short write"), std::string::npos);
  // The torn half-write is on the wire, as a real ENOSPC/reset would leave.
  char buf[4];
  ASSERT_TRUE(ReadFull(fds_[1], buf, 4).ok());
  EXPECT_EQ(std::memcmp(buf, "abcd", 4), 0);
}

TEST_F(ServerTest, ServerSurvivesInjectedReadFault) {
  StartServer();
  // Raw fd so the client side bypasses ReadFull/WriteFull (the failpoint
  // must hit the server's reader, not the test's own helpers).
  auto raw = ConnectUnix(socket_path_);
  ASSERT_TRUE(raw.ok());
  std::string frame;
  EncodeFrame(kReqPing, 1, "", &frame);

  // Depending on whether the reader has reached its blocking header
  // ReadFull before Arm below, the fault fires either on the ping's own
  // header read (no response, immediate EOF) or on the read after the
  // ping is answered (response, then EOF on our close). Both are correct;
  // the test asserts only what must hold in every interleaving: the torn
  // connection never wedges, and the server keeps serving.
  failpoint::Arm("server.socket.read", failpoint::Action::kError);
  ASSERT_EQ(::send(*raw, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  struct timeval tv = {2, 0};  // bound the drain; never hang the test
  ASSERT_EQ(::setsockopt(*raw, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
  char buf[256];
  for (;;) {
    ssize_t r = ::recv(*raw, buf, sizeof(buf), 0);
    if (r <= 0) break;  // EOF (connection torn) or timeout (ping answered)
  }
  ::close(*raw);
  failpoint::DisarmAll();

  // The fault tore at most one connection, not the server.
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Query({0.1, 0.4}).ok());
}

#endif  // NNCELL_FAILPOINTS

}  // namespace
}  // namespace server
}  // namespace nncell
