#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "rstar/rstar_tree.h"
#include "rstar/validate.h"
#include "storage/page_file.h"
#include "xtree/xsplit.h"
#include "xtree/xtree.h"

namespace nncell {
namespace {

HyperRect PointRect(const std::vector<double>& p) {
  return HyperRect::FromPoint(p);
}

TEST(SplitOverlapTest, DisjointIsZero) {
  HyperRect a({0.0, 0.0}, {0.5, 1.0});
  HyperRect b({0.5, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(SplitOverlap(a, b), 0.0);
}

TEST(SplitOverlapTest, IdenticalIsOne) {
  HyperRect a({0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(SplitOverlap(a, a), 1.0);
}

TEST(SplitOverlapTest, PartialOverlap) {
  HyperRect a({0.0, 0.0}, {2.0, 1.0});
  HyperRect b({1.0, 0.0}, {3.0, 1.0});
  // intersection 1, union 3.
  EXPECT_NEAR(SplitOverlap(a, b), 1.0 / 3.0, 1e-12);
}

TEST(OverlapMinimalSplitTest, FindsOverlapFreeSplit) {
  // Two groups of rectangles, separable in dim 1 but interleaved in dim 0.
  std::vector<Entry> entries;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    Entry e;
    double x = rng.NextDouble();
    double y = (i % 2 == 0) ? rng.NextDouble(0.0, 0.4)
                            : rng.NextDouble(0.6, 0.9);
    e.rect = HyperRect({x, y}, {x + 0.05, y + 0.05});
    e.id = i;
    entries.push_back(e);
  }
  double overlap = 1.0;
  auto split = OverlapMinimalSplit(entries, 2, 3, &overlap);
  ASSERT_TRUE(split.has_value());
  EXPECT_DOUBLE_EQ(overlap, 0.0);
  EXPECT_GE(split->first.size(), 3u);
  EXPECT_GE(split->second.size(), 3u);
  // Groups must be the y-clusters.
  HyperRect left = HyperRect::Empty(2), right = HyperRect::Empty(2);
  for (const auto& e : split->first) left.ExpandToRect(e.rect);
  for (const auto& e : split->second) right.ExpandToRect(e.rect);
  EXPECT_DOUBLE_EQ(HyperRect::OverlapVolume(left, right), 0.0);
}

TEST(OverlapMinimalSplitTest, AllIdenticalRectsNoGoodSplit) {
  std::vector<Entry> entries;
  for (int i = 0; i < 10; ++i) {
    Entry e;
    e.rect = HyperRect({0.2, 0.2}, {0.8, 0.8});
    e.id = i;
    entries.push_back(e);
  }
  double overlap = 0.0;
  auto split = OverlapMinimalSplit(entries, 2, 3, &overlap);
  // A split exists but with total overlap.
  ASSERT_TRUE(split.has_value());
  EXPECT_NEAR(overlap, 1.0, 1e-12);
}

struct XFixture {
  explicit XFixture(size_t dim, size_t page_size = 1024,
                    size_t pool_pages = 1024)
      : file(page_size), pool(&file, pool_pages) {
    TreeOptions opts;
    opts.dim = dim;
    tree = std::make_unique<XTree>(&pool, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<XTree> tree;
};

class XTreeParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(XTreeParamTest, QueriesMatchBruteForce) {
  const size_t dim = std::get<0>(GetParam());
  const size_t n = std::get<1>(GetParam());
  Rng rng(dim * 31 + n);
  XFixture fx(dim);
  PointSet pts(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
    fx.tree->Insert(PointRect(p), i);
  }
  ASSERT_EQ(fx.tree->Validate(), "");

  // kNN vs brute force.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    auto knn = fx.tree->KnnQuery(q.data(), 3);
    ASSERT_EQ(knn.size(), std::min<size_t>(3, n));
    std::vector<double> dists;
    for (size_t i = 0; i < n; ++i) dists.push_back(L2Dist(pts[i], q.data(), dim));
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_NEAR(knn[i].dist, dists[i], 1e-12);
    }
  }

  // Range query vs brute force.
  for (int trial = 0; trial < 10; ++trial) {
    HyperRect range = HyperRect::Empty(dim);
    for (size_t k = 0; k < dim; ++k) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      range.lo(k) = std::min(a, b);
      range.hi(k) = std::max(a, b);
    }
    auto hits = fx.tree->RangeQuery(range);
    std::set<uint64_t> got;
    for (const auto& h : hits) got.insert(h.id);
    std::set<uint64_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (range.ContainsPoint(pts[i])) expected.insert(i);
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XTreeParamTest,
    ::testing::Combine(::testing::Values(2, 8, 16),
                       ::testing::Values(200, 1500)));

TEST(XTreeTest, HighDimOverlappingRectsCreateSupernodes) {
  // Heavily overlapping high-dimensional rectangles make overlap-free
  // directory splits impossible -> supernodes must appear.
  const size_t dim = 12;
  Rng rng(17);
  XFixture fx(dim, /*page_size=*/1024, /*pool_pages=*/4096);
  for (size_t i = 0; i < 1500; ++i) {
    std::vector<double> lo(dim), hi(dim);
    for (size_t k = 0; k < dim; ++k) {
      double c = rng.NextDouble();
      double w = rng.NextDouble(0.2, 0.7);
      lo[k] = std::max(0.0, c - w);
      hi[k] = std::min(1.0, c + w);
    }
    fx.tree->Insert(HyperRect(lo, hi), i);
  }
  ASSERT_EQ(fx.tree->Validate(), "");
  // Deep validator: supernode invariants (span bounds, no under-filled
  // supernodes), page accounting, and quiescent pin audit.
  ASSERT_TRUE(rstar::ValidateTree(*fx.tree).ok());
  ASSERT_TRUE(fx.pool.AuditPins().ok());
  EXPECT_GT(fx.tree->supernode_events(), 0u);
  auto info = fx.tree->Info();
  EXPECT_GT(info.num_supernodes, 0u);
  EXPECT_GT(info.total_pages, info.num_nodes);
}

TEST(XTreeTest, PointDataRarelyNeedsSupernodes) {
  // Low-dimensional point data splits cleanly; the X-tree behaves like an
  // R*-tree there (paper: X-tree == R*-tree for d <= 2).
  Rng rng(18);
  XFixture fx(2);
  for (size_t i = 0; i < 2000; ++i) {
    fx.tree->Insert(PointRect({rng.NextDouble(), rng.NextDouble()}), i);
  }
  ASSERT_EQ(fx.tree->Validate(), "");
  auto info = fx.tree->Info();
  EXPECT_EQ(info.num_supernodes, 0u);
}

TEST(XTreeTest, DeleteWorks) {
  Rng rng(19);
  XFixture fx(8);
  std::vector<std::vector<double>> pts;
  for (size_t i = 0; i < 400; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.NextDouble();
    pts.push_back(p);
    fx.tree->Insert(PointRect(p), i);
  }
  for (size_t i = 0; i < 400; i += 3) {
    EXPECT_TRUE(fx.tree->Delete(PointRect(pts[i]), i));
  }
  ASSERT_EQ(fx.tree->Validate(), "");
  ASSERT_TRUE(rstar::ValidateTree(*fx.tree).ok());
  ASSERT_TRUE(fx.pool.AuditPins().ok());
  for (size_t i = 0; i < 400; ++i) {
    auto hits = fx.tree->PointQuery(pts[i].data());
    bool found = false;
    for (const auto& h : hits) found |= h.id == i;
    EXPECT_EQ(found, i % 3 != 0);
  }
}

TEST(XTreeTest, FewerPageAccessesThanRStarOnHighDimRects) {
  // The paper's motivation for using the X-tree: less directory overlap =>
  // fewer pages touched by a point query on overlapping cell rectangles.
  const size_t dim = 10;
  const size_t n = 1200;
  Rng rng(20);
  std::vector<HyperRect> rects;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> lo(dim), hi(dim);
    for (size_t k = 0; k < dim; ++k) {
      double c = rng.NextDouble();
      double w = rng.NextDouble(0.05, 0.45);
      lo[k] = std::max(0.0, c - w);
      hi[k] = std::min(1.0, c + w);
    }
    rects.emplace_back(lo, hi);
  }

  PageFile rfile(1024), xfile(1024);
  BufferPool rpool(&rfile, 8192), xpool(&xfile, 8192);
  TreeOptions opts;
  opts.dim = dim;
  RStarTree rtree(&rpool, opts);
  XTree xtree(&xpool, opts);
  for (size_t i = 0; i < n; ++i) {
    rtree.Insert(rects[i], i);
    xtree.Insert(rects[i], i);
  }

  uint64_t r_reads = 0, x_reads = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    rpool.DropCache();
    rpool.ResetStats();
    auto rh = rtree.PointQuery(q.data());
    r_reads += rpool.stats().physical_reads;
    xpool.DropCache();
    xpool.ResetStats();
    auto xh = xtree.PointQuery(q.data());
    x_reads += xpool.stats().physical_reads;
    // Same answers.
    std::set<uint64_t> ra, xa;
    for (const auto& h : rh) ra.insert(h.id);
    for (const auto& h : xh) xa.insert(h.id);
    ASSERT_EQ(ra, xa);
  }
  EXPECT_LE(x_reads, r_reads);
}

}  // namespace
}  // namespace nncell
