#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/stats.h"
#include "data/generators.h"

namespace nncell {
namespace {

TEST(GeneratorsTest, UniformBasics) {
  PointSet pts = GenerateUniform(5000, 6, 1);
  EXPECT_EQ(pts.size(), 5000u);
  EXPECT_EQ(pts.dim(), 6u);
  // Uniform marginals: mean ~0.5, variance ~1/12, bounds respected.
  for (size_t k = 0; k < 6; ++k) {
    RunningStats s;
    for (size_t i = 0; i < pts.size(); ++i) {
      double v = pts[i][k];
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
      s.Add(v);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.02);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
  }
}

TEST(GeneratorsTest, UniformDeterministic) {
  PointSet a = GenerateUniform(100, 4, 7);
  PointSet b = GenerateUniform(100, 4, 7);
  EXPECT_EQ(a.raw(), b.raw());
  PointSet c = GenerateUniform(100, 4, 8);
  EXPECT_NE(a.raw(), c.raw());
}

TEST(GeneratorsTest, GridIsRegular) {
  PointSet pts = GenerateGrid(4, 3, 0.0, 1);
  EXPECT_EQ(pts.size(), 64u);
  // Every coordinate is a cell center (2i+1)/8.
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t k = 0; k < 3; ++k) {
      double v = pts[i][k] * 8.0;
      EXPECT_NEAR(v, std::round(v), 1e-12);
      EXPECT_EQ(static_cast<int>(std::round(v)) % 2, 1);
    }
  }
  EXPECT_FALSE(HasDuplicates(pts));
}

TEST(GeneratorsTest, GridJitterStaysInCell) {
  PointSet pts = GenerateGrid(5, 2, 0.5, 3);
  EXPECT_EQ(pts.size(), 25u);
  PointSet centers = GenerateGrid(5, 2, 0.0, 3);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_LE(std::abs(pts[i][k] - centers[i][k]), 0.5 * 0.5 * 0.2 + 1e-12);
    }
  }
}

TEST(GeneratorsTest, SparseHasLargeSeparation) {
  PointSet sparse = GenerateSparse(20, 4, 5);
  PointSet uniform = GenerateUniform(20, 4, 5);
  auto min_sep = [](const PointSet& pts) {
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        best = std::min(best, L2DistSq(pts[i], pts[j], pts.dim()));
      }
    }
    return std::sqrt(best);
  };
  EXPECT_GT(min_sep(sparse), min_sep(uniform));
  EXPECT_FALSE(HasDuplicates(sparse));
}

TEST(GeneratorsTest, ClustersAreClustered) {
  PointSet pts = GenerateClusters(2000, 8, 5, 0.03, 11);
  EXPECT_EQ(pts.size(), 2000u);
  // Clustered data: the average NN distance is much smaller than for
  // uniform data of the same size.
  auto avg_nn = [](const PointSet& pts) {
    RunningStats s;
    for (size_t i = 0; i < 200; ++i) {
      double best = 1e300;
      for (size_t j = 0; j < pts.size(); ++j) {
        if (j == i) continue;
        best = std::min(best, L2DistSq(pts[i], pts[j], pts.dim()));
      }
      s.Add(std::sqrt(best));
    }
    return s.mean();
  };
  PointSet uniform = GenerateUniform(2000, 8, 11);
  EXPECT_LT(avg_nn(pts), 0.5 * avg_nn(uniform));
}

TEST(GeneratorsTest, FourierInBoundsAndClustered) {
  PointSet pts = GenerateFourier(3000, 8, 42);
  EXPECT_EQ(pts.size(), 3000u);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t k = 0; k < 8; ++k) {
      ASSERT_GE(pts[i][k], 0.0);
      ASSERT_LE(pts[i][k], 1.0);
    }
  }
  // Higher coefficients have smaller spread (1/h decay), like real
  // contour spectra.
  RunningStats first, last;
  for (size_t i = 0; i < pts.size(); ++i) {
    first.Add(pts[i][0]);
    last.Add(pts[i][7]);
  }
  EXPECT_GT(first.stddev(), last.stddev());
  // Strong clustering compared to uniform.
  RunningStats nn_four, nn_uni;
  PointSet uniform = GenerateUniform(3000, 8, 42);
  for (size_t i = 0; i < 150; ++i) {
    double bf = 1e300, bu = 1e300;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      bf = std::min(bf, L2DistSq(pts[i], pts[j], 8));
      bu = std::min(bu, L2DistSq(uniform[i], uniform[j], 8));
    }
    nn_four.Add(std::sqrt(bf));
    nn_uni.Add(std::sqrt(bu));
  }
  EXPECT_LT(nn_four.mean(), nn_uni.mean());
}

TEST(GeneratorsTest, QueriesCoverSpace) {
  PointSet q = GenerateQueries(1000, 3, 9);
  HyperRect bb = q.BoundingBox();
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_LT(bb.lo(k), 0.1);
    EXPECT_GT(bb.hi(k), 0.9);
  }
}

TEST(GeneratorsTest, HasDuplicatesDetects) {
  PointSet pts(2);
  pts.Add({0.1, 0.2});
  pts.Add({0.3, 0.4});
  EXPECT_FALSE(HasDuplicates(pts));
  pts.Add({0.1, 0.2});
  EXPECT_TRUE(HasDuplicates(pts));
}

}  // namespace
}  // namespace nncell
