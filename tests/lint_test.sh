#!/usr/bin/env bash
# ctest wrapper for tools/nncell_lint.py: first the fixture self-test (every
# check fires on its bad tree, stays silent on the good twin), then a full
# scan of the repository. Either failing fails the test.
set -euo pipefail

REPO_ROOT="${1:?usage: lint_test.sh <repo-root>}"

PYTHON="${PYTHON:-python3}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "lint_test: $PYTHON not found; skipping" >&2
  exit 127
fi

"$PYTHON" "$REPO_ROOT/tools/nncell_lint.py" --test-fixtures
"$PYTHON" "$REPO_ROOT/tools/nncell_lint.py" --root "$REPO_ROOT"
