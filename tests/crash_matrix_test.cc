// The crash matrix: for every failpoint site in the durability pipeline
// and several skip counts, fork a child that runs a deterministic workload
// against a durable index and is killed mid-I/O by an injected crash
// (_exit(86) after a torn half-write). The parent then recovers the
// directory and requires the result to be differentially identical to an
// oracle built from the acknowledged operation prefix -- the child acks
// each completed operation into a side file, so the parent knows exactly
// how far it got. The one permitted divergence: the single operation in
// flight at the crash may survive (its WAL record was durable before the
// ack), but nothing acknowledged may be lost and nothing else may appear.

#include "common/failpoint.h"

#if NNCELL_FAILPOINTS

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct Op {
  enum Kind { kInsert, kDelete, kCheckpoint } kind;
  std::vector<double> point;  // kInsert
  uint64_t id = 0;            // kDelete
};

// The deterministic workload every child runs from an empty directory:
// inserts and deletes interleaved with two checkpoints, so every skip
// count lands the crash in a different phase (fresh WAL, WAL appends,
// snapshot write, log truncation, post-checkpoint appends).
std::vector<Op> Workload() {
  std::vector<Op> ops;
  Rng rng(0xc4a5);
  auto insert = [&] {
    ops.push_back({Op::kInsert, {rng.NextDouble(), rng.NextDouble()}, 0});
  };
  for (int i = 0; i < 10; ++i) insert();
  ops.push_back({Op::kDelete, {}, 3});
  ops.push_back({Op::kCheckpoint, {}, 0});
  for (int i = 0; i < 7; ++i) insert();
  ops.push_back({Op::kDelete, {}, 5});
  ops.push_back({Op::kDelete, {}, 11});
  ops.push_back({Op::kCheckpoint, {}, 0});
  for (int i = 0; i < 5; ++i) insert();
  ops.push_back({Op::kDelete, {}, 14});
  return ops;
}

NNCellOptions Options() {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  return opts;
}

NNCellIndex::DurableOptions Durable() {
  NNCellIndex::DurableOptions d;
  d.page_size = 1024;
  d.pool_pages = 512;
  return d;
}

// Child body: arm the failpoint, run the workload, ack each completed
// operation with one byte (O_APPEND + fsync, so the ack count survives the
// crash). Exit codes: 0 = workload finished (site never fired at this
// skip), 86 = injected crash, 3/4 = unexpected failure.
[[noreturn]] void RunChild(const std::string& dir, const std::string& ack_path,
                           const std::string& site, int skip) {
  failpoint::Arm(site, failpoint::Action::kCrash, skip);
  int ack_fd = ::open(ack_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) ::_exit(3);
  auto idx = NNCellIndex::Open(dir, 2, Options(), Durable(), nullptr);
  if (!idx.ok()) ::_exit(3);
  for (const Op& op : Workload()) {
    Status st = Status::OK();
    switch (op.kind) {
      case Op::kInsert: st = (*idx)->Insert(op.point).status(); break;
      case Op::kDelete: st = (*idx)->Delete(op.id); break;
      case Op::kCheckpoint: st = (*idx)->Checkpoint(); break;
    }
    if (!st.ok()) ::_exit(4);
    if (::write(ack_fd, "A", 1) != 1 || ::fsync(ack_fd) != 0) ::_exit(3);
  }
  ::_exit(0);
}

using LiveSet = std::map<uint64_t, std::vector<double>>;

LiveSet Live(const NNCellIndex& idx) {
  LiveSet out;
  for (uint64_t id = 0; id < idx.points().size(); ++id) {
    if (idx.IsAlive(id)) {
      out[id] = {idx.points()[id], idx.points()[id] + idx.dim()};
    }
  }
  return out;
}

// Oracle state after the first `n_ops` operations of the workload.
LiveSet OracleAfter(size_t n_ops) {
  PageFile file(1024);
  BufferPool pool(&file, 512);
  NNCellIndex oracle(&pool, 2, Options());
  std::vector<Op> ops = Workload();
  for (size_t i = 0; i < n_ops && i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case Op::kInsert: EXPECT_TRUE(oracle.Insert(ops[i].point).ok()); break;
      case Op::kDelete: EXPECT_TRUE(oracle.Delete(ops[i].id).ok()); break;
      case Op::kCheckpoint: break;
    }
  }
  return Live(oracle);
}

class CrashMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashMatrixTest, RecoversAcknowledgedPrefix) {
  const std::string site = GetParam();
  std::string safe_site = site;
  for (char& c : safe_site) {
    if (c == '.') c = '_';
  }
  for (int skip = 0; skip <= 2; ++skip) {
    const std::string base = ::testing::TempDir() + "crash_matrix_" +
                             safe_site + "_s" + std::to_string(skip);
    const std::string dir = base + ".d";
    const std::string ack_path = base + ".ack";
    std::filesystem::remove_all(dir);
    std::remove(ack_path.c_str());

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunChild(dir, ack_path, site, skip);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << site << " skip " << skip;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
        << site << " skip " << skip << ": child exited " << code;

    size_t acked = 0;
    if (std::filesystem::exists(ack_path)) {
      acked = std::filesystem::file_size(ack_path);
    }
    const size_t total = Workload().size();
    if (code == 0) {
      ASSERT_EQ(acked, total) << site << " skip " << skip;
    } else {
      ASSERT_LT(acked, total) << site << " skip " << skip;
    }

    // Recovery: every crash point must either open cleanly or (never
    // here -- all injected states are recoverable) explain itself.
    NNCellIndex::RecoveryInfo info;
    auto recovered = NNCellIndex::Open(dir, 2, Options(), Durable(), &info);
    ASSERT_TRUE(recovered.ok())
        << site << " skip " << skip << " acked " << acked << ": "
        << recovered.status().ToString();
    ASSERT_EQ((*recovered)->ValidateTree(), "") << site << " skip " << skip;

    const LiveSet got = Live(**recovered);
    const LiveSet at_ack = OracleAfter(acked);
    // The operation in flight at the crash may or may not have reached the
    // durable log before the process died; both outcomes are correct.
    if (got != at_ack) {
      const LiveSet next = OracleAfter(acked + 1);
      ASSERT_EQ(got, next)
          << site << " skip " << skip << ": recovered state matches neither "
          << "oracle(" << acked << ") nor oracle(" << acked + 1 << ")";
    }
    ASSERT_TRUE((*recovered)->CheckInvariants(30).ok())
        << site << " skip " << skip;

    std::filesystem::remove_all(dir);
    std::remove(ack_path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, CrashMatrixTest,
    ::testing::Values("fs.atomic_write.data", "fs.atomic_write.fsync",
                      "fs.atomic_write.rename", "fs.atomic_write.done",
                      "wal.append.write", "wal.append.fsync", "wal.truncate",
                      "checkpoint.after_snapshot"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nncell

#endif  // NNCELL_FAILPOINTS
