// End-to-end integration tests: all three index structures (NN-cell,
// R*-tree, X-tree) and the sequential scan answer the same NN queries over
// the same workloads, across data distributions, with consistent paging
// behaviour.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "rstar/rstar_tree.h"
#include "scan/sequential_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "xtree/xtree.h"

namespace nncell {
namespace {

enum class Distribution { kUniform, kGrid, kClusters, kFourier, kSparse };

PointSet MakeData(Distribution dist, size_t n, size_t dim, uint64_t seed) {
  switch (dist) {
    case Distribution::kUniform:
      return GenerateUniform(n, dim, seed);
    case Distribution::kGrid: {
      size_t per_side = 2;
      while (true) {
        size_t total = 1;
        for (size_t k = 0; k < dim; ++k) total *= (per_side + 1);
        if (total > n) break;
        ++per_side;
      }
      return GenerateGrid(per_side, dim, 0.3, seed);
    }
    case Distribution::kClusters:
      return GenerateClusters(n, dim, 5, 0.05, seed);
    case Distribution::kFourier:
      return GenerateFourier(n, dim, seed);
    case Distribution::kSparse:
      return GenerateSparse(std::min<size_t>(n, 40), dim, seed);
  }
  return PointSet(dim);
}

struct Stack {
  Stack(size_t dim, const PointSet& pts) {
    // NN-cell index.
    cell_file = std::make_unique<PageFile>(2048);
    cell_pool = std::make_unique<BufferPool>(cell_file.get(), 16384);
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    nncell = std::make_unique<NNCellIndex>(cell_pool.get(), dim, opts);
    EXPECT_TRUE(nncell->BulkBuild(pts).ok());

    // Point trees.
    rstar_file = std::make_unique<PageFile>(2048);
    rstar_pool = std::make_unique<BufferPool>(rstar_file.get(), 16384);
    TreeOptions topts;
    topts.dim = dim;
    rstar = std::make_unique<RStarTree>(rstar_pool.get(), topts);
    xtree_file = std::make_unique<PageFile>(2048);
    xtree_pool = std::make_unique<BufferPool>(xtree_file.get(), 16384);
    xtree = std::make_unique<XTree>(xtree_pool.get(), topts);

    // Scan.
    scan_file = std::make_unique<PageFile>(2048);
    scan_pool = std::make_unique<BufferPool>(scan_file.get(), 64);
    scan = std::make_unique<SequentialScan>(scan_pool.get(), dim);

    const PointSet& actual = nncell->points();  // deduplicated set
    for (size_t i = 0; i < actual.size(); ++i) {
      rstar->Insert(HyperRect::FromPoint(actual[i], dim), i);
      xtree->Insert(HyperRect::FromPoint(actual[i], dim), i);
      scan->Insert(actual[i], i);
    }
  }

  std::unique_ptr<PageFile> cell_file, rstar_file, xtree_file, scan_file;
  std::unique_ptr<BufferPool> cell_pool, rstar_pool, xtree_pool, scan_pool;
  std::unique_ptr<NNCellIndex> nncell;
  std::unique_ptr<RStarTree> rstar;
  std::unique_ptr<XTree> xtree;
  std::unique_ptr<SequentialScan> scan;
};

class CrossIndexTest
    : public ::testing::TestWithParam<std::tuple<Distribution, size_t>> {};

TEST_P(CrossIndexTest, AllIndexesAgreeOnNN) {
  const Distribution dist = std::get<0>(GetParam());
  const size_t dim = std::get<1>(GetParam());
  PointSet pts = MakeData(dist, 300, dim, 1000 + dim);
  Stack stack(dim, pts);
  PointSet queries = GenerateQueries(60, dim, 2000 + dim);

  for (size_t t = 0; t < queries.size(); ++t) {
    auto scan_result = stack.scan->NearestNeighbor(queries[t]);
    auto cell_result = stack.nncell->Query(queries[t]);
    ASSERT_TRUE(cell_result.ok());
    auto rstar_result = stack.rstar->KnnQuery(queries[t], 1);
    auto xtree_result = stack.xtree->KnnQuery(queries[t], 1);
    ASSERT_EQ(rstar_result.size(), 1u);
    ASSERT_EQ(xtree_result.size(), 1u);

    EXPECT_NEAR(cell_result->dist, scan_result.dist, 1e-9) << "query " << t;
    EXPECT_NEAR(rstar_result[0].dist, scan_result.dist, 1e-9) << "query " << t;
    EXPECT_NEAR(xtree_result[0].dist, scan_result.dist, 1e-9) << "query " << t;
  }
}

std::string DistributionName(
    const ::testing::TestParamInfo<std::tuple<Distribution, size_t>>& info) {
  static constexpr const char* kNames[] = {"Uniform", "Grid", "Clusters",
                                           "Fourier", "Sparse"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) +
         "_d" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrossIndexTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kGrid,
                                         Distribution::kClusters,
                                         Distribution::kFourier,
                                         Distribution::kSparse),
                       ::testing::Values(2, 4, 8)),
    DistributionName);

TEST(IntegrationTest, QueriesOnDataPointsAgreeEverywhere) {
  const size_t dim = 5;
  PointSet pts = GenerateUniform(250, dim, 9);
  Stack stack(dim, pts);
  for (size_t i = 0; i < pts.size(); i += 7) {
    auto cell = stack.nncell->Query(pts[i]);
    ASSERT_TRUE(cell.ok());
    EXPECT_EQ(cell->id, i);
    EXPECT_NEAR(cell->dist, 0.0, 1e-12);
    auto knn = stack.xtree->KnnQuery(pts[i], 1);
    EXPECT_EQ(knn[0].id, i);
  }
}

TEST(IntegrationTest, PageAccountingIsConsistent) {
  // Physical reads reported by the pool equal the PageFile's disk reads.
  const size_t dim = 6;
  PointSet pts = GenerateUniform(400, dim, 13);
  Stack stack(dim, pts);
  PointSet queries = GenerateQueries(20, dim, 14);
  stack.cell_pool->DropCache();
  stack.cell_file->ResetStats();
  stack.cell_pool->ResetStats();
  for (size_t t = 0; t < queries.size(); ++t) {
    ASSERT_TRUE(stack.nncell->Query(queries[t]).ok());
  }
  EXPECT_EQ(stack.cell_pool->stats().physical_reads,
            stack.cell_file->disk_reads());
  EXPECT_LE(stack.cell_pool->stats().physical_reads,
            stack.cell_pool->stats().logical_reads);
}

TEST(IntegrationTest, NNCellBeatsScanOnPageAccessesUniformMidDim) {
  // The headline systems claim at moderate dimensionality: the NN-cell
  // point query touches far fewer pages than a full scan.
  const size_t dim = 6;
  PointSet pts = GenerateUniform(1500, dim, 17);
  Stack stack(dim, pts);
  PointSet queries = GenerateQueries(25, dim, 18);
  uint64_t cell_pages = 0, scan_pages = 0;
  for (size_t t = 0; t < queries.size(); ++t) {
    stack.cell_pool->DropCache();
    stack.cell_pool->ResetStats();
    ASSERT_TRUE(stack.nncell->Query(queries[t]).ok());
    cell_pages += stack.cell_pool->stats().physical_reads;
    stack.scan_pool->DropCache();
    stack.scan_pool->ResetStats();
    stack.scan->NearestNeighbor(queries[t]);
    scan_pages += stack.scan_pool->stats().physical_reads;
  }
  EXPECT_LT(cell_pages, scan_pages);
}

}  // namespace
}  // namespace nncell
