// Kernel-equivalence suite: every op table this build can run (scalar
// always; AVX2/NEON when compiled in and supported by the CPU) must be
// bit-identical to the scalar reference on randomized inputs across all
// dims 1..32, unaligned/padded tails, and NaN/inf edge cases. This is the
// test that makes the dispatch level unobservable — the differential
// suite's byte-identity contract rides on it.

#include "common/kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/hyper_rect.h"
#include "common/kernels/soa_store.h"
#include "common/rng.h"

namespace nncell {
namespace kernels {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Bitwise comparison: NaN == NaN (same payload), +0 != -0.
bool BitEqual(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::vector<double> RandomVec(Rng& rng, size_t n, double lo = -10.0,
                              double hi = 10.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble(lo, hi);
  return v;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelEquivalenceTest, DotMatchesScalarBitExact) {
  const size_t dim = GetParam();
  Rng rng(17 * dim + 1);
  const KernelOps& ref = ScalarOps();
  for (const KernelOps* ops : AllOpsForTest()) {
    for (int rep = 0; rep < 20; ++rep) {
      auto a = RandomVec(rng, dim);
      auto b = RandomVec(rng, dim);
      double want = ref.dot(a.data(), b.data(), dim);
      double got = ops->dot(a.data(), b.data(), dim);
      EXPECT_TRUE(BitEqual(want, got))
          << ops->name << " dot d=" << dim << " want " << want << " got "
          << got;
    }
  }
}

TEST_P(KernelEquivalenceTest, MatVecMatchesScalarBitExact) {
  const size_t dim = GetParam();
  Rng rng(31 * dim + 2);
  const KernelOps& ref = ScalarOps();
  const size_t rows = 13;
  const size_t stride = PaddedDim(dim);
  for (const KernelOps* ops : AllOpsForTest()) {
    auto a = RandomVec(rng, rows * stride);
    auto x = RandomVec(rng, dim);
    std::vector<double> want(rows), got(rows);
    ref.mat_vec(a.data(), rows, dim, stride, x.data(), want.data());
    ops->mat_vec(a.data(), rows, dim, stride, x.data(), got.data());
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_TRUE(BitEqual(want[r], got[r]))
          << ops->name << " mat_vec d=" << dim << " row " << r;
    }
  }
}

TEST_P(KernelEquivalenceTest, AxpyMatchesScalarBitExact) {
  const size_t dim = GetParam();
  Rng rng(43 * dim + 3);
  const KernelOps& ref = ScalarOps();
  for (const KernelOps* ops : AllOpsForTest()) {
    auto x = RandomVec(rng, dim);
    auto y0 = RandomVec(rng, dim);
    double alpha = rng.NextDouble(-3.0, 3.0);
    std::vector<double> want = y0, got = y0;
    ref.axpy(alpha, x.data(), want.data(), dim);
    ops->axpy(alpha, x.data(), got.data(), dim);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_TRUE(BitEqual(want[i], got[i]))
          << ops->name << " axpy d=" << dim << " i=" << i;
    }
  }
}

// The batched SoA kernel must equal the sequential pair kernel per point —
// including for sizes that leave a partial tail block.
TEST_P(KernelEquivalenceTest, L2BatchSoaMatchesPairKernel) {
  const size_t dim = GetParam();
  Rng rng(57 * dim + 4);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{8}, size_t{64}, size_t{65}}) {
    SoaBlockStore store(dim);
    std::vector<std::vector<double>> pts;
    for (size_t j = 0; j < n; ++j) {
      pts.push_back(RandomVec(rng, dim));
      store.Append(pts.back().data());
    }
    auto q = RandomVec(rng, dim);
    for (const KernelOps* ops : AllOpsForTest()) {
      std::vector<double> out(n, -1.0);
      ops->l2_batch_soa(q.data(), store.blocks(), n, dim, out.data());
      for (size_t j = 0; j < n; ++j) {
        double want = L2DistSqPair(pts[j].data(), q.data(), dim);
        EXPECT_TRUE(BitEqual(want, out[j]))
            << ops->name << " l2_batch_soa d=" << dim << " n=" << n
            << " j=" << j;
      }
    }
    // Round-trip: the store must hand back exactly what went in.
    std::vector<double> back(dim);
    store.Get(n - 1, back.data());
    EXPECT_EQ(back, pts[n - 1]);
  }
}

TEST_P(KernelEquivalenceTest, L2Batch4MatchesPairKernel) {
  const size_t dim = GetParam();
  Rng rng(71 * dim + 5);
  auto q = RandomVec(rng, dim);
  std::vector<std::vector<double>> pts;
  const double* ptrs[4];
  for (int j = 0; j < 4; ++j) {
    pts.push_back(RandomVec(rng, dim));
    ptrs[j] = pts.back().data();
  }
  for (const KernelOps* ops : AllOpsForTest()) {
    double out[4];
    ops->l2_batch4(q.data(), ptrs, dim, out);
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(BitEqual(L2DistSqPair(ptrs[j], q.data(), dim), out[j]))
          << ops->name << " l2_batch4 d=" << dim << " j=" << j;
    }
  }
}

TEST_P(KernelEquivalenceTest, MinDistAndMinMaxDistMatchReference) {
  const size_t dim = GetParam();
  Rng rng(83 * dim + 6);
  std::vector<std::vector<double>> los, his;
  const double* lo_ptrs[4];
  const double* hi_ptrs[4];
  for (int j = 0; j < 4; ++j) {
    auto a = RandomVec(rng, dim);
    auto b = RandomVec(rng, dim);
    std::vector<double> lo(dim), hi(dim);
    for (size_t i = 0; i < dim; ++i) {
      lo[i] = std::min(a[i], b[i]);
      hi[i] = std::max(a[i], b[i]);
    }
    los.push_back(std::move(lo));
    his.push_back(std::move(hi));
    lo_ptrs[j] = los.back().data();
    hi_ptrs[j] = his.back().data();
  }
  // Query points inside, outside, and on the boundary of rect 0.
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<double> p = RandomVec(rng, dim, -12.0, 12.0);
    if (rep == 7) p.assign(los[0].begin(), los[0].end());  // on a corner
    for (const KernelOps* ops : AllOpsForTest()) {
      double out_min[4], out_minmax[4];
      ops->min_dist_batch4(lo_ptrs, hi_ptrs, p.data(), dim, out_min);
      ops->min_max_dist_batch4(lo_ptrs, hi_ptrs, p.data(), dim, out_minmax);
      for (int j = 0; j < 4; ++j) {
        EXPECT_TRUE(BitEqual(
            MinDistSqRef(lo_ptrs[j], hi_ptrs[j], p.data(), dim), out_min[j]))
            << ops->name << " min_dist d=" << dim << " j=" << j;
        EXPECT_TRUE(BitEqual(
            MinMaxDistSqRef(lo_ptrs[j], hi_ptrs[j], p.data(), dim),
            out_minmax[j]))
            << ops->name << " min_max_dist d=" << dim << " j=" << j;
      }
    }
  }
}

// NaN and infinity must propagate identically on every dispatch level.
TEST_P(KernelEquivalenceTest, NanInfPropagation) {
  const size_t dim = GetParam();
  Rng rng(97 * dim + 7);
  const KernelOps& ref = ScalarOps();
  for (double special : {kNan, kInf, -kInf}) {
    auto a = RandomVec(rng, dim);
    auto b = RandomVec(rng, dim);
    a[dim / 2] = special;
    double want = ref.dot(a.data(), b.data(), dim);
    SoaBlockStore store(dim);
    for (int j = 0; j < 5; ++j) store.Append(j == 2 ? a.data() : b.data());
    for (const KernelOps* ops : AllOpsForTest()) {
      EXPECT_TRUE(BitEqual(want, ops->dot(a.data(), b.data(), dim)))
          << ops->name << " dot special=" << special << " d=" << dim;
      std::vector<double> out(5);
      ops->l2_batch_soa(b.data(), store.blocks(), 5, dim, out.data());
      for (int j = 0; j < 5; ++j) {
        double pw = L2DistSqPair(j == 2 ? a.data() : b.data(), b.data(), dim);
        EXPECT_TRUE(BitEqual(pw, out[j]))
            << ops->name << " batch special=" << special << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, KernelEquivalenceTest,
                         ::testing::Range(size_t{1}, size_t{33}));

// The scalar reference itself must agree with the legacy open-coded forms
// it replaced (same add order): the distance.h pair loop and the branchy
// MINDIST/MINMAXDIST in hyper_rect.
TEST(KernelReferenceTest, MatchesLegacySemantics) {
  Rng rng(123);
  for (size_t dim : {1, 2, 3, 7, 8, 16, 31}) {
    for (int rep = 0; rep < 50; ++rep) {
      auto a = RandomVec(rng, dim);
      auto b = RandomVec(rng, dim);
      double s = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        double d = a[i] - b[i];
        s += d * d;
      }
      EXPECT_TRUE(BitEqual(s, L2DistSqPair(a.data(), b.data(), dim)));
      EXPECT_TRUE(BitEqual(s, L2DistSq(a.data(), b.data(), dim)));

      std::vector<double> lo(dim), hi(dim);
      for (size_t i = 0; i < dim; ++i) {
        lo[i] = std::min(a[i], b[i]);
        hi[i] = std::max(a[i], b[i]);
      }
      auto p = RandomVec(rng, dim, -12.0, 12.0);
      double branchy = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        double d = 0.0;
        if (p[i] < lo[i]) {
          d = lo[i] - p[i];
        } else if (p[i] > hi[i]) {
          d = p[i] - hi[i];
        }
        branchy += d * d;
      }
      EXPECT_TRUE(
          BitEqual(branchy, MinDistSqRef(lo.data(), hi.data(), p.data(), dim)))
          << "d=" << dim;
      HyperRect rect(lo, hi);
      EXPECT_TRUE(BitEqual(rect.MinDistSq(p.data()),
                           MinDistSqRef(lo.data(), hi.data(), p.data(), dim)));
      EXPECT_TRUE(BitEqual(
          rect.MinMaxDistSq(p.data()),
          MinMaxDistSqRef(lo.data(), hi.data(), p.data(), dim)));
    }
  }
}

TEST(KernelDispatchTest, TablesAreConsistent) {
  // Whatever the environment picked, the active table must be one of the
  // runnable tables and the level/name/reason must agree.
  const KernelOps& active = Ops();
  bool found = false;
  for (const KernelOps* ops : AllOpsForTest()) {
    if (ops == &active) found = true;
  }
  EXPECT_TRUE(found) << "active table " << active.name << " not runnable?";
  EXPECT_STREQ(active.name, ActiveLevelName());
  const char* env = std::getenv("NNCELL_SIMD");
  if (env != nullptr &&
      (std::string(env) == "scalar" || std::string(env) == "off")) {
    EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
    EXPECT_STREQ(DispatchReason(), "env");
  }
  SCOPED_TRACE(std::string("dispatch: ") + ActiveLevelName() + " (" +
               DispatchReason() + ")");
}

TEST(KernelDispatchTest, PaddedDimRoundsUp) {
  EXPECT_EQ(PaddedDim(0), 0u);
  EXPECT_EQ(PaddedDim(1), 4u);
  EXPECT_EQ(PaddedDim(4), 4u);
  EXPECT_EQ(PaddedDim(5), 8u);
  EXPECT_EQ(PaddedDim(16), 16u);
  EXPECT_EQ(PaddedDim(17), 20u);
}

}  // namespace
}  // namespace kernels
}  // namespace nncell
