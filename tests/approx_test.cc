// Approximate query tier tests (docs/APPROXIMATE.md): the exactness
// contract as an executable property -- epsilon = 0 with an unlimited
// budget must answer bit-identically to the exact tier across algorithms,
// dimensionalities and shard counts -- plus the certificate-soundness
// property (every returned distance obeys the certified (1+eps) bound
// against a sequential-scan oracle on every query), the bounded-effort
// budget contract, and the wire-protocol round trip of the approx request
// block and the per-result certificate.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/approx.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "scan/sequential_scan.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/server.h"
#include "shard/sharded_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct IndexUnderTest {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

IndexUnderTest MakeIndex(size_t dim, const NNCellOptions& options) {
  IndexUnderTest t;
  t.file = std::make_unique<PageFile>(2048);
  t.pool = std::make_unique<BufferPool>(t.file.get(), 512);
  t.index = std::make_unique<NNCellIndex>(t.pool.get(), dim, options);
  return t;
}

PointSet RandomPoints(size_t n, size_t dim, uint64_t seed) {
  PointSet pts(dim);
  Rng rng(seed);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  return pts;
}

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Bit-identity, not numerical closeness: the exactness contract promises
// the approximate entry points are the same code path when disabled.
void ExpectBitIdentical(const NNCellIndex::QueryResult& exact,
                        const NNCellIndex::QueryResult& routed,
                        const std::string& what) {
  EXPECT_EQ(exact.id, routed.id) << what;
  EXPECT_EQ(Bits(exact.dist), Bits(routed.dist)) << what;
  EXPECT_EQ(exact.point, routed.point) << what;
  EXPECT_EQ(exact.candidates, routed.candidates) << what;
}

// --- the exactness contract: eps=0 + unlimited budget == exact tier ------

using ExactParam = std::tuple<ApproxAlgorithm, size_t, size_t>;

class ApproxExactnessTest : public ::testing::TestWithParam<ExactParam> {};

TEST_P(ApproxExactnessTest, DisabledOptionsAreBitIdentical) {
  const auto [algo, dim, shards] = GetParam();
  const size_t n = dim <= 2 ? 90 : (dim <= 8 ? 50 : 36);
  PointSet pts = RandomPoints(n, dim, 0xa11ce + dim * 31 + shards);

  NNCellOptions options;
  options.algorithm = algo;

  // Disabled options: explicit epsilon = 0 and the documented unlimited
  // budget sentinel. enabled() must be false.
  ApproxOptions disabled;
  disabled.epsilon = 0.0;
  disabled.max_leaf_visits = kUnlimitedLeafVisits;
  ASSERT_FALSE(disabled.enabled());

  IndexUnderTest plain = MakeIndex(dim, options);
  ASSERT_TRUE(plain.index->BulkBuild(pts).ok());

  auto sharded = ShardedIndex::Create(dim, options, [&] {
    ShardedOptions s;
    s.num_shards = shards;
    s.auto_rebalance = false;
    return s;
  }());
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_TRUE((*sharded)->BulkBuild(pts).ok());

  Rng rng(0xe9 + dim);
  PointSet queries(dim);
  std::vector<double> q(dim);
  for (size_t i = 0; i < 16; ++i) {
    for (double& v : q) v = rng.NextDouble();
    queries.Add(q);

    const std::string tag = "query " + std::to_string(i);
    auto exact = plain.index->Query(q);
    auto routed = plain.index->Query(q, disabled);
    ASSERT_TRUE(exact.ok() && routed.ok()) << tag;
    ExpectBitIdentical(*exact, *routed, tag);
    // A disabled-tier answer is exact: the certificate must stay trivial.
    EXPECT_FALSE(routed->approx.approximate) << tag;

    auto exact_knn = plain.index->KnnQuery(q, 5);
    auto routed_knn = plain.index->KnnQuery(q, 5, disabled);
    ASSERT_TRUE(exact_knn.ok() && routed_knn.ok()) << tag;
    ASSERT_EQ(exact_knn->size(), routed_knn->size()) << tag;
    for (size_t j = 0; j < exact_knn->size(); ++j) {
      ExpectBitIdentical((*exact_knn)[j], (*routed_knn)[j],
                         tag + " knn " + std::to_string(j));
    }

    auto s_exact = (*sharded)->Query(q);
    auto s_routed = (*sharded)->Query(q, disabled);
    ASSERT_TRUE(s_exact.ok() && s_routed.ok()) << tag;
    ExpectBitIdentical(*s_exact, *s_routed, tag + " sharded");

    auto s_knn = (*sharded)->KnnQuery(q, 5, disabled);
    auto s_knn_exact = (*sharded)->KnnQuery(q, 5);
    ASSERT_TRUE(s_knn.ok() && s_knn_exact.ok()) << tag;
    ASSERT_EQ(s_knn->size(), s_knn_exact->size()) << tag;
    for (size_t j = 0; j < s_knn->size(); ++j) {
      ExpectBitIdentical((*s_knn_exact)[j], (*s_knn)[j],
                         tag + " sharded knn " + std::to_string(j));
    }
  }

  // The batch entry points agree with their own exact tier. (Plain and
  // sharded are compared within each kind: candidate counts legitimately
  // differ across the scatter-gather merge, ids and distances never do.)
  auto batch_exact = plain.index->QueryBatch(queries);
  auto batch_routed = plain.index->QueryBatch(queries, disabled);
  auto s_batch_exact = (*sharded)->QueryBatch(queries);
  auto s_batch_routed = (*sharded)->QueryBatch(queries, disabled);
  ASSERT_TRUE(batch_exact.ok() && batch_routed.ok() && s_batch_exact.ok() &&
              s_batch_routed.ok());
  ASSERT_EQ(batch_exact->size(), batch_routed->size());
  ASSERT_EQ(s_batch_exact->size(), s_batch_routed->size());
  for (size_t i = 0; i < batch_exact->size(); ++i) {
    ExpectBitIdentical((*batch_exact)[i], (*batch_routed)[i],
                       "batch " + std::to_string(i));
    ExpectBitIdentical((*s_batch_exact)[i], (*s_batch_routed)[i],
                       "sharded batch " + std::to_string(i));
    // Across kinds the answer itself is still bit-identical.
    EXPECT_EQ((*batch_exact)[i].id, (*s_batch_routed)[i].id);
    EXPECT_EQ(Bits((*batch_exact)[i].dist), Bits((*s_batch_routed)[i].dist));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByDimByShards, ApproxExactnessTest,
    ::testing::Combine(
        ::testing::Values(ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
                          ApproxAlgorithm::kSphere,
                          ApproxAlgorithm::kNNDirection),
        ::testing::Values<size_t>(2, 8, 16), ::testing::Values<size_t>(1, 4)),
    [](const ::testing::TestParamInfo<ExactParam>& info) {
      std::string algo = ApproxAlgorithmName(std::get<0>(info.param));
      algo.erase(std::remove_if(algo.begin(), algo.end(),
                                [](char c) { return !std::isalnum(c); }),
                 algo.end());
      return algo + "_d" + std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// --- certificate soundness ------------------------------------------------

// Oracle over the live points of `index` in its metric space: the index's
// internal coordinates are what QueryResult::dist measures, so scan
// distances compare directly (docs/APPROXIMATE.md, proof obligation).
struct ScanOracle {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<SequentialScan> scan;
};

ScanOracle MakeOracle(const NNCellIndex& index) {
  ScanOracle o;
  o.file = std::make_unique<PageFile>(2048);
  o.pool = std::make_unique<BufferPool>(o.file.get(), 512);
  o.scan = std::make_unique<SequentialScan>(o.pool.get(), index.dim());
  for (uint64_t id = 0; id < index.points().size(); ++id) {
    if (index.IsAlive(id)) o.scan->Insert(index.points()[id], id);
  }
  return o;
}

// FP slack for the certified comparisons: the two sides accumulate the
// same sums in different orders, so allow a relative 1e-12.
constexpr double kUlp = 1.0 + 1e-12;

// The certificate contract of docs/APPROXIMATE.md. `strict_bound` is the
// single-index strengthening: on one tree the eps rule fires before
// exactness is proven, so the frontier bound also sits under the true
// distance and within (1+eps) of the answer. A sharded merge loses that
// (an exact shard's bound may exceed its own -- and the global -- answer)
// but keeps the uniform guarantee: the true NN distance is at least
// min(returned dist, bound).
void CheckCertificate(const NNCellIndex::QueryResult& r, double oracle_dist,
                      const ApproxOptions& approx, bool strict_bound,
                      const std::string& tag) {
  // The returned point is real, so it can never beat the true NN.
  EXPECT_LE(oracle_dist, r.dist * kUlp) << tag;
  // approximate is exactly the disjunction of the two causes.
  EXPECT_EQ(r.approx.approximate,
            r.approx.terminated_early || r.approx.truncated)
      << tag;
  if (!r.approx.truncated) {
    // Certified: with an unexhausted budget the answer is within (1+eps)
    // of the true nearest neighbor.
    EXPECT_LE(r.dist, (1.0 + approx.epsilon) * oracle_dist * kUlp) << tag;
  }
  if (r.approx.approximate) {
    // Uniform bound soundness: no unexplored region holds a point closer
    // than min(dist, bound). The bound alone may exceed the oracle
    // distance when the true NN was explored before the search stopped.
    EXPECT_LE(std::min(r.dist, r.approx.bound), oracle_dist * kUlp) << tag;
  }
  if (strict_bound && r.approx.terminated_early && !r.approx.truncated) {
    EXPECT_LE(r.approx.bound, oracle_dist * kUlp) << tag;
    EXPECT_LE(r.dist, (1.0 + approx.epsilon) * r.approx.bound * kUlp) << tag;
  }
  if (approx.max_leaf_visits != kUnlimitedLeafVisits) {
    EXPECT_LE(r.approx.leaf_visits, approx.max_leaf_visits) << tag;
  }
}

class CertificateSoundnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(CertificateSoundnessTest, EveryAnswerObeysItsCertificate) {
  const auto [dim, seed] = GetParam();
  const size_t n = dim <= 2 ? 400 : 250;

  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  IndexUnderTest t = MakeIndex(dim, options);
  ASSERT_TRUE(t.index->BulkBuild(RandomPoints(n, dim, seed)).ok());
  ScanOracle oracle = MakeOracle(*t.index);

  const double epsilons[] = {0.0, 0.05, 0.1, 0.5, 2.0};
  const uint64_t budgets[] = {kUnlimitedLeafVisits, 1, 2, 8};

  Rng rng(seed ^ 0xce27);
  std::vector<double> q(dim);
  for (size_t i = 0; i < 25; ++i) {
    for (double& v : q) v = rng.NextDouble();
    const double oracle_dist = oracle.scan->NearestNeighbor(q.data()).dist;
    for (double eps : epsilons) {
      for (uint64_t budget : budgets) {
        ApproxOptions approx;
        approx.epsilon = eps;
        approx.max_leaf_visits = budget;
        auto r = t.index->Query(q, approx);
        ASSERT_TRUE(r.ok());
        const std::string tag = "query " + std::to_string(i) + " eps=" +
                                std::to_string(eps) + " budget=" +
                                std::to_string(budget);
        CheckCertificate(*r, oracle_dist, approx, /*strict_bound=*/true, tag);
        if (approx.enabled()) {
          EXPECT_GT(r->approx.leaf_visits, 0u) << tag;
          EXPECT_GT(r->approx.bound, 0.0) << tag;
        }
        // eps=0 with an unlimited budget is the exact tier: never flagged.
        if (!approx.enabled()) {
          EXPECT_FALSE(r->approx.approximate) << tag;
          EXPECT_EQ(r->approx.leaf_visits, 0u) << tag;
        }
      }
    }

    // kNN: every returned distance is within (1+eps) of the true i-th NN
    // distance when the budget did not truncate the search.
    ApproxOptions approx;
    approx.epsilon = 0.1;
    auto knn = t.index->KnnQuery(q, 5, approx);
    ASSERT_TRUE(knn.ok());
    auto true_knn = oracle.scan->KnnQuery(q.data(), 5);
    ASSERT_EQ(knn->size(), true_knn.size());
    for (size_t j = 0; j < knn->size(); ++j) {
      EXPECT_FALSE((*knn)[j].approx.truncated);
      EXPECT_LE((*knn)[j].dist,
                (1.0 + approx.epsilon) * true_knn[j].dist * kUlp)
          << "knn rank " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsBySeeds, CertificateSoundnessTest,
    ::testing::Combine(::testing::Values<size_t>(2, 8, 16),
                       ::testing::Values<uint64_t>(0xf00d, 0xbeef)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param) & 0xffff);
    });

// Certificates survive the sharded scatter-gather merge: flags OR'd,
// leaf visits summed, and the merged bound still certifies the answer.
TEST(ApproxShardedTest, MergedCertificateStaysSound) {
  const size_t dim = 8;
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;

  IndexUnderTest plain = MakeIndex(dim, options);
  PointSet pts = RandomPoints(300, dim, 0x5a5a);
  ASSERT_TRUE(plain.index->BulkBuild(pts).ok());
  ScanOracle oracle = MakeOracle(*plain.index);

  ShardedOptions sopts;
  sopts.num_shards = 4;
  sopts.auto_rebalance = false;
  auto sharded = ShardedIndex::Create(dim, options, sopts);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->BulkBuild(pts).ok());

  Rng rng(0x77aa);
  std::vector<double> q(dim);
  for (size_t i = 0; i < 30; ++i) {
    for (double& v : q) v = rng.NextDouble();
    const double oracle_dist = oracle.scan->NearestNeighbor(q.data()).dist;
    for (double eps : {0.1, 0.5}) {
      ApproxOptions approx;
      approx.epsilon = eps;
      auto r = (*sharded)->Query(q, approx);
      ASSERT_TRUE(r.ok());
      const std::string tag =
          "query " + std::to_string(i) + " eps=" + std::to_string(eps);
      CheckCertificate(*r, oracle_dist, approx, /*strict_bound=*/false, tag);
      EXPECT_GT(r->approx.leaf_visits, 0u) << tag;
    }
    // Per-shard budget: the total is bounded by shards * budget.
    ApproxOptions budgeted;
    budgeted.max_leaf_visits = 2;
    auto r = (*sharded)->Query(q, budgeted);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->approx.leaf_visits,
              budgeted.max_leaf_visits * (*sharded)->num_shards());
    EXPECT_LE(oracle_dist, r->dist * kUlp);
  }
}

// --- wire protocol ---------------------------------------------------------

namespace srv = ::nncell::server;

TEST(ApproxWireTest, RequestBlockRoundTrip) {
  ApproxOptions approx;
  approx.epsilon = 0.25;
  approx.max_leaf_visits = 77;

  std::string with_approx, without;
  srv::EncodePointPayloadWithApprox({0.5, 0.25}, approx, &with_approx);
  srv::EncodePointPayload({0.5, 0.25}, &without);
  // The approx block is a strict 16-byte suffix: requests without it are
  // byte-identical to the pre-approx protocol.
  ASSERT_EQ(with_approx.size(), without.size() + srv::kApproxRequestBytes);
  EXPECT_EQ(with_approx.compare(0, without.size(), without), 0);

  std::vector<double> point;
  ApproxOptions decoded;
  bool has_approx = false;
  ASSERT_TRUE(srv::DecodePointPayloadWithApprox(with_approx, &point, &decoded,
                                                &has_approx)
                  .ok());
  EXPECT_TRUE(has_approx);
  EXPECT_EQ(decoded.epsilon, approx.epsilon);
  EXPECT_EQ(decoded.max_leaf_visits, approx.max_leaf_visits);
  EXPECT_EQ(point, (std::vector<double>{0.5, 0.25}));

  ASSERT_TRUE(
      srv::DecodePointPayloadWithApprox(without, &point, &decoded, &has_approx)
          .ok());
  EXPECT_FALSE(has_approx);
}

TEST(ApproxWireTest, BatchRequestBlockRoundTrip) {
  ApproxOptions approx;
  approx.epsilon = 0.1;
  std::string payload;
  srv::EncodeBatchPayloadWithApprox({{0.1, 0.2}, {0.3, 0.4}}, approx,
                                    &payload);
  size_t dim = 0, count = 0;
  std::vector<double> flat;
  ApproxOptions decoded;
  bool has_approx = false;
  ASSERT_TRUE(srv::DecodeBatchPayloadWithApprox(payload, &dim, &flat, &count,
                                                &decoded, &has_approx)
                  .ok());
  EXPECT_TRUE(has_approx);
  EXPECT_EQ(dim, 2u);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(decoded.epsilon, 0.1);
}

TEST(ApproxWireTest, RejectsBadEpsilon) {
  for (double bad : {-1.0, std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    ApproxOptions approx;
    approx.epsilon = bad;
    std::string payload;
    srv::EncodePointPayloadWithApprox({0.5, 0.5}, approx, &payload);
    std::vector<double> point;
    ApproxOptions decoded;
    bool has_approx = false;
    EXPECT_FALSE(srv::DecodePointPayloadWithApprox(payload, &point, &decoded,
                                                   &has_approx)
                     .ok())
        << "epsilon " << bad << " must be rejected at the wire boundary";
  }
}

TEST(ApproxWireTest, CertificateRoundTripAndLegacyBytes) {
  srv::WireQueryResult r;
  r.id = 42;
  r.dist = 0.125;
  r.candidates = 7;
  r.point = {0.5, 0.5};

  // Legacy encoding first: no certificate, bytes must be stable.
  std::string legacy;
  srv::EncodeQueryResultPayload(r, &legacy);

  r.has_certificate = true;
  r.certificate.approximate = 1;
  r.certificate.terminated_early = 1;
  r.certificate.truncated = 0;
  r.certificate.leaf_visits = 9;
  r.certificate.bound = 0.0625;
  std::string with_cert;
  srv::EncodeQueryResultPayload(r, &with_cert);
  ASSERT_EQ(with_cert.size(), legacy.size() + srv::kApproxCertificateBytes);
  EXPECT_EQ(with_cert.compare(0, legacy.size(), legacy), 0);

  uint8_t status = 0;
  std::string_view body;
  std::string message;
  ASSERT_TRUE(
      srv::DecodeStatusPayload(with_cert, &status, &body, &message).ok());
  srv::WireQueryResult decoded;
  ASSERT_TRUE(srv::DecodeQueryResultBody(body, &decoded,
                                         /*expect_certificate=*/true)
                  .ok());
  EXPECT_EQ(decoded, r);

  // A truncated certificate is a decode error, not a silent fallback.
  ASSERT_TRUE(
      srv::DecodeStatusPayload(with_cert, &status, &body, &message).ok());
  std::string_view short_body = body.substr(0, body.size() - 1);
  EXPECT_FALSE(srv::DecodeQueryResultBody(short_body, &decoded,
                                          /*expect_certificate=*/true)
                   .ok());
}

// --- live server end to end ------------------------------------------------

class ApproxServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ =
        ::testing::TempDir() + "approx_server_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".sock";
    std::filesystem::remove(socket_path_);
    file_ = std::make_unique<PageFile>(1024);
    pool_ = std::make_unique<BufferPool>(file_.get(), 512);
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    index_ = std::make_unique<NNCellIndex>(pool_.get(), 4, opts);
    Rng rng(0xab5e);
    for (int i = 0; i < 120; ++i) {
      auto id = index_->Insert({rng.NextDouble(), rng.NextDouble(),
                                rng.NextDouble(), rng.NextDouble()});
      ASSERT_TRUE(id.ok());
    }
    srv::ServerOptions sopt;
    sopt.socket_path = socket_path_;
    server_ = std::make_unique<srv::NNCellServer>(index_.get(), sopt);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    ASSERT_TRUE(server_->Stop().ok());
    std::filesystem::remove(socket_path_);
  }

  std::string socket_path_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<NNCellIndex> index_;
  std::unique_ptr<srv::NNCellServer> server_;
};

TEST_F(ApproxServerTest, QueryWithApproxBlockGetsCertificate) {
  auto client = srv::Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  const std::vector<double> q = {0.3, 0.7, 0.2, 0.9};

  // Default query: no certificate on the wire, same bytes as ever.
  auto plain = client->Query(q);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_certificate);

  // Explicit disabled options: exact answer plus a trivial certificate.
  auto exact = client->Query(q, ApproxOptions{});
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->has_certificate);
  EXPECT_EQ(exact->certificate.approximate, 0);
  EXPECT_EQ(exact->id, plain->id);
  EXPECT_EQ(Bits(exact->dist), Bits(plain->dist));

  // An enabled tier answers with a populated certificate.
  ApproxOptions approx;
  approx.epsilon = 0.2;
  auto certified = client->Query(q, approx);
  ASSERT_TRUE(certified.ok());
  EXPECT_TRUE(certified->has_certificate);
  EXPECT_GT(certified->certificate.leaf_visits, 0u);
  EXPECT_GT(certified->certificate.bound, 0.0);
  // The certified answer can never beat the exact one.
  EXPECT_GE(certified->dist, plain->dist * (1.0 - 1e-12));

  // Batches: per-item certificates, and a mixed run of default and
  // approx-tier requests on one connection answers each correctly.
  auto batch = client->QueryBatch({q, {0.1, 0.1, 0.1, 0.1}}, approx);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  for (const auto& r : *batch) {
    EXPECT_TRUE(r.has_certificate);
    EXPECT_GT(r.certificate.leaf_visits, 0u);
  }
  auto plain_batch = client->QueryBatch({q, {0.1, 0.1, 0.1, 0.1}});
  ASSERT_TRUE(plain_batch.ok());
  for (const auto& r : *plain_batch) EXPECT_FALSE(r.has_certificate);
  EXPECT_EQ((*plain_batch)[0].id, plain->id);

  // Budget-capped query over the wire reports its truncation.
  ApproxOptions budgeted;
  budgeted.max_leaf_visits = 1;
  auto capped = client->Query(q, budgeted);
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped->has_certificate);
  EXPECT_LE(capped->certificate.leaf_visits, 1u);
}

}  // namespace
}  // namespace nncell
