// Weighted Euclidean ("adaptable") similarity search on the NN-cell
// index: d_W(x,y)^2 = sum w_i (x_i - y_i)^2, implemented by the
// sqrt(weight) isometry. All NN-cell machinery must stay exact under any
// positive weight vector.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

double WeightedDistSq(const std::vector<double>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& w) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += w[i] * d * d;
  }
  return s;
}

struct WeightedFixture {
  WeightedFixture(size_t dim, std::vector<double> weights,
                  ApproxAlgorithm alg = ApproxAlgorithm::kSphere)
      : file(2048), pool(&file, 16384) {
    NNCellOptions opts;
    opts.algorithm = alg;
    opts.weights = std::move(weights);
    index = std::make_unique<NNCellIndex>(&pool, dim, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<NNCellIndex> index;
};

class WeightedMetricTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(WeightedMetricTest, QueryMatchesWeightedBruteForce) {
  const std::vector<double>& w = GetParam();
  const size_t dim = w.size();
  Rng rng(99);
  // Keep raw point copies for the oracle (points() returns transformed).
  std::vector<std::vector<double>> raw;
  PointSet pts = GenerateUniform(100, dim, 5);
  WeightedFixture fx(dim, w);
  for (size_t i = 0; i < pts.size(); ++i) {
    raw.push_back(pts.Get(i));
  }
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());

  for (int t = 0; t < 120; ++t) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    auto r = fx.index->Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    size_t best_id = 0;
    for (size_t i = 0; i < raw.size(); ++i) {
      double d = WeightedDistSq(raw[i], q, w);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    EXPECT_NEAR(r->dist, std::sqrt(best), 1e-9) << "query " << t;
    if (r->id == best_id) {
      // Reported point must be in ORIGINAL coordinates.
      for (size_t i = 0; i < dim; ++i) {
        EXPECT_NEAR(r->point[i], raw[best_id][i], 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Weights, WeightedMetricTest,
    ::testing::Values(std::vector<double>{1.0, 1.0},          // plain L2
                      std::vector<double>{4.0, 1.0},          // x dominates
                      std::vector<double>{0.1, 10.0},         // y dominates
                      std::vector<double>{2.0, 0.5, 1.0},     // 3-d mix
                      std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));

TEST(WeightedMetricTest, KnnMatchesWeightedBruteForce) {
  std::vector<double> w = {3.0, 0.5, 1.5};
  WeightedFixture fx(3, w);
  PointSet pts = GenerateUniform(120, 3, 11);
  std::vector<std::vector<double>> raw;
  for (size_t i = 0; i < pts.size(); ++i) raw.push_back(pts.Get(i));
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  Rng rng(12);
  for (int t = 0; t < 40; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto r = fx.index->KnnQuery(q, 7);
    ASSERT_TRUE(r.ok());
    std::vector<double> dists;
    for (const auto& p : raw) dists.push_back(std::sqrt(WeightedDistSq(p, q, w)));
    std::sort(dists.begin(), dists.end());
    ASSERT_EQ(r->size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_NEAR((*r)[i].dist, dists[i], 1e-9);
    }
  }
}

TEST(WeightedMetricTest, WeightsChangeTheAnswer) {
  // Two candidate neighbors; the weight vector decides which one wins.
  WeightedFixture fx_x(2, {100.0, 1.0});
  WeightedFixture fx_y(2, {1.0, 100.0});
  PointSet pts(2);
  pts.Add({0.50, 0.30});  // close in y, far in x? (relative to query below)
  pts.Add({0.30, 0.50});
  ASSERT_TRUE(fx_x.index->BulkBuild(pts).ok());
  ASSERT_TRUE(fx_y.index->BulkBuild(pts).ok());
  std::vector<double> q = {0.45, 0.45};
  // With x dominating, prefer the point closer in x: (0.50, 0.30).
  auto rx = fx_x.index->Query(q);
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->id, 0u);
  // With y dominating, prefer the point closer in y: (0.30, 0.50).
  auto ry = fx_y.index->Query(q);
  ASSERT_TRUE(ry.ok());
  EXPECT_EQ(ry->id, 1u);
}

TEST(WeightedMetricTest, DynamicInsertAndDeleteUnderWeights) {
  std::vector<double> w = {2.0, 0.25};
  WeightedFixture fx(2, w, ApproxAlgorithm::kCorrect);
  Rng rng(13);
  std::vector<std::vector<double>> raw;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
    auto id = fx.index->Insert(p);
    if (id.ok()) {
      raw.push_back(p);
      ids.push_back(*id);
    }
  }
  // Delete a third.
  std::vector<bool> alive(raw.size(), true);
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(fx.index->Delete(ids[i]).ok());
    alive[i] = false;
  }
  for (int t = 0; t < 60; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble()};
    auto r = fx.index->Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (!alive[i]) continue;
      best = std::min(best, WeightedDistSq(raw[i], q, w));
    }
    EXPECT_NEAR(r->dist, std::sqrt(best), 1e-9);
  }
}

TEST(WeightedMetricTest, InvalidWeightsRejected) {
  PageFile file(2048);
  BufferPool pool(&file, 64);
  NNCellOptions opts;
  opts.weights = {1.0, -2.0};
  EXPECT_DEATH(NNCellIndex(&pool, 2, opts), "positive");
}

}  // namespace
}  // namespace nncell
