// Differential oracle for the query service: the same seeded workload is
// driven twice -- through a live server over its wire protocol, and
// directly against an NNCellIndex built with identical options -- and
// every response must match. Covers all four approximation algorithms at
// d = 2, 8, 16, and (separately) a durable server that is SIGTERM-drained,
// checkpointed and restarted mid-workload: the reopened server must keep
// answering exactly like the never-restarted oracle.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nncell/nncell_index.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace server {
namespace {

NNCellOptions Options(ApproxAlgorithm alg) {
  NNCellOptions opts;
  opts.algorithm = alg;
  return opts;
}

struct Oracle {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;

  Oracle(size_t dim, ApproxAlgorithm alg) {
    file = std::make_unique<PageFile>(4096);
    pool = std::make_unique<BufferPool>(file.get(), 2048);
    index = std::make_unique<NNCellIndex>(pool.get(), dim, Options(alg));
  }
};

// One deterministic mixed workload: preload inserts, then interleaved
// queries / inserts / deletes. Every response from the server is compared
// against the directly-driven oracle as it happens.
void RunDifferentialWorkload(Client& client, NNCellIndex& oracle, size_t dim,
                             uint64_t seed) {
  Rng rng(seed);
  auto random_point = [&] {
    std::vector<double> p(dim);
    for (double& v : p) v = rng.NextDouble();
    return p;
  };

  std::vector<uint64_t> live;
  for (int i = 0; i < 30; ++i) {
    auto p = random_point();
    auto sid = client.Insert(p);
    ASSERT_TRUE(sid.ok()) << sid.status().ToString();
    auto oid = oracle.Insert(p);
    ASSERT_TRUE(oid.ok());
    ASSERT_EQ(*sid, *oid) << "insert " << i;
    live.push_back(*sid);
  }

  for (int op = 0; op < 40; ++op) {
    const uint64_t pick = rng.NextIndex(10);
    if (pick < 6) {
      // query
      auto q = random_point();
      auto sr = client.Query(q);
      ASSERT_TRUE(sr.ok()) << sr.status().ToString();
      auto orr = oracle.Query(q.data());
      ASSERT_TRUE(orr.ok());
      ASSERT_EQ(sr->id, orr->id) << "op " << op;
      ASSERT_EQ(sr->dist, orr->dist) << "op " << op;
      ASSERT_EQ(sr->candidates, orr->candidates) << "op " << op;
      ASSERT_EQ(sr->used_fallback, orr->used_fallback ? 1 : 0) << "op " << op;
      ASSERT_EQ(sr->point.size(), dim);
      for (size_t d = 0; d < dim; ++d) {
        ASSERT_EQ(sr->point[d], orr->point[d]) << "op " << op << " dim " << d;
      }
    } else if (pick < 8) {
      // batch of 3 queries
      std::vector<std::vector<double>> qs = {random_point(), random_point(),
                                             random_point()};
      auto srs = client.QueryBatch(qs);
      ASSERT_TRUE(srs.ok()) << srs.status().ToString();
      ASSERT_EQ(srs->size(), qs.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        auto orr = oracle.Query(qs[i].data());
        ASSERT_TRUE(orr.ok());
        ASSERT_EQ((*srs)[i].id, orr->id) << "op " << op << " q " << i;
        ASSERT_EQ((*srs)[i].dist, orr->dist) << "op " << op << " q " << i;
      }
    } else if (pick == 8) {
      // insert
      auto p = random_point();
      auto sid = client.Insert(p);
      ASSERT_TRUE(sid.ok());
      auto oid = oracle.Insert(p);
      ASSERT_TRUE(oid.ok());
      ASSERT_EQ(*sid, *oid) << "op " << op;
      live.push_back(*sid);
    } else if (!live.empty()) {
      // delete
      const size_t victim = rng.NextIndex(live.size());
      const uint64_t id = live[victim];
      live.erase(live.begin() + victim);
      ASSERT_TRUE(client.Delete(id).ok()) << "op " << op;
      ASSERT_TRUE(oracle.Delete(id).ok());
      ASSERT_FALSE(oracle.IsAlive(id));
    }
  }
}

class ServerDifferentialTest
    : public ::testing::TestWithParam<std::tuple<ApproxAlgorithm, size_t>> {};

TEST_P(ServerDifferentialTest, ServerMatchesDirectIndex) {
  const auto [alg, dim] = GetParam();
  const std::string socket_path =
      ::testing::TempDir() + "server_diff_" + std::to_string(static_cast<int>(alg)) +
      "_" + std::to_string(dim) + ".sock";
  std::filesystem::remove(socket_path);

  Oracle served(dim, alg);
  Oracle oracle(dim, alg);
  ServerOptions sopt;
  sopt.socket_path = socket_path;
  NNCellServer server(served.index.get(), sopt);
  ASSERT_TRUE(server.Start().ok());

  {
    auto client = Client::ConnectUnix(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    RunDifferentialWorkload(*client, *oracle.index, dim,
                            0xd1ff + dim * 131 + static_cast<int>(alg));
  }
  ASSERT_TRUE(server.Stop().ok());
  EXPECT_EQ(server.accepted(), server.completed() + server.rejected());
  std::filesystem::remove(socket_path);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndDims, ServerDifferentialTest,
    ::testing::Combine(::testing::Values(ApproxAlgorithm::kCorrect,
                                         ApproxAlgorithm::kPoint,
                                         ApproxAlgorithm::kSphere,
                                         ApproxAlgorithm::kNNDirection),
                       ::testing::Values(size_t{2}, size_t{8}, size_t{16})),
    [](const auto& info) {
      std::string name = ApproxAlgorithmName(std::get<0>(info.param));
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name + "_d" + std::to_string(std::get<1>(info.param));
    });

// --- SIGTERM-checkpoint-restart mid-workload ------------------------------

// Child body: serve the durable index at `dir` until SIGTERM, then drain
// (which checkpoints) and exit 0. Exit codes 3..5 mark setup failures.
[[noreturn]] void RunServerChild(const std::string& dir,
                                 const std::string& socket_path) {
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) ::_exit(3);
  NNCellIndex::DurableOptions dur;
  dur.page_size = 1024;
  dur.pool_pages = 512;
  auto idx = NNCellIndex::Open(dir, 2, Options(ApproxAlgorithm::kSphere), dur,
                               nullptr);
  if (!idx.ok()) ::_exit(4);
  ServerOptions sopt;
  sopt.socket_path = socket_path;
  NNCellServer server((*idx).get(), sopt);
  if (!server.Start().ok()) ::_exit(5);
  int sig = 0;
  (void)sigwait(&sigs, &sig);
  Status st = server.Stop();
  ::_exit(st.ok() ? 0 : 6);
}

pid_t ForkServer(const std::string& dir, const std::string& socket_path) {
  pid_t pid = ::fork();
  if (pid == 0) RunServerChild(dir, socket_path);
  return pid;
}

StatusOr<Client> ConnectWithRetry(const std::string& socket_path) {
  for (int i = 0; i < 200; ++i) {
    auto client = Client::ConnectUnix(socket_path);
    if (client.ok() && client->Ping().ok()) return client;
    ::usleep(20 * 1000);
  }
  return Status::Internal("server never became reachable at " + socket_path);
}

TEST(ServerRestartTest, SigtermCheckpointRestartKeepsAnswersIdentical) {
  const std::string base = ::testing::TempDir() + "server_restart_test";
  const std::string dir = base + "/index";
  const std::string socket_path = base + "/serve.sock";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  Oracle oracle(2, ApproxAlgorithm::kSphere);
  Rng rng(0x7e57);
  auto random_point = [&] {
    return std::vector<double>{rng.NextDouble(), rng.NextDouble()};
  };
  auto expect_query_match = [&](Client& client, int tag) {
    auto q = random_point();
    auto sr = client.Query(q);
    ASSERT_TRUE(sr.ok()) << "tag " << tag << ": " << sr.status().ToString();
    auto orr = oracle.index->Query(q.data());
    ASSERT_TRUE(orr.ok());
    ASSERT_EQ(sr->id, orr->id) << "tag " << tag;
    ASSERT_EQ(sr->dist, orr->dist) << "tag " << tag;
  };

  // Phase 1: fresh server, build up state over the wire.
  pid_t pid = ForkServer(dir, socket_path);
  ASSERT_GT(pid, 0);
  {
    auto client = ConnectWithRetry(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (int i = 0; i < 25; ++i) {
      auto p = random_point();
      auto sid = client->Insert(p);
      ASSERT_TRUE(sid.ok()) << sid.status().ToString();
      auto oid = oracle.index->Insert(p);
      ASSERT_TRUE(oid.ok());
      ASSERT_EQ(*sid, *oid);
    }
    ASSERT_TRUE(client->Delete(3).ok());
    ASSERT_TRUE(oracle.index->Delete(3).ok());
    ASSERT_TRUE(client->Delete(11).ok());
    ASSERT_TRUE(oracle.index->Delete(11).ok());
    for (int i = 0; i < 10; ++i) expect_query_match(*client, 100 + i);
  }

  // Mid-workload SIGTERM: graceful drain + checkpoint, clean exit.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  // Phase 2: restart on the same directory; recovery must reproduce the
  // exact pre-restart state (the oracle never restarted).
  pid = ForkServer(dir, socket_path);
  ASSERT_GT(pid, 0);
  {
    auto client = ConnectWithRetry(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (int i = 0; i < 10; ++i) expect_query_match(*client, 200 + i);
    // The id sequence also survived the restart.
    for (int i = 0; i < 8; ++i) {
      auto p = random_point();
      auto sid = client->Insert(p);
      ASSERT_TRUE(sid.ok()) << sid.status().ToString();
      auto oid = oracle.index->Insert(p);
      ASSERT_TRUE(oid.ok());
      ASSERT_EQ(*sid, *oid) << "post-restart insert " << i;
    }
    ASSERT_TRUE(client->Delete(20).ok());
    ASSERT_TRUE(oracle.index->Delete(20).ok());
    for (int i = 0; i < 15; ++i) expect_query_match(*client, 300 + i);
  }
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace server
}  // namespace nncell
