#include <vector>

#include <gtest/gtest.h>

#include "common/point_set.h"
#include "common/rng.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "geom/decomposition.h"

namespace nncell {
namespace {

std::vector<const double*> AllOthers(const PointSet& pts, size_t owner) {
  std::vector<const double*> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i != owner) out.push_back(pts[i]);
  }
  return out;
}

TEST(PlanSliceCountsTest, BudgetOneDisables) {
  auto c = PlanSliceCounts(3, 1);
  EXPECT_EQ(c, (std::vector<size_t>{1, 1, 1}));
}

TEST(PlanSliceCountsTest, MatchesPaperTable) {
  // Paper (Section 3): for budget ~10, d'=2 -> up to 10 total, equal n_i
  // decreasing with obliqueness; d'=3 -> n_i <= 4 ... we check the product
  // constraint and monotonicity.
  for (size_t dims = 1; dims <= 7; ++dims) {
    for (size_t budget : {2u, 4u, 8u, 10u, 16u}) {
      auto c = PlanSliceCounts(dims, budget);
      ASSERT_EQ(c.size(), dims);
      size_t product = 1;
      for (size_t i = 0; i < dims; ++i) {
        product *= c[i];
        if (i > 0) {
          EXPECT_LE(c[i], c[i - 1]);  // non-increasing
        }
        EXPECT_GE(c[i], 1u);
      }
      EXPECT_LE(product, budget);
      EXPECT_GE(product, 1u);
    }
  }
}

TEST(PlanSliceCountsTest, SingleDimUsesFullBudget) {
  auto c = PlanSliceCounts(1, 10);
  EXPECT_EQ(c, (std::vector<size_t>{10}));
}

TEST(PlanSliceCountsTest, TwoDimsBudgetTen) {
  auto c = PlanSliceCounts(2, 10);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_LE(c[0] * c[1], 10u);
  EXPECT_GE(c[0] * c[1], 8u);  // uses most of the budget
}

class DecompositionPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

// Core correctness: the union of decomposition piece-MBRs covers every
// sampled point of the cell (no false dismissals, Lemma 2 step 3), and the
// summed volume never exceeds the single MBR's volume (the decomposition
// never gets worse).
TEST_P(DecompositionPropertyTest, CoversCellAndReducesVolume) {
  const size_t d = std::get<0>(GetParam());
  const size_t budget = std::get<1>(GetParam());
  Rng rng(1000 + d * 10 + budget);
  PointSet pts(d);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  DecompositionOptions opts;
  opts.max_partitions = budget;
  opts.max_split_dims = 3;

  for (size_t owner = 0; owner < 4; ++owner) {
    auto others = AllOthers(pts, owner);
    HyperRect full = approx.ApproximateMbr(pts[owner], others);
    std::vector<HyperRect> pieces =
        DecomposeCell(approx, pts[owner], others, full, opts);
    ASSERT_FALSE(pieces.empty());
    EXPECT_LE(pieces.size(), budget);

    double piece_volume = 0.0;
    for (const HyperRect& piece : pieces) {
      piece_volume += piece.Volume();
      // Pieces stay within the full MBR.
      for (size_t k = 0; k < d; ++k) {
        EXPECT_GE(piece.lo(k), full.lo(k) - 1e-6);
        EXPECT_LE(piece.hi(k), full.hi(k) + 1e-6);
      }
    }
    EXPECT_LE(piece_volume, full.Volume() + 1e-9);

    // Coverage: sampled in-cell points must lie in some piece.
    for (int s = 0; s < 400; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      if (!IsInCell(x.data(), pts[owner], others, d)) continue;
      bool covered = false;
      for (const HyperRect& piece : pieces) {
        // Tolerance: pieces are closed boxes computed to LP accuracy.
        bool in = true;
        for (size_t k = 0; k < d && in; ++k) {
          in = x[k] >= piece.lo(k) - 1e-6 && x[k] <= piece.hi(k) + 1e-6;
        }
        covered |= in;
      }
      EXPECT_TRUE(covered) << "cell sample not covered, owner " << owner;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6),
                       ::testing::Values(2, 4, 8, 10)));

TEST(DecompositionTest, BudgetOneReturnsFullMbr) {
  const size_t d = 3;
  Rng rng(77);
  PointSet pts(d);
  for (int i = 0; i < 10; ++i) {
    pts.Add({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  auto others = AllOthers(pts, 0);
  HyperRect full = approx.ApproximateMbr(pts[0], others);
  DecompositionOptions opts;
  opts.max_partitions = 1;
  auto pieces = DecomposeCell(approx, pts[0], others, full, opts);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], full);
}

TEST(DecompositionTest, ObliqueCellBenefits) {
  // A cell bounded by a diagonal bisector (Fig. 6): decomposition along the
  // oblique dimension must reduce the summed volume clearly.
  const size_t d = 2;
  PointSet pts(d);
  pts.Add({0.3, 0.3});
  pts.Add({0.7, 0.7});  // diagonal neighbor -> oblique boundary
  CellApproximator approx(d, HyperRect::UnitCube(d));
  auto others = AllOthers(pts, 0);
  HyperRect full = approx.ApproximateMbr(pts[0], others);
  DecompositionOptions opts;
  opts.max_partitions = 4;
  opts.max_split_dims = 1;
  auto pieces = DecomposeCell(approx, pts[0], others, full, opts);
  ASSERT_GT(pieces.size(), 1u);
  double vol = 0.0;
  for (const auto& piece : pieces) vol += piece.Volume();
  EXPECT_LT(vol, 0.85 * full.Volume());
}

TEST(DecompositionTest, ExtentMeasureAlsoCovers) {
  const size_t d = 4;
  Rng rng(31337);
  PointSet pts(d);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  auto others = AllOthers(pts, 0);
  HyperRect full = approx.ApproximateMbr(pts[0], others);
  DecompositionOptions opts;
  opts.max_partitions = 6;
  opts.measure = ObliquenessMeasure::kExtent;
  auto pieces = DecomposeCell(approx, pts[0], others, full, opts);
  ASSERT_FALSE(pieces.empty());
  for (int s = 0; s < 300; ++s) {
    std::vector<double> x(d);
    for (auto& v : x) v = rng.NextDouble();
    if (!IsInCell(x.data(), pts[0], others, d)) continue;
    bool covered = false;
    for (const HyperRect& piece : pieces) {
      bool in = true;
      for (size_t k = 0; k < d && in; ++k) {
        in = x[k] >= piece.lo(k) - 1e-6 && x[k] <= piece.hi(k) + 1e-6;
      }
      covered |= in;
    }
    EXPECT_TRUE(covered);
  }
}

TEST(DecompositionTest, GridCellsDoNotDecomposeWastefully) {
  // Grid cells are already boxes; decomposition must not increase volume.
  const size_t d = 2;
  PointSet pts(d);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) pts.Add({(i + 0.5) / 3, (j + 0.5) / 3});
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  auto others = AllOthers(pts, 4);  // center point
  HyperRect full = approx.ApproximateMbr(pts[4], others);
  DecompositionOptions opts;
  opts.max_partitions = 4;
  auto pieces = DecomposeCell(approx, pts[4], others, full, opts);
  double vol = 0.0;
  for (const auto& piece : pieces) vol += piece.Volume();
  EXPECT_NEAR(vol, full.Volume(), 1e-7);
}

}  // namespace
}  // namespace nncell
