#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "scan/sequential_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

TEST(SequentialScanTest, SinglePoint) {
  PageFile file(512);
  BufferPool pool(&file, 8);
  SequentialScan scan(&pool, 3);
  std::vector<double> p = {0.1, 0.2, 0.3};
  scan.Insert(p.data(), 7);
  double q[3] = {0.0, 0.0, 0.0};
  auto r = scan.NearestNeighbor(q);
  EXPECT_EQ(r.id, 7u);
  EXPECT_NEAR(r.dist, L2Dist(p.data(), q, 3), 1e-12);
  EXPECT_EQ(r.point, p);
}

TEST(SequentialScanTest, NnMatchesBruteForceAcrossPages) {
  Rng rng(1);
  PageFile file(512);  // small pages force multiple data pages
  BufferPool pool(&file, 64);
  SequentialScan scan(&pool, 4);
  PointSet pts(4);
  for (size_t i = 0; i < 500; ++i) {
    std::vector<double> p(4);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
    scan.Insert(p.data(), i);
  }
  EXPECT_GT(scan.num_pages(), 10u);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.NextDouble();
    auto r = scan.NearestNeighbor(q.data());
    double best = 10.0;
    uint64_t best_id = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      double d = L2Dist(pts[i], q.data(), 4);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    EXPECT_EQ(r.id, best_id);
    EXPECT_NEAR(r.dist, best, 1e-12);
  }
}

TEST(SequentialScanTest, KnnSortedAndCorrect) {
  Rng rng(2);
  PageFile file(512);
  BufferPool pool(&file, 64);
  SequentialScan scan(&pool, 2);
  PointSet pts(2);
  for (size_t i = 0; i < 200; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
    pts.Add(p);
    scan.Insert(p.data(), i);
  }
  std::vector<double> q = {0.5, 0.5};
  auto knn = scan.KnnQuery(q.data(), 10);
  ASSERT_EQ(knn.size(), 10u);
  std::vector<double> dists;
  for (size_t i = 0; i < pts.size(); ++i) {
    dists.push_back(L2Dist(pts[i], q.data(), 2));
  }
  std::sort(dists.begin(), dists.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(knn[i].dist, dists[i], 1e-12);
}

TEST(SequentialScanTest, KLargerThanN) {
  PageFile file(512);
  BufferPool pool(&file, 8);
  SequentialScan scan(&pool, 2);
  double p[2] = {0.5, 0.5};
  scan.Insert(p, 1);
  scan.Insert(p, 2);
  double q[2] = {0.0, 0.0};
  auto knn = scan.KnnQuery(q, 10);
  EXPECT_EQ(knn.size(), 2u);
}

TEST(SequentialScanTest, ScanReadsEveryPage) {
  Rng rng(3);
  PageFile file(512);
  BufferPool pool(&file, 4);  // tiny cache: all pages come from disk
  SequentialScan scan(&pool, 8);
  for (size_t i = 0; i < 300; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.NextDouble();
    scan.Insert(p.data(), i);
  }
  pool.DropCache();
  pool.ResetStats();
  std::vector<double> q(8, 0.5);
  scan.NearestNeighbor(q.data());
  EXPECT_EQ(pool.stats().physical_reads, scan.num_pages());
}

}  // namespace
}  // namespace nncell
