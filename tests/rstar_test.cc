#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "rstar/node.h"
#include "rstar/rstar_tree.h"
#include "rstar/split.h"
#include "rstar/validate.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

HyperRect PointRect(const std::vector<double>& p) {
  return HyperRect::FromPoint(p);
}

struct TreeFixture {
  explicit TreeFixture(size_t dim, size_t aux = 0, size_t page_size = 1024,
                       size_t pool_pages = 256)
      : file(page_size), pool(&file, pool_pages) {
    TreeOptions opts;
    opts.dim = dim;
    opts.aux_per_entry = aux;
    tree = std::make_unique<RStarTree>(&pool, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<RStarTree> tree;
};

TEST(NodeStoreTest, CapacityArithmetic) {
  PageFile file(1024);
  BufferPool pool(&file, 8);
  NodeStore store(&pool, 4, 4);
  // Leaf entry: 8*8 rect + 8 id + 4*8 aux = 104 bytes; (1024-8)/104 = 9.
  EXPECT_EQ(store.LeafEntryBytes(), 104u);
  EXPECT_EQ(store.Capacity(true, 1), 9u);
  // Internal entry: 64 + 8 = 72; (1024-8)/72 = 14.
  EXPECT_EQ(store.InternalEntryBytes(), 72u);
  EXPECT_EQ(store.Capacity(false, 1), 14u);
  EXPECT_GT(store.Capacity(true, 2), 2 * store.Capacity(true, 1) - 2);
  EXPECT_EQ(store.PagesNeeded(true, 9), 1u);
  EXPECT_EQ(store.PagesNeeded(true, 10), 2u);
}

TEST(NodeStoreTest, RoundTripLeaf) {
  PageFile file(1024);
  BufferPool pool(&file, 8);
  NodeStore store(&pool, 3, 3);
  Node node;
  node.is_leaf = true;
  for (int i = 0; i < 5; ++i) {
    Entry e;
    double v = i * 0.1;
    e.rect = HyperRect({v, v, v}, {v + 0.05, v + 0.05, v + 0.05});
    e.id = 100 + i;
    e.aux = {v, v + 1, v + 2};
    node.entries.push_back(e);
  }
  PageId pid = store.AllocateNode();
  store.Write(pid, &node);
  Node back = store.Read(pid);
  ASSERT_EQ(back.entries.size(), 5u);
  EXPECT_TRUE(back.is_leaf);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back.entries[i].id, node.entries[i].id);
    EXPECT_EQ(back.entries[i].rect, node.entries[i].rect);
    EXPECT_EQ(back.entries[i].aux, node.entries[i].aux);
  }
}

TEST(NodeStoreTest, RoundTripInternal) {
  PageFile file(512);
  BufferPool pool(&file, 8);
  NodeStore store(&pool, 2, 0);
  Node node;
  node.is_leaf = false;
  for (int i = 0; i < 4; ++i) {
    Entry e;
    e.rect = HyperRect({0.0, 0.0}, {1.0 + i, 1.0});
    e.id = 7 + i;  // child page ids
    node.entries.push_back(e);
  }
  PageId pid = store.AllocateNode();
  store.Write(pid, &node);
  Node back = store.Read(pid);
  EXPECT_FALSE(back.is_leaf);
  ASSERT_EQ(back.entries.size(), 4u);
  EXPECT_EQ(back.entries[3].id, 10u);
  EXPECT_TRUE(back.entries[3].aux.empty());
}

TEST(NodeStoreTest, SupernodeGrowAndShrink) {
  PageFile file(512);
  BufferPool pool(&file, 16);
  NodeStore store(&pool, 2, 0);
  size_t single = store.Capacity(true, 1);
  Node node;
  node.is_leaf = true;
  for (size_t i = 0; i < single * 3; ++i) {
    Entry e;
    e.rect = HyperRect({0.0, 0.0}, {1.0, 1.0});
    e.id = i;
    node.entries.push_back(e);
  }
  PageId pid = store.AllocateNode();
  store.Write(pid, &node);
  EXPECT_GE(node.page_span(), 3u);
  Node back = store.Read(pid);
  EXPECT_EQ(back.entries.size(), single * 3);
  EXPECT_EQ(back.page_span(), node.page_span());
  // Shrink back to one page.
  back.entries.resize(2);
  store.Write(pid, &back);
  EXPECT_EQ(back.page_span(), 1u);
  Node small = store.Read(pid);
  EXPECT_EQ(small.entries.size(), 2u);
}

TEST(NodeStoreTest, VisitNodeMatchesRead) {
  PageFile file(1024);
  BufferPool pool(&file, 16);
  NodeStore store(&pool, 3, 2);
  Node node;
  node.is_leaf = true;
  Rng rng(44);
  for (int i = 0; i < 7; ++i) {
    Entry e;
    std::vector<double> lo = {rng.NextDouble(), rng.NextDouble(),
                              rng.NextDouble()};
    std::vector<double> hi = lo;
    for (auto& v : hi) v += 0.05;
    e.rect = HyperRect(lo, hi);
    e.id = 1000 + i;
    e.aux = {rng.NextDouble(), rng.NextDouble()};
    node.entries.push_back(e);
  }
  PageId pid = store.AllocateNode();
  store.Write(pid, &node);

  size_t seen = 0;
  bool is_leaf = store.VisitNode(pid, [&](const EntryView& v, bool leaf) {
    EXPECT_TRUE(leaf);
    const Entry& e = node.entries[seen];
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(v.lo[k], e.rect.lo(k));
      EXPECT_DOUBLE_EQ(v.hi[k], e.rect.hi(k));
    }
    EXPECT_EQ(v.id, e.id);
    ASSERT_NE(v.aux, nullptr);
    EXPECT_DOUBLE_EQ(v.aux[0], e.aux[0]);
    EXPECT_DOUBLE_EQ(v.aux[1], e.aux[1]);
    ++seen;
  });
  EXPECT_TRUE(is_leaf);
  EXPECT_EQ(seen, node.entries.size());
}

TEST(NodeStoreTest, VisitNodeSupernode) {
  // A node spanning 3+ pages: the scan must stitch the pages together.
  PageFile file(512);
  BufferPool pool(&file, 32);
  NodeStore store(&pool, 2, 0);
  size_t n = store.Capacity(true, 1) * 3;
  Node node;
  node.is_leaf = true;
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    double v = static_cast<double>(i) / static_cast<double>(n);
    e.rect = HyperRect({v, v}, {v, v});
    e.id = i;
    node.entries.push_back(e);
  }
  PageId pid = store.AllocateNode();
  store.Write(pid, &node);
  ASSERT_GE(node.page_span(), 3u);

  size_t seen = 0;
  store.VisitNode(pid, [&](const EntryView& v, bool) {
    EXPECT_EQ(v.id, seen);
    double expect = static_cast<double>(seen) / static_cast<double>(n);
    EXPECT_DOUBLE_EQ(v.lo[0], expect);
    ++seen;
  });
  EXPECT_EQ(seen, n);
}

TEST(RStarSplitTest, RespectsMinFill) {
  Rng rng(1);
  std::vector<Entry> entries;
  for (int i = 0; i < 20; ++i) {
    Entry e;
    double x = rng.NextDouble(), y = rng.NextDouble();
    e.rect = HyperRect({x, y}, {x + 0.01, y + 0.01});
    e.id = i;
    entries.push_back(e);
  }
  auto [left, right] = RStarSplit(entries, 2, 8);
  EXPECT_EQ(left.size() + right.size(), 20u);
  EXPECT_GE(left.size(), 8u);
  EXPECT_GE(right.size(), 8u);
}

TEST(RStarSplitTest, SeparatesTwoClusters) {
  std::vector<Entry> entries;
  for (int i = 0; i < 10; ++i) {
    Entry e;
    double x = (i < 5) ? 0.1 + i * 0.01 : 0.9 + (i - 5) * 0.01;
    e.rect = HyperRect({x, 0.5}, {x + 0.005, 0.51});
    e.id = i;
    entries.push_back(e);
  }
  auto [left, right] = RStarSplit(entries, 2, 2);
  // The two spatial clusters must not be mixed.
  std::set<uint64_t> left_ids;
  for (const auto& e : left) left_ids.insert(e.id);
  bool left_is_low = left_ids.count(0) > 0;
  for (const auto& e : left) {
    EXPECT_EQ(e.id < 5, left_is_low);
  }
}

TEST(RStarTreeTest, EmptyTreeQueries) {
  TreeFixture fx(2);
  double q[2] = {0.5, 0.5};
  EXPECT_TRUE(fx.tree->PointQuery(q).empty());
  EXPECT_TRUE(fx.tree->KnnQuery(q, 3).empty());
  EXPECT_TRUE(fx.tree->RangeQuery(HyperRect::UnitCube(2)).empty());
  EXPECT_EQ(fx.tree->Validate(), "");
}

TEST(RStarTreeTest, SingleInsertAndQueries) {
  TreeFixture fx(2);
  fx.tree->Insert(PointRect({0.5, 0.5}), 1);
  double q[2] = {0.5, 0.5};
  auto hits = fx.tree->PointQuery(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
  auto knn = fx.tree->KnnQuery(q, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 1u);
  EXPECT_DOUBLE_EQ(knn[0].dist, 0.0);
}

class RStarTreeParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RStarTreeParamTest, RangeQueryMatchesBruteForce) {
  const size_t dim = std::get<0>(GetParam());
  const size_t n = std::get<1>(GetParam());
  Rng rng(dim * 1000 + n);
  TreeFixture fx(dim);
  PointSet pts(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
    fx.tree->Insert(PointRect(p), i);
  }
  ASSERT_EQ(fx.tree->Validate(), "");
  ASSERT_TRUE(rstar::ValidateTree(*fx.tree).ok());
  ASSERT_TRUE(fx.pool.AuditPins().ok());
  EXPECT_EQ(fx.tree->size(), n);

  for (int trial = 0; trial < 20; ++trial) {
    HyperRect range = HyperRect::Empty(dim);
    for (size_t k = 0; k < dim; ++k) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      range.lo(k) = std::min(a, b);
      range.hi(k) = std::max(a, b);
    }
    auto hits = fx.tree->RangeQuery(range);
    std::set<uint64_t> got;
    for (const auto& h : hits) got.insert(h.id);
    std::set<uint64_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (range.ContainsPoint(pts[i])) expected.insert(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RStarTreeParamTest, KnnMatchesBruteForce) {
  const size_t dim = std::get<0>(GetParam());
  const size_t n = std::get<1>(GetParam());
  Rng rng(dim * 77 + n);
  TreeFixture fx(dim);
  PointSet pts(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
    fx.tree->Insert(PointRect(p), i);
  }
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    size_t k = 1 + rng.NextIndex(10);
    auto knn = fx.tree->KnnQuery(q.data(), k);
    ASSERT_EQ(knn.size(), std::min(k, n));
    // Brute force distances.
    std::vector<double> dists;
    for (size_t i = 0; i < n; ++i) dists.push_back(L2Dist(pts[i], q.data(), dim));
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_NEAR(knn[i].dist, dists[i], 1e-12) << "k-th " << i;
    }
    // Ascending order.
    for (size_t i = 1; i < knn.size(); ++i) {
      EXPECT_LE(knn[i - 1].dist, knn[i].dist);
    }
  }
}

TEST_P(RStarTreeParamTest, BranchAndBoundAgreesWithBestFirst) {
  const size_t dim = std::get<0>(GetParam());
  const size_t n = std::get<1>(GetParam());
  Rng rng(dim * 13 + n);
  TreeFixture fx(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    fx.tree->Insert(PointRect(p), i);
  }
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    auto bb = fx.tree->NnBranchAndBound(q.data());
    ASSERT_TRUE(bb.has_value());
    auto bf = fx.tree->KnnQuery(q.data(), 1);
    ASSERT_EQ(bf.size(), 1u);
    // Both are exact: identical distances (ids may differ on ties).
    EXPECT_NEAR(bb->dist, bf[0].dist, 1e-12);
  }
}

TEST(RStarTreeTest, BranchAndBoundEmptyTree) {
  TreeFixture fx(3);
  double q[3] = {0.5, 0.5, 0.5};
  EXPECT_FALSE(fx.tree->NnBranchAndBound(q).has_value());
}

TEST(RStarTreeTest, BranchAndBoundUsesMorePagesThanBestFirst) {
  // [HS 95] best-first is page-optimal; [RKV 95] DFS generally reads at
  // least as many pages (this gap is part of what the paper measures).
  Rng rng(23);
  PageFile file(1024);
  BufferPool pool(&file, 8192);
  TreeOptions opts;
  opts.dim = 8;
  RStarTree tree(&pool, opts);
  for (size_t i = 0; i < 2000; ++i) {
    std::vector<double> p(8);
    for (auto& v : p) v = rng.NextDouble();
    tree.Insert(PointRect(p), i);
  }
  uint64_t bb_pages = 0, bf_pages = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<double> q(8);
    for (auto& v : q) v = rng.NextDouble();
    pool.DropCache();
    pool.ResetStats();
    tree.NnBranchAndBound(q.data());
    bb_pages += pool.stats().physical_reads;
    pool.DropCache();
    pool.ResetStats();
    tree.KnnQuery(q.data(), 1);
    bf_pages += pool.stats().physical_reads;
  }
  EXPECT_GE(bb_pages, bf_pages);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RStarTreeParamTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(64, 500, 2000)));

TEST(RStarTreeTest, PointQueryOnRectangles) {
  // Overlapping rectangles: the point query must return all containers.
  TreeFixture fx(2);
  fx.tree->Insert(HyperRect({0.0, 0.0}, {0.6, 0.6}), 1);
  fx.tree->Insert(HyperRect({0.4, 0.4}, {1.0, 1.0}), 2);
  fx.tree->Insert(HyperRect({0.45, 0.45}, {0.55, 0.55}), 3);
  fx.tree->Insert(HyperRect({0.8, 0.8}, {0.9, 0.9}), 4);
  double q[2] = {0.5, 0.5};
  auto hits = fx.tree->PointQuery(q);
  std::set<uint64_t> ids;
  for (const auto& h : hits) ids.insert(h.id);
  EXPECT_EQ(ids, (std::set<uint64_t>{1, 2, 3}));
}

TEST(RStarTreeTest, AuxPayloadRoundTrip) {
  TreeFixture fx(3, /*aux=*/3);
  std::vector<double> p = {0.1, 0.2, 0.3};
  std::vector<double> aux = {9.0, 8.0, 7.0};
  fx.tree->Insert(PointRect(p), 42, aux.data());
  auto hits = fx.tree->PointQuery(p.data());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].aux, aux);
  auto knn = fx.tree->KnnQuery(p.data(), 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].aux, aux);
}

TEST(RStarTreeTest, DeleteAndValidate) {
  Rng rng(5);
  TreeFixture fx(2);
  PointSet pts(2);
  const size_t n = 400;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
    pts.Add(p);
    fx.tree->Insert(PointRect(p), i);
  }
  // Delete half.
  for (size_t i = 0; i < n; i += 2) {
    EXPECT_TRUE(fx.tree->Delete(PointRect(pts.Get(i)), i)) << i;
  }
  EXPECT_EQ(fx.tree->size(), n / 2);
  ASSERT_EQ(fx.tree->Validate(), "");
  // The deep validator (MBR containment, page accounting, pin audit) must
  // agree with the string-based check.
  ASSERT_TRUE(rstar::ValidateTree(*fx.tree).ok());
  ASSERT_TRUE(fx.pool.AuditPins().ok());
  // Deleted points are gone; survivors remain.
  for (size_t i = 0; i < n; ++i) {
    auto hits = fx.tree->PointQuery(pts[i]);
    bool found = false;
    for (const auto& h : hits) found |= (h.id == i);
    EXPECT_EQ(found, i % 2 == 1) << i;
  }
  // Double-delete fails.
  EXPECT_FALSE(fx.tree->Delete(PointRect(pts.Get(0)), 0));
}

TEST(RStarTreeTest, DeleteEverything) {
  Rng rng(6);
  TreeFixture fx(3);
  std::vector<std::vector<double>> pts;
  for (size_t i = 0; i < 300; ++i) {
    pts.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    fx.tree->Insert(PointRect(pts.back()), i);
  }
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(fx.tree->Delete(PointRect(pts[i]), i)) << i;
  }
  EXPECT_EQ(fx.tree->size(), 0u);
  EXPECT_EQ(fx.tree->height(), 1u);
  double q[3] = {0.5, 0.5, 0.5};
  EXPECT_TRUE(fx.tree->KnnQuery(q, 5).empty());
}

TEST(RStarTreeTest, DuplicatePointsAllFound) {
  TreeFixture fx(2);
  std::vector<double> p = {0.3, 0.7};
  for (uint64_t i = 0; i < 50; ++i) fx.tree->Insert(PointRect(p), i);
  auto hits = fx.tree->PointQuery(p.data());
  EXPECT_EQ(hits.size(), 50u);
  ASSERT_EQ(fx.tree->Validate(), "");
}

TEST(RStarTreeTest, InfoCountsNodes) {
  Rng rng(8);
  TreeFixture fx(2);
  for (size_t i = 0; i < 500; ++i) {
    fx.tree->Insert(PointRect({rng.NextDouble(), rng.NextDouble()}), i);
  }
  auto info = fx.tree->Info();
  EXPECT_EQ(info.size, 500u);
  EXPECT_GT(info.height, 1u);
  EXPECT_GT(info.num_leaves, 1u);
  EXPECT_EQ(info.num_supernodes, 0u);  // R* never creates supernodes
  EXPECT_EQ(info.total_pages, info.num_nodes);
}

TEST(RStarTreeTest, ReinsertDisabledStillCorrect) {
  Rng rng(9);
  PageFile file(1024);
  BufferPool pool(&file, 128);
  TreeOptions opts;
  opts.dim = 2;
  opts.enable_reinsert = false;
  RStarTree tree(&pool, opts);
  PointSet pts(2);
  for (size_t i = 0; i < 600; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
    pts.Add(p);
    tree.Insert(PointRect(p), i);
  }
  ASSERT_EQ(tree.Validate(), "");
  std::vector<double> q = {0.5, 0.5};
  auto knn = tree.KnnQuery(q.data(), 5);
  ASSERT_EQ(knn.size(), 5u);
  double best = 2.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    best = std::min(best, L2Dist(pts[i], q.data(), 2));
  }
  EXPECT_NEAR(knn[0].dist, best, 1e-12);
}

TEST(RStarTreeTest, PageAccessesGrowWithTreeNotLinearly) {
  // The whole point of an index: a point query touches O(height) pages on
  // well-separated point data, far fewer than the number of leaves.
  Rng rng(10);
  PageFile file(1024);
  BufferPool pool(&file, 4096);
  TreeOptions opts;
  opts.dim = 2;
  RStarTree tree(&pool, opts);
  for (size_t i = 0; i < 5000; ++i) {
    tree.Insert(PointRect({rng.NextDouble(), rng.NextDouble()}), i);
  }
  pool.DropCache();
  pool.ResetStats();
  double q[2] = {0.5, 0.5};
  auto hits = tree.KnnQuery(q, 1);
  ASSERT_EQ(hits.size(), 1u);
  uint64_t query_reads = pool.stats().physical_reads;
  auto info = tree.Info();
  EXPECT_LT(query_reads, info.num_nodes / 4)
      << "kNN should not scan the whole tree";
}

}  // namespace
}  // namespace nncell
