// Similarity range queries on the NN-cell index: exact point-in-ball
// retrieval via the cell approximations.

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct Fixture {
  Fixture(size_t dim, NNCellOptions opts = NNCellOptions())
      : file(2048), pool(&file, 16384) {
    index = std::make_unique<NNCellIndex>(&pool, dim, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<NNCellIndex> index;
};

class RangeSearchTest : public ::testing::TestWithParam<double> {};

TEST_P(RangeSearchTest, MatchesBruteForce) {
  const double radius = GetParam();
  const size_t dim = 4;
  Fixture fx(dim);
  PointSet pts = GenerateUniform(250, dim, 17);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  Rng rng(18);
  for (int t = 0; t < 40; ++t) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    auto r = fx.index->RangeSearch(q, radius);
    ASSERT_TRUE(r.ok());
    std::set<uint64_t> got;
    for (const auto& hit : *r) {
      got.insert(hit.id);
      EXPECT_LE(hit.dist, radius + 1e-12);
    }
    std::set<uint64_t> expected;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (L2Dist(pts[i], q.data(), dim) <= radius) expected.insert(i);
    }
    EXPECT_EQ(got, expected) << "radius " << radius << " query " << t;
    // Ascending order.
    for (size_t i = 1; i < r->size(); ++i) {
      EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RangeSearchTest,
                         ::testing::Values(0.05, 0.15, 0.3, 0.6, 1.5));

TEST(RangeSearchTest, ZeroRadiusFindsExactMatchesOnly) {
  Fixture fx(2);
  PointSet pts = GenerateUniform(50, 2, 19);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  auto on_point = fx.index->RangeSearch(pts.Get(13), 0.0);
  ASSERT_TRUE(on_point.ok());
  ASSERT_EQ(on_point->size(), 1u);
  EXPECT_EQ((*on_point)[0].id, 13u);
  auto off_point = fx.index->RangeSearch({0.123456789, 0.987654321}, 0.0);
  ASSERT_TRUE(off_point.ok());
  EXPECT_TRUE(off_point->empty());
}

TEST(RangeSearchTest, NegativeRadiusRejected) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(10, 2, 20)).ok());
  auto r = fx.index->RangeSearch({0.5, 0.5}, -0.1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RangeSearchTest, HugeRadiusReturnsEverything) {
  Fixture fx(3);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(60, 3, 21)).ok());
  auto r = fx.index->RangeSearch({0.5, 0.5, 0.5}, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 60u);
}

TEST(RangeSearchTest, RespectsDeletions) {
  Fixture fx(2);
  PointSet pts = GenerateUniform(40, 2, 22);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  ASSERT_TRUE(fx.index->Delete(7).ok());
  auto r = fx.index->RangeSearch(pts.Get(7), 0.5);
  ASSERT_TRUE(r.ok());
  for (const auto& hit : *r) EXPECT_NE(hit.id, 7u);
}

TEST(RangeSearchTest, WeightedMetricRange) {
  NNCellOptions opts;
  opts.weights = {9.0, 1.0};
  Fixture fx(2, opts);
  PointSet pts(2);
  pts.Add({0.5, 0.5});
  pts.Add({0.6, 0.5});  // d_W = 3 * 0.1 = 0.3
  pts.Add({0.5, 0.6});  // d_W = 1 * 0.1 = 0.1
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  auto r = fx.index->RangeSearch({0.5, 0.5}, 0.2);
  ASSERT_TRUE(r.ok());
  std::set<uint64_t> got;
  for (const auto& hit : *r) got.insert(hit.id);
  EXPECT_EQ(got, (std::set<uint64_t>{0, 2}));  // point 1 outside d_W ball
}

TEST(RangeSearchTest, DecompositionStillExact) {
  NNCellOptions opts;
  opts.decomposition.max_partitions = 6;
  Fixture fx(3, opts);
  PointSet pts = GenerateClusters(120, 3, 3, 0.07, 23);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  const PointSet& actual = fx.index->points();
  Rng rng(24);
  for (int t = 0; t < 25; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto r = fx.index->RangeSearch(q, 0.25);
    ASSERT_TRUE(r.ok());
    std::set<uint64_t> got;
    for (const auto& hit : *r) got.insert(hit.id);
    std::set<uint64_t> expected;
    for (size_t i = 0; i < actual.size(); ++i) {
      if (L2Dist(actual[i], q.data(), 3) <= 0.25) expected.insert(i);
    }
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace nncell
