// Unit tests of the write-ahead log: append/recover round trips, torn-tail
// truncation, mid-log corruption rejection, group commit, and the
// checkpoint truncation protocol (docs/PERSISTENCE.md).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "storage/durable_format.h"
#include "storage/fs_util.h"
#include "storage/wal.h"

namespace nncell {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::remove(path_.c_str());
  }

  StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      uint64_t start_lsn = 0, size_t group_sync = 1,
      bool strict_header = false,
      WriteAheadLog::RecoverResult* rec = nullptr) {
    return WriteAheadLog::Open(path_, start_lsn, group_sync, strict_header,
                               rec);
  }

  std::string ReadAll() {
    auto data = fs::ReadFileToString(path_);
    EXPECT_TRUE(data.ok());
    return data.ok() ? *data : std::string();
  }

  void WriteAll(const std::string& data) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(out.good());
  }

  std::string path_;
};

TEST_F(WalTest, CreatesEmptyLog) {
  WriteAheadLog::RecoverResult rec;
  auto wal = Open(7, 1, false, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(rec.created);
  EXPECT_EQ(rec.start_lsn, 7u);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_EQ((*wal)->last_lsn(), 7u);
  EXPECT_EQ(ReadAll().size(), durable::kWalHeaderBytes);
}

TEST_F(WalTest, AppendRecoverRoundTrip) {
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("alpha").ok());
    ASSERT_TRUE((*wal)->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE((*wal)->Append("gamma-gamma").ok());
    EXPECT_EQ((*wal)->last_lsn(), 3u);
  }
  WriteAheadLog::RecoverResult rec;
  auto wal = Open(0, 1, true, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(rec.created);
  EXPECT_EQ(rec.torn_bytes, 0u);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[0].lsn, 1u);
  EXPECT_EQ(std::string(rec.records[0].payload.begin(),
                        rec.records[0].payload.end()),
            "alpha");
  EXPECT_TRUE(rec.records[1].payload.empty());
  EXPECT_EQ(rec.records[2].lsn, 3u);
  EXPECT_EQ((*wal)->last_lsn(), 3u);
  // Appending after recovery continues the LSN sequence.
  ASSERT_TRUE((*wal)->Append("delta").ok());
  EXPECT_EQ((*wal)->last_lsn(), 4u);
}

TEST_F(WalTest, TornTailIsTruncated) {
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first").ok());
    ASSERT_TRUE((*wal)->Append("second").ok());
  }
  std::string data = ReadAll();
  const size_t full = data.size();
  // Chop the final record at every possible byte boundary: all of them
  // must recover exactly one record and truncate the rest.
  const size_t second_start =
      durable::kWalHeaderBytes + durable::kWalRecordHeaderBytes + 5;
  for (size_t cut = second_start + 1; cut < full; ++cut) {
    WriteAll(data.substr(0, cut));
    WriteAheadLog::RecoverResult rec;
    auto wal = Open(0, 1, true, &rec);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut << ": " << wal.status().ToString();
    EXPECT_EQ(rec.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(rec.torn_bytes, cut - second_start) << "cut=" << cut;
    EXPECT_EQ((*wal)->last_lsn(), 1u);
    // The torn bytes are gone from disk after recovery.
    wal->reset();
    EXPECT_EQ(ReadAll().size(), second_start) << "cut=" << cut;
  }
}

TEST_F(WalTest, MidLogCorruptionIsAnError) {
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first-record").ok());
    ASSERT_TRUE((*wal)->Append("second-record").ok());
  }
  std::string data = ReadAll();
  // Flip one payload byte of the FIRST record: a checksum failure with an
  // intact record after it is corruption, not a torn tail.
  data[durable::kWalHeaderBytes + durable::kWalRecordHeaderBytes + 2] ^= 0x01;
  WriteAll(data);
  auto wal = Open(0, 1, true, nullptr);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("checksum mismatch"),
            std::string::npos)
      << wal.status().ToString();
}

TEST_F(WalTest, FinalRecordBitFlipIsCorruptionNotTorn) {
  // A fully present final record with a flipped payload byte is NOT a torn
  // tail (a crash leaves a prefix, and this record is complete): it must be
  // rejected, never truncated away or replayed as-is.
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first-record").ok());
    ASSERT_TRUE((*wal)->Append("second-record").ok());
  }
  std::string data = ReadAll();
  data[data.size() - 3] ^= 0x40;  // inside the final record's payload
  WriteAll(data);
  auto wal = Open(0, 1, true, nullptr);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("checksum mismatch"),
            std::string::npos)
      << wal.status().ToString();
}

TEST_F(WalTest, LengthFieldBitFlipIsCorruptionNotTorn) {
  // The classic silent-truncation hole: flip a bit in a mid-log record's
  // length field. Without a header CRC the scanner would trust the bogus
  // length, fail to fit the "record", and truncate every acked record
  // behind it as a "torn tail". The header CRC makes it a hard error.
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first-record").ok());
    ASSERT_TRUE((*wal)->Append("second-record").ok());
    ASSERT_TRUE((*wal)->Append("third-record").ok());
  }
  const std::string pristine = ReadAll();
  for (int bit = 0; bit < 32; ++bit) {
    std::string data = pristine;
    data[durable::kWalHeaderBytes + bit / 8] ^= static_cast<char>(1 << (bit % 8));
    WriteAll(data);
    auto wal = Open(0, 1, true, nullptr);
    ASSERT_FALSE(wal.ok()) << "length-field bit " << bit
                           << " flip went undetected";
    EXPECT_NE(wal.status().message().find("header"), std::string::npos)
        << wal.status().ToString();
  }
}

TEST_F(WalTest, HeaderCorruptionRejected) {
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("payload").ok());
  }
  std::string data = ReadAll();
  data[9] ^= 0x10;  // version field
  WriteAll(data);
  EXPECT_FALSE(Open(0, 1, true, nullptr).ok());
  EXPECT_FALSE(Open(0, 1, false, nullptr).ok());  // lenience is header-size only
}

TEST_F(WalTest, ShortHeaderStrictnessDependsOnSnapshot) {
  WriteAll("short");
  // Without a snapshot the stub can only be the torn first creation.
  WriteAheadLog::RecoverResult rec;
  auto wal = Open(0, 1, /*strict_header=*/false, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(rec.created);
  wal->reset();
  // With a snapshot, an unreadable log that may have held acked records
  // is a hard error.
  WriteAll("short");
  auto strict = Open(5, 1, /*strict_header=*/true, nullptr);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("header truncated"),
            std::string::npos);
}

TEST_F(WalTest, GroupSyncBatchesFsyncs) {
  auto wal = Open(0, /*group_sync=*/4, false, nullptr);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wal)->Append("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  // All ten records are durable and recoverable.
  wal->reset();
  WriteAheadLog::RecoverResult rec;
  ASSERT_TRUE(Open(0, 1, true, &rec).ok());
  EXPECT_EQ(rec.records.size(), 10u);
}

TEST_F(WalTest, TruncateResetsToNewBase) {
  auto wal = Open();
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal)->Append("r" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*wal)->Truncate(5).ok());
  EXPECT_EQ((*wal)->last_lsn(), 5u);
  EXPECT_EQ(ReadAll().size(), durable::kWalHeaderBytes);
  // Post-truncation appends continue from the new base.
  ASSERT_TRUE((*wal)->Append("after").ok());
  wal->reset();
  WriteAheadLog::RecoverResult rec;
  ASSERT_TRUE(Open(0, 1, true, &rec).ok());
  EXPECT_EQ(rec.start_lsn, 5u);
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].lsn, 6u);
}

TEST_F(WalTest, LsnGapIsAnError) {
  {
    auto wal = Open();
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two").ok());
    ASSERT_TRUE((*wal)->Append("three").ok());
  }
  std::string data = ReadAll();
  // Excise the middle record (header + "two") and stitch the file back
  // together: record three's LSN no longer follows record one's.
  const size_t r1_end =
      durable::kWalHeaderBytes + durable::kWalRecordHeaderBytes + 3;
  const size_t r2_end = r1_end + durable::kWalRecordHeaderBytes + 3;
  WriteAll(data.substr(0, r1_end) + data.substr(r2_end));
  auto wal = Open(0, 1, true, nullptr);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("discontinuity"), std::string::npos)
      << wal.status().ToString();
}

#if NNCELL_FAILPOINTS
TEST_F(WalTest, AppendWriteFailurePoisonsTheLog) {
  auto wal = Open();
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("good").ok());
  failpoint::Arm("wal.append.write", failpoint::Action::kError);
  EXPECT_FALSE((*wal)->Append("boom").ok());
  EXPECT_FALSE((*wal)->healthy());
  // Every later operation fails fast until reopen.
  EXPECT_FALSE((*wal)->Append("after").ok());
  EXPECT_FALSE((*wal)->Sync().ok());
  // Reopen recovers the good prefix.
  wal->reset();
  WriteAheadLog::RecoverResult rec;
  auto reopened = Open(0, 1, true, &rec);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rec.records.size(), 1u);
}

TEST_F(WalTest, ShortWriteLeavesRecoverableTornTail) {
  auto wal = Open();
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("first-good-record").ok());
  failpoint::Arm("wal.append.write", failpoint::Action::kShortWrite);
  EXPECT_FALSE((*wal)->Append("half-written-record").ok());
  wal->reset();
  WriteAheadLog::RecoverResult rec;
  auto reopened = Open(0, 1, true, &rec);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(rec.records.size(), 1u);
  EXPECT_GT(rec.torn_bytes, 0u);
}

TEST_F(WalTest, FsyncFailurePoisonsTheLog) {
  auto wal = Open();
  ASSERT_TRUE(wal.ok());
  failpoint::Arm("wal.append.fsync", failpoint::Action::kError);
  EXPECT_FALSE((*wal)->Append("record").ok());
  EXPECT_FALSE((*wal)->healthy());
}
#endif  // NNCELL_FAILPOINTS

}  // namespace
}  // namespace nncell
