// Durable-mode index tests: NNCellIndex::Open / Checkpoint round trips,
// WAL replay after unclean shutdown, recovery bookkeeping, and differential
// equivalence against an in-memory oracle.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

NNCellOptions SmallOptions() {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  return opts;
}

NNCellIndex::DurableOptions SmallDurable() {
  NNCellIndex::DurableOptions d;
  d.page_size = 1024;
  d.pool_pages = 512;
  return d;
}

std::vector<double> Vec(const PointSet& pts, size_t i) {
  return {pts[i], pts[i] + pts.dim()};
}

class DurableIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "durable_index_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StatusOr<std::unique_ptr<NNCellIndex>> Open(
      size_t dim, NNCellIndex::RecoveryInfo* info = nullptr) {
    return NNCellIndex::Open(dir_, dim, SmallOptions(), SmallDurable(), info);
  }

  std::string dir_;
};

// Two indexes agree when they hold the same live points and answer a
// deterministic query battery identically.
void ExpectEquivalent(const NNCellIndex& a, const NNCellIndex& b,
                      size_t n_queries = 60) {
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.points().size(), b.points().size());
  for (uint64_t id = 0; id < a.points().size(); ++id) {
    ASSERT_EQ(a.IsAlive(id), b.IsAlive(id)) << "id " << id;
    if (a.IsAlive(id)) {
      for (size_t k = 0; k < a.dim(); ++k) {
        ASSERT_DOUBLE_EQ(a.points()[id][k], b.points()[id][k])
            << "id " << id << " dim " << k;
      }
    }
  }
  if (a.size() == 0) return;
  PointSet queries = GenerateQueries(n_queries, a.dim(), 99);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto ra = a.Query(queries[t]);
    auto rb = b.Query(queries[t]);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->id, rb->id) << "query " << t;
    ASSERT_DOUBLE_EQ(ra->dist, rb->dist) << "query " << t;
  }
}

TEST_F(DurableIndexTest, CreateInsertReopenRecovers) {
  PointSet pts = GenerateUniform(30, 3, 11);
  {
    NNCellIndex::RecoveryInfo info;
    auto idx = Open(3, &info);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    EXPECT_TRUE(info.created);
    EXPECT_FALSE(info.snapshot_loaded);
    EXPECT_TRUE((*idx)->durable());
    for (size_t i = 0; i < pts.size(); ++i) {
      auto id = (*idx)->Insert(Vec(pts, i));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, i);
    }
    ASSERT_TRUE((*idx)->Delete(4).ok());
    ASSERT_TRUE((*idx)->Delete(17).ok());
    // No Checkpoint, no clean shutdown: recovery must come from the WAL.
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = Open(3, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(info.created);
  EXPECT_FALSE(info.snapshot_loaded);  // never checkpointed
  EXPECT_EQ(info.wal_records_replayed, 32u);
  EXPECT_EQ(info.wal_records_skipped, 0u);
  EXPECT_EQ((*reopened)->size(), 28u);
  EXPECT_FALSE((*reopened)->IsAlive(4));
  EXPECT_TRUE((*reopened)->IsAlive(5));
  EXPECT_EQ((*reopened)->ValidateTree(), "");

  // Differential check against an in-memory oracle built the same way.
  PageFile file(1024);
  BufferPool pool(&file, 512);
  NNCellIndex oracle(&pool, 3, SmallOptions());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(oracle.Insert(Vec(pts, i)).ok());
  }
  ASSERT_TRUE(oracle.Delete(4).ok());
  ASSERT_TRUE(oracle.Delete(17).ok());
  ExpectEquivalent(**reopened, oracle);
}

TEST_F(DurableIndexTest, CheckpointFoldsWalIntoSnapshot) {
  PointSet pts = GenerateUniform(25, 2, 21);
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_TRUE((*idx)->Insert(Vec(pts, i)).ok());
    }
    ASSERT_TRUE((*idx)->Checkpoint().ok());
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = Open(2, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_wal_lsn, 25u);
  EXPECT_EQ(info.wal_records_replayed, 0u);  // log was truncated
  EXPECT_EQ((*reopened)->size(), 25u);
}

TEST_F(DurableIndexTest, SnapshotPlusWalTail) {
  PointSet pts = GenerateUniform(30, 3, 31);
  {
    auto idx = Open(3);
    ASSERT_TRUE(idx.ok());
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE((*idx)->Insert(Vec(pts, i)).ok());
    }
    ASSERT_TRUE((*idx)->Checkpoint().ok());
    // Tail after the checkpoint: recovered from the WAL only.
    for (size_t i = 20; i < 30; ++i) {
      ASSERT_TRUE((*idx)->Insert(Vec(pts, i)).ok());
    }
    ASSERT_TRUE((*idx)->Delete(2).ok());
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = Open(3, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_wal_lsn, 20u);
  EXPECT_EQ(info.wal_records_replayed, 11u);
  EXPECT_EQ((*reopened)->size(), 29u);
  ASSERT_TRUE((*reopened)->CheckInvariants(50).ok());

  PageFile file(1024);
  BufferPool pool(&file, 512);
  NNCellIndex oracle(&pool, 3, SmallOptions());
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(oracle.Insert(Vec(pts, i)).ok());
  }
  ASSERT_TRUE(oracle.Delete(2).ok());
  ExpectEquivalent(**reopened, oracle);
}

TEST_F(DurableIndexTest, BulkBuildCheckpointsAutomatically) {
  PointSet pts = GenerateUniform(40, 2, 41);
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->BulkBuild(pts).ok());
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = Open(2, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // A durable BulkBuild writes a snapshot, not 40 insert records.
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.wal_records_replayed, 0u);
  EXPECT_EQ((*reopened)->size(), 40u);
}

TEST_F(DurableIndexTest, RejectedOperationsLeaveNoWalRecord) {
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->Insert({0.5, 0.5}).ok());
    // Each of these must fail without logging anything.
    EXPECT_FALSE((*idx)->Insert({0.5, 0.5}).ok());       // duplicate
    EXPECT_FALSE((*idx)->Insert({0.5, 0.5, 0.5}).ok());  // dim mismatch
    EXPECT_FALSE((*idx)->Insert({1.5, 0.5}).ok());       // outside space
    EXPECT_FALSE((*idx)->Delete(123).ok());              // no such id
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = Open(2, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(info.wal_records_replayed, 1u);
  EXPECT_EQ((*reopened)->size(), 1u);
}

TEST_F(DurableIndexTest, DimensionMismatchRejected) {
  {
    auto idx = Open(3);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->Insert({0.1, 0.2, 0.3}).ok());
    ASSERT_TRUE((*idx)->Checkpoint().ok());
  }
  auto wrong = Open(5);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("dimension mismatch"),
            std::string::npos)
      << wrong.status().ToString();
  // dim = 0 means "whatever the snapshot says".
  auto any = Open(0);
  ASSERT_TRUE(any.ok()) << any.status().ToString();
  EXPECT_EQ((*any)->dim(), 3u);
}

TEST_F(DurableIndexTest, EmptyDirNeedsDimension) {
  auto idx = Open(0);
  ASSERT_FALSE(idx.ok());
  EXPECT_NE(idx.status().message().find("no snapshot"), std::string::npos);
}

TEST_F(DurableIndexTest, CheckpointRequiresDurableMode) {
  PageFile file(1024);
  BufferPool pool(&file, 512);
  NNCellIndex in_memory(&pool, 2, SmallOptions());
  Status s = in_memory.Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(in_memory.durable());
}

TEST_F(DurableIndexTest, GroupSyncStillRecoversSyncedPrefix) {
  NNCellIndex::DurableOptions dopts = SmallDurable();
  dopts.wal_group_sync = 8;
  PointSet pts = GenerateUniform(20, 2, 51);
  {
    NNCellIndex::RecoveryInfo info;
    auto idx = NNCellIndex::Open(dir_, 2, SmallOptions(), dopts, &info);
    ASSERT_TRUE(idx.ok());
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_TRUE((*idx)->Insert(Vec(pts, i)).ok());
    }
    // Destructor runs without an explicit sync; the process does not
    // crash, so the page cache still lands on "disk" (tmpfs). Recovery
    // must replay everything that reached the file.
  }
  NNCellIndex::RecoveryInfo info;
  auto reopened = NNCellIndex::Open(dir_, 2, SmallOptions(), dopts, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 20u);
}

TEST_F(DurableIndexTest, ManyGenerationsStayConsistent) {
  // Several open -> mutate -> close cycles, checkpointing on some of them;
  // an oracle applies the same operations in one process.
  PageFile file(1024);
  BufferPool pool(&file, 512);
  NNCellIndex oracle(&pool, 2, SmallOptions());

  Rng rng(61);
  uint64_t next_delete = 0;
  for (int gen = 0; gen < 4; ++gen) {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok()) << "gen " << gen << ": " << idx.status().ToString();
    for (int i = 0; i < 8; ++i) {
      std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
      ASSERT_TRUE((*idx)->Insert(p).ok());
      ASSERT_TRUE(oracle.Insert(p).ok());
    }
    if (gen >= 1) {
      ASSERT_TRUE((*idx)->Delete(next_delete).ok());
      ASSERT_TRUE(oracle.Delete(next_delete).ok());
      ++next_delete;
    }
    if (gen % 2 == 1) {
      ASSERT_TRUE((*idx)->Checkpoint().ok());
    }
    ExpectEquivalent(**idx, oracle, 30);
  }
  auto final_idx = Open(2);
  ASSERT_TRUE(final_idx.ok());
  ExpectEquivalent(**final_idx, oracle);
  ASSERT_TRUE((*final_idx)->CheckInvariants(50).ok());
}

TEST_F(DurableIndexTest, RecoveredIndexKeepsItsDurability) {
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->Insert({0.3, 0.7}).ok());
  }
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    EXPECT_TRUE((*idx)->durable());
    // Mutations after recovery are themselves logged...
    ASSERT_TRUE((*idx)->Insert({0.6, 0.1}).ok());
  }
  // ...and survive the next reopen.
  auto idx = Open(2);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->size(), 2u);
}

TEST_F(DurableIndexTest, WalAheadOfSnapshotRejected) {
  PointSet pts = GenerateUniform(10, 2, 71);
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_TRUE((*idx)->Insert(Vec(pts, i)).ok());
    }
    ASSERT_TRUE((*idx)->Checkpoint().ok());
    ASSERT_TRUE((*idx)->Insert({0.111, 0.222}).ok());
    ASSERT_TRUE((*idx)->Checkpoint().ok());
  }
  // Roll the snapshot back to a stale generation while the WAL base has
  // moved past it: acknowledged operations would be missing.
  auto stale = fs::ReadFileToString(dir_ + "/snapshot.nncell");
  ASSERT_TRUE(stale.ok());
  {
    auto idx = Open(2);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->Insert({0.333, 0.444}).ok());
    ASSERT_TRUE((*idx)->Checkpoint().ok());
  }
  ASSERT_TRUE(fs::WriteFileAtomic(dir_ + "/snapshot.nncell", *stale).ok());
  auto reopened = Open(0);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("acknowledged operations"),
            std::string::npos)
      << reopened.status().ToString();
}

}  // namespace
}  // namespace nncell
