// Sharded-index test layer: the scatter-gather differential against an
// unsharded oracle (bit-identical results across every approximation
// algorithm, dimensionality and shard count), the online-rebalance
// equivalence, durable recovery of the router, the rebalance crash
// matrix, and degraded-mode behavior when a single shard's storage is
// corrupt.

#include "shard/sharded_index.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "nncell/nncell_index.h"
#include "shard/shard_format.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

NNCellOptions Options(ApproxAlgorithm algo) {
  NNCellOptions opts;
  opts.algorithm = algo;
  return opts;
}

ShardedOptions Sharded(size_t k) {
  ShardedOptions s;
  s.num_shards = k;
  s.auto_rebalance = false;
  return s;
}

NNCellIndex::DurableOptions Durable() {
  NNCellIndex::DurableOptions d;
  d.page_size = 1024;
  d.pool_pages = 512;
  return d;
}

// In-memory unsharded oracle over its own storage.
struct Oracle {
  explicit Oracle(size_t dim, NNCellOptions opts = Options(
                                  ApproxAlgorithm::kSphere))
      : file(2048), pool(&file, 512), index(&pool, dim, opts) {}
  PageFile file;
  BufferPool pool;
  NNCellIndex index;
};

PointSet RandomPoints(size_t n, size_t dim, uint64_t seed) {
  PointSet pts(dim);
  Rng rng(seed);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  return pts;
}

void ExpectSameResult(const NNCellIndex::QueryResult& a,
                      const NNCellIndex::QueryResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.id, b.id) << what;
  EXPECT_EQ(a.dist, b.dist) << what;  // bit-identical, not approximate
  EXPECT_EQ(a.point, b.point) << what;
}

void ExpectSameResults(const std::vector<NNCellIndex::QueryResult>& a,
                       const std::vector<NNCellIndex::QueryResult>& b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectSameResult(a[i], b[i], what + " [" + std::to_string(i) + "]");
  }
}

// Runs the full query surface (NN / kNN / range) of `sharded` against the
// oracle and requires bit-identical answers.
void DifferentialQueries(const ShardedIndex& sharded,
                         const NNCellIndex& oracle, size_t n_queries,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(oracle.dim());
  for (size_t i = 0; i < n_queries; ++i) {
    for (double& v : q) v = rng.NextDouble();
    const std::string tag = "query " + std::to_string(i);

    auto got = sharded.Query(q);
    auto want = oracle.Query(q);
    ASSERT_EQ(got.ok(), want.ok()) << tag;
    if (want.ok()) ExpectSameResult(*got, *want, tag);

    auto got_knn = sharded.KnnQuery(q, 5);
    auto want_knn = oracle.KnnQuery(q, 5);
    ASSERT_EQ(got_knn.ok(), want_knn.ok()) << tag;
    if (want_knn.ok()) ExpectSameResults(*got_knn, *want_knn, tag + " knn");

    const double radius = 0.05 + 0.3 * rng.NextDouble();
    auto got_rs = sharded.RangeSearch(q, radius);
    auto want_rs = oracle.RangeSearch(q, radius);
    ASSERT_EQ(got_rs.ok(), want_rs.ok()) << tag;
    if (want_rs.ok()) ExpectSameResults(*got_rs, *want_rs, tag + " range");
  }
}

// --- the oracle differential over algorithms x dims x shard counts --------

using DiffParam = std::tuple<ApproxAlgorithm, size_t, size_t>;

class ShardDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(ShardDifferentialTest, BulkBuildMatchesUnsharded) {
  const auto [algo, dim, shards] = GetParam();
  const size_t n = dim <= 2 ? 90 : (dim <= 8 ? 50 : 36);
  PointSet pts = RandomPoints(n, dim, 0x5eed0 + dim * 31 + shards);

  Oracle oracle(dim, Options(algo));
  ASSERT_TRUE(oracle.index.BulkBuild(pts).ok());

  auto sharded = ShardedIndex::Create(dim, Options(algo), Sharded(shards));
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_TRUE((*sharded)->BulkBuild(pts).ok());
  EXPECT_EQ((*sharded)->size(), oracle.index.size());
  EXPECT_EQ((*sharded)->num_shards(), shards);

  DifferentialQueries(**sharded, oracle.index, 12, 0xabc0 + dim);
  EXPECT_TRUE((*sharded)->CheckInvariants(20).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByDimByShards, ShardDifferentialTest,
    ::testing::Combine(
        ::testing::Values(ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
                          ApproxAlgorithm::kSphere,
                          ApproxAlgorithm::kNNDirection),
        ::testing::Values<size_t>(2, 8, 16),
        ::testing::Values<size_t>(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      std::string algo = ApproxAlgorithmName(std::get<0>(info.param));
      algo.erase(std::remove_if(algo.begin(), algo.end(),
                                [](char c) { return !std::isalnum(c); }),
                 algo.end());
      return algo + "_d" + std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// --- dynamic inserts / deletes -------------------------------------------

TEST(ShardedIndexTest, InsertDeleteMatchesUnsharded) {
  const size_t dim = 4;
  Oracle oracle(dim);
  auto sharded = ShardedIndex::Create(dim, Options(ApproxAlgorithm::kSphere),
                                      Sharded(4));
  ASSERT_TRUE(sharded.ok());

  Rng rng(0xd1ce);
  std::vector<uint64_t> live;
  for (size_t i = 0; i < 120; ++i) {
    std::vector<double> p(dim);
    for (double& v : p) v = rng.NextDouble();
    auto want = oracle.index.Insert(p);
    auto got = (*sharded)->Insert(p);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(*got, *want) << "global ids must match the oracle's";
    live.push_back(*got);
    if (i % 7 == 3 && !live.empty()) {
      const uint64_t victim = live[rng.NextIndex(live.size())];
      Status w = oracle.index.Delete(victim);
      Status g = (*sharded)->Delete(victim);
      ASSERT_EQ(w.ok(), g.ok());
      live.erase(std::remove(live.begin(), live.end(), victim), live.end());
    }
  }
  EXPECT_EQ((*sharded)->size(), oracle.index.size());
  for (uint64_t id : live) {
    EXPECT_TRUE((*sharded)->IsAlive(id));
  }
  DifferentialQueries(**sharded, oracle.index, 20, 0xfeed);
  EXPECT_TRUE((*sharded)->CheckInvariants(30).ok());
}

TEST(ShardedIndexTest, ErrorsMirrorUnsharded) {
  auto sharded = ShardedIndex::Create(2, Options(ApproxAlgorithm::kSphere),
                                      Sharded(4));
  ASSERT_TRUE(sharded.ok());
  ShardedIndex& idx = **sharded;

  // Empty-index queries.
  const std::vector<double> q{0.5, 0.5};
  EXPECT_EQ(idx.Query(q).status().message(), "index is empty");
  EXPECT_EQ(idx.KnnQuery(q, 3).status().message(), "index is empty");
  EXPECT_EQ(idx.RangeSearch(q, 0.1).status().message(), "index is empty");

  ASSERT_TRUE(idx.Insert({0.25, 0.5}).ok());

  // Exact duplicate.
  EXPECT_EQ(idx.Insert({0.25, 0.5}).status().code(),
            StatusCode::kAlreadyExists);
  // Dimension mismatch.
  EXPECT_EQ(idx.Insert({0.25}).status().message(), "dimension mismatch");
  // Out of space.
  EXPECT_EQ(idx.Insert({1.5, 0.5}).status().code(), StatusCode::kOutOfRange);
  // Negative radius (after the empty check, as in the oracle).
  EXPECT_EQ(idx.RangeSearch(q, -1.0).status().message(), "negative radius");
  // Unknown / dead ids.
  EXPECT_EQ(idx.Delete(99).message(), "no live point with this id");
  ASSERT_TRUE(idx.Delete(0).ok());
  EXPECT_EQ(idx.Delete(0).message(), "no live point with this id");
  // Checkpoint needs a durable index.
  EXPECT_EQ(idx.Checkpoint().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedIndexTest, QueryBatchMatchesSerialLoop) {
  const size_t dim = 3;
  auto sharded = ShardedIndex::Create(dim, Options(ApproxAlgorithm::kSphere),
                                      Sharded(4));
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->BulkBuild(RandomPoints(80, dim, 0xba7c)).ok());

  PointSet queries = RandomPoints(32, dim, 0x9876);
  auto batch = (*sharded)->QueryBatch(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto one = (*sharded)->Query(queries[i]);
    ASSERT_TRUE(one.ok());
    ExpectSameResult((*batch)[i], *one, "batch slot " + std::to_string(i));
  }
}

TEST(ShardedIndexTest, WeightedMetricMatchesUnsharded) {
  const size_t dim = 3;
  NNCellOptions opts = Options(ApproxAlgorithm::kSphere);
  opts.weights = {4.0, 1.0, 0.25};
  Oracle oracle(dim, opts);
  auto sharded = ShardedIndex::Create(dim, opts, Sharded(4));
  ASSERT_TRUE(sharded.ok());

  PointSet pts = RandomPoints(70, dim, 0x3e1);
  ASSERT_TRUE(oracle.index.BulkBuild(pts).ok());
  ASSERT_TRUE((*sharded)->BulkBuild(pts).ok());
  DifferentialQueries(**sharded, oracle.index, 15, 0x77);
  EXPECT_TRUE((*sharded)->CheckInvariants(20).ok());
}

// --- online rebalance -----------------------------------------------------

TEST(ShardRebalanceTest, SkewedInsertsTriggerOnlineRebalance) {
  const size_t dim = 2;
  ShardedOptions sopts;
  sopts.num_shards = 4;
  sopts.auto_rebalance = true;
  sopts.min_rebalance_points = 32;
  sopts.max_skew = 2.0;
  auto sharded =
      ShardedIndex::Create(dim, Options(ApproxAlgorithm::kSphere), sopts);
  ASSERT_TRUE(sharded.ok());
  Oracle oracle(dim);

  // Every point lands in the first uniform slab: maximal skew.
  Rng rng(0x53e1);
  for (size_t i = 0; i < 120; ++i) {
    std::vector<double> p{0.2 * rng.NextDouble(), rng.NextDouble()};
    auto want = oracle.index.Insert(p);
    auto got = (*sharded)->Insert(p);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(*got, *want);
  }
  EXPECT_GT((*sharded)->epoch(), 0u) << "skew must have forced a rebalance";

  // The rebalanced shards are quantile-balanced.
  ShardedIndex::ShardStats st = (*sharded)->Stats();
  uint64_t max_live = 0;
  uint64_t total = 0;
  for (uint64_t l : st.live) {
    max_live = std::max(max_live, l);
    total += l;
  }
  EXPECT_EQ(total, 120u);
  EXPECT_LE(max_live, 2 * (total / st.live.size()))
      << "rebalance left the index skewed";

  // Bit-identical to the oracle after the move (unweighted metric: the
  // re-partition re-inserts the exact original coordinates).
  DifferentialQueries(**sharded, oracle.index, 20, 0x900d);
  EXPECT_TRUE((*sharded)->CheckInvariants(30).ok());
}

TEST(ShardRebalanceTest, TargetPointsPerShardResizesShardCount) {
  const size_t dim = 2;
  ShardedOptions sopts;
  sopts.num_shards = 1;
  sopts.auto_rebalance = true;
  sopts.min_rebalance_points = 16;
  sopts.target_points_per_shard = 16;
  auto sharded =
      ShardedIndex::Create(dim, Options(ApproxAlgorithm::kSphere), sopts);
  ASSERT_TRUE(sharded.ok());
  Oracle oracle(dim);

  Rng rng(0x512e);
  for (size_t i = 0; i < 64; ++i) {
    std::vector<double> p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(oracle.index.Insert(p).ok());
    ASSERT_TRUE((*sharded)->Insert(p).ok());
  }
  EXPECT_EQ((*sharded)->num_shards(), 4u) << "64 live / 16 target = 4 shards";
  DifferentialQueries(**sharded, oracle.index, 15, 0x1234);
  EXPECT_TRUE((*sharded)->CheckInvariants(25).ok());

  // Shrink back: delete most points and force a rebalance.
  for (uint64_t id = 8; id < 64; ++id) {
    ASSERT_TRUE((*sharded)->Delete(id).ok());
    ASSERT_TRUE(oracle.index.Delete(id).ok());
  }
  ASSERT_TRUE((*sharded)->Rebalance(/*force=*/true).ok());
  EXPECT_EQ((*sharded)->num_shards(), 1u);
  DifferentialQueries(**sharded, oracle.index, 10, 0x4321);
}

// --- durable mode ---------------------------------------------------------

class ShardDurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "shard_durable_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ShardDurableTest, ReopenRecoversExactState) {
  const size_t dim = 2;
  Oracle oracle(dim);
  Rng rng(0xd002);
  std::vector<std::vector<double>> inserted;
  {
    auto sharded = ShardedIndex::Open(dir_, dim,
                                      Options(ApproxAlgorithm::kSphere),
                                      Durable(), Sharded(3));
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    for (size_t i = 0; i < 40; ++i) {
      std::vector<double> p{rng.NextDouble(), rng.NextDouble()};
      inserted.push_back(p);
      ASSERT_TRUE(oracle.index.Insert(p).ok());
      ASSERT_TRUE((*sharded)->Insert(p).ok());
    }
    ASSERT_TRUE((*sharded)->Delete(7).ok());
    ASSERT_TRUE(oracle.index.Delete(7).ok());
    ASSERT_TRUE((*sharded)->Checkpoint().ok());
    // Post-checkpoint tail, replayed from the WALs on reopen.
    for (size_t i = 0; i < 6; ++i) {
      std::vector<double> p{rng.NextDouble(), rng.NextDouble()};
      inserted.push_back(p);
      ASSERT_TRUE(oracle.index.Insert(p).ok());
      ASSERT_TRUE((*sharded)->Insert(p).ok());
    }
    ASSERT_TRUE((*sharded)->Delete(42).ok());
    ASSERT_TRUE(oracle.index.Delete(42).ok());
  }

  ShardedIndex::RecoveryInfo info;
  auto reopened = ShardedIndex::Open(dir_, dim,
                                     Options(ApproxAlgorithm::kSphere),
                                     Durable(), Sharded(3), &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_FALSE(info.created);
  EXPECT_EQ(info.reconciled_inserts, 0u);
  EXPECT_EQ(info.reconciled_deletes, 0u);
  EXPECT_FALSE((*reopened)->degraded());
  EXPECT_EQ((*reopened)->size(), oracle.index.size());
  for (uint64_t id = 0; id < inserted.size(); ++id) {
    EXPECT_EQ((*reopened)->IsAlive(id), oracle.index.IsAlive(id)) << id;
  }
  DifferentialQueries(**reopened, oracle.index, 15, 0xbeef);
  EXPECT_TRUE((*reopened)->CheckInvariants(25).ok());

  // New global ids continue after the recovered ones.
  auto next = (*reopened)->Insert({0.111, 0.222});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, inserted.size());
}

TEST_F(ShardDurableTest, DurableRebalanceSurvivesReopen) {
  const size_t dim = 2;
  Oracle oracle(dim);
  Rng rng(0x4eb1);
  {
    auto sharded = ShardedIndex::Open(dir_, dim,
                                      Options(ApproxAlgorithm::kSphere),
                                      Durable(), Sharded(4));
    ASSERT_TRUE(sharded.ok());
    for (size_t i = 0; i < 48; ++i) {
      std::vector<double> p{0.25 * rng.NextDouble(), rng.NextDouble()};
      ASSERT_TRUE(oracle.index.Insert(p).ok());
      ASSERT_TRUE((*sharded)->Insert(p).ok());
    }
    ASSERT_TRUE((*sharded)->Rebalance(/*force=*/true).ok());
    EXPECT_EQ((*sharded)->epoch(), 1u);
    DifferentialQueries(**sharded, oracle.index, 10, 0x11);
  }
  auto reopened = ShardedIndex::Open(dir_, dim,
                                     Options(ApproxAlgorithm::kSphere),
                                     Durable(), Sharded(4));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*reopened)->epoch(), 1u);
  EXPECT_FALSE((*reopened)->degraded());
  DifferentialQueries(**reopened, oracle.index, 15, 0x22);
  EXPECT_TRUE((*reopened)->CheckInvariants(25).ok());
}

TEST_F(ShardDurableTest, UnsupportedManifestVersionIsInvalidArgument) {
  {
    auto sharded = ShardedIndex::Open(dir_, 2,
                                      Options(ApproxAlgorithm::kSphere),
                                      Durable(), Sharded(2));
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE((*sharded)->Insert({0.1, 0.2}).ok());
  }
  // Patch only the version field (u32 LE at byte 8). The CRC is *not*
  // fixed up: version skew must be detected before the checksum, so a
  // future format is reported as skew, not corruption.
  const std::string path = dir_ + "/" + shard::kShardManifestFileName;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(8);
    const uint32_t v = 99;
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  auto reopened = ShardedIndex::Open(dir_, 2,
                                     Options(ApproxAlgorithm::kSphere),
                                     Durable(), Sharded(2));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reopened.status().message().find(
                "unsupported shard manifest version 99 (this build reads "
                "version 1)"),
            std::string::npos)
      << reopened.status().message();
}

TEST_F(ShardDurableTest, CorruptManifestPayloadIsChecksumMismatch) {
  {
    auto sharded = ShardedIndex::Open(dir_, 2,
                                      Options(ApproxAlgorithm::kSphere),
                                      Durable(), Sharded(4));
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE((*sharded)->Insert({0.1, 0.2}).ok());
  }
  const std::string path = dir_ + "/" + shard::kShardManifestFileName;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(shard::kShardManifestHeaderBytes) + 2);
    char b = '\x5a';
    f.write(&b, 1);
  }
  auto reopened = ShardedIndex::Open(dir_, 2,
                                     Options(ApproxAlgorithm::kSphere),
                                     Durable(), Sharded(4));
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("checksum mismatch"),
            std::string::npos)
      << reopened.status().message();
}

// --- degraded mode: one corrupt shard must not destroy the index ----------

TEST_F(ShardDurableTest, SingleShardCorruptionDegradesOnlyThatShard) {
  const size_t dim = 2;
  PointSet pts = RandomPoints(48, dim, 0xc0de);
  {
    auto sharded = ShardedIndex::Open(dir_, dim,
                                      Options(ApproxAlgorithm::kSphere),
                                      Durable(), Sharded(4));
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE((*sharded)->BulkBuild(pts).ok());
    ShardedIndex::ShardStats st = (*sharded)->Stats();
    for (uint64_t l : st.live) ASSERT_GT(l, 0u);
  }

  // Flip one byte in the middle of shard 2's snapshot.
  const std::string snap = dir_ + "/shard-2/snapshot.nncell";
  ASSERT_TRUE(std::filesystem::exists(snap));
  {
    const auto size = std::filesystem::file_size(snap);
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char b = 0;
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(size / 2));
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }

  ShardedIndex::RecoveryInfo info;
  auto reopened = ShardedIndex::Open(dir_, dim,
                                     Options(ApproxAlgorithm::kSphere),
                                     Durable(), Sharded(4), &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE((*reopened)->degraded());
  EXPECT_EQ((*reopened)->degraded_shards(), 1u);
  EXPECT_TRUE((*reopened)->ShardStatus(0).ok());
  EXPECT_TRUE((*reopened)->ShardStatus(1).ok());
  EXPECT_TRUE((*reopened)->ShardStatus(3).ok());
  const Status bad = (*reopened)->ShardStatus(2);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(info.shards[2].status.ok());

  // Queries answer from the healthy shards: brute-force reference over
  // every point routed outside shard 2's slab.
  ShardedIndex::ShardStats st = (*reopened)->Stats();
  auto route = [&](const double* p) {
    const double c = p[st.route_dim];
    size_t s = 0;
    while (s < st.cuts.size() && st.cuts[s] <= c) ++s;
    return s;
  };
  Rng rng(0xdead);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> q{rng.NextDouble(), rng.NextDouble()};
    uint64_t best_id = 0;
    double best_d2 = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (route(pts[i]) == 2) continue;
      double d2 = 0;
      for (size_t j = 0; j < dim; ++j) {
        const double d = pts[i][j] - q[j];
        d2 += d * d;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best_id = i;
      }
    }
    auto got = (*reopened)->Query(q);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->id, best_id) << "degraded query " << t;
  }

  // Writes touching the dead shard fail with a precise status; the rest
  // of the index stays writable.
  std::vector<double> into_dead{0.0, 0.5};
  // Find a coordinate routed to shard 2.
  while (route(into_dead.data()) != 2) into_dead[0] += 0.01;
  auto ins = (*reopened)->Insert(into_dead);
  EXPECT_EQ(ins.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(ins.status().message().find("shard 2 is unavailable"),
            std::string::npos)
      << ins.status().message();

  std::vector<double> into_live{0.0, 0.5};
  while (route(into_live.data()) == 2) into_live[0] += 0.01;
  EXPECT_TRUE((*reopened)->Insert(into_live).ok());

  // Rebalance refuses while degraded.
  Status reb = (*reopened)->Rebalance(/*force=*/true);
  EXPECT_EQ(reb.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reb.message().find("degraded"), std::string::npos);
}

// --- crash matrix over the rebalance install protocol ---------------------

#if NNCELL_FAILPOINTS

struct ShardOp {
  enum Kind { kInsert, kDelete, kCheckpoint, kRebalance } kind;
  std::vector<double> point;
  uint64_t id = 0;
};

std::vector<ShardOp> ShardWorkload() {
  std::vector<ShardOp> ops;
  Rng rng(0x57ac);
  auto insert = [&](double lo, double hi) {
    ops.push_back({ShardOp::kInsert,
                   {lo + (hi - lo) * rng.NextDouble(), rng.NextDouble()},
                   0});
  };
  for (int i = 0; i < 8; ++i) insert(0.0, 1.0);
  ops.push_back({ShardOp::kCheckpoint, {}, 0});
  for (int i = 0; i < 6; ++i) insert(0.0, 0.2);  // skew into the low slab
  ops.push_back({ShardOp::kRebalance, {}, 0});
  for (int i = 0; i < 4; ++i) insert(0.0, 1.0);
  ops.push_back({ShardOp::kDelete, {}, 2});
  ops.push_back({ShardOp::kCheckpoint, {}, 0});
  return ops;
}

[[noreturn]] void RunShardChild(const std::string& dir,
                                const std::string& ack_path,
                                const std::string& site, int skip) {
  failpoint::Arm(site, failpoint::Action::kCrash, skip);
  int ack_fd = ::open(ack_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) ::_exit(3);
  ShardedOptions sopts = Sharded(3);
  auto idx = ShardedIndex::Open(dir, 2, Options(ApproxAlgorithm::kSphere),
                                Durable(), sopts);
  if (!idx.ok()) ::_exit(3);
  for (const ShardOp& op : ShardWorkload()) {
    Status st = Status::OK();
    switch (op.kind) {
      case ShardOp::kInsert: st = (*idx)->Insert(op.point).status(); break;
      case ShardOp::kDelete: st = (*idx)->Delete(op.id); break;
      case ShardOp::kCheckpoint: st = (*idx)->Checkpoint(); break;
      case ShardOp::kRebalance: st = (*idx)->Rebalance(true); break;
    }
    if (!st.ok()) ::_exit(4);
    if (::write(ack_fd, "A", 1) != 1 || ::fsync(ack_fd) != 0) ::_exit(3);
  }
  ::_exit(0);
}

// Live global-id set of the oracle after the first `n_ops` operations.
std::set<uint64_t> ShardOracleAfter(size_t n_ops) {
  std::set<uint64_t> live;
  uint64_t next = 0;
  std::vector<ShardOp> ops = ShardWorkload();
  for (size_t i = 0; i < n_ops && i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case ShardOp::kInsert: live.insert(next++); break;
      case ShardOp::kDelete: live.erase(ops[i].id); break;
      default: break;
    }
  }
  return live;
}

std::set<uint64_t> ShardLive(const ShardedIndex& idx, size_t upper) {
  std::set<uint64_t> live;
  for (uint64_t g = 0; g < upper; ++g) {
    if (idx.IsAlive(g)) live.insert(g);
  }
  return live;
}

class ShardCrashMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardCrashMatrixTest, RecoversAcknowledgedPrefix) {
  const std::string site = GetParam();
  std::string safe_site = site;
  for (char& c : safe_site) {
    if (c == '.') c = '_';
  }
  for (int skip = 0; skip <= 2; ++skip) {
    const std::string base = ::testing::TempDir() + "shard_crash_" +
                             safe_site + "_s" + std::to_string(skip);
    const std::string dir = base + ".d";
    const std::string ack_path = base + ".ack";
    std::filesystem::remove_all(dir);
    std::remove(ack_path.c_str());

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunShardChild(dir, ack_path, site, skip);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << site << " skip " << skip;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
        << site << " skip " << skip << ": child exited " << code;

    size_t acked = 0;
    if (std::filesystem::exists(ack_path)) {
      acked = std::filesystem::file_size(ack_path);
    }

    ShardedIndex::RecoveryInfo info;
    auto recovered = ShardedIndex::Open(dir, 2,
                                        Options(ApproxAlgorithm::kSphere),
                                        Durable(), Sharded(3), &info);
    ASSERT_TRUE(recovered.ok())
        << site << " skip " << skip << " acked " << acked << ": "
        << recovered.status().message();
    ASSERT_FALSE((*recovered)->degraded())
        << site << " skip " << skip << ": no injected state may degrade";
    EXPECT_EQ((*recovered)->ValidateTree(), "") << site << " skip " << skip;

    const size_t total_ops = ShardWorkload().size();
    const std::set<uint64_t> got = ShardLive(**recovered, 64);
    const std::set<uint64_t> at_ack = ShardOracleAfter(acked);
    if (got != at_ack) {
      // The operation in flight at the crash may have become durable.
      const std::set<uint64_t> next = ShardOracleAfter(acked + 1);
      ASSERT_EQ(got, next)
          << site << " skip " << skip << " acked " << acked << "/"
          << total_ops;
    }
    ASSERT_TRUE((*recovered)->CheckInvariants(20).ok())
        << site << " skip " << skip;

    std::filesystem::remove_all(dir);
    std::remove(ack_path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, ShardCrashMatrixTest,
    ::testing::Values("shard.rebalance.stage", "shard.rebalance.commit",
                      "shard.rebalance.finalize", "fs.atomic_write.data",
                      "fs.atomic_write.rename", "wal.append.write"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

#endif  // NNCELL_FAILPOINTS

}  // namespace
}  // namespace nncell
